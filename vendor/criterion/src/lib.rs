//! Offline vendored subset of the `criterion` benchmarking API.
//!
//! Provides the harness surface this workspace's `harness = false` benches
//! use — `Criterion::benchmark_group`, `sample_size`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros — measuring wall-clock
//! time with `std::time::Instant` and printing per-benchmark mean/min/max
//! to stdout. There is no statistical analysis, HTML report, or saved
//! baseline; numbers are indicative, which is all the repro pipeline
//! needs from this environment.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 20;
/// Target wall time per sample; iterations per sample are scaled to reach it.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(20);

/// Benchmark manager handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Parse CLI arguments (accepted and ignored by this mini-harness,
    /// so `cargo bench -- <filter>` doesn't error).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: DEFAULT_SAMPLE_SIZE,
            _criterion: self,
        }
    }
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a benchmark over a borrowed input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&self.name, &id.id);
        self
    }

    /// Run a benchmark with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&self.name, &id.id);
        self
    }

    /// End the group (printout already happened per benchmark).
    pub fn finish(self) {}
}

/// Timer handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    /// Per-iteration seconds for each sample.
    samples: Vec<f64>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            samples: Vec::new(),
        }
    }

    /// Time `routine`, called repeatedly; its return value is black-boxed
    /// so the computation cannot be optimised away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate iterations-per-sample on one warmup call.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET_SAMPLE_TIME.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as usize;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_secs_f64();
            self.samples.push(elapsed / iters as f64);
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            println!("  {group}/{id}: no samples");
            return;
        }
        let n = self.samples.len() as f64;
        let mean = self.samples.iter().sum::<f64>() / n;
        let min = self.samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = self.samples.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "  {group}/{id}: mean {} min {} max {} ({} samples)",
            fmt_time(mean),
            fmt_time(min),
            fmt_time(max),
            self.samples.len(),
        );
    }
}

/// Human-readable seconds.
fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Entry point for `harness = false` bench binaries.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut g = c.benchmark_group("self_test");
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &k| {
            b.iter(|| (0..100 * k).sum::<u64>())
        });
        g.finish();
    }

    criterion_group!(bench_self, trivial);

    #[test]
    fn harness_runs() {
        bench_self();
    }

    #[test]
    fn time_formatting() {
        assert_eq!(fmt_time(2.0), "2.000 s");
        assert_eq!(fmt_time(2.5e-3), "2.500 ms");
        assert_eq!(fmt_time(2.5e-6), "2.500 µs");
        assert_eq!(fmt_time(5.0e-9), "5.0 ns");
    }
}

// virtual-path: crates/core/src/threaded.rs
// GOOD: the threaded backend is the sanctioned home of wall-clock reads.

use std::time::Instant;

pub fn step_timed() -> f64 {
    let t0 = Instant::now();
    t0.elapsed().as_secs_f64()
}

//! Deterministic intra-op parallelism.
//!
//! Every multi-threaded kernel in this crate routes through the helpers
//! here, which guarantee one property: **work item `i` is always work item
//! `i`**, no matter how many threads execute it. Kernels split only across
//! independent outputs (rows, images, planes) and never change the
//! accumulation order *within* an output element, so the parallel kernels
//! are bitwise-identical to the serial ones — the determinism contract the
//! SASGD backends rely on (simulated and threaded runs must produce the
//! same parameters bit for bit).
//!
//! Compiled without the `parallel` feature, the helpers degrade to plain
//! serial loops and [`configure_threads`] becomes a no-op, so call sites
//! are written once.
//!
//! ## Composing learner and intra-op threads
//!
//! With `p` real learner threads (see `sasgd-core::threaded`) each kernel
//! call still fans out over the global pool, so the machine runs up to
//! `p × k` threads when `configure_threads(k)` was requested. Oversubscribing
//! is safe (determinism never depends on the thread count); for throughput
//! pick `k ≈ cores / p` — `intra_op_threads_for(p)` computes exactly that.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Last value passed to [`configure_threads`] (0 = never configured).
static REQUESTED: AtomicUsize = AtomicUsize::new(0);

/// Regions that genuinely fanned out over the rayon pool (as opposed to
/// falling through to the serial loop). The bench harness reads this to
/// *prove* intra-op threads engaged instead of silently serializing on a
/// small pool or a small input.
static PAR_REGIONS: AtomicU64 = AtomicU64::new(0);

/// Parallel regions actually executed on the pool since the last reset.
pub fn par_regions_taken() -> u64 {
    PAR_REGIONS.load(Ordering::Relaxed)
}

/// Zero the [`par_regions_taken`] counter (bench-leg isolation).
pub fn reset_par_regions() {
    PAR_REGIONS.store(0, Ordering::Relaxed);
}

/// Whether this build carries the multi-threaded kernels.
pub const fn parallel_enabled() -> bool {
    cfg!(feature = "parallel")
}

/// Size the global intra-op pool: `n` worker threads, `0` = one per
/// available core. Callable repeatedly; later calls win. Without the
/// `parallel` feature this only records the request.
pub fn configure_threads(n: usize) {
    REQUESTED.store(n, Ordering::Relaxed);
    #[cfg(feature = "parallel")]
    {
        // The vendored rayon allows reconfiguring the global pool.
        let _ = rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build_global();
    }
}

/// Threads a parallel region will use (always 1 without the feature).
pub fn threads() -> usize {
    #[cfg(feature = "parallel")]
    {
        rayon::current_num_threads()
    }
    #[cfg(not(feature = "parallel"))]
    {
        1
    }
}

/// Intra-op thread count that fills the machine under `p` learner threads:
/// `max(1, available_cores / p)`.
pub fn intra_op_threads_for(p: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    (cores / p.max(1)).max(1)
}

/// Size the pool for `p` concurrent learner threads — each kernel call
/// gets `cores / p` workers so the machine runs ~`p × k = cores` threads —
/// unless the user already pinned a count via [`configure_threads`]
/// (an explicit request always wins). The threaded SASGD backends call
/// this once per run with their learner count.
pub fn auto_configure_for_learners(p: usize) {
    if requested_threads() != 0 {
        return;
    }
    #[cfg(feature = "parallel")]
    {
        let _ = rayon::ThreadPoolBuilder::new()
            .num_threads(intra_op_threads_for(p))
            .build_global();
    }
    #[cfg(not(feature = "parallel"))]
    let _ = p;
}

/// What was last requested via [`configure_threads`] (0 = automatic).
pub fn requested_threads() -> usize {
    REQUESTED.load(Ordering::Relaxed)
}

/// Run `op(i, chunk_i)` for every `chunk_size`-sized chunk of `data`
/// (last chunk may be shorter). Chunk `i` always covers
/// `data[i*chunk_size .. min((i+1)*chunk_size, len)]`.
pub fn for_each_chunk_mut<T, F>(data: &mut [T], chunk_size: usize, op: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    // A 1-thread pool (or a single chunk) gains nothing from rayon but
    // still pays its per-call job allocations; the serial loop visits the
    // identical chunks in the identical order, so outputs are bitwise the
    // same either way.
    #[cfg(feature = "parallel")]
    if threads() > 1 && data.len() > chunk_size {
        use rayon::prelude::*;
        PAR_REGIONS.fetch_add(1, Ordering::Relaxed);
        data.par_chunks_mut(chunk_size)
            .enumerate()
            .for_each(|(i, chunk)| op(i, chunk));
        return;
    }
    for (i, chunk) in data.chunks_mut(chunk_size).enumerate() {
        op(i, chunk);
    }
}

/// Lock-step variant of [`for_each_chunk_mut`] over two slices: runs
/// `op(i, a_chunk_i, b_chunk_i)` where the chunks tile `a` and `b` with
/// sizes `chunk_a` and `chunk_b` respectively.
pub fn for_each_zip_chunks_mut<T, U, F>(
    a: &mut [T],
    chunk_a: usize,
    b: &mut [U],
    chunk_b: usize,
    op: F,
) where
    T: Send,
    U: Send,
    F: Fn(usize, &mut [T], &mut [U]) + Sync,
{
    #[cfg(feature = "parallel")]
    if threads() > 1 && a.len() > chunk_a {
        use rayon::prelude::*;
        PAR_REGIONS.fetch_add(1, Ordering::Relaxed);
        a.par_chunks_mut(chunk_a)
            .zip(b.par_chunks_mut(chunk_b))
            .enumerate()
            .for_each(|(i, (ca, cb))| op(i, ca, cb));
        return;
    }
    for (i, (ca, cb)) in a.chunks_mut(chunk_a).zip(b.chunks_mut(chunk_b)).enumerate() {
        op(i, ca, cb);
    }
}

/// Evaluate `f(0..n)` in parallel, returning results in index order.
pub fn map_collect<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    #[cfg(feature = "parallel")]
    if threads() > 1 && n > 1 {
        use rayon::prelude::*;
        PAR_REGIONS.fetch_add(1, Ordering::Relaxed);
        return (0..n).into_par_iter().map(f).collect();
    }
    (0..n).map(f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_index_mapping_is_stable() {
        let mut data = vec![0usize; 23];
        for_each_chunk_mut(&mut data, 5, |i, chunk| {
            for (j, x) in chunk.iter_mut().enumerate() {
                *x = i * 5 + j;
            }
        });
        assert_eq!(data, (0..23).collect::<Vec<_>>());
    }

    #[test]
    fn zip_chunks_pair_up() {
        let mut a = vec![0u32; 9];
        let mut b = vec![0u32; 6];
        for_each_zip_chunks_mut(&mut a, 3, &mut b, 2, |i, ca, cb| {
            ca.iter_mut().for_each(|x| *x = i as u32);
            cb.iter_mut().for_each(|x| *x = 10 + i as u32);
        });
        assert_eq!(a, vec![0, 0, 0, 1, 1, 1, 2, 2, 2]);
        assert_eq!(b, vec![10, 10, 11, 11, 12, 12]);
    }

    #[test]
    fn map_collect_is_ordered() {
        let out = map_collect(17, |i| i * 3);
        assert_eq!(out, (0..17).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn intra_op_threads_compose_with_learners() {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        assert_eq!(intra_op_threads_for(1), cores);
        assert_eq!(intra_op_threads_for(cores * 2), 1);
        assert!(intra_op_threads_for(2) >= 1);
    }

    #[test]
    fn configure_records_request() {
        configure_threads(3);
        assert_eq!(requested_threads(), 3);
        assert!(threads() >= 1);
        configure_threads(0);
    }
}

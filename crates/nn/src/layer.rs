//! The [`Layer`] trait: forward/backward, flat parameter access, FLOP model.

use sasgd_tensor::{SeedRng, Tensor};

/// Per-pass context threaded through the forward pass.
///
/// Carries the training/eval flag (dropout behaves differently) and the RNG
/// stream that makes dropout masks reproducible per learner.
pub struct Ctx {
    /// `true` during training (dropout active), `false` at evaluation.
    pub training: bool,
    /// Deterministic RNG for stochastic layers.
    pub rng: SeedRng,
}

impl Ctx {
    /// Training-mode context.
    pub fn train(rng: SeedRng) -> Self {
        Ctx {
            training: true,
            rng,
        }
    }

    /// Evaluation-mode context (dropout disabled; RNG unused).
    pub fn eval() -> Self {
        Ctx {
            training: false,
            rng: SeedRng::new(0),
        }
    }
}

/// One differentiable layer.
///
/// Layers own their parameters, their parameter gradients (accumulated
/// across `backward` calls until [`Layer::zero_grads`]), and whatever
/// activations they must cache between `forward` and `backward`.
///
/// Shapes use *per-sample* dimensions (the batch axis is implicit and
/// dynamic): a conv layer maps `[ci, h, w] -> [co, oh, ow]`, a linear layer
/// maps `[..., in] -> [..., out]`.
pub trait Layer: Send {
    /// Human-readable layer name for model summaries.
    fn name(&self) -> &'static str;

    /// Forward pass over a batch. Consumes the input (layers that need it
    /// for backward cache it internally).
    fn forward(&mut self, input: Tensor, ctx: &mut Ctx) -> Tensor;

    /// Backward pass: receives `dL/d(output)`, returns `dL/d(input)`, and
    /// *accumulates* parameter gradients internally.
    fn backward(&mut self, grad_out: Tensor) -> Tensor;

    /// Number of learnable scalars.
    fn param_len(&self) -> usize {
        0
    }

    /// Copy parameters into `out` (length exactly [`Layer::param_len`]).
    fn read_params(&self, _out: &mut [f32]) {}

    /// Overwrite parameters from `src` (length exactly [`Layer::param_len`]).
    fn write_params(&mut self, _src: &[f32]) {}

    /// Copy accumulated gradients into `out`.
    fn read_grads(&self, _out: &mut [f32]) {}

    /// Reset accumulated gradients to zero.
    fn zero_grads(&mut self) {}

    /// Per-sample output dimensions given per-sample input dimensions.
    fn out_shape(&self, in_dims: &[usize]) -> Vec<usize>;

    /// Forward multiply–accumulates for one sample with the given
    /// per-sample input dimensions. Element-wise layers report their element
    /// count; parameter-free reshapes report zero.
    fn macs(&self, in_dims: &[usize]) -> u64;
}

/// Batch a per-sample shape into full tensor dims.
pub fn with_batch(n: usize, per_sample: &[usize]) -> Vec<usize> {
    let mut d = Vec::with_capacity(per_sample.len() + 1);
    d.push(n);
    d.extend_from_slice(per_sample);
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_modes() {
        let t = Ctx::train(SeedRng::new(1));
        assert!(t.training);
        let e = Ctx::eval();
        assert!(!e.training);
    }

    #[test]
    fn with_batch_prepends() {
        assert_eq!(with_batch(4, &[3, 32, 32]), vec![4, 3, 32, 32]);
        assert_eq!(with_batch(1, &[]), vec![1]);
    }
}

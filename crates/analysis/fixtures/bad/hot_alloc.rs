// virtual-path: crates/tensor/src/fixture_hot.rs
// BAD: heap allocation inside a `// hot-path` function — these run once
// per minibatch and must draw from the Workspace arena.

// hot-path
pub fn conv_inner(x: &[f32], out: &mut [f32]) {
    let scratch = vec![0.0f32; x.len()];
    let copy = x.to_vec();
    let again = copy.clone();
    for ((o, s), c) in out.iter_mut().zip(&scratch).zip(&again) {
        *o = s + c;
    }
}

// Unannotated sibling: allocations here are fine.
pub fn conv_setup(x: &[f32]) -> Vec<f32> {
    x.to_vec()
}

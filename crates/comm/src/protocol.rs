//! Wire framing for the socket transport: length-prefixed binary frames.
//!
//! Every message crossing a socket is one frame:
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------
//!      0     4  magic      0x53_41_47_44 ("SAGD"), big-endian
//!      4     4  len        payload element count, u32 LE
//!      8     4  from       sender rank, u32 LE
//!     12     8  tag        message tag, u64 LE
//!     20  4*len payload    f32 elements, LE bit patterns
//! ```
//!
//! The magic word rejects a stranger (or a desynchronized peer) on the
//! first frame instead of interpreting garbage as a gigantic length.
//! `len` is bounded by [`MAX_FRAME_ELEMENTS`] for the same reason: a
//! corrupt header must fail parsing, not attempt a multi-terabyte
//! allocation. Floats travel as little-endian bit patterns
//! (`f32::to_le_bytes`/`from_le_bytes`), an exact round-trip — the bitwise
//! sim-vs-real equality tests depend on the wire never renormalizing a
//! payload.
//!
//! The rendezvous handshake reuses the same frame shape: the first frame
//! on a fresh connection carries [`HELLO_TAG`] and an empty payload, and
//! its `from` field tells the accepting side which rank just dialed in.

use std::io::{self, Read, Write};

/// Frame magic word (first four bytes of every frame, big-endian).
pub const MAGIC: u32 = 0x5341_4744;

/// Upper bound on payload element count (2^28 elements = 1 GiB of f32s).
/// Far above any model this repo trains, far below an allocation that a
/// corrupt length field could weaponize.
pub const MAX_FRAME_ELEMENTS: u32 = 1 << 28;

/// Tag of the rendezvous hello frame. Collective tags are
/// `(op_counter << 4) | phase`, so `u64::MAX` can never collide with one.
pub const HELLO_TAG: u64 = u64::MAX;

/// Fixed frame header size in bytes (magic + len + from + tag).
pub const HEADER_BYTES: usize = 20;

/// One decoded frame: sender rank, tag, payload.
#[derive(Clone, Debug, PartialEq)]
pub struct Frame {
    /// Sender rank.
    pub from: usize,
    /// Message tag.
    pub tag: u64,
    /// Payload elements.
    pub payload: Vec<f32>,
}

/// Serialize one frame into `w`. The payload length must not exceed
/// [`MAX_FRAME_ELEMENTS`] (returns `InvalidInput` otherwise — the caller
/// is asking for a frame the reader side would reject).
pub fn write_frame<W: Write>(w: &mut W, from: usize, tag: u64, payload: &[f32]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&n| n <= MAX_FRAME_ELEMENTS)
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("payload of {} elements exceeds frame bound", payload.len()),
            )
        })?;
    let mut buf = Vec::with_capacity(HEADER_BYTES + payload.len() * 4);
    buf.extend_from_slice(&MAGIC.to_be_bytes());
    buf.extend_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(&(from as u32).to_le_bytes());
    buf.extend_from_slice(&tag.to_le_bytes());
    for v in payload {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    // One write call per frame: the header and payload must land as a unit
    // so a concurrent reader never observes a torn prefix.
    w.write_all(&buf)
}

/// Read one frame from `r`. `Ok(None)` is a clean end-of-stream (the peer
/// shut the connection down at a frame boundary); an EOF mid-frame, a bad
/// magic word, or an oversized length are `Err`.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Frame>> {
    let mut header = [0u8; HEADER_BYTES];
    // Distinguish clean EOF (zero bytes of a new frame) from truncation.
    let mut filled = 0usize;
    while filled < HEADER_BYTES {
        match r.read(&mut header[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-header",
                ))
            }
            n => filled += n,
        }
    }
    let magic = u32::from_be_bytes(header[0..4].try_into().expect("4-byte slice"));
    if magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad frame magic {magic:#010x}"),
        ));
    }
    let len = u32::from_le_bytes(header[4..8].try_into().expect("4-byte slice"));
    if len > MAX_FRAME_ELEMENTS {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds bound"),
        ));
    }
    let from = u32::from_le_bytes(header[8..12].try_into().expect("4-byte slice")) as usize;
    let tag = u64::from_le_bytes(header[12..20].try_into().expect("8-byte slice"));
    let mut bytes = vec![0u8; len as usize * 4];
    r.read_exact(&mut bytes)?;
    let payload = bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("4-byte chunk")))
        .collect();
    Ok(Some(Frame { from, tag, payload }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trip_preserves_bits() {
        let payload = vec![0.0f32, -0.0, 1.5, f32::MIN_POSITIVE, f32::NAN, -1e30];
        let mut wire = Vec::new();
        write_frame(&mut wire, 3, 0x1234_5678_9abc_def0, &payload).expect("write");
        let frame = read_frame(&mut Cursor::new(&wire))
            .expect("read")
            .expect("frame");
        assert_eq!(frame.from, 3);
        assert_eq!(frame.tag, 0x1234_5678_9abc_def0);
        assert_eq!(frame.payload.len(), payload.len());
        for (a, b) in frame.payload.iter().zip(&payload) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn multiple_frames_stream_back_to_back() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 0, 1, &[1.0]).expect("write");
        write_frame(&mut wire, 1, 2, &[]).expect("write");
        write_frame(&mut wire, 2, 3, &[3.0, 4.0]).expect("write");
        let mut cur = Cursor::new(&wire);
        let a = read_frame(&mut cur).expect("read").expect("frame");
        let b = read_frame(&mut cur).expect("read").expect("frame");
        let c = read_frame(&mut cur).expect("read").expect("frame");
        assert_eq!((a.from, a.tag, a.payload.len()), (0, 1, 1));
        assert_eq!((b.from, b.tag, b.payload.len()), (1, 2, 0));
        assert_eq!((c.from, c.tag, c.payload), (2, 3, vec![3.0, 4.0]));
        assert!(read_frame(&mut cur).expect("clean eof").is_none());
    }

    #[test]
    fn clean_eof_is_none_mid_header_is_error() {
        let mut empty = Cursor::new(Vec::<u8>::new());
        assert!(read_frame(&mut empty).expect("eof").is_none());
        let mut wire = Vec::new();
        write_frame(&mut wire, 0, 1, &[1.0]).expect("write");
        wire.truncate(HEADER_BYTES - 3);
        assert!(read_frame(&mut Cursor::new(&wire)).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 0, 1, &[]).expect("write");
        wire[0] ^= 0xff;
        assert!(read_frame(&mut Cursor::new(&wire)).is_err());
    }

    #[test]
    fn oversized_length_rejected_without_allocating() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&MAGIC.to_be_bytes());
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        wire.extend_from_slice(&0u32.to_le_bytes());
        wire.extend_from_slice(&0u64.to_le_bytes());
        assert!(read_frame(&mut Cursor::new(&wire)).is_err());
    }

    #[test]
    fn truncated_payload_is_error() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 0, 1, &[1.0, 2.0]).expect("write");
        wire.truncate(wire.len() - 4);
        assert!(read_frame(&mut Cursor::new(&wire)).is_err());
    }
}

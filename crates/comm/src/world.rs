//! Rank-to-rank message passing over crossbeam channels.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};

/// A point-to-point message: payload plus matching metadata.
struct Message {
    from: usize,
    tag: u64,
    payload: Vec<f32>,
}

/// Aggregate traffic counters for a world, shared by all ranks.
#[derive(Default)]
pub struct Traffic {
    /// Total `f32` elements sent point-to-point.
    pub elements: AtomicU64,
    /// Total messages sent.
    pub messages: AtomicU64,
}

impl Traffic {
    /// Elements sent so far.
    pub fn elements_sent(&self) -> u64 {
        self.elements.load(Ordering::Relaxed)
    }

    /// Messages sent so far.
    pub fn messages_sent(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }
}

/// A communication group of `size` ranks (MPI_COMM_WORLD analogue).
pub struct CommWorld {
    senders: Vec<Sender<Message>>,
    receivers: Vec<Option<Receiver<Message>>>,
    traffic: Arc<Traffic>,
}

impl CommWorld {
    /// Create a world with `size` ranks.
    ///
    /// # Panics
    /// Panics if `size == 0`.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "world needs at least one rank");
        let mut senders = Vec::with_capacity(size);
        let mut receivers = Vec::with_capacity(size);
        for _ in 0..size {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(Some(rx));
        }
        CommWorld {
            senders,
            receivers,
            traffic: Arc::new(Traffic::default()),
        }
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.senders.len()
    }

    /// Shared traffic counters.
    pub fn traffic(&self) -> Arc<Traffic> {
        Arc::clone(&self.traffic)
    }

    /// Take the per-rank endpoints (callable once; each goes to one thread).
    ///
    /// # Panics
    /// Panics on a second call.
    pub fn communicators(&mut self) -> Vec<Communicator> {
        let size = self.size();
        (0..size)
            .map(|rank| Communicator {
                rank,
                size,
                senders: self.senders.clone(),
                receiver: self.receivers[rank]
                    .take()
                    .expect("communicators() may only be called once"),
                pending: HashMap::new(),
                op_counter: 0,
                traffic: Arc::clone(&self.traffic),
            })
            .collect()
    }
}

/// One rank's endpoint: send to any rank, receive matched by (from, tag).
pub struct Communicator {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Message>>,
    receiver: Receiver<Message>,
    /// Out-of-order arrivals parked until a matching `recv`.
    pending: HashMap<(usize, u64), VecDeque<Vec<f32>>>,
    /// Collective sequence number; all ranks call collectives in the same
    /// order, so equal counters identify the same operation.
    op_counter: u64,
    traffic: Arc<Traffic>,
}

impl Communicator {
    /// This endpoint's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Send `payload` to `dst` with a `tag` (non-blocking; channels are
    /// unbounded).
    pub fn send(&self, dst: usize, tag: u64, payload: Vec<f32>) {
        self.traffic
            .elements
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        self.traffic.messages.fetch_add(1, Ordering::Relaxed);
        self.senders[dst]
            .send(Message {
                from: self.rank,
                tag,
                payload,
            })
            .expect("peer rank hung up");
    }

    /// Blocking receive matched on `(src, tag)`; unrelated messages are
    /// parked for later matching (MPI-style tag matching).
    pub fn recv(&mut self, src: usize, tag: u64) -> Vec<f32> {
        if let Some(q) = self.pending.get_mut(&(src, tag)) {
            if let Some(m) = q.pop_front() {
                return m;
            }
        }
        loop {
            let msg = self.receiver.recv().expect("world dropped while receiving");
            if msg.from == src && msg.tag == tag {
                return msg.payload;
            }
            self.pending
                .entry((msg.from, msg.tag))
                .or_default()
                .push_back(msg.payload);
        }
    }

    /// Next collective sequence number (advances the counter).
    pub fn next_op(&mut self) -> u64 {
        let op = self.op_counter;
        self.op_counter += 1;
        op
    }

    /// Shared traffic counters.
    pub fn traffic(&self) -> &Traffic {
        &self.traffic
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn ping_pong() {
        let mut world = CommWorld::new(2);
        let mut comms = world.communicators();
        let c1 = comms.pop().expect("rank 1");
        let mut c0 = comms.pop().expect("rank 0");
        let t = thread::spawn(move || {
            let mut c1 = c1;
            let v = c1.recv(0, 7);
            c1.send(0, 8, v.iter().map(|x| x * 2.0).collect());
        });
        c0.send(1, 7, vec![1.0, 2.0]);
        let back = c0.recv(1, 8);
        assert_eq!(back, vec![2.0, 4.0]);
        t.join().expect("peer thread");
    }

    #[test]
    fn out_of_order_matching() {
        let mut world = CommWorld::new(2);
        let mut comms = world.communicators();
        let c1 = comms.pop().expect("rank 1");
        let mut c0 = comms.pop().expect("rank 0");
        let t = thread::spawn(move || {
            let c1 = c1;
            // Send tag 2 first, then tag 1.
            c1.send(0, 2, vec![2.0]);
            c1.send(0, 1, vec![1.0]);
        });
        t.join().expect("peer thread");
        // Receive in the opposite order.
        assert_eq!(c0.recv(1, 1), vec![1.0]);
        assert_eq!(c0.recv(1, 2), vec![2.0]);
    }

    #[test]
    fn fifo_within_same_tag() {
        let mut world = CommWorld::new(2);
        let mut comms = world.communicators();
        let c1 = comms.pop().expect("rank 1");
        let mut c0 = comms.pop().expect("rank 0");
        c1.send(0, 5, vec![1.0]);
        c1.send(0, 5, vec![2.0]);
        // Force both into the pending map by receiving another tag after.
        c1.send(0, 9, vec![9.0]);
        assert_eq!(c0.recv(1, 9), vec![9.0]);
        assert_eq!(c0.recv(1, 5), vec![1.0]);
        assert_eq!(c0.recv(1, 5), vec![2.0]);
    }

    #[test]
    fn traffic_is_counted() {
        let mut world = CommWorld::new(2);
        let traffic = world.traffic();
        let mut comms = world.communicators();
        let c1 = comms.pop().expect("rank 1");
        let mut c0 = comms.pop().expect("rank 0");
        c1.send(0, 1, vec![0.0; 10]);
        let _ = c0.recv(1, 1);
        assert_eq!(traffic.elements_sent(), 10);
        assert_eq!(traffic.messages_sent(), 1);
    }

    #[test]
    #[should_panic(expected = "only be called once")]
    fn communicators_single_use() {
        let mut world = CommWorld::new(1);
        let _a = world.communicators();
        let _b = world.communicators();
    }
}

//! The paper's headline quantitative claims, asserted through the public
//! facade API — fast checks against the analytic models plus real-traffic
//! measurements on the thread substrate.

use sasgd::comm::collectives::allreduce_tree;
use sasgd::comm::ps::{PsConfig, PsServer};
use sasgd::comm::world::CommWorld;
use sasgd::core::epoch_time::{epoch_time, speedup_over_sequential, Aggregation, Workload};
use sasgd::core::theory::{self, ProblemConstants};
use sasgd::simnet::{CostModel, JitterModel};
use std::sync::atomic::Ordering;
use std::thread;

#[test]
fn claim_communication_complexity_measured_on_real_substrate() {
    // §III: "The amount of data transported per gradient aggregation is
    // O(m log p) in SASGD (with tree reduction allreduce) ... the amount
    // of data transported in ASGD is O(mp)."
    let m = 10_000usize;
    for p in [2usize, 4, 8] {
        // Tree allreduce: measured total = 2(p−1)·m elements.
        let mut world = CommWorld::new(p);
        let traffic = world.traffic();
        let comms = world.communicators();
        thread::scope(|s| {
            for mut c in comms {
                s.spawn(move || {
                    let mut v = vec![1.0f32; m];
                    allreduce_tree(&mut c, &mut v).expect("allreduce");
                });
            }
        });
        assert_eq!(traffic.elements_sent(), (2 * (p - 1) * m) as u64);

        // Parameter server: p learners push + pull ⇒ 2·p·m elements.
        let ps = PsServer::spawn(vec![0.0f32; m], PsConfig { shards: 2 });
        let t = ps.traffic();
        thread::scope(|s| {
            for _ in 0..p {
                let c = ps.client();
                s.spawn(move || {
                    c.push_gradient(0.1, &vec![1.0f32; m]);
                    let _ = c.pull();
                });
            }
        });
        let ps_total = t.pushed.load(Ordering::Relaxed) + t.pulled.load(Ordering::Relaxed);
        assert_eq!(ps_total, (2 * p * m) as u64);
        ps.shutdown();
    }
}

#[test]
fn claim_fig4_cifar_t_ratio_and_speedup() {
    // "SASGD with T = 50 is 1.3 times faster than with T = 1 for CIFAR-10
    // ... The speedups with 8 learners are 4.45" — shape bands.
    let cost = CostModel::paper_testbed();
    let jit = JitterModel::default();
    let w = Workload::cifar10();
    let t1 = epoch_time(&cost, &w, Aggregation::AllreduceTree, 8, 1, &jit, 1).total();
    let t50 = epoch_time(&cost, &w, Aggregation::AllreduceTree, 8, 50, &jit, 1).total();
    assert!((1.1..2.0).contains(&(t1 / t50)), "ratio {}", t1 / t50);
    let sp = speedup_over_sequential(&cost, &w, Aggregation::AllreduceTree, 8, 50, &jit, 1);
    assert!((3.0..8.0).contains(&sp), "speedup {sp}");
}

#[test]
fn claim_fig5_nlc_t_amortization_dominates() {
    // "...and is 9.7 times faster for NLC-F" — communication-bound
    // workloads gain far more from T than compute-bound ones.
    let cost = CostModel::paper_testbed();
    let jit = JitterModel::default();
    let nlc = Workload::nlc_f();
    let cifar = Workload::cifar10();
    let ratio = |w: &Workload| {
        epoch_time(&cost, w, Aggregation::AllreduceTree, 8, 1, &jit, 1).total()
            / epoch_time(&cost, w, Aggregation::AllreduceTree, 8, 50, &jit, 1).total()
    };
    let (rn, rc) = (ratio(&nlc), ratio(&cifar));
    assert!(rn > 2.0 * rc, "NLC ratio {rn} must dwarf CIFAR ratio {rc}");
}

#[test]
fn claim_theorem1_worked_example() {
    // "when p = 32, α is roughly 16 ... the convergence guarantee between
    // SGD and ASGD with p = 32 can differ by 2."
    let gap = theory::theorem1_gap(32, 16.0);
    assert!((1.5..3.0).contains(&gap), "gap {gap}");
}

#[test]
fn claim_alpha_sixteen_for_50_epochs_of_cifar() {
    // §II-B computes α ≈ 16 for 50 epochs of CIFAR-10 updates with the
    // constants they estimated. Reconstruct with M·K = 50 · 50 000 and
    // constants in the plausible range the paper implies.
    // The paper never publishes its estimated L/σ²; these are in the
    // plausible range (Df = initial CE loss ln(10) ≈ 2.3, L and σ² of the
    // same order our estimator measures on the synthetic workload).
    let c = ProblemConstants {
        df: 2.3,
        l: 10.0,
        sigma2: 10.0,
    };
    let m = 64usize;
    let k = 50 * 50_000 / m;
    let a = theory::alpha(&c, m, k);
    assert!((8.0..32.0).contains(&a), "α {a} should be O(16)");
}

#[test]
fn claim_asymptotic_rate_is_one_over_sqrt_s() {
    // Corollary 3: quadrupling S halves the guarantee.
    let c = ProblemConstants {
        df: 2.0,
        l: 10.0,
        sigma2: 1.0,
    };
    let g1 = theory::corollary3_guarantee(&c, 1e6);
    let g4 = theory::corollary3_guarantee(&c, 4e6);
    assert!((g1 / g4 - 2.0).abs() < 1e-9);
}

#[test]
fn claim_optimal_t_exists() {
    // §III-B: "there is an optimal T for a specific application in terms
    // of the wall-clock time needed to reach convergence." Combine the
    // epoch-time model (time per epoch falls with T) with Theorem 4's
    // sample-complexity bound (epochs needed grow with T): the product has
    // an interior minimum over a wide T range.
    let cost = CostModel::paper_testbed();
    let jit = JitterModel::default();
    let w = Workload::nlc_f();
    let c = ProblemConstants {
        df: 2.0,
        l: 10.0,
        sigma2: 1.0,
    };
    let p = 8;
    let s = 1.0e7;
    let wall = |t: usize| -> f64 {
        let per_epoch = epoch_time(&cost, &w, Aggregation::AllreduceTree, p, t, &jit, 1).total();
        // Epochs needed scale with the bound (worse bound ⇒ proportionally
        // more samples to reach the same guarantee).
        let bound = theory::sasgd_best_bound_fixed_s(&c, 16, t, p, s);
        per_epoch * bound
    };
    let ts = [1usize, 2, 5, 10, 25, 50, 100, 400];
    let times: Vec<f64> = ts.iter().map(|&t| wall(t)).collect();
    let best = times
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .expect("nonempty")
        .0;
    assert!(
        best > 0 && best < ts.len() - 1,
        "optimal T must be interior: best index {best} ({:?})",
        times
    );
}

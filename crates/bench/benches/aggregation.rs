//! Ablation bench: allreduce aggregation vs parameter-server push/pull
//! (DESIGN.md §5, item 2 — the paper's central communication claim) and
//! single vs sharded server (item 5), over real threads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sasgd_comm::collectives::allreduce_tree;
use sasgd_comm::ps::{PsConfig, PsServer};
use sasgd_comm::world::CommWorld;
use std::thread;

/// Every learner contributes one gradient and ends with fresh parameters.
fn aggregate_allreduce(p: usize, m: usize) {
    let mut world = CommWorld::new(p);
    let comms = world.communicators();
    thread::scope(|s| {
        for mut c in comms {
            s.spawn(move || {
                let mut gs = vec![1.0f32; m];
                allreduce_tree(&mut c, &mut gs).expect("allreduce");
            });
        }
    });
}

fn aggregate_ps(p: usize, m: usize, shards: usize) {
    let ps = PsServer::spawn(vec![0.0f32; m], PsConfig { shards });
    thread::scope(|s| {
        for _ in 0..p {
            let client = ps.client();
            s.spawn(move || {
                client.push_gradient(0.1, &vec![1.0f32; m]);
                let _params = client.pull();
            });
        }
    });
    ps.shutdown();
}

fn bench_aggregation(c: &mut Criterion) {
    let mut g = c.benchmark_group("aggregation");
    g.sample_size(10);
    let m = 506_378; // the CIFAR-10 model size
    for &p in &[2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::new("allreduce", p), &p, |b, &p| {
            b.iter(|| aggregate_allreduce(p, m))
        });
        g.bench_with_input(BenchmarkId::new("ps_1shard", p), &p, |b, &p| {
            b.iter(|| aggregate_ps(p, m, 1))
        });
        g.bench_with_input(BenchmarkId::new("ps_4shards", p), &p, |b, &p| {
            b.iter(|| aggregate_ps(p, m, 4))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_aggregation);
criterion_main!(benches);

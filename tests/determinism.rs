//! Reproducibility: every algorithm is a pure function of its seed.

use sasgd::core::algorithms::GammaP;
use sasgd::core::{train, Algorithm, History, TSchedule, TrainConfig};
use sasgd::data::cifar_like::{generate, CifarLikeConfig};
use sasgd::nn::models;
use sasgd::tensor::SeedRng;

fn run(algo: &Algorithm, seed: u64) -> History {
    let (train_set, test_set) = generate(&CifarLikeConfig::tiny(96, 24, 3));
    let cfg = TrainConfig::new(3, 8, 0.05, seed);
    let mut f = || models::tiny_cnn(3, &mut SeedRng::new(11));
    train(&mut f, &train_set, &test_set, algo, &cfg)
}

fn algos() -> Vec<Algorithm> {
    vec![
        Algorithm::Sequential,
        Algorithm::Sasgd {
            p: 4,
            t: 3,
            gamma_p: GammaP::OverP,
            compression: None,
        },
        Algorithm::Downpour {
            p: 4,
            t: 2,
            staleness_gamma: false,
        },
        Algorithm::Eamsgd {
            p: 4,
            t: 2,
            moving_rate: None,
            momentum: 0.5,
            staleness_gamma: false,
        },
        Algorithm::LocalSgd {
            p: 4,
            schedule: TSchedule::AdaptivePlateau {
                t0: 2,
                t_max: 8,
                patience: 1,
                rel_improve: 0.2,
            },
        },
        Algorithm::DelayedAvg { p: 4, t: 2 },
        Algorithm::ModelAverageOnce { p: 4 },
    ]
}

#[test]
fn identical_seed_identical_history() {
    for algo in algos() {
        let a = run(&algo, 77);
        let b = run(&algo, 77);
        assert_eq!(a.records.len(), b.records.len(), "{}", algo.label());
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(
                x.train_loss.to_bits(),
                y.train_loss.to_bits(),
                "{}",
                algo.label()
            );
            assert_eq!(
                x.test_acc.to_bits(),
                y.test_acc.to_bits(),
                "{}",
                algo.label()
            );
            assert_eq!(x.compute_seconds.to_bits(), y.compute_seconds.to_bits());
            assert_eq!(x.comm_seconds.to_bits(), y.comm_seconds.to_bits());
        }
    }
}

#[test]
fn different_seed_different_trajectory() {
    for algo in algos() {
        let a = run(&algo, 1);
        let b = run(&algo, 2);
        let same = a
            .records
            .iter()
            .zip(&b.records)
            .all(|(x, y)| x.train_loss == y.train_loss);
        assert!(
            !same,
            "{}: seeds 1 and 2 gave identical losses",
            algo.label()
        );
    }
}

#[test]
fn virtual_time_is_monotone_and_positive() {
    for algo in algos() {
        let h = run(&algo, 5);
        let mut prev = 0.0f64;
        for r in &h.records {
            let total = r.compute_seconds + r.comm_seconds;
            assert!(total >= prev, "{}: time went backwards", algo.label());
            assert!(r.compute_seconds > 0.0, "{}: no compute time", algo.label());
            prev = total;
        }
    }
}

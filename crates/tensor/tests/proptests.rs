//! Property-based tests for the tensor kernels: algebraic identities that
//! must hold for arbitrary shapes and data.

use proptest::prelude::*;
use sasgd_tensor::conv::{
    col2im, col2im_batch, conv2d_backward, conv2d_backward_ws, conv2d_forward, conv2d_forward_ws,
    im2col, im2col_batch, im2col_ref, Conv2dSpec,
};
use sasgd_tensor::pool::{maxpool2d_backward, maxpool2d_forward, Pool2dSpec};
use sasgd_tensor::shape::{conv_out, pool_out};
use sasgd_tensor::{linalg, parallel, SeedRng, Tensor, Workspace};

fn rand_tensor(dims: &[usize], seed: u64) -> Tensor {
    SeedRng::new(seed).normal_tensor(dims, 1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matmul_parallel_is_bitwise_equal(
        m in 1usize..200, k in 1usize..20, n in 1usize..20, seed in 0u64..1000
    ) {
        let a = rand_tensor(&[m, k], seed);
        let b = rand_tensor(&[k, n], seed + 1);
        let s = linalg::matmul(&a, &b);
        let p = linalg::matmul_par(&a, &b);
        let auto = linalg::matmul_auto(&a, &b);
        prop_assert_eq!(s.as_slice(), p.as_slice());
        prop_assert_eq!(s.as_slice(), auto.as_slice());
    }

    #[test]
    fn matmul_tn_parallel_is_bitwise_equal(
        k in 1usize..20, m in 1usize..200, n in 1usize..20, seed in 0u64..1000
    ) {
        let a = rand_tensor(&[k, m], seed);
        let b = rand_tensor(&[k, n], seed + 1);
        let s = linalg::matmul_tn(&a, &b);
        let p = linalg::matmul_tn_par(&a, &b);
        let auto = linalg::matmul_tn_auto(&a, &b);
        prop_assert_eq!(s.as_slice(), p.as_slice());
        prop_assert_eq!(s.as_slice(), auto.as_slice());
    }

    #[test]
    fn matmul_nt_parallel_is_bitwise_equal(
        m in 1usize..200, k in 1usize..20, n in 1usize..20, seed in 0u64..1000
    ) {
        let a = rand_tensor(&[m, k], seed);
        let b = rand_tensor(&[n, k], seed + 1);
        let s = linalg::matmul_nt(&a, &b);
        let p = linalg::matmul_nt_par(&a, &b);
        let auto = linalg::matmul_nt_auto(&a, &b);
        prop_assert_eq!(s.as_slice(), p.as_slice());
        prop_assert_eq!(s.as_slice(), auto.as_slice());
    }

    #[test]
    fn conv_forward_is_bitwise_serial_reference(
        n in 1usize..5, ci in 1usize..4, co in 1usize..8,
        kside in 1usize..4, side in 4usize..10, pad in 0usize..2,
        seed in 0u64..1000,
    ) {
        // The batch-parallel conv must match a straight-line serial
        // reference with the kernel's exact accumulation order: per image,
        // out[co][pix] = dot(weight[co], cols[pix]) then + bias[co].
        let spec = Conv2dSpec { ci, co, kh: kside, kw: kside, stride: 1, pad };
        let input = rand_tensor(&[n, ci, side, side], seed);
        let weight = rand_tensor(&[co, spec.patch_len()], seed + 1);
        let bias: Vec<f32> = (0..co).map(|c| c as f32 * 0.1 - 0.2).collect();
        let out = conv2d_forward(&input, &weight, &bias, &spec);

        let (oh, ow) = spec.out_hw(side, side);
        let plen = spec.patch_len();
        let in_stride = ci * side * side;
        let mut expect = Vec::with_capacity(n * co * oh * ow);
        for img in 0..n {
            let cols = im2col(
                &input.as_slice()[img * in_stride..(img + 1) * in_stride],
                ci, side, side, &spec,
            );
            for (wrow, &b) in weight.as_slice().chunks(plen).zip(&bias) {
                for pix in 0..oh * ow {
                    let patch = &cols.as_slice()[pix * plen..(pix + 1) * plen];
                    let mut v = linalg::dot(wrow, patch);
                    v += b;
                    expect.push(v);
                }
            }
        }
        prop_assert_eq!(out.as_slice(), &expect[..]);
    }

    #[test]
    fn matmul_distributes_over_addition(
        m in 1usize..10, k in 1usize..10, n in 1usize..10, seed in 0u64..1000
    ) {
        let a = rand_tensor(&[m, k], seed);
        let b1 = rand_tensor(&[k, n], seed + 1);
        let mut b2 = rand_tensor(&[k, n], seed + 2);
        // A(B1+B2) == AB1 + AB2 (within fp tolerance).
        let mut sum_b = b1.clone();
        sum_b.add_assign(&b2);
        let lhs = linalg::matmul(&a, &sum_b);
        let mut rhs = linalg::matmul(&a, &b1);
        rhs.add_assign(&linalg::matmul(&a, &b2));
        prop_assert!(lhs.allclose(&rhs, 1e-3));
        b2.zero_();
        prop_assert_eq!(b2.sum(), 0.0);
    }

    #[test]
    fn matmul_identity_neutral(m in 1usize..12, n in 1usize..12, seed in 0u64..1000) {
        let a = rand_tensor(&[m, n], seed);
        prop_assert!(linalg::matmul(&a, &Tensor::eye(n)).allclose(&a, 1e-5));
        prop_assert!(linalg::matmul(&Tensor::eye(m), &a).allclose(&a, 1e-5));
    }

    #[test]
    fn transpose_kernels_agree(m in 1usize..8, k in 1usize..8, n in 1usize..8, seed in 0u64..1000) {
        // (A^T)^T B  via matmul_tn on A^T equals plain A·B.
        let a = rand_tensor(&[m, k], seed);
        let b = rand_tensor(&[k, n], seed + 1);
        let mut at = Tensor::zeros(&[k, m]);
        for i in 0..m {
            for j in 0..k {
                at.as_mut_slice()[j * m + i] = a.as_slice()[i * k + j];
            }
        }
        let via_tn = linalg::matmul_tn(&at, &b);
        let plain = linalg::matmul(&a, &b);
        prop_assert!(via_tn.allclose(&plain, 1e-4));
        // A·B^T via matmul_nt on B^T equals plain.
        let mut bt = Tensor::zeros(&[n, k]);
        for i in 0..k {
            for j in 0..n {
                bt.as_mut_slice()[j * k + i] = b.as_slice()[i * n + j];
            }
        }
        let via_nt = linalg::matmul_nt(&a, &bt);
        prop_assert!(via_nt.allclose(&plain, 1e-4));
    }

    #[test]
    fn conv_is_linear_in_input(
        h in 4usize..9, w in 4usize..9, pad in 0usize..2, seed in 0u64..500
    ) {
        let spec = Conv2dSpec { ci: 2, co: 3, kh: 3, kw: 3, stride: 1, pad };
        if h + 2 * pad < 3 || w + 2 * pad < 3 {
            return Ok(());
        }
        let x1 = rand_tensor(&[1, 2, h, w], seed);
        let x2 = rand_tensor(&[1, 2, h, w], seed + 1);
        let weight = rand_tensor(&[3, spec.patch_len()], seed + 2);
        let zeros = vec![0.0f32; 3];
        let mut sum_x = x1.clone();
        sum_x.add_assign(&x2);
        let lhs = conv2d_forward(&sum_x, &weight, &zeros, &spec);
        let mut rhs = conv2d_forward(&x1, &weight, &zeros, &spec);
        rhs.add_assign(&conv2d_forward(&x2, &weight, &zeros, &spec));
        prop_assert!(lhs.allclose(&rhs, 1e-3));
    }

    #[test]
    fn conv_1x1_is_channel_mixing(h in 2usize..6, w in 2usize..6, seed in 0u64..500) {
        // A 1×1 conv is a per-pixel linear map over channels.
        let spec = Conv2dSpec { ci: 2, co: 2, kh: 1, kw: 1, stride: 1, pad: 0 };
        let x = rand_tensor(&[1, 2, h, w], seed);
        let weight = rand_tensor(&[2, 2], seed + 1);
        let bias = vec![0.1f32, -0.2];
        let out = conv2d_forward(&x, &weight, &bias, &spec);
        for y in 0..h {
            for xx in 0..w {
                for (co, &b) in bias.iter().enumerate() {
                    let expect = weight.as_slice()[co * 2] * x.at4(0, 0, y, xx)
                        + weight.as_slice()[co * 2 + 1] * x.at4(0, 1, y, xx)
                        + b;
                    prop_assert!((out.at4(0, co, y, xx) - expect).abs() < 1e-4);
                }
            }
        }
    }

    #[test]
    fn im2col_rows_are_real_patches(h in 3usize..7, w in 3usize..7, seed in 0u64..500) {
        let spec = Conv2dSpec { ci: 1, co: 1, kh: 2, kw: 2, stride: 1, pad: 0 };
        let x = rand_tensor(&[1, 1, h, w], seed);
        let cols = im2col(x.as_slice(), 1, h, w, &spec);
        let (oh, ow) = spec.out_hw(h, w);
        for oy in 0..oh {
            for ox in 0..ow {
                let row = &cols.as_slice()[(oy * ow + ox) * 4..(oy * ow + ox) * 4 + 4];
                prop_assert_eq!(row[0], x.at4(0, 0, oy, ox));
                prop_assert_eq!(row[3], x.at4(0, 0, oy + 1, ox + 1));
            }
        }
    }

    #[test]
    fn maxpool_dominates_every_window_element(
        h in 2usize..8, w in 2usize..8, seed in 0u64..500
    ) {
        let x = rand_tensor(&[1, 1, h, w], seed);
        let f = maxpool2d_forward(&x, &Pool2dSpec::square(2));
        let (oh, ow) = Pool2dSpec::square(2).out_hw(h, w);
        for oy in 0..oh {
            for ox in 0..ow {
                let m = f.output.at4(0, 0, oy, ox);
                for ky in 0..2 {
                    for kx in 0..2 {
                        prop_assert!(m >= x.at4(0, 0, 2 * oy + ky, 2 * ox + kx));
                    }
                }
            }
        }
    }

    #[test]
    fn shape_formulas_are_consistent(input in 1usize..64, k in 1usize..6, s in 1usize..4) {
        // Padding with k-1 always admits the kernel; output is positive and
        // non-increasing in stride.
        let pad = k - 1;
        let o1 = conv_out(input, k, 1, pad);
        prop_assert!(o1 >= input, "full padding never shrinks below input");
        let os = conv_out(input, k, s, pad);
        prop_assert!(os >= 1 && os <= o1);
        if input >= k {
            let p1 = pool_out(input, k, s);
            prop_assert!(p1 >= 1);
        }
    }

    #[test]
    fn axpy_and_scale_algebra(n in 1usize..50, alpha in -2.0f32..2.0, seed in 0u64..500) {
        let a = rand_tensor(&[n], seed);
        let b = rand_tensor(&[n], seed + 1);
        // a + α·b computed two ways.
        let mut lhs = a.clone();
        lhs.axpy(alpha, &b);
        let mut scaled = b.clone();
        scaled.scale(alpha);
        let mut rhs = a.clone();
        rhs.add_assign(&scaled);
        prop_assert!(lhs.allclose(&rhs, 1e-5));
    }

    #[test]
    fn im2col_batch_matches_per_image_loop(
        n in 1usize..5, ci in 1usize..4, kside in 1usize..4,
        side in 3usize..9, pad in 0usize..3, stride in 1usize..3,
        seed in 0u64..1000,
    ) {
        let spec = Conv2dSpec { ci, co: 1, kh: kside, kw: kside, stride, pad };
        if side + 2 * pad < kside {
            return Ok(());
        }
        let input = rand_tensor(&[n, ci, side, side], seed);
        let batched = im2col_batch(&input, &spec);
        let (oh, ow) = spec.out_hw(side, side);
        let plen = spec.patch_len();
        let in_stride = ci * side * side;
        // Rows for image i must land exactly where the per-image loop
        // (old implementation) puts them.
        let mut expect = Vec::with_capacity(n * oh * ow * plen);
        for img in 0..n {
            let cols = im2col_ref(
                &input.as_slice()[img * in_stride..(img + 1) * in_stride],
                ci, side, side, &spec,
            );
            expect.extend_from_slice(cols.as_slice());
        }
        prop_assert_eq!(batched.as_slice(), &expect[..]);
    }

    #[test]
    fn col2im_batch_matches_per_image_loop(
        n in 1usize..5, ci in 1usize..4, kside in 1usize..4,
        side in 3usize..9, pad in 0usize..3, stride in 1usize..3,
        seed in 0u64..1000,
    ) {
        let spec = Conv2dSpec { ci, co: 1, kh: kside, kw: kside, stride, pad };
        if side + 2 * pad < kside {
            return Ok(());
        }
        let (oh, ow) = spec.out_hw(side, side);
        let plen = spec.patch_len();
        let cols = rand_tensor(&[n * oh * ow, plen], seed);
        let in_stride = ci * side * side;
        let mut batched = vec![0.0f32; n * in_stride];
        col2im_batch(cols.as_slice(), n, ci, side, side, &spec, &mut batched);
        let mut expect = vec![0.0f32; n * in_stride];
        for img in 0..n {
            let block = Tensor::from_vec(
                cols.as_slice()[img * oh * ow * plen..(img + 1) * oh * ow * plen].to_vec(),
                &[oh * ow, plen],
            );
            col2im(
                &block, ci, side, side, &spec,
                &mut expect[img * in_stride..(img + 1) * in_stride],
            );
        }
        prop_assert_eq!(&batched[..], &expect[..]);
    }

    #[test]
    fn conv_workspace_reuse_is_bitwise_fresh(
        n in 1usize..4, ci in 1usize..3, co in 1usize..5,
        side in 4usize..8, seed in 0u64..1000,
    ) {
        // Runs through a dirty, reused arena must equal fresh allocations.
        let spec = Conv2dSpec { ci, co, kh: 3, kw: 3, stride: 1, pad: 1 };
        let input = rand_tensor(&[n, ci, side, side], seed);
        let weight = rand_tensor(&[co, spec.patch_len()], seed + 1);
        let bias: Vec<f32> = (0..co).map(|c| 0.05 * c as f32).collect();
        let fresh_fwd = conv2d_forward(&input, &weight, &bias, &spec);
        let grad = rand_tensor(fresh_fwd.dims(), seed + 2);
        let fresh_bwd = conv2d_backward(&input, &weight, &grad, &spec);

        let mut ws = Workspace::new();
        for _ in 0..2 {
            let fwd = conv2d_forward_ws(&input, &weight, &bias, &spec, &mut ws);
            let bwd = conv2d_backward_ws(&input, &weight, &grad, &spec, &mut ws);
            prop_assert_eq!(fwd.as_slice(), fresh_fwd.as_slice());
            prop_assert_eq!(bwd.dinput.as_slice(), fresh_bwd.dinput.as_slice());
            prop_assert_eq!(bwd.dweight.as_slice(), fresh_bwd.dweight.as_slice());
            prop_assert_eq!(&bwd.dbias, &fresh_bwd.dbias);
            ws.recycle(fwd);
            ws.recycle(bwd.dinput);
            ws.recycle(bwd.dweight);
            ws.give_f32(bwd.dbias);
        }
    }

    #[test]
    fn argmax_is_maximal(n in 1usize..60, seed in 0u64..500) {
        let t = rand_tensor(&[n], seed);
        let i = t.argmax().expect("nonempty");
        let max = t.as_slice().iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        prop_assert_eq!(t.as_slice()[i], max);
    }
}

/// Thread-count invariance for the batch-parallel kernels: reconfigure the
/// global pool between runs and demand bitwise-equal outputs. A single
/// plain test (not a proptest case) so the global pool mutation does not
/// race other cases in this binary.
#[test]
fn kernels_are_bitwise_invariant_to_thread_count() {
    let spec = Conv2dSpec {
        ci: 3,
        co: 6,
        kh: 3,
        kw: 3,
        stride: 1,
        pad: 1,
    };
    let input = rand_tensor(&[5, 3, 9, 9], 99);
    let weight = rand_tensor(&[6, spec.patch_len()], 100);
    let bias = vec![0.1f32; 6];
    let pool = Pool2dSpec::square(2);

    let mut runs = Vec::new();
    for threads in [1usize, 4] {
        parallel::configure_threads(threads);
        let fwd = conv2d_forward(&input, &weight, &bias, &spec);
        let grad = Tensor::full(fwd.dims(), 0.5);
        let back = conv2d_backward(&input, &weight, &grad, &spec);
        let pf = maxpool2d_forward(&fwd, &pool);
        let pb = maxpool2d_backward(&pf.output, &pf.argmax, fwd.numel());
        runs.push((
            fwd.as_slice().to_vec(),
            back.dinput.as_slice().to_vec(),
            back.dweight.as_slice().to_vec(),
            back.dbias,
            pf.output.as_slice().to_vec(),
            pf.argmax,
            pb.as_slice().to_vec(),
        ));
    }
    parallel::configure_threads(0);
    assert_eq!(runs[0], runs[1], "kernel outputs changed with thread count");
}

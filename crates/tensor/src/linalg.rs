//! Matrix kernels: the workhorses behind the fully connected and
//! (via im2col) convolutional layers.
//!
//! Each GEMM has a sequential path and a parallel path (`*_par`) that
//! splits work over blocks of **independent output rows**; `*_auto` picks
//! between them by output size. Within one output element the reduction
//! always runs in ascending inner-index order with the same zero-skip, so
//! the serial, blocked-serial, and parallel kernels produce bitwise
//! identical results — the property the SASGD determinism contract needs,
//! and what the proptests in `tests/proptests.rs` check.
//!
//! The sequential GEMM is cache-blocked: `MR` rows of `A` share each
//! streamed row of `B`, and columns are walked in `NC`-wide panels so the
//! active slice of `B` stays cache-resident. Blocking changes only the
//! *visit* order of (row, column-panel) pairs, never the per-element
//! accumulation order.

use crate::parallel;
use crate::tensor::Tensor;

/// Output rows at or above this count use the parallel path in `_auto`
/// kernels (when a pool with more than one thread is active).
const PAR_THRESHOLD: usize = 64;

/// Register-block height: rows of `A` processed together, sharing each
/// streamed row of `B`.
const MR: usize = 4;

/// Column-panel width: output columns per pass, sized so one panel of
/// `C` plus a row of `B` stay in L1 (256 f32 = 1 KiB each).
const NC: usize = 256;

/// Blocked `out = A · B` on raw row-major slices for a band of rows:
/// `out: [rows, n]`, `a: [rows, k]`, `b: [k, n]`.
///
/// Per element, terms accumulate in ascending `l` with `a[i,l] == 0`
/// skipped — the same order and skip rule as the naive row kernel, so
/// results are bitwise independent of `MR`/`NC`.
fn mm_rows_blocked(out: &mut [f32], a: &[f32], b: &[f32], rows: usize, k: usize, n: usize) {
    debug_assert_eq!(out.len(), rows * n);
    debug_assert_eq!(a.len(), rows * k);
    debug_assert_eq!(b.len(), k * n);
    out.iter_mut().for_each(|x| *x = 0.0);
    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        let mut i0 = 0;
        while i0 < rows {
            let mr = MR.min(rows - i0);
            for l in 0..k {
                let brow = &b[l * n + jc..l * n + jc + nc];
                for i in i0..i0 + mr {
                    let av = a[i * k + l];
                    if av == 0.0 {
                        continue;
                    }
                    let orow = &mut out[i * n + jc..i * n + jc + nc];
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        *o += av * bv;
                    }
                }
            }
            i0 += mr;
        }
        jc += nc;
    }
}

/// `C = A · B` for `A: [m,k]`, `B: [k,n]`, sequential (cache-blocked).
///
/// # Panics
/// Panics if inner dimensions disagree or inputs are not matrices.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul inner dims {k} vs {k2}");
    let mut out = Tensor::zeros(&[m, n]);
    mm_rows_blocked(out.as_mut_slice(), a.as_slice(), b.as_slice(), m, k, n);
    out
}

/// `C = A · B`, bands of output rows distributed over the thread pool.
/// Bitwise identical to [`matmul`] at any thread count.
pub fn matmul_par(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul inner dims {k} vs {k2}");
    let mut out = Tensor::zeros(&[m, n]);
    let rows_per_band = band_rows(m);
    let ad = a.as_slice();
    let bd = b.as_slice();
    parallel::for_each_chunk_mut(out.as_mut_slice(), rows_per_band * n, |band, oband| {
        let r0 = band * rows_per_band;
        let rows = oband.len() / n;
        mm_rows_blocked(oband, &ad[r0 * k..(r0 + rows) * k], bd, rows, k, n);
    });
    out
}

/// `C = A · B` choosing the parallel path for large outputs.
pub fn matmul_auto(a: &Tensor, b: &Tensor) -> Tensor {
    if use_par(a.dims()[0]) {
        matmul_par(a, b)
    } else {
        matmul(a, b)
    }
}

/// Row of `C = Aᵀ · B`: `out_row = Σ_l a[l,i] · b[l, ·]` in ascending `l`
/// with `a[l,i] == 0` skipped — the same per-element order as the
/// `l`-outer sequential kernel.
fn tn_row(out_row: &mut [f32], a: &[f32], b: &[f32], i: usize, m: usize, k: usize, n: usize) {
    out_row.iter_mut().for_each(|x| *x = 0.0);
    for l in 0..k {
        let av = a[l * m + i];
        if av == 0.0 {
            continue;
        }
        let brow = &b[l * n..(l + 1) * n];
        for (o, &bv) in out_row.iter_mut().zip(brow) {
            *o += av * bv;
        }
    }
}

/// `C = Aᵀ · B` for `A: [k,m]`, `B: [k,n]` without materializing `Aᵀ`.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul_tn inner dims {k} vs {k2}");
    let mut out = Tensor::zeros(&[m, n]);
    let (ad, bd) = (a.as_slice(), b.as_slice());
    let od = out.as_mut_slice();
    // l-outer: stream both A and B rows once; accumulation per element is
    // ascending l, matching tn_row.
    for l in 0..k {
        let arow = &ad[l * m..(l + 1) * m];
        let brow = &bd[l * n..(l + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let orow = &mut od[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    out
}

/// `C = Aᵀ · B`, output rows distributed over the thread pool. Bitwise
/// identical to [`matmul_tn`].
pub fn matmul_tn_par(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul_tn inner dims {k} vs {k2}");
    let mut out = Tensor::zeros(&[m, n]);
    let (ad, bd) = (a.as_slice(), b.as_slice());
    parallel::for_each_chunk_mut(out.as_mut_slice(), n, |i, row| {
        tn_row(row, ad, bd, i, m, k, n);
    });
    out
}

/// `C = Aᵀ · B` choosing the parallel path for large outputs.
pub fn matmul_tn_auto(a: &Tensor, b: &Tensor) -> Tensor {
    if use_par(a.dims()[1]) {
        matmul_tn_par(a, b)
    } else {
        matmul_tn(a, b)
    }
}

/// Band of rows of `C = A · Bᵀ`: each element is a dot product in
/// ascending `l` (no zero-skip, matching [`dot`]).
pub(crate) fn nt_rows(out: &mut [f32], a: &[f32], b: &[f32], rows: usize, k: usize, n: usize) {
    debug_assert_eq!(out.len(), rows * n);
    debug_assert_eq!(a.len(), rows * k);
    debug_assert_eq!(b.len(), n * k);
    for i in 0..rows {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (j, o) in orow.iter_mut().enumerate() {
            *o = dot(arow, &b[j * k..(j + 1) * k]);
        }
    }
}

/// `C = A · Bᵀ` for `A: [m,k]`, `B: [n,k]` without materializing `Bᵀ`.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (n, k2) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul_nt inner dims {k} vs {k2}");
    let mut out = Tensor::zeros(&[m, n]);
    nt_rows(out.as_mut_slice(), a.as_slice(), b.as_slice(), m, k, n);
    out
}

/// `C = A · Bᵀ`, bands of output rows distributed over the thread pool.
/// Bitwise identical to [`matmul_nt`].
pub fn matmul_nt_par(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (n, k2) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul_nt inner dims {k} vs {k2}");
    let mut out = Tensor::zeros(&[m, n]);
    let rows_per_band = band_rows(m);
    let ad = a.as_slice();
    let bd = b.as_slice();
    parallel::for_each_chunk_mut(out.as_mut_slice(), rows_per_band * n, |band, oband| {
        let r0 = band * rows_per_band;
        let rows = oband.len() / n;
        nt_rows(oband, &ad[r0 * k..(r0 + rows) * k], bd, rows, k, n);
    });
    out
}

/// `C = A · Bᵀ` choosing the parallel path for large outputs.
pub fn matmul_nt_auto(a: &Tensor, b: &Tensor) -> Tensor {
    if use_par(a.dims()[0]) {
        matmul_nt_par(a, b)
    } else {
        matmul_nt(a, b)
    }
}

/// Rows per parallel band: enough bands to feed the pool (~4 per thread
/// for load balance), at least `MR` so the blocked kernel keeps its
/// register blocking. Band size never affects results.
fn band_rows(m: usize) -> usize {
    let target_bands = parallel::threads() * 4;
    m.div_ceil(target_bands.max(1)).max(MR)
}

fn use_par(rows: usize) -> bool {
    rows >= PAR_THRESHOLD && parallel::threads() > 1
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y[j] += sum_i m[i][j]` — column sums accumulated into `y` (bias grads).
pub fn col_sums_into(m: &Tensor, y: &mut [f32]) {
    let (rows, cols) = (m.dims()[0], m.dims()[1]);
    assert_eq!(y.len(), cols, "col_sums_into width mismatch");
    let md = m.as_slice();
    for r in 0..rows {
        for (yj, &v) in y.iter_mut().zip(&md[r * cols..(r + 1) * cols]) {
            *yj += v;
        }
    }
}

/// Add a bias row vector to every row of a matrix in place.
pub fn add_bias_rows(m: &mut Tensor, bias: &[f32]) {
    let cols = m.dims()[1];
    assert_eq!(bias.len(), cols, "bias width mismatch");
    for row in m.as_mut_slice().chunks_mut(cols) {
        for (x, &b) in row.iter_mut().zip(bias) {
            *x += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedRng;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut c = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for l in 0..k {
                    s += a.as_slice()[i * k + l] * b.as_slice()[l * n + j];
                }
                c.as_mut_slice()[i * n + j] = s;
            }
        }
        c
    }

    #[test]
    fn matmul_matches_naive() {
        let mut r = SeedRng::new(1);
        let a = r.normal_tensor(&[7, 5], 1.0);
        let b = r.normal_tensor(&[5, 9], 1.0);
        assert!(matmul(&a, &b).allclose(&naive(&a, &b), 1e-4));
    }

    #[test]
    fn blocked_kernel_handles_panel_boundaries() {
        // Shapes straddling the MR and NC block edges.
        let mut r = SeedRng::new(7);
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (5, 3, 255),
            (9, 2, 257),
            (4, 4, 512),
        ] {
            let a = r.normal_tensor(&[m, k], 1.0);
            let b = r.normal_tensor(&[k, n], 1.0);
            assert!(
                matmul(&a, &b).allclose(&naive(&a, &b), 1e-3),
                "mismatch at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn parallel_equals_sequential_bitwise() {
        let mut r = SeedRng::new(2);
        let a = r.normal_tensor(&[130, 33], 1.0);
        let b = r.normal_tensor(&[33, 21], 1.0);
        let s = matmul(&a, &b);
        let p = matmul_par(&a, &b);
        assert_eq!(
            s.as_slice(),
            p.as_slice(),
            "parallel path must be bit-identical"
        );
        assert_eq!(matmul_auto(&a, &b).as_slice(), s.as_slice());
    }

    #[test]
    fn tn_and_nt_parallel_bitwise() {
        let mut r = SeedRng::new(6);
        let a = r.normal_tensor(&[33, 130], 1.0);
        let b = r.normal_tensor(&[33, 17], 1.0);
        assert_eq!(
            matmul_tn(&a, &b).as_slice(),
            matmul_tn_par(&a, &b).as_slice()
        );
        assert_eq!(
            matmul_tn_auto(&a, &b).as_slice(),
            matmul_tn(&a, &b).as_slice()
        );
        let c = r.normal_tensor(&[130, 12], 1.0);
        let d = r.normal_tensor(&[29, 12], 1.0);
        assert_eq!(
            matmul_nt(&c, &d).as_slice(),
            matmul_nt_par(&c, &d).as_slice()
        );
        assert_eq!(
            matmul_nt_auto(&c, &d).as_slice(),
            matmul_nt(&c, &d).as_slice()
        );
    }

    #[test]
    fn tn_and_nt_match_explicit_transpose() {
        let mut r = SeedRng::new(3);
        let a = r.normal_tensor(&[6, 4], 1.0);
        let b = r.normal_tensor(&[6, 5], 1.0);
        // A^T B where A:[6,4] -> At:[4,6]
        let mut at = Tensor::zeros(&[4, 6]);
        for i in 0..6 {
            for j in 0..4 {
                at.as_mut_slice()[j * 6 + i] = a.as_slice()[i * 4 + j];
            }
        }
        assert!(matmul_tn(&a, &b).allclose(&naive(&at, &b), 1e-4));

        let c = r.normal_tensor(&[3, 4], 1.0);
        let d = r.normal_tensor(&[7, 4], 1.0);
        let mut dt = Tensor::zeros(&[4, 7]);
        for i in 0..7 {
            for j in 0..4 {
                dt.as_mut_slice()[j * 7 + i] = d.as_slice()[i * 4 + j];
            }
        }
        assert!(matmul_nt(&c, &d).allclose(&naive(&c, &dt), 1e-4));
    }

    #[test]
    fn identity_is_neutral() {
        let mut r = SeedRng::new(4);
        let a = r.normal_tensor(&[5, 5], 1.0);
        assert!(matmul(&a, &Tensor::eye(5)).allclose(&a, 1e-6));
        assert!(matmul(&Tensor::eye(5), &a).allclose(&a, 1e-6));
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn dimension_mismatch_panics() {
        matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[4, 2]));
    }

    #[test]
    fn bias_and_col_sums() {
        let mut m = Tensor::from_vec(vec![1., 2., 3., 4.], &[2, 2]);
        add_bias_rows(&mut m, &[10., 20.]);
        assert_eq!(m.as_slice(), &[11., 22., 13., 24.]);
        let mut sums = vec![0.0; 2];
        col_sums_into(&m, &mut sums);
        assert_eq!(sums, vec![24., 46.]);
    }

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1., 2., 3.], &[4., 5., 6.]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }
}

//! 2-D convolution kernels (im2col formulation).
//!
//! A convolution with kernel `[co, ci, kh, kw]` over an NCHW input is
//! lowered to one matrix multiply per image: the patch matrix
//! (`im2col`, shape `[oh*ow, ci*kh*kw]`) times the transposed weight matrix.
//! The backward pass reuses the same lowering: the weight gradient is a
//! `patchᵀ · grad_out` product and the input gradient scatters back through
//! `col2im`. This mirrors how the paper's Torch backend executes
//! convolutions, so the FLOP model in `sasgd-nn` can count the same
//! multiply–accumulate operations a GPU would perform.

use crate::parallel;
use crate::shape::conv_out;
use crate::tensor::Tensor;

/// Geometry of one convolution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Conv2dSpec {
    /// Input channels.
    pub ci: usize,
    /// Output channels (number of kernels).
    pub co: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride (same both axes).
    pub stride: usize,
    /// Zero padding (same both axes).
    pub pad: usize,
}

impl Conv2dSpec {
    /// Output spatial size for an `h`-by-`w` input.
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            conv_out(h, self.kh, self.stride, self.pad),
            conv_out(w, self.kw, self.stride, self.pad),
        )
    }

    /// Elements in one lowered patch row.
    pub fn patch_len(&self) -> usize {
        self.ci * self.kh * self.kw
    }

    /// Multiply–accumulates in the forward pass for one `h`-by-`w` image.
    pub fn forward_macs(&self, h: usize, w: usize) -> u64 {
        let (oh, ow) = self.out_hw(h, w);
        (oh * ow * self.co * self.patch_len()) as u64
    }
}

/// Lower one image `[ci, h, w]` (flat slice) into a patch matrix
/// `[oh*ow, ci*kh*kw]`.
pub fn im2col(img: &[f32], ci: usize, h: usize, w: usize, spec: &Conv2dSpec) -> Tensor {
    debug_assert_eq!(img.len(), ci * h * w);
    let (oh, ow) = spec.out_hw(h, w);
    let plen = spec.patch_len();
    let mut out = Tensor::zeros(&[oh * ow, plen]);
    let od = out.as_mut_slice();
    for oy in 0..oh {
        for ox in 0..ow {
            let row = (oy * ow + ox) * plen;
            let mut k = row;
            for c in 0..ci {
                let base = c * h * w;
                for ky in 0..spec.kh {
                    let iy = (oy * spec.stride + ky) as isize - spec.pad as isize;
                    for kx in 0..spec.kw {
                        let ix = (ox * spec.stride + kx) as isize - spec.pad as isize;
                        od[k] = if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < w {
                            img[base + iy as usize * w + ix as usize]
                        } else {
                            0.0
                        };
                        k += 1;
                    }
                }
            }
        }
    }
    out
}

/// Scatter a patch-matrix gradient `[oh*ow, ci*kh*kw]` back onto an image
/// gradient `[ci, h, w]` (accumulating; inverse of [`im2col`]).
pub fn col2im(
    cols: &Tensor,
    ci: usize,
    h: usize,
    w: usize,
    spec: &Conv2dSpec,
    img_grad: &mut [f32],
) {
    debug_assert_eq!(img_grad.len(), ci * h * w);
    let (oh, ow) = spec.out_hw(h, w);
    let plen = spec.patch_len();
    let cd = cols.as_slice();
    for oy in 0..oh {
        for ox in 0..ow {
            let row = (oy * ow + ox) * plen;
            let mut k = row;
            for c in 0..ci {
                let base = c * h * w;
                for ky in 0..spec.kh {
                    let iy = (oy * spec.stride + ky) as isize - spec.pad as isize;
                    for kx in 0..spec.kw {
                        let ix = (ox * spec.stride + kx) as isize - spec.pad as isize;
                        if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < w {
                            img_grad[base + iy as usize * w + ix as usize] += cd[k];
                        }
                        k += 1;
                    }
                }
            }
        }
    }
}

/// Forward convolution over a batch.
///
/// `input`: `[n, ci, h, w]`; `weight`: `[co, ci*kh*kw]` (pre-flattened);
/// `bias`: `[co]`. Returns `[n, co, oh, ow]`. Images are independent, so
/// the batch is split across the thread pool; per image the output is one
/// `weight · colsᵀ` GEMM (the same `[co, oh*ow]` layout the lowering
/// produces), which keeps results bitwise identical to the serial path.
pub fn conv2d_forward(input: &Tensor, weight: &Tensor, bias: &[f32], spec: &Conv2dSpec) -> Tensor {
    let [n, ci, h, w] = [
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    ];
    assert_eq!(ci, spec.ci, "input channels mismatch");
    assert_eq!(
        weight.dims(),
        &[spec.co, spec.patch_len()],
        "weight shape mismatch"
    );
    assert_eq!(bias.len(), spec.co, "bias length mismatch");
    let (oh, ow) = spec.out_hw(h, w);
    let mut out = Tensor::zeros(&[n, spec.co, oh, ow]);
    let in_stride = ci * h * w;
    let out_stride = spec.co * oh * ow;
    let id = input.as_slice();
    let wd = weight.as_slice();
    let plen = spec.patch_len();
    parallel::for_each_chunk_mut(out.as_mut_slice(), out_stride, |img, oimg| {
        let cols = im2col(&id[img * in_stride..(img + 1) * in_stride], ci, h, w, spec);
        // oimg = weight · colsᵀ, i.e. oimg[co][pix] = dot(weight[co], cols[pix]).
        crate::linalg::nt_rows(oimg, wd, cols.as_slice(), spec.co, plen, oh * ow);
        for (co, orow) in oimg.chunks_mut(oh * ow).enumerate() {
            let b = bias[co];
            orow.iter_mut().for_each(|o| *o += b);
        }
    });
    out
}

/// Gradients of one convolution.
pub struct Conv2dGrads {
    /// `[n, ci, h, w]` gradient w.r.t. the input.
    pub dinput: Tensor,
    /// `[co, ci*kh*kw]` gradient w.r.t. the flattened weights.
    pub dweight: Tensor,
    /// `[co]` gradient w.r.t. the bias.
    pub dbias: Vec<f32>,
}

/// Backward convolution over a batch.
///
/// `grad_out`: `[n, co, oh, ow]`. Recomputes `im2col` per image (trading
/// FLOPs for memory, as cuDNN's low-workspace algorithms do).
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    spec: &Conv2dSpec,
) -> Conv2dGrads {
    let [n, ci, h, w] = [
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    ];
    let (oh, ow) = spec.out_hw(h, w);
    assert_eq!(
        grad_out.dims(),
        &[n, spec.co, oh, ow],
        "grad_out shape mismatch"
    );
    let plen = spec.patch_len();
    let in_stride = ci * h * w;
    let out_stride = spec.co * oh * ow;
    let id = input.as_slice();
    let gd = grad_out.as_slice();
    let wd = weight.as_slice();

    // Per-image partials, reduced serially in image order afterwards so
    // the dweight/dbias sums accumulate identically at any thread count.
    let partials: Vec<(Vec<f32>, Vec<f32>, Vec<f32>)> = parallel::map_collect(n, |img| {
        let cols = im2col(&id[img * in_stride..(img + 1) * in_stride], ci, h, w, spec);
        let cd = cols.as_slice();
        let gimg = &gd[img * out_stride..(img + 1) * out_stride];
        let mut dw = vec![0.0f32; spec.co * plen];
        let mut db = vec![0.0f32; spec.co];
        let mut dcols = Tensor::zeros(&[oh * ow, plen]);
        {
            let dc = dcols.as_mut_slice();
            for pix in 0..oh * ow {
                let patch = &cd[pix * plen..(pix + 1) * plen];
                let dpatch = &mut dc[pix * plen..(pix + 1) * plen];
                for co in 0..spec.co {
                    let g = gimg[co * oh * ow + pix];
                    if g == 0.0 {
                        continue;
                    }
                    db[co] += g;
                    let wrow = &wd[co * plen..(co + 1) * plen];
                    let dwrow = &mut dw[co * plen..(co + 1) * plen];
                    for k in 0..plen {
                        dwrow[k] += g * patch[k];
                        dpatch[k] += g * wrow[k];
                    }
                }
            }
        }
        let mut dimg = vec![0.0f32; in_stride];
        col2im(&dcols, ci, h, w, spec, &mut dimg);
        (dimg, dw, db)
    });

    let mut dinput = Tensor::zeros(&[n, ci, h, w]);
    let mut dweight = Tensor::zeros(&[spec.co, plen]);
    let mut dbias = vec![0.0f32; spec.co];
    for (img, (dimg, dw, db)) in partials.into_iter().enumerate() {
        dinput.as_mut_slice()[img * in_stride..(img + 1) * in_stride].copy_from_slice(&dimg);
        for (a, b) in dweight.as_mut_slice().iter_mut().zip(&dw) {
            *a += b;
        }
        for (a, b) in dbias.iter_mut().zip(&db) {
            *a += b;
        }
    }
    Conv2dGrads {
        dinput,
        dweight,
        dbias,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedRng;

    fn naive_conv(input: &Tensor, weight: &Tensor, bias: &[f32], spec: &Conv2dSpec) -> Tensor {
        let [n, ci, h, w] = [
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        ];
        let (oh, ow) = spec.out_hw(h, w);
        let mut out = Tensor::zeros(&[n, spec.co, oh, ow]);
        for img in 0..n {
            for (co, &bias_v) in bias.iter().enumerate().take(spec.co) {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut s = bias_v;
                        for c in 0..ci {
                            for ky in 0..spec.kh {
                                for kx in 0..spec.kw {
                                    let iy = (oy * spec.stride + ky) as isize - spec.pad as isize;
                                    let ix = (ox * spec.stride + kx) as isize - spec.pad as isize;
                                    if iy < 0 || ix < 0 || iy as usize >= h || ix as usize >= w {
                                        continue;
                                    }
                                    let wv = weight.as_slice()
                                        [co * spec.patch_len() + (c * spec.kh + ky) * spec.kw + kx];
                                    s += wv * input.at4(img, c, iy as usize, ix as usize);
                                }
                            }
                        }
                        let idx = out.idx4(img, co, oy, ox);
                        out.as_mut_slice()[idx] = s;
                    }
                }
            }
        }
        out
    }

    #[test]
    fn forward_matches_naive_padded() {
        let spec = Conv2dSpec {
            ci: 3,
            co: 4,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        };
        let mut r = SeedRng::new(1);
        let input = r.normal_tensor(&[2, 3, 6, 6], 1.0);
        let weight = r.normal_tensor(&[4, spec.patch_len()], 0.3);
        let bias = vec![0.1, -0.2, 0.3, 0.0];
        let fast = conv2d_forward(&input, &weight, &bias, &spec);
        let slow = naive_conv(&input, &weight, &bias, &spec);
        assert!(fast.allclose(&slow, 1e-4));
    }

    #[test]
    fn forward_matches_naive_strided_unpadded() {
        let spec = Conv2dSpec {
            ci: 2,
            co: 3,
            kh: 2,
            kw: 2,
            stride: 2,
            pad: 0,
        };
        let mut r = SeedRng::new(2);
        let input = r.normal_tensor(&[1, 2, 5, 5], 1.0);
        let weight = r.normal_tensor(&[3, spec.patch_len()], 0.3);
        let bias = vec![0.0; 3];
        assert!(conv2d_forward(&input, &weight, &bias, &spec)
            .allclose(&naive_conv(&input, &weight, &bias, &spec), 1e-4));
    }

    #[test]
    fn im2col_col2im_adjoint() {
        // <im2col(x), y> == <x, col2im(y)> — the two lowerings are adjoint,
        // which is exactly what backprop relies on.
        let spec = Conv2dSpec {
            ci: 2,
            co: 1,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        };
        let mut r = SeedRng::new(3);
        let x = r.normal_tensor(&[1, 2, 4, 4], 1.0);
        let cols = im2col(x.as_slice(), 2, 4, 4, &spec);
        let y = r.normal_tensor(&[cols.dims()[0], cols.dims()[1]], 1.0);
        let lhs: f32 = cols
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        let mut back = vec![0.0f32; 2 * 4 * 4];
        col2im(&y, 2, 4, 4, &spec, &mut back);
        let rhs: f32 = x.as_slice().iter().zip(&back).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn backward_matches_finite_differences() {
        let spec = Conv2dSpec {
            ci: 2,
            co: 2,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        };
        let mut r = SeedRng::new(4);
        let input = r.normal_tensor(&[1, 2, 4, 4], 1.0);
        let weight = r.normal_tensor(&[2, spec.patch_len()], 0.3);
        let bias = vec![0.05, -0.05];
        // Loss = sum of outputs; grad_out = ones.
        let (oh, ow) = spec.out_hw(4, 4);
        let grad_out = Tensor::full(&[1, 2, oh, ow], 1.0);
        let grads = conv2d_backward(&input, &weight, &grad_out, &spec);

        let eps = 1e-2f32;
        let base = conv2d_forward(&input, &weight, &bias, &spec).sum();
        // Check a scattering of weight coordinates.
        for &k in &[0usize, 5, 17, 20, 35] {
            let mut wp = weight.clone();
            wp.as_mut_slice()[k] += eps;
            let up = conv2d_forward(&input, &wp, &bias, &spec).sum();
            let fd = (up - base) / eps;
            let an = grads.dweight.as_slice()[k];
            assert!(
                (fd - an).abs() < 0.05 * (1.0 + an.abs()),
                "w[{k}]: fd {fd} vs {an}"
            );
        }
        // And input coordinates.
        for &k in &[0usize, 7, 15, 31] {
            let mut xp = input.clone();
            xp.as_mut_slice()[k] += eps;
            let up = conv2d_forward(&xp, &weight, &bias, &spec).sum();
            let fd = (up - base) / eps;
            let an = grads.dinput.as_slice()[k];
            assert!(
                (fd - an).abs() < 0.05 * (1.0 + an.abs()),
                "x[{k}]: fd {fd} vs {an}"
            );
        }
        // Bias gradient of a sum-loss is the number of output pixels.
        for b in &grads.dbias {
            assert!((b - (oh * ow) as f32).abs() < 1e-3);
        }
    }

    #[test]
    fn macs_counting() {
        let spec = Conv2dSpec {
            ci: 3,
            co: 64,
            kh: 5,
            kw: 5,
            stride: 1,
            pad: 2,
        };
        // 32x32 output, 64 kernels, 75-long patches.
        assert_eq!(spec.forward_macs(32, 32), (32 * 32 * 64 * 75) as u64);
    }
}

//! The paper's second workload in miniature: a sentiment-style text
//! classifier (temporal-convolution network over word embeddings, many
//! labels, tiny corpus) trained with SASGD at growing learner counts —
//! the regime where the paper's Fig 10 shows asynchronous methods
//! collapsing while SASGD keeps converging.
//!
//! ```text
//! cargo run --release --example nlc_sentiment
//! ```

use sasgd::core::algorithms::GammaP;
use sasgd::core::report::ascii_table;
use sasgd::core::{train, Algorithm, TrainConfig};
use sasgd::data::nlc_like::{generate, NlcLikeConfig};
use sasgd::nn::models;
use sasgd::tensor::SeedRng;

fn main() {
    // 20 labels, 800 sentences, 12-d embeddings — NLC-F's "tiny corpus,
    // huge label space" shape at CPU scale.
    let data_cfg = NlcLikeConfig {
        train: 800,
        test: 200,
        ..NlcLikeConfig::tiny(800, 200, 20)
    };
    let (train_set, test_set) = generate(&data_cfg);
    println!(
        "corpus: {} train / {} test sentences, {} labels, seq len {}\n",
        train_set.len(),
        test_set.len(),
        train_set.classes(),
        train_set.sample_dims()[0]
    );

    let epochs = 25;
    let gamma = 0.05;
    let t = 50;
    let mut rows = Vec::new();
    for p in [1usize, 4, 8, 16] {
        for (name, algo) in [
            (
                "SASGD",
                Algorithm::Sasgd {
                    p,
                    t,
                    gamma_p: GammaP::OverP,
                    compression: None,
                },
            ),
            (
                "Downpour",
                Algorithm::Downpour {
                    p,
                    t,
                    staleness_gamma: false,
                },
            ),
        ] {
            if p == 1 && name == "Downpour" {
                continue;
            }
            let cfg = TrainConfig::new(epochs, 1, gamma, 9);
            let mut factory =
                || models::nlc_net_custom(8, 12, 24, 64, 64, 20, &mut SeedRng::new(3));
            let h = train(&mut factory, &train_set, &test_set, &algo, &cfg);
            rows.push(vec![
                name.to_string(),
                p.to_string(),
                format!("{:.1}", h.final_train_acc() * 100.0),
                format!("{:.1}", h.final_test_acc() * 100.0),
            ]);
        }
    }
    println!(
        "minibatch 1 (as the paper found best for NLC-F), T = {t}, γ = {gamma}\n\n{}",
        ascii_table(&["algorithm", "p", "train acc %", "test acc %"], &rows)
    );
    println!(
        "Fig 10's shape: Downpour degrades toward random guessing as p grows\n\
         (random = {:.0} %), while SASGD's explicitly bounded staleness keeps it\n\
         near the sequential accuracy.",
        100.0 / train_set.classes() as f64
    );
}

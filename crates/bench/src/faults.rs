//! Fault-injection bench: SASGD on the fault-tolerant threaded backend
//! under scripted learner crashes and stalls, recorded as
//! `BENCH_faults.json` — per scenario: completion, survivor count,
//! measured recovery latency (from the run's `History::membership`
//! events), the cost model's predicted recovery latency, and the final
//! accuracy delta against the fault-free run. Every degraded scenario is
//! executed twice and its final parameters compared bitwise, so the
//! "degraded runs are reproducible" claim is measured, not asserted.

use std::time::Duration;

use sasgd_core::algorithms::GammaP;
use sasgd_core::report::ascii_table;
use sasgd_core::{run_threaded_sasgd_ft, FaultConfig, FaultPlan, History, TrainConfig};
use sasgd_simnet::{CostModel, JitterModel};

use crate::figures::Artifact;
use crate::scale::{cifar_workload, Scale};

/// Learners in every scenario (the paper's p = 8 configuration).
const P: usize = 8;
/// Local steps between global aggregations.
const T: usize = 5;
/// Failure-detection deadline. Short enough that the detection rounds
/// (which wait out `deadline × (level+1)` windows) keep the bench fast,
/// long enough that the scripted sub-deadline stall is absorbed and
/// that a healthy learner descheduled on an oversubscribed CI box is
/// never falsely evicted (eviction must come from the plan, not load).
const DEADLINE: Duration = Duration::from_millis(400);
/// Scripted stall, strictly below [`DEADLINE`] so peers absorb it.
const STALL_MS: u64 = 50;

/// One fault scenario's outcome.
pub struct FaultRow {
    /// Scenario label.
    pub scenario: String,
    /// Whether the run completed (returned a `History`) on the survivors.
    pub completed: bool,
    /// Learners still in the membership when the run finished.
    pub survivors: usize,
    /// Ranks confirmed lost, in eviction order.
    pub lost: Vec<usize>,
    /// Sync round that confirmed the first loss (`None`: no loss).
    pub detect_round: Option<u64>,
    /// Wall-clock seconds of the detecting sync round(s), summed.
    pub recovery_measured_s: f64,
    /// The simnet cost model's prediction for the same degradation.
    pub recovery_modeled_s: f64,
    /// Final test accuracy.
    pub test_acc: f32,
    /// Accuracy delta against the fault-free baseline (negative: worse).
    pub acc_delta: f32,
    /// Whether a second run of the same plan produced bitwise-identical
    /// final parameters (trivially true for the single-run baseline).
    pub bitwise_reproducible: bool,
    /// Whether the repeat run agreed on every membership event (who was
    /// evicted, when, and at which epoch). On a heavily loaded box the
    /// wall-clock failure detector may evict a descheduled-but-healthy
    /// rank in one run and not the other — by design, a stall longer
    /// than the deadline *is* a failure to its peers.
    pub repeat_same_membership: bool,
    /// The only combination that indicates a bug: the repeat saw the
    /// exact same eviction outcome yet produced different bits. CI
    /// fails on this; it does not fail on a load-induced membership
    /// divergence.
    pub determinism_violation: bool,
}

fn run(w: &crate::scale::ConvergenceWorkload, cfg: &TrainConfig, faults: &FaultConfig) -> History {
    run_threaded_sasgd_ft(
        &*w.factory,
        &w.train,
        &w.test,
        cfg,
        P,
        T,
        GammaP::OverP,
        faults,
    )
}

fn summarize(
    scenario: &str,
    h: &History,
    repeat: Option<&History>,
    baseline_acc: f32,
    model_params: usize,
) -> FaultRow {
    let cost = CostModel::paper_testbed();
    let mut lost = Vec::new();
    let mut measured = 0.0;
    let mut modeled = 0.0;
    for ev in &h.membership {
        lost.extend(ev.lost.iter().copied());
        measured += ev.recovery_seconds;
        modeled += cost
            .recovery(model_params, P, ev.survivors, DEADLINE.as_secs_f64())
            .seconds;
    }
    let bitwise = match repeat {
        None => true,
        Some(r) => r.final_params == h.final_params,
    };
    let same_membership = match repeat {
        None => true,
        Some(r) => {
            r.membership.len() == h.membership.len()
                && r.membership.iter().zip(&h.membership).all(|(a, b)| {
                    (a.round, a.epoch, &a.lost, a.survivors)
                        == (b.round, b.epoch, &b.lost, b.survivors)
                })
        }
    };
    FaultRow {
        scenario: scenario.to_string(),
        completed: true,
        survivors: P - lost.len(),
        detect_round: h.membership.first().map(|ev| ev.round),
        lost,
        recovery_measured_s: measured,
        recovery_modeled_s: modeled,
        test_acc: h.final_test_acc(),
        acc_delta: h.final_test_acc() - baseline_acc,
        bitwise_reproducible: bitwise,
        repeat_same_membership: same_membership,
        determinism_violation: same_membership && !bitwise,
    }
}

/// Hand-rolled JSON (the workspace builds offline, with no serde).
pub fn to_json(rows: &[FaultRow]) -> String {
    let mut s = String::from("{\n  \"p\": 8,\n  \"scenarios\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let lost = r
            .lost
            .iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let round = match r.detect_round {
            Some(x) => format!("{x}"),
            None => "null".to_string(),
        };
        s.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"completed\": {}, \"survivors\": {}, \
             \"completion_rate\": {:.4}, \"lost_ranks\": [{lost}], \"detect_round\": {round}, \
             \"recovery_seconds_measured\": {:.4}, \"recovery_seconds_modeled\": {:.4}, \
             \"test_acc\": {:.4}, \"acc_delta_vs_fault_free\": {:.4}, \
             \"bitwise_reproducible\": {}, \"repeat_same_membership\": {}, \
             \"determinism_violation\": {}}}{}\n",
            r.scenario,
            r.completed,
            r.survivors,
            r.survivors as f64 / P as f64,
            r.recovery_measured_s,
            r.recovery_modeled_s,
            r.test_acc,
            r.acc_delta,
            r.bitwise_reproducible,
            r.repeat_same_membership,
            r.determinism_violation,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// The `faults` repro target: fault-free baseline, seeded 1/8 and 2/8
/// crash campaigns (each run twice for the bitwise-reproducibility
/// check), and a sub-deadline stall, emitted as a report plus
/// `BENCH_faults.json`.
pub fn faults(scale: Scale, epochs: Option<usize>) -> Artifact {
    let w = cifar_workload(scale, epochs.or(Some(4)));
    let mut cfg = TrainConfig::new(w.epochs, w.batch, w.gamma_hi, 0xFA17);
    cfg.jitter = JitterModel::none();

    // Crashes land inside the first two sync rounds so most of the run
    // happens degraded — the worst case for the accuracy-delta column.
    let max_step = 2 * T as u64;

    let baseline = run(&w, &cfg, &FaultConfig::default());
    let baseline_acc = baseline.final_test_acc();
    let model_params = baseline
        .final_params
        .as_ref()
        .map(Vec::len)
        .expect("threaded SASGD records final params");
    assert!(
        baseline.membership.is_empty(),
        "fault-free run must see no membership change"
    );

    let scenarios: Vec<(&str, FaultPlan)> = vec![
        ("crash-1of8", FaultPlan::seeded(0xFA17, P, 1, max_step)),
        ("crash-2of8", FaultPlan::seeded(0xFA18, P, 2, max_step)),
        (
            "stall-absorbed",
            FaultPlan::none().with_stall(3, T as u64, STALL_MS),
        ),
    ];

    let mut rows = vec![summarize(
        "fault-free",
        &baseline,
        None,
        baseline_acc,
        model_params,
    )];
    for (name, plan) in scenarios {
        let fc = FaultConfig {
            plan,
            deadline: DEADLINE,
        };
        let first = run(&w, &cfg, &fc);
        let second = run(&w, &cfg, &fc);
        let row = summarize(name, &first, Some(&second), baseline_acc, model_params);
        if name == "stall-absorbed" {
            assert!(
                first.membership.is_empty(),
                "a stall below the deadline must not evict anyone"
            );
            assert_eq!(
                first.final_params, baseline.final_params,
                "an absorbed stall must not change the numerics"
            );
        }
        rows.push(row);
    }

    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.clone(),
                format!("{}/{P}", r.survivors),
                format!("{:?}", r.lost),
                r.detect_round.map_or("-".into(), |x| x.to_string()),
                format!("{:.3}", r.recovery_measured_s),
                format!("{:.3}", r.recovery_modeled_s),
                format!("{:.4}", r.test_acc),
                format!("{:+.4}", r.acc_delta),
                r.bitwise_reproducible.to_string(),
            ]
        })
        .collect();
    let table = ascii_table(
        &[
            "scenario",
            "survivors",
            "lost",
            "detect round",
            "recovery s (measured)",
            "recovery s (modeled)",
            "test acc",
            "Δacc",
            "bitwise repro",
        ],
        &table_rows,
    );
    let report = format!(
        "Fault-injection campaign — threaded SASGD, p = {P}, T = {T}, \
         deadline {} ms\n\n{table}\n\
         Every scenario completes on the survivors (no deadlock); degraded\n\
         runs replay bitwise for the same FaultPlan and eviction outcome; a\n\
         stall below the receive deadline is absorbed with zero numeric\n\
         effect. Recovery latency is dominated by the failure-detection\n\
         deadline windows, as the simnet model predicts (modeled column:\n\
         detection + recovery sweep + survivor redistribution). A \"false\"\n\
         bitwise column with repeat_same_membership=false in the JSON means\n\
         a loaded box descheduled a healthy rank past the deadline in one of\n\
         the paired runs — the detector working as specified, not a numerics\n\
         bug; only determinism_violation (same evictions, different bits)\n\
         indicates one.\n",
        DEADLINE.as_millis()
    );
    Artifact {
        name: "faults".into(),
        report,
        csvs: vec![("BENCH_faults.json".into(), to_json(&rows))],
    }
}

// virtual-path: crates/tensor/src/fixture_map_ok.rs
// GOOD: ordered containers, plus one justified hash use. Note each
// mention of the hash type needs its own allow — the lint is per-line.

use std::collections::BTreeMap;

// lint:allow(map-iter): build-time symbol table, never iterated into numerics
use std::collections::HashMap;

pub fn accumulate(grads: &BTreeMap<usize, f32>) -> f32 {
    grads.values().sum()
}

pub fn names() -> HashMap<&'static str, usize> // lint:allow(map-iter): same table as above
{
    HashMap::new() // lint:allow(map-iter): same table as above
}

//! `repro launch` — SASGD across real OS processes.
//!
//! The transport refactor's end-to-end proof: the parent spawns `p` copies
//! of the `repro` binary (hidden `_rank` subcommand), each child joins a
//! loopback TCP mesh via [`SocketTransport`] and runs the *same* per-rank
//! loop ([`run_sasgd_rank`]) the threaded backend drives over in-process
//! channels. Rank 0's child writes its `final_params` to a file; the
//! parent replays the identical workload in-process with
//! [`run_threaded_sasgd`] and compares the two parameter vectors **bitwise**.
//!
//! Rendezvous is race-free: the parent discovers `p` free loopback ports by
//! binding (then dropping) port-0 listeners and passes the concrete port
//! list to every child, so no child guesses at addresses. A hard
//! wall-clock timeout bounds the whole run — a hung rendezvous or a
//! deadlocked collective kills the world and fails the target instead of
//! wedging CI; per-rank stdout/stderr land in log files next to the params
//! file for post-mortem.
//!
//! The workload is deliberately fixed (same dataset seed, model seed,
//! `TrainConfig` and shard strategy in parent and children) — the target
//! verifies transport equivalence, not a tunable benchmark.

use std::fmt::Write as _;
use std::fs;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use sasgd_comm::{loopback_addrs, SocketTransport};
use sasgd_core::{run_sasgd_rank, run_threaded_sasgd, GammaP, SasgdRankSpec, TrainConfig};
use sasgd_data::cifar_like::{generate, CifarLikeConfig};
use sasgd_data::{make_shards, Dataset};
use sasgd_nn::{models, Model};
use sasgd_tensor::SeedRng;

use crate::figures::Artifact;

/// World size of the multi-process run.
pub const WORLD: usize = 4;
/// Aggregation interval `T`.
const AGG_T: usize = 2;
/// How long children may take to form the TCP mesh.
const RENDEZVOUS: Duration = Duration::from_secs(30);
/// Hard wall-clock bound on the whole multi-process run (spawn →
/// last exit). Generous: the workload itself finishes in seconds.
const TIMEOUT: Duration = Duration::from_secs(180);

/// The fixed verification workload, identical in the parent's in-process
/// reference run and every child (children regenerate it from the seeds —
/// nothing numeric crosses the process boundary except the wire frames).
fn workload() -> (Dataset, Dataset, TrainConfig) {
    let (train, test) = generate(&CifarLikeConfig::tiny(96, 24, 3));
    let cfg = TrainConfig::new(2, 8, 0.05, 42);
    (train, test, cfg)
}

fn model() -> Model {
    models::tiny_cnn(3, &mut SeedRng::new(7))
}

// ---------------------------------------------------------------------------
// Child: one rank (`repro _rank --rank R --size P --ports a,b,.. --out F`).
// ---------------------------------------------------------------------------

/// Entry point for the hidden `_rank` subcommand. Returns a process exit
/// code: 0 on a clean run, 1 on bad arguments or a typed wire failure
/// (printed to stderr, which the parent captures into the rank's log).
pub fn rank_main(args: &[String]) -> i32 {
    match rank_run(args) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("_rank: {e}");
            1
        }
    }
}

fn rank_run(args: &[String]) -> Result<(), String> {
    let mut rank: Option<usize> = None;
    let mut size: Option<usize> = None;
    let mut ports: Vec<u16> = Vec::new();
    let mut out: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        let need = |i: usize| -> Result<&String, String> {
            args.get(i + 1).ok_or(format!("{} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--rank" => rank = Some(need(i)?.parse().map_err(|e| format!("bad --rank: {e}"))?),
            "--size" => size = Some(need(i)?.parse().map_err(|e| format!("bad --size: {e}"))?),
            "--ports" => {
                for p in need(i)?.split(',') {
                    ports.push(p.parse().map_err(|e| format!("bad port {p:?}: {e}"))?);
                }
            }
            "--out" => out = Some(PathBuf::from(need(i)?)),
            other => return Err(format!("unknown _rank argument {other:?}")),
        }
        i += 2;
    }
    let rank = rank.ok_or("--rank is required")?;
    let size = size.ok_or("--size is required")?;
    if ports.len() != size {
        return Err(format!(
            "--ports has {} entries for size {size}",
            ports.len()
        ));
    }

    // Address list: same loopback host for every rank, parent-chosen ports.
    let mut addrs = loopback_addrs(size, 0);
    for (a, &p) in addrs.iter_mut().zip(&ports) {
        a.set_port(p);
    }
    let mut comm = SocketTransport::connect(rank, &addrs, RENDEZVOUS)
        .map_err(|e| format!("rank {rank} rendezvous failed: {e}"))?;

    // Regenerate the fixed workload; every child derives the identical
    // shards and lockstep step count the in-process backend would.
    let (train, test, cfg) = workload();
    let shards = make_shards(&train, size, cfg.shard_strategy);
    let steps_per_epoch = shards
        .iter()
        .map(|s| s.len() / cfg.batch_size)
        .min()
        .expect("at least one shard");
    let spec = SasgdRankSpec {
        train_set: &train,
        test_set: &test,
        cfg: &cfg,
        p: size,
        t: AGG_T,
        gamma_p: GammaP::OverP,
        compression: None,
        label: format!("SASGD-socket(p={size},T={AGG_T})"),
        steps_per_epoch,
    };
    let history = run_sasgd_rank(&mut comm, model(), &shards[rank], &spec)
        .map_err(|e| format!("rank {rank} wire failure: {e}"))?;

    if rank == 0 {
        let out = out.ok_or("--out is required for rank 0")?;
        let params = history
            .final_params
            .ok_or("rank 0 history has no final_params")?;
        let mut bytes = Vec::with_capacity(params.len() * 4);
        for v in &params {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        fs::write(&out, bytes).map_err(|e| format!("writing {}: {e}", out.display()))?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Parent: spawn, supervise, compare.
// ---------------------------------------------------------------------------

/// Outcome of one multi-process run, ready for the repro report.
pub struct LaunchOutcome {
    /// Human-readable account (spawn layout, timing, verdict).
    pub report: String,
    /// Did every child exit cleanly *and* did rank 0's parameters match the
    /// in-process run bitwise?
    pub ok: bool,
}

/// Bind-then-drop `n` port-0 listeners to reserve distinct free loopback
/// ports. The tiny window between drop and the child's bind is the
/// standard trade-off; collisions surface as a rendezvous failure within
/// the timeout, never a hang.
fn free_ports(n: usize) -> std::io::Result<Vec<u16>> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind(("127.0.0.1", 0)))
        .collect::<Result<_, _>>()?;
    listeners
        .iter()
        .map(|l| Ok(l.local_addr()?.port()))
        .collect()
}

fn kill_all(children: &mut [(usize, Child)]) {
    for (_, c) in children.iter_mut() {
        let _ = c.kill();
        let _ = c.wait();
    }
}

/// Tail of a rank's captured log, indented for the report.
fn log_tail(path: &Path, lines: usize) -> String {
    let Ok(text) = fs::read_to_string(path) else {
        return String::from("    <no log>\n");
    };
    let all: Vec<&str> = text.lines().collect();
    let start = all.len().saturating_sub(lines);
    let mut out = String::new();
    for l in &all[start..] {
        let _ = writeln!(out, "    {l}");
    }
    if out.is_empty() {
        out.push_str("    <empty>\n");
    }
    out
}

/// Run the full multi-process verification: spawn `WORLD` ranks of `exe`
/// (the `repro` binary), bound by a hard timeout, then compare rank 0's
/// written parameters bitwise against the in-process threaded run.
/// `scratch` receives the params file and one log file per rank.
pub fn run_launch(exe: &Path, scratch: &Path) -> LaunchOutcome {
    let mut report = String::new();
    let _ = writeln!(
        report,
        "Multi-process SASGD over the socket transport (p={WORLD}, T={AGG_T})\n\
         exe: {}\nscratch: {}\n",
        exe.display(),
        scratch.display()
    );
    if let Err(e) = fs::create_dir_all(scratch) {
        let _ = writeln!(report, "FAILED: cannot create scratch dir: {e}");
        return LaunchOutcome { report, ok: false };
    }
    let ports = match free_ports(WORLD) {
        Ok(p) => p,
        Err(e) => {
            let _ = writeln!(report, "FAILED: free-port discovery: {e}");
            return LaunchOutcome { report, ok: false };
        }
    };
    let ports_csv = ports
        .iter()
        .map(|p| p.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let params_path = scratch.join("launch_rank0_params.bin");
    let _ = fs::remove_file(&params_path);
    let _ = writeln!(report, "ports: {ports_csv}");

    // Spawn every rank with stdout/stderr captured to per-rank logs.
    let t0 = Instant::now();
    let mut children: Vec<(usize, Child)> = Vec::new();
    let log_path = |rank: usize| scratch.join(format!("launch_rank{rank}.log"));
    for rank in 0..WORLD {
        let log = match fs::File::create(log_path(rank)) {
            Ok(f) => f,
            Err(e) => {
                let _ = writeln!(report, "FAILED: log file for rank {rank}: {e}");
                kill_all(&mut children);
                return LaunchOutcome { report, ok: false };
            }
        };
        let spawned = Command::new(exe)
            .arg("_rank")
            .args(["--rank", &rank.to_string()])
            .args(["--size", &WORLD.to_string()])
            .args(["--ports", &ports_csv])
            .args(["--out", &params_path.to_string_lossy()])
            .stdin(Stdio::null())
            .stdout(log.try_clone().map(Stdio::from).unwrap_or(Stdio::null()))
            .stderr(Stdio::from(log))
            .spawn();
        match spawned {
            Ok(c) => children.push((rank, c)),
            Err(e) => {
                let _ = writeln!(report, "FAILED: spawning rank {rank}: {e}");
                kill_all(&mut children);
                return LaunchOutcome { report, ok: false };
            }
        }
    }

    // Supervise under the hard wall-clock bound.
    let deadline = t0 + TIMEOUT;
    let mut failures: Vec<String> = Vec::new();
    while !children.is_empty() {
        if Instant::now() >= deadline {
            let hung: Vec<String> = children.iter().map(|(r, _)| r.to_string()).collect();
            failures.push(format!(
                "timeout after {:?}: rank(s) {} still running (killed)",
                TIMEOUT,
                hung.join(", ")
            ));
            kill_all(&mut children);
            break;
        }
        let mut still = Vec::new();
        for (rank, mut c) in children {
            match c.try_wait() {
                Ok(Some(status)) if status.success() => {}
                Ok(Some(status)) => failures.push(format!("rank {rank} exited {status}")),
                Ok(None) => still.push((rank, c)),
                Err(e) => failures.push(format!("rank {rank} wait error: {e}")),
            }
        }
        children = still;
        if !children.is_empty() {
            std::thread::sleep(Duration::from_millis(20));
        }
    }
    let wall = t0.elapsed();
    let _ = writeln!(report, "children done in {:.2}s", wall.as_secs_f64());
    if !failures.is_empty() {
        for f in &failures {
            let _ = writeln!(report, "FAILED: {f}");
        }
        for rank in 0..WORLD {
            let _ = writeln!(report, "  rank {rank} log tail:");
            report.push_str(&log_tail(&log_path(rank), 10));
        }
        return LaunchOutcome { report, ok: false };
    }

    // Rank 0's parameters, as written by the child process.
    let socket_params: Vec<f32> = match fs::read(&params_path) {
        Ok(bytes) if bytes.len() % 4 == 0 => bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect(),
        Ok(bytes) => {
            let _ = writeln!(
                report,
                "FAILED: params file has {} bytes (not 4-aligned)",
                bytes.len()
            );
            return LaunchOutcome { report, ok: false };
        }
        Err(e) => {
            let _ = writeln!(report, "FAILED: reading {}: {e}", params_path.display());
            return LaunchOutcome { report, ok: false };
        }
    };

    // In-process reference on the identical workload.
    let (train, test, cfg) = workload();
    let reference = run_threaded_sasgd(
        &|| model(),
        &train,
        &test,
        &cfg,
        WORLD,
        AGG_T,
        GammaP::OverP,
    );
    let ref_params = reference
        .final_params
        .expect("in-process threaded run always records final_params");

    let mut mismatches = 0usize;
    let mut first_bad: Option<usize> = None;
    if socket_params.len() != ref_params.len() {
        let _ = writeln!(
            report,
            "FAILED: {} socket params vs {} in-process params",
            socket_params.len(),
            ref_params.len()
        );
        return LaunchOutcome { report, ok: false };
    }
    for (i, (a, b)) in socket_params.iter().zip(&ref_params).enumerate() {
        if a.to_bits() != b.to_bits() {
            mismatches += 1;
            first_bad.get_or_insert(i);
        }
    }
    let ok = mismatches == 0;
    let _ = writeln!(
        report,
        "bitwise comparison over {} parameters: {}",
        ref_params.len(),
        if ok {
            "IDENTICAL — socket transport reproduces the in-process run exactly".to_string()
        } else {
            format!(
                "{mismatches} mismatching element(s), first at index {}",
                first_bad.unwrap_or(0)
            )
        }
    );
    LaunchOutcome { report, ok }
}

/// The `launch` repro target: run the multi-process verification with the
/// current executable re-invoked as the rank binary.
pub fn launch() -> (Artifact, bool) {
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            return (
                Artifact {
                    name: "launch".to_string(),
                    report: format!("launch: cannot resolve current exe: {e}"),
                    csvs: vec![],
                },
                false,
            )
        }
    };
    let scratch = std::env::temp_dir().join(format!("sasgd-launch-{}", std::process::id()));
    let outcome = run_launch(&exe, &scratch);
    (
        Artifact {
            name: "launch".to_string(),
            report: outcome.report,
            csvs: vec![],
        },
        outcome.ok,
    )
}

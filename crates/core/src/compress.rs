//! Gradient compression for sparse aggregation — the natural extension of
//! the paper's "sparse gradient aggregation" direction (and of its future
//! work on cutting communication further).
//!
//! Two classic schemes, both with **error feedback** (the part of the
//! gradient a round drops is carried into the next round's accumulator, so
//! nothing is permanently lost):
//!
//! * [`Compression::TopK`] — keep the `k = ratio·m` largest-magnitude
//!   coordinates;
//! * [`Compression::Uniform8Bit`] — linear quantization of every value to
//!   8 bits with a per-vector scale.
//!
//! [`Compression::wire_elements`] feeds the cost model so the epoch-time
//! harness can price compressed aggregation.

/// A gradient compression scheme.
///
/// ```
/// use sasgd_core::Compression;
/// let g = [0.1f32, -5.0, 0.2, 3.0];
/// let c = Compression::TopK { ratio: 0.5 }.compress(&g);
/// // The two largest-magnitude coordinates survive; the rest feed the
/// // error-feedback residual.
/// assert_eq!(c.dense, vec![0.0, -5.0, 0.0, 3.0]);
/// assert_eq!(c.residual, vec![0.1, 0.0, 0.2, 0.0]);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Compression {
    /// Keep the largest `ratio·m` coordinates (0 < ratio ≤ 1); the rest
    /// stay in the sender's residual.
    TopK {
        /// Fraction of coordinates kept.
        ratio: f64,
    },
    /// 8-bit linear quantization of every coordinate.
    Uniform8Bit,
}

/// Outcome of compressing one gradient vector.
pub struct Compressed {
    /// The reconstructed (lossy) dense vector that will be aggregated.
    pub dense: Vec<f32>,
    /// The residual to fold into the next accumulation (error feedback).
    pub residual: Vec<f32>,
}

impl Compression {
    /// Compress `g`, returning the lossy dense reconstruction plus the
    /// residual.
    ///
    /// # Panics
    /// Panics if a `TopK` ratio is outside `(0, 1]`.
    pub fn compress(&self, g: &[f32]) -> Compressed {
        match *self {
            Compression::TopK { ratio } => {
                assert!(ratio > 0.0 && ratio <= 1.0, "top-k ratio must be in (0,1]");
                let m = g.len();
                // lint:allow(float-cast): ceil of ratio·m with ratio ∈ (0,1]
                // is an exact integer ≤ m; the clamp bounds any edge case.
                let k = ((m as f64 * ratio).ceil() as usize).clamp(1.min(m), m);
                // Threshold = k-th largest |g|; select_nth on a copy.
                let mut mags: Vec<f32> = g.iter().map(|v| v.abs()).collect();
                let dense;
                let mut residual = vec![0.0f32; m];
                if k == m {
                    dense = g.to_vec();
                } else {
                    let idx = m - k;
                    mags.select_nth_unstable_by(idx, |a, b| {
                        a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)
                    });
                    let thresh = mags[idx];
                    let mut kept = 0usize;
                    let mut d = vec![0.0f32; m];
                    // First pass: strictly above threshold.
                    for (i, &v) in g.iter().enumerate() {
                        if v.abs() > thresh {
                            d[i] = v;
                            kept += 1;
                        }
                    }
                    // Second pass: fill up with values equal to the
                    // threshold (ties) until exactly k are kept.
                    for (i, &v) in g.iter().enumerate() {
                        if kept == k {
                            break;
                        }
                        if d[i] == 0.0 && v.abs() == thresh && v != 0.0 {
                            d[i] = v;
                            kept += 1;
                        }
                    }
                    for i in 0..m {
                        if d[i] == 0.0 {
                            residual[i] = g[i];
                        }
                    }
                    dense = d;
                }
                Compressed { dense, residual }
            }
            Compression::Uniform8Bit => {
                let maxabs = g.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
                if maxabs == 0.0 {
                    return Compressed {
                        dense: g.to_vec(),
                        residual: vec![0.0; g.len()],
                    };
                }
                let scale = maxabs / 127.0;
                let mut dense = Vec::with_capacity(g.len());
                let mut residual = Vec::with_capacity(g.len());
                for &v in g {
                    let q = (v / scale).round().clamp(-127.0, 127.0);
                    let rec = q * scale;
                    dense.push(rec);
                    residual.push(v - rec);
                }
                Compressed { dense, residual }
            }
        }
    }

    /// Equivalent `f32` elements on the wire per `m`-parameter gradient
    /// (for the α–β cost model): top-k sends `k` index+value pairs
    /// (≈ `2k` elements); 8-bit sends `m/4` plus a scale.
    pub fn wire_elements(&self, m: usize) -> f64 {
        match *self {
            Compression::TopK { ratio } => 2.0 * (m as f64 * ratio).ceil(),
            Compression::Uniform8Bit => m as f64 / 4.0 + 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sasgd_tensor::SeedRng;

    #[test]
    fn topk_keeps_exactly_k_and_preserves_total() {
        let g = vec![0.1, -5.0, 0.2, 3.0, -0.05, 0.0, 1.0, -0.3];
        let c = Compression::TopK { ratio: 0.25 }.compress(&g);
        let kept = c.dense.iter().filter(|&&v| v != 0.0).count();
        assert_eq!(kept, 2);
        assert_eq!(c.dense[1], -5.0);
        assert_eq!(c.dense[3], 3.0);
        // dense + residual == original, coordinate-wise.
        for ((&d, &r), &o) in c.dense.iter().zip(&c.residual).zip(&g) {
            assert_eq!(d + r, o);
        }
    }

    #[test]
    fn topk_full_ratio_is_lossless() {
        let g = vec![1.0, -2.0, 3.0];
        let c = Compression::TopK { ratio: 1.0 }.compress(&g);
        assert_eq!(c.dense, g);
        assert!(c.residual.iter().all(|&r| r == 0.0));
    }

    #[test]
    fn topk_handles_ties_without_over_keeping() {
        let g = vec![2.0, -2.0, 2.0, 2.0];
        let c = Compression::TopK { ratio: 0.5 }.compress(&g);
        let kept = c.dense.iter().filter(|&&v| v != 0.0).count();
        assert_eq!(kept, 2, "exactly k survive even with ties");
    }

    #[test]
    fn quantization_error_is_bounded_by_half_step() {
        let mut rng = SeedRng::new(1);
        let g: Vec<f32> = (0..1000).map(|_| rng.normal() * 3.0).collect();
        let c = Compression::Uniform8Bit.compress(&g);
        let maxabs = g.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
        let step = maxabs / 127.0;
        for (&r, &o) in c.residual.iter().zip(&g) {
            assert!(r.abs() <= step / 2.0 + 1e-6, "residual {r} vs step {step}");
            let _ = o;
        }
    }

    #[test]
    fn quantization_of_zero_vector_is_identity() {
        let g = vec![0.0f32; 8];
        let c = Compression::Uniform8Bit.compress(&g);
        assert_eq!(c.dense, g);
    }

    #[test]
    fn wire_elements_shrink() {
        let m = 506_378;
        assert!(Compression::TopK { ratio: 0.01 }.wire_elements(m) < m as f64 * 0.03);
        assert!((Compression::Uniform8Bit.wire_elements(m) - (m as f64 / 4.0 + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn error_feedback_recovers_dropped_mass() {
        // Repeatedly compressing (gradient + residual) must transmit every
        // coordinate's mass eventually: after many rounds of a constant
        // gradient, the cumulative transmitted vector approaches
        // rounds × gradient.
        let g = vec![1.0f32, 0.2, 0.05, -0.6];
        let comp = Compression::TopK { ratio: 0.25 };
        let mut residual = vec![0.0f32; 4];
        let mut transmitted = [0.0f32; 4];
        let rounds = 40;
        for _ in 0..rounds {
            let input: Vec<f32> = g.iter().zip(&residual).map(|(a, b)| a + b).collect();
            let c = comp.compress(&input);
            for (t, &d) in transmitted.iter_mut().zip(&c.dense) {
                *t += d;
            }
            residual = c.residual;
        }
        for (i, (&t, &gi)) in transmitted.iter().zip(&g).enumerate() {
            let expect = gi * rounds as f32;
            assert!(
                (t - expect).abs() <= gi.abs().max(1.0) * 2.0,
                "coord {i}: transmitted {t} vs {expect}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "top-k ratio")]
    fn bad_ratio_rejected() {
        Compression::TopK { ratio: 0.0 }.compress(&[1.0]);
    }
}

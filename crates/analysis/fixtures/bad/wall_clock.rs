// virtual-path: crates/core/src/engine/simulated.rs
// BAD: wall-clock reads inside the Simulated backend, which must be
// virtual-clock pure.

use std::time::{Instant, SystemTime};

pub fn step_timed() -> f64 {
    let t0 = Instant::now();
    let _wall = SystemTime::now();
    t0.elapsed().as_secs_f64()
}

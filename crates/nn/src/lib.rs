//! # sasgd-nn
//!
//! Neural-network layers, backpropagation, and the two models evaluated by
//! the paper (Table I: CIFAR-10 CNN, ~0.5 M parameters; Table II: NLC-F
//! sentiment network, ~2 M parameters).
//!
//! The distributed algorithms in `sasgd-core` treat a model as a *flat
//! parameter vector* plus a *flat gradient vector* — exactly the view
//! Downpour's parameter server and SASGD's allreduce need — so every layer
//! implements `read_params` / `write_params` / `read_grads` over contiguous
//! slices, and [`Model`] concatenates them in layer order.
//!
//! Layers also report their multiply–accumulate counts ([`Layer::macs`]),
//! which drives the simulated-GPU compute-time model in `sasgd-simnet`.
//!
//! ## Example
//!
//! ```
//! use sasgd_nn::{models, Ctx};
//! use sasgd_tensor::{SeedRng, Tensor};
//!
//! let mut model = models::tiny_mlp(8, 4, 3, &mut SeedRng::new(0));
//! let x = Tensor::zeros(&[2, 8]);
//! let labels = [0usize, 2];
//! let mut ctx = Ctx::train(SeedRng::new(1));
//! let out = model.forward_loss(&x, &labels, &mut ctx);
//! assert!(out.loss > 0.0);
//! ```

pub mod init;
pub mod io;
pub mod layer;
pub mod layers;
pub mod loss;
pub mod model;
pub mod models;

pub use layer::{Ctx, Layer};
pub use model::{ForwardOutput, Model};
/// Intra-op thread-pool control for the kernels under every layer
/// (re-exported from `sasgd-tensor`): [`parallel::configure_threads`],
/// [`parallel::intra_op_threads_for`], …
pub use sasgd_tensor::parallel;

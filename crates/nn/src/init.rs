//! Parameter initialization.
//!
//! Matches Torch's classic default for `nn.Linear` / `nn.SpatialConvolution`
//! (the framework the paper used): weights and biases uniform in
//! `[-1/sqrt(fan_in), 1/sqrt(fan_in)]`.

use sasgd_tensor::{SeedRng, Tensor};

/// Torch-default uniform initialization for a weight tensor with the given
/// fan-in.
pub fn torch_uniform(rng: &mut SeedRng, dims: &[usize], fan_in: usize) -> Tensor {
    assert!(fan_in > 0, "fan_in must be positive");
    let bound = 1.0 / (fan_in as f32).sqrt();
    rng.uniform_tensor(dims, bound)
}

/// Bias vector drawn from the same distribution.
pub fn torch_uniform_bias(rng: &mut SeedRng, len: usize, fan_in: usize) -> Vec<f32> {
    torch_uniform(rng, &[len], fan_in).into_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_scales_with_fan_in() {
        let mut rng = SeedRng::new(1);
        let t = torch_uniform(&mut rng, &[1000], 100);
        let bound = 1.0 / 10.0;
        assert!(t.as_slice().iter().all(|&x| x.abs() <= bound));
        // Spread should actually use the range, not collapse near zero.
        assert!(t.as_slice().iter().any(|&x| x.abs() > bound * 0.5));
    }

    #[test]
    fn deterministic_under_seed() {
        let a = torch_uniform(&mut SeedRng::new(7), &[64], 8);
        let b = torch_uniform(&mut SeedRng::new(7), &[64], 8);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    #[should_panic(expected = "fan_in must be positive")]
    fn zero_fan_in_rejected() {
        torch_uniform(&mut SeedRng::new(1), &[4], 0);
    }
}

//! Sleep-set DPOR exploration over [`crate::model`] worlds.
//!
//! The explorer enumerates **every Mazurkiewicz-inequivalent interleaving**
//! of a scenario for small worlds (the production corpus runs p ≤ 4
//! exhaustively) by stateless replay: each execution is a decision
//! sequence; after a run, every enabled-but-not-taken choice at every free
//! scheduling point seeds a new branch whose prefix forces that choice.
//! Sleep sets (Godefroid) prune branches that only commute independent
//! steps of an already-explored trace — the classic dynamic partial-order
//! reduction, sound because two executions are only identified when every
//! reordered pair of steps is independent under
//! [`EnabledChoice::dependent`]. Wildcard receives deliberately declare
//! *all* candidate channels as their resource set, so the interleaving in
//! which two racy sends are simultaneously pending is never pruned away —
//! the vector-clock race check needs to see it.
//!
//! At p = 8 the same machinery runs a seeded-random bounded search
//! ([`explore_random`]): no completeness claim, same invariant checks.
//!
//! The scenario corpus ([`model_scenarios`]) covers the shipped
//! collectives, the hierarchy bundle, the transport-level parameter
//! server, fault-tolerant allreduce (fault-free and one-dead), the
//! event-driven engine ranks (SASGD and DaSGD's delayed average), and a
//! Downpour-style pull-retry loop. [`model_self_checks`] runs the
//! implanted bugs — arrival-order reduce, PS lost update, recv cycle —
//! and proves each is caught by happens-before machinery (with a
//! replayable witness), not by fingerprint luck.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Duration;

use sasgd_comm::collectives::{allreduce_ring, allreduce_tree, reduce_tree};
use sasgd_comm::ft::{ft_allreduce, Membership};
use sasgd_comm::hierarchy::{hierarchical_allreduce, GroupedComm};
use sasgd_comm::ps_transport::{serve_shard, PsLayout, PsTransportClient};
use sasgd_comm::sparse::{sparse_allreduce_tree, SparseVec};
use sasgd_comm::transport::Transport;
use sasgd_comm::world::CommError;
use sasgd_core::algorithms::GammaP;
use sasgd_core::engine::rank::{
    run_event_rank, run_sasgd_rank, EventOp, EventRankSpec, SasgdRankSpec,
};
use sasgd_core::schedule::SyncPolicy;
use sasgd_core::trainer::TrainConfig;
use sasgd_data::{make_shards, Dataset, ShardStrategy};
use sasgd_nn::models::tiny_mlp;
use sasgd_tensor::SeedRng;

use crate::model::{
    run_execution, witness_string, Decision, EnabledChoice, ExecRecord, ModelRankFn,
    ModelTransport, Outcome,
};
use crate::schedule::{bad_reduce_arrival_order, order_sensitive_input};

/// A scenario the model checker explores: `p` rank bodies over one
/// controlled world.
#[derive(Clone)]
pub struct ModelScenario {
    /// Scenario name (stable; lands in ANALYSIS.json).
    pub name: &'static str,
    /// World size.
    pub p: usize,
    /// Every rank's body (dispatches on `rank()`).
    pub body: ModelRankFn,
    /// Live-src deadline branches allowed per execution (dead-src
    /// timeouts are always enabled and free).
    pub timeout_budget: u32,
    /// Arm the wildcard-receive happens-before race check. Off for
    /// scenarios whose wildcard arrival order is *by design* benign (the
    /// PS shard loop); those rely on the bitwise-divergence check instead.
    pub check_races: bool,
    /// Every interleaving must produce bitwise-identical rank results.
    pub expect_bitwise: bool,
    /// Execution cap; hitting it marks the exploration non-exhaustive.
    pub max_execs: usize,
}

/// What exploring one scenario produced.
#[derive(Debug, Clone)]
pub struct ModelScenarioResult {
    /// Scenario name.
    pub name: String,
    /// World size.
    pub p: usize,
    /// Maximal executions run (completed + deadlocked) — for the
    /// exhaustive explorer, exactly the number of inequivalent
    /// interleavings.
    pub explored: usize,
    /// Branches DPOR pruned: sleep-suppressed alternatives plus
    /// sleep-blocked replays abandoned mid-run.
    pub pruned: usize,
    /// Distinct per-rank result fingerprints over completed executions.
    pub distinct_results: usize,
    /// Happens-before races at wildcard receives.
    pub races: usize,
    /// Blind writes that clobbered an unobserved write.
    pub lost_updates: usize,
    /// Structural deadlocks (wait-for cycles / orphaned waits).
    pub cycles: usize,
    /// The explorer drained its seed stack (meaningless when `bounded`).
    pub exhausted: bool,
    /// Seeded bounded search (p = 8) rather than exhaustive DFS.
    pub bounded: bool,
    /// Shortest replayable witness among detected events, if any.
    pub witness: Option<String>,
    /// Event details (capped).
    pub reports: Vec<String>,
    /// Scenario/harness errors (capped), including bitwise divergence
    /// when `expect_bitwise` was set.
    pub errors: Vec<String>,
}

impl ModelScenarioResult {
    /// Did the scenario uphold every checked property over the explored
    /// envelope?
    pub fn ok(&self) -> bool {
        self.errors.is_empty()
            && self.races == 0
            && self.lost_updates == 0
            && self.cycles == 0
            && (self.bounded || self.exhausted)
    }
}

/// Cap on stored reports/errors per scenario.
const REPORT_CAP: usize = 4;

/// A pending DFS branch: replay `prefix`, then run free with `sleep` as
/// the sleep set of the state the prefix reaches.
struct Seed {
    prefix: Vec<Decision>,
    sleep: Vec<EnabledChoice>,
}

/// Outcome of one seeded run plus the bookkeeping the DFS needs.
struct SeedRun {
    rec: ExecRecord,
    /// Enabled-but-slept choices encountered at free points (branches the
    /// reduction refused to spawn).
    suppressed: usize,
    /// Prefix replay failed to find its forced choice (harness bug).
    diverged: bool,
}

fn in_sleep(sleep: &[EnabledChoice], c: &EnabledChoice) -> bool {
    sleep.iter().any(|z| z.rank == c.rank && z.kind == c.kind)
}

fn sleep_after(sleep: &[EnabledChoice], fired: &EnabledChoice) -> Vec<EnabledChoice> {
    sleep
        .iter()
        .filter(|z| !z.dependent(fired))
        .cloned()
        .collect()
}

/// Run one execution under a seed: force the prefix, then take the first
/// non-slept enabled choice at every subsequent point.
fn run_seed(sc: &ModelScenario, seed: &Seed) -> SeedRun {
    let mut step = 0usize;
    let mut sleep: Vec<EnabledChoice> = Vec::new();
    let mut suppressed = 0usize;
    let mut diverged = false;
    let mut policy = |enabled: &[EnabledChoice]| -> Option<usize> {
        if step < seed.prefix.len() {
            let want = seed.prefix[step];
            step += 1;
            let found = enabled
                .iter()
                .position(|c| c.rank == want.rank && c.kind == want.kind);
            if found.is_none() {
                diverged = true;
            }
            return found;
        }
        if step == seed.prefix.len() {
            sleep = seed.sleep.clone();
        }
        step += 1;
        suppressed += enabled.iter().filter(|c| in_sleep(&sleep, c)).count();
        let pick = enabled.iter().position(|c| !in_sleep(&sleep, c))?;
        sleep = sleep_after(&sleep, &enabled[pick]);
        Some(pick)
    };
    let rec = run_execution(
        sc.p,
        &sc.body,
        sc.timeout_budget,
        sc.check_races,
        &mut policy,
    );
    SeedRun {
        rec,
        suppressed,
        diverged,
    }
}

/// After a run, seed the unexplored siblings of every free scheduling
/// point, with the sleep sets the recursive sleep-set algorithm would
/// carry. Pushed deepest-point-last so the LIFO stack pops in DFS order.
fn seed_siblings(seed: &Seed, rec: &ExecRecord, stack: &mut Vec<Seed>) {
    let decisions = rec.decisions();
    let mut sleep = seed.sleep.clone();
    for (i, stepr) in rec.steps.iter().enumerate().skip(seed.prefix.len()) {
        let taken = &stepr.enabled[stepr.taken];
        // Siblings: enabled, not slept, ordered after the taken choice
        // (the policy takes the first non-slept, so everything before
        // `taken` is slept).
        let mut sibling_sleep = sleep.clone();
        sibling_sleep.push(taken.clone());
        for c in stepr.enabled.iter().skip(stepr.taken + 1) {
            if in_sleep(&sleep, c) {
                continue;
            }
            let mut prefix = decisions[..i].to_vec();
            prefix.push(Decision {
                rank: c.rank,
                kind: c.kind,
            });
            stack.push(Seed {
                prefix,
                sleep: sleep_after(&sibling_sleep, c),
            });
            sibling_sleep.push(c.clone());
        }
        sleep = sleep_after(&sleep, taken);
    }
}

/// Fold one execution's events and results into the scenario aggregate.
struct Aggregate {
    explored: usize,
    pruned: usize,
    fingerprints: BTreeSet<u64>,
    /// detail -> shortest witness.
    events: BTreeMap<String, String>,
    races: usize,
    lost_updates: usize,
    cycles: usize,
    errors: Vec<String>,
}

impl Aggregate {
    fn new() -> Self {
        Aggregate {
            explored: 0,
            pruned: 0,
            fingerprints: BTreeSet::new(),
            events: BTreeMap::new(),
            races: 0,
            lost_updates: 0,
            cycles: 0,
            errors: Vec::new(),
        }
    }

    fn absorb(&mut self, rec: &ExecRecord) {
        for (count, list) in [
            (&mut self.races, &rec.races),
            (&mut self.lost_updates, &rec.lost_updates),
            (&mut self.cycles, &rec.cycles),
        ] {
            *count += list.len();
            for ev in list {
                let w = witness_string(&ev.witness);
                self.events
                    .entry(ev.detail.clone())
                    .and_modify(|old| {
                        if w.len() < old.len() {
                            *old = w.clone();
                        }
                    })
                    .or_insert(w);
            }
        }
        if let Some(fp) = rec.fingerprint {
            self.fingerprints.insert(fp);
        }
        for e in &rec.errors {
            if self.errors.len() < REPORT_CAP && !self.errors.contains(e) {
                self.errors.push(e.clone());
            }
        }
    }

    fn into_result(
        mut self,
        sc: &ModelScenario,
        exhausted: bool,
        bounded: bool,
    ) -> ModelScenarioResult {
        if sc.expect_bitwise && self.fingerprints.len() > 1 {
            self.errors.push(format!(
                "result diverged across interleavings: {} distinct fingerprints",
                self.fingerprints.len()
            ));
        }
        let witness = self.events.values().min_by_key(|w| w.len()).cloned();
        let reports = self.events.keys().take(REPORT_CAP).cloned().collect();
        ModelScenarioResult {
            name: sc.name.to_string(),
            p: sc.p,
            explored: self.explored,
            pruned: self.pruned,
            distinct_results: self.fingerprints.len(),
            races: self.races,
            lost_updates: self.lost_updates,
            cycles: self.cycles,
            exhausted,
            bounded,
            witness,
            reports,
            errors: self.errors,
        }
    }
}

/// Exhaustive sleep-set DPOR DFS over every interleaving of `sc`.
pub fn explore_exhaustive(sc: &ModelScenario) -> ModelScenarioResult {
    let mut stack = vec![Seed {
        prefix: Vec::new(),
        sleep: Vec::new(),
    }];
    let mut agg = Aggregate::new();
    let mut runs = 0usize;
    let mut exhausted = true;
    while let Some(seed) = stack.pop() {
        if runs >= sc.max_execs {
            exhausted = false;
            break;
        }
        runs += 1;
        let out = run_seed(sc, &seed);
        if out.diverged || out.rec.outcome == Outcome::HarnessError {
            agg.errors.push(format!(
                "harness error replaying prefix {}",
                witness_string(&seed.prefix)
            ));
            continue;
        }
        agg.pruned += out.suppressed;
        match out.rec.outcome {
            Outcome::Completed | Outcome::Deadlock => {
                agg.explored += 1;
                agg.absorb(&out.rec);
                seed_siblings(&seed, &out.rec, &mut stack);
            }
            Outcome::SleepBlocked => {
                // The whole continuation was redundant; nothing to seed
                // (its events, if any, were found on the equivalent
                // explored trace).
                agg.pruned += 1;
            }
            Outcome::HarnessError => unreachable!("handled above"),
        }
    }
    agg.into_result(sc, exhausted, false)
}

/// Deterministic pseudo-random stream (splitmix64) for the bounded
/// search; local copy so [`crate::schedule`]'s stays private.
struct SplitMix(u64);

impl SplitMix {
    fn below(&mut self, n: usize) -> usize {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z = z ^ (z >> 31);
        (z % (n.max(1) as u64)) as usize
    }
}

/// Seeded bounded search: `execs` random maximal interleavings. No
/// completeness claim (`bounded` is set); the same invariants are
/// checked on every execution.
pub fn explore_random(sc: &ModelScenario, execs: usize, seed: u64) -> ModelScenarioResult {
    let mut rng = SplitMix(seed);
    let mut agg = Aggregate::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for _ in 0..execs {
        let mut policy =
            |enabled: &[EnabledChoice]| -> Option<usize> { Some(rng.below(enabled.len())) };
        let rec = run_execution(
            sc.p,
            &sc.body,
            sc.timeout_budget,
            sc.check_races,
            &mut policy,
        );
        if rec.outcome == Outcome::HarnessError {
            agg.errors
                .push("harness error in bounded search".to_string());
            continue;
        }
        if seen.insert(witness_string(&rec.decisions())) {
            agg.explored += 1;
            agg.absorb(&rec);
        }
    }
    agg.into_result(sc, false, true)
}

/// Replay a recorded decision prefix (e.g. a race witness) and continue
/// first-enabled to a maximal execution — the "replayable witness" API
/// the negative controls exercise.
pub fn replay_decisions(sc: &ModelScenario, prefix: &[Decision]) -> ExecRecord {
    let mut step = 0usize;
    let mut policy = |enabled: &[EnabledChoice]| -> Option<usize> {
        let pick = if step < prefix.len() {
            let want = prefix[step];
            enabled
                .iter()
                .position(|c| c.rank == want.rank && c.kind == want.kind)
        } else {
            Some(0)
        };
        step += 1;
        pick
    };
    run_execution(
        sc.p,
        &sc.body,
        sc.timeout_budget,
        sc.check_races,
        &mut policy,
    )
}

// ---------------------------------------------------------------------------
// The production scenario corpus.
// ---------------------------------------------------------------------------

fn wire<T>(r: Result<T, CommError>) -> Result<T, String> {
    r.map_err(|e| e.to_string())
}

fn scenario(
    name: &'static str,
    p: usize,
    body: ModelRankFn,
    timeout_budget: u32,
    check_races: bool,
    expect_bitwise: bool,
) -> ModelScenario {
    ModelScenario {
        name,
        p,
        body,
        timeout_budget,
        check_races,
        expect_bitwise,
        max_execs: 60_000,
    }
}

fn sc_allreduce_tree(p: usize, name: &'static str) -> ModelScenario {
    scenario(
        name,
        p,
        Arc::new(|mut t: ModelTransport| {
            let mut v = order_sensitive_input(t.rank(), 4);
            wire(allreduce_tree(&mut t, &mut v))?;
            Ok(v)
        }),
        0,
        true,
        true,
    )
}

fn sc_reduce_root1(p: usize) -> ModelScenario {
    scenario(
        "reduce_tree_root1",
        p,
        Arc::new(|mut t: ModelTransport| {
            let mut v = order_sensitive_input(t.rank(), 4);
            wire(reduce_tree(&mut t, 1, &mut v))?;
            Ok(v)
        }),
        0,
        true,
        true,
    )
}

fn sc_sparse(p: usize) -> ModelScenario {
    scenario(
        "sparse_allreduce_tree",
        p,
        Arc::new(|mut t: ModelTransport| {
            let rank = t.rank();
            let dense: Vec<f32> = order_sensitive_input(rank, 6)
                .into_iter()
                .enumerate()
                .map(|(j, x)| if (rank + j).is_multiple_of(2) { x } else { 0.0 })
                .collect();
            let mut sv = SparseVec::from_dense(&dense);
            wire(sparse_allreduce_tree(&mut t, &mut sv))?;
            Ok(sv.to_dense())
        }),
        0,
        true,
        true,
    )
}

fn sc_ring(p: usize) -> ModelScenario {
    scenario(
        "allreduce_ring",
        p,
        Arc::new(|mut t: ModelTransport| {
            let mut v = order_sensitive_input(t.rank(), 4);
            wire(allreduce_ring(&mut t, &mut v))?;
            Ok(v)
        }),
        0,
        true,
        true,
    )
}

fn sc_back_to_back(p: usize) -> ModelScenario {
    scenario(
        "back_to_back_allreduce",
        p,
        Arc::new(|mut t: ModelTransport| {
            let mut a = order_sensitive_input(t.rank(), 3);
            wire(allreduce_tree(&mut t, &mut a))?;
            let mut b: Vec<f32> = a.iter().map(|x| x * 0.5).collect();
            wire(allreduce_tree(&mut t, &mut b))?;
            a.extend(b);
            Ok(a)
        }),
        0,
        true,
        true,
    )
}

fn sc_hierarchical() -> ModelScenario {
    // 2 groups × 2 learners over one 4-rank world: the GroupedComm bundle
    // is assembled from subgroup views (the rank pairs of the three scopes
    // are disjoint, so their tag spaces cannot collide).
    scenario(
        "hierarchical_2x2",
        4,
        Arc::new(|t: ModelTransport| {
            let rank = t.rank();
            let group = rank / 2;
            let local = t.subgroup(&[group * 2, group * 2 + 1]);
            let leaders = if rank.is_multiple_of(2) {
                Some(t.subgroup(&[0, 2]))
            } else {
                None
            };
            let mut gc = GroupedComm {
                global: t,
                local,
                leaders,
                group,
            };
            let mut v = order_sensitive_input(rank, 4);
            wire(hierarchical_allreduce(&mut gc, &mut v))?;
            Ok(v)
        }),
        0,
        true,
        true,
    )
}

/// 2 learners + 1 shard over a 3-rank world. Learners assert their own
/// add is visible in their subsequent pull (per-src FIFO + causality);
/// the shard's final segment is the bitwise-checked result. The wildcard
/// race check stays off: the shard's arrival-order merge is *by design*
/// order-insensitive here, and the bitwise check across all
/// interleavings is the property that verifies it.
fn sc_ps(snapshot: bool) -> ModelScenario {
    let layout = PsLayout {
        p: 2,
        shards: 1,
        dim: 2,
    };
    scenario(
        if snapshot {
            "ps_snapshot"
        } else {
            "ps_transport"
        },
        3,
        Arc::new(move |t: ModelTransport| {
            let rank = t.rank();
            if rank == 2 {
                let mut t = t;
                return wire(serve_shard(&mut t, &layout, vec![0.0; 2]));
            }
            // Snapshot variant: learner 0 runs a second add+pull round, so
            // pull monotonicity is checked against a *moving* shard state.
            // Asymmetric on purpose — both learners at 2 rounds pushes the
            // interleaving count past the exhaustion budget without adding
            // coverage (the second learner's rounds are symmetric).
            let rounds = if snapshot && rank == 0 { 2usize } else { 1 };
            let delta = vec![(rank + 1) as f32, (10 * (rank + 1)) as f32];
            let mut client = PsTransportClient::new(t, layout);
            let mut prev = vec![f32::NEG_INFINITY; 2];
            for _ in 0..rounds {
                client.add(&delta).map_err(|e| e.to_string())?;
                let pulled = client
                    .pull(Duration::from_millis(50))
                    .map_err(|e| e.to_string())?;
                for ((a, d), pv) in pulled.iter().zip(&delta).zip(&prev) {
                    if a < d {
                        return Err(format!("own add not visible in pull: got {a}, sent {d}"));
                    }
                    if a < pv {
                        return Err(format!(
                            "pull went backwards: {a} after {pv} (torn snapshot)"
                        ));
                    }
                }
                prev = pulled;
            }
            client.finish().map_err(|e| e.to_string())?;
            Ok(vec![])
        }),
        0,
        false,
        true,
    )
}

fn sc_ft_fault_free(p: usize) -> ModelScenario {
    scenario(
        "ft_allreduce_fault_free",
        p,
        Arc::new(|mut t: ModelTransport| {
            let mut membership = Membership::new(t.size());
            let mut v = order_sensitive_input(t.rank(), 3);
            let out = ft_allreduce(&mut t, &mut membership, &mut v, Duration::from_millis(10))
                .map_err(|e| e.to_string())?;
            if !out.lost.is_empty() {
                return Err(format!("unexpected eviction: {:?}", out.lost));
            }
            v.push(out.epoch as f32);
            Ok(v)
        }),
        0,
        true,
        true,
    )
}

fn sc_ft_one_dead(p: usize) -> ModelScenario {
    scenario(
        "ft_allreduce_one_dead",
        p,
        Arc::new(move |mut t: ModelTransport| {
            if t.rank() == p - 1 {
                // Dies before contributing: its endpoint drop is the
                // hangup the survivors detect and evict.
                return Ok(vec![]);
            }
            let mut membership = Membership::new(p);
            let mut v = order_sensitive_input(t.rank(), 3);
            let out = ft_allreduce(&mut t, &mut membership, &mut v, Duration::from_millis(10))
                .map_err(|e| e.to_string())?;
            if out.lost != vec![p - 1] {
                return Err(format!(
                    "expected to evict rank {}, lost {:?}",
                    p - 1,
                    out.lost
                ));
            }
            v.push(out.epoch as f32);
            Ok(v)
        }),
        0,
        false,
        true,
    )
}

/// Shared tiny training fixture for the engine scenarios: 8 samples, 2
/// features, 2 classes — identical on every rank and every execution.
fn engine_fixture() -> (Dataset, Dataset) {
    let n = 8usize;
    let x: Vec<f32> = (0..n * 2)
        .map(|i| ((i * 37 % 11) as f32) / 11.0 - 0.5)
        .collect();
    let labels: Vec<usize> = (0..n).map(|i| i % 2).collect();
    let train = Dataset::new(x, labels, &[2], 2);
    let tx: Vec<f32> = (0..8).map(|i| ((i * 53 % 7) as f32) / 7.0 - 0.5).collect();
    let tlabels: Vec<usize> = (0..4).map(|i| (i + 1) % 2).collect();
    (train, Dataset::new(tx, tlabels, &[2], 2))
}

fn sc_engine_sasgd() -> ModelScenario {
    let p = 2usize;
    scenario(
        "engine_sasgd_rank",
        p,
        Arc::new(move |mut t: ModelTransport| {
            let rank = t.rank();
            let (train, test) = engine_fixture();
            let shards = make_shards(&train, p, ShardStrategy::Contiguous);
            let cfg = TrainConfig::new(1, 2, 0.05, 7);
            let steps_per_epoch = shards
                .iter()
                .map(|s| s.len() / cfg.batch_size)
                .min()
                .ok_or("no shards")?;
            let mut rng = SeedRng::new(42);
            let model = tiny_mlp(2, 3, 2, &mut rng);
            let spec = SasgdRankSpec {
                train_set: &train,
                test_set: &test,
                cfg: &cfg,
                p,
                t: 1,
                gamma_p: GammaP::OverP,
                compression: None,
                label: format!("model-sasgd-r{rank}"),
                steps_per_epoch,
            };
            let hist =
                run_sasgd_rank(&mut t, model, &shards[rank], &spec).map_err(|e| e.to_string())?;
            hist.final_params
                .ok_or_else(|| "no final params".to_string())
        }),
        0,
        true,
        true,
    )
}

fn sc_engine_dasgd() -> ModelScenario {
    let p = 2usize;
    scenario(
        "engine_dasgd_delayed_average",
        p,
        Arc::new(move |mut t: ModelTransport| {
            let rank = t.rank();
            let (train, test) = engine_fixture();
            let shards = make_shards(&train, p, ShardStrategy::Contiguous);
            let cfg = TrainConfig::new(1, 2, 0.05, 7);
            let epoch_block = shards
                .iter()
                .map(|s| s.len() / cfg.batch_size)
                .min()
                .ok_or("no shards")?;
            let mut rng = SeedRng::new(42);
            let model = tiny_mlp(2, 3, 2, &mut rng);
            let spec = EventRankSpec {
                train_set: &train,
                test_set: &test,
                cfg: &cfg,
                p,
                label: format!("model-dasgd-r{rank}"),
                op: EventOp::DelayedAverage,
                policy: SyncPolicy::fixed(1),
                epoch_block,
                collective_tau: 1,
                history_interval: 1,
            };
            let hist = run_event_rank(&mut t, model, None, &shards[rank], &spec)
                .map_err(|e| e.to_string())?;
            hist.final_params
                .ok_or_else(|| "no final params".to_string())
        }),
        0,
        true,
        true,
    )
}

/// Downpour-style pull with retry/backoff: the learner re-requests after
/// a deadline miss (the model's timeout budget bounds how many misses an
/// interleaving may inject — mirroring `PS_PULL_RETRIES`); the shard
/// serves requests until the learner's DONE. Every interleaving must end
/// with the learner holding the reply.
fn sc_downpour_retry() -> ModelScenario {
    const REQ: u64 = 7;
    const REP: u64 = 8;
    const DONE: u64 = 9;
    scenario(
        "downpour_pull_retry",
        2,
        Arc::new(|mut t: ModelTransport| {
            if t.rank() == 0 {
                let mut got = None;
                for _attempt in 0..3 {
                    wire(t.send(1, REQ, vec![1.0]))?;
                    match t.recv_deadline(1, REP, Duration::from_millis(20)) {
                        Ok(v) => {
                            got = Some(v);
                            break;
                        }
                        Err(CommError::Timeout { .. }) => continue,
                        Err(e) => return Err(e.to_string()),
                    }
                }
                wire(t.send(1, DONE, vec![f32::from_bits(u32::MAX)]))?;
                got.ok_or_else(|| "pull retries exhausted".to_string())
            } else {
                let cands = [(0usize, REQ), (0, DONE)];
                loop {
                    let (_, v) = wire(t.recv_any(&cands))?;
                    if v.first().map(|f| f.to_bits()) == Some(u32::MAX) {
                        return Ok(vec![]);
                    }
                    // A reply to a stale retried request may find the
                    // learner already gone — best-effort, like the real PS.
                    match t.send(0, REP, vec![42.0]) {
                        Ok(()) | Err(CommError::PeerGone { .. }) => {}
                        Err(e) => return Err(e.to_string()),
                    }
                }
            }
        }),
        // Two deadline misses per interleaving: the third attempt must be
        // served (exactly the retry ladder's worst case).
        2,
        true,
        true,
    )
}

/// The exhaustive (p ≤ 4) production corpus.
pub fn model_scenarios() -> Vec<ModelScenario> {
    vec![
        sc_allreduce_tree(2, "allreduce_tree_p2"),
        sc_allreduce_tree(3, "allreduce_tree_p3"),
        sc_allreduce_tree(4, "allreduce_tree_p4"),
        sc_reduce_root1(4),
        sc_sparse(3),
        sc_ring(3),
        sc_back_to_back(3),
        sc_hierarchical(),
        sc_ps(false),
        sc_ps(true),
        sc_ft_fault_free(3),
        sc_ft_one_dead(3),
        sc_engine_sasgd(),
        sc_engine_dasgd(),
        sc_downpour_retry(),
    ]
}

/// Run the whole production sweep: exhaustive DPOR at p ≤ 4, seeded
/// bounded search at p = 8.
pub fn run_model_sweep() -> Vec<ModelScenarioResult> {
    let mut out: Vec<ModelScenarioResult> =
        model_scenarios().iter().map(explore_exhaustive).collect();
    let p8 = sc_allreduce_tree(8, "allreduce_tree_p8_bounded");
    out.push(explore_random(&p8, 12, 0x0005_a56d));
    let ring8 = ModelScenario {
        name: "allreduce_ring_p8_bounded",
        ..sc_ring(8)
    };
    out.push(explore_random(&ring8, 8, 0x00c0_ffee));
    out
}

// ---------------------------------------------------------------------------
// Negative controls: the implanted bugs the checker must catch.
// ---------------------------------------------------------------------------

/// What the model checker's self-check produced. Every field must hold
/// for the analyzer to report `ok` — a silently dead checker cannot go
/// green.
#[derive(Debug, Clone)]
pub struct ModelSelfCheck {
    /// Races found in the implanted arrival-order reduce.
    pub bad_reduce_races: usize,
    /// Minimal replay string witnessing the race.
    pub bad_reduce_witness: String,
    /// Replaying the witness re-detects the race deterministically.
    pub bad_reduce_replay_confirms: bool,
    /// Lost updates found in the implanted load/store PS cell.
    pub lost_updates_caught: usize,
    /// Replay string for the first lost update.
    pub lost_update_witness: String,
    /// The read-modify-write twin of the same access pattern is clean.
    pub rmw_clean: bool,
    /// The implanted recv cycle was detected structurally.
    pub cycle_caught: bool,
    /// The cycle report (names every blocked `(src, tag)` edge).
    pub cycle_report: String,
}

impl ModelSelfCheck {
    /// All implanted bugs caught, by the right detector, with replayable
    /// witnesses.
    pub fn ok(&self) -> bool {
        self.bad_reduce_races > 0
            && !self.bad_reduce_witness.is_empty()
            && self.bad_reduce_replay_confirms
            && self.lost_updates_caught > 0
            && self.rmw_clean
            && self.cycle_caught
            && self.cycle_report.contains("blocked on")
    }
}

/// The implanted arrival-order reduce over the model world: the root's
/// wildcard receive can match concurrent, bitwise-different children —
/// a happens-before race the checker must flag (with a replay string).
pub fn sc_bad_reduce() -> ModelScenario {
    scenario(
        "bad_reduce_arrival_order",
        3,
        Arc::new(|mut t: ModelTransport| {
            let mut v = order_sensitive_input(t.rank(), 4);
            bad_reduce_arrival_order(&mut t, 0, &mut v);
            Ok(v)
        }),
        0,
        true,
        false,
    )
}

/// The implanted PS lost update: read-then-blind-write on a shared cell.
pub fn sc_lost_update() -> ModelScenario {
    scenario(
        "implanted_lost_update",
        2,
        Arc::new(|mut t: ModelTransport| {
            let v = t.cell_load(0).map_err(|e| e.to_string())?;
            t.cell_store(0, v + 1.0).map_err(|e| e.to_string())?;
            Ok(vec![])
        }),
        0,
        false,
        false,
    )
}

/// The clean twin: the same increments through the scheduler-mediated
/// read-modify-write, which joins the cell clock and cannot lose writes.
pub fn sc_rmw_clean() -> ModelScenario {
    scenario(
        "rmw_increment_clean",
        2,
        Arc::new(|mut t: ModelTransport| {
            t.cell_add(0, 1.0).map_err(|e| e.to_string())?;
            Ok(vec![])
        }),
        0,
        false,
        false,
    )
}

/// The implanted recv cycle: every rank receives from its neighbour
/// before sending — a pure wait-for cycle the checker must report
/// structurally (no watchdog involved).
pub fn sc_recv_cycle() -> ModelScenario {
    scenario(
        "implanted_recv_cycle",
        2,
        Arc::new(|mut t: ModelTransport| {
            let peer = (t.rank() + 1) % 2;
            let v = t.recv(peer, 99).map_err(|e| e.to_string())?;
            wire(t.send(peer, 99, v.clone()))?;
            Ok(v)
        }),
        0,
        false,
        false,
    )
}

/// Run all negative controls and assemble the self-check verdict.
pub fn model_self_checks() -> ModelSelfCheck {
    let bad = sc_bad_reduce();
    let bad_res = explore_exhaustive(&bad);
    let bad_reduce_witness = bad_res.witness.clone().unwrap_or_default();
    let bad_reduce_replay_confirms = match crate::model::parse_witness(&bad_reduce_witness) {
        Some(prefix) if !prefix.is_empty() => {
            let rec = replay_decisions(&bad, &prefix);
            !rec.races.is_empty()
        }
        _ => false,
    };
    let lost = explore_exhaustive(&sc_lost_update());
    let rmw = explore_exhaustive(&sc_rmw_clean());
    let cyc = explore_exhaustive(&sc_recv_cycle());
    ModelSelfCheck {
        bad_reduce_races: bad_res.races,
        bad_reduce_witness,
        bad_reduce_replay_confirms,
        lost_updates_caught: lost.lost_updates,
        lost_update_witness: lost.witness.unwrap_or_default(),
        rmw_clean: rmw.lost_updates == 0 && rmw.races == 0 && rmw.cycles == 0,
        cycle_caught: cyc.cycles > 0,
        cycle_report: cyc.reports.first().cloned().unwrap_or_default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_two_rank_sends_prune_the_commuted_order() {
        // Two independent sends to different channels: 2 interleavings,
        // 1 trace — DPOR must explore one and prune the other.
        let sc = scenario(
            "two_independent_sends",
            2,
            Arc::new(|mut t: ModelTransport| {
                let peer = (t.rank() + 1) % 2;
                wire(t.send(peer, 5, vec![t.rank() as f32]))?;
                let v = wire(t.recv(peer, 5))?;
                Ok(v)
            }),
            0,
            true,
            true,
        );
        let res = explore_exhaustive(&sc);
        assert!(res.ok(), "{res:?}");
        assert!(res.exhausted);
        assert!(res.pruned > 0, "commuted order must be pruned: {res:?}");
        assert_eq!(res.distinct_results, 1);
    }

    #[test]
    fn allreduce_tree_p3_is_clean_and_exhaustive() {
        let res = explore_exhaustive(&sc_allreduce_tree(3, "allreduce_tree_p3"));
        assert!(res.ok(), "{res:?}");
        assert!(res.exhausted);
        assert!(res.explored >= 1);
    }

    #[test]
    fn bad_reduce_race_is_found_with_replayable_witness() {
        let check = model_self_checks();
        assert!(check.bad_reduce_races > 0, "{check:?}");
        assert!(check.bad_reduce_replay_confirms, "{check:?}");
        assert!(check.lost_updates_caught > 0, "{check:?}");
        assert!(check.rmw_clean, "{check:?}");
        assert!(check.cycle_caught, "{check:?}");
        assert!(check.cycle_report.contains("wait-for cycle"), "{check:?}");
        assert!(check.ok(), "{check:?}");
    }

    #[test]
    fn downpour_retry_always_ends_served() {
        let res = explore_exhaustive(&sc_downpour_retry());
        assert!(res.ok(), "{res:?}");
        // The timeout budget makes deadline branches real choices, so the
        // retry ladder itself is explored.
        assert!(res.explored > 1, "{res:?}");
    }
}

// virtual-path: crates/core/src/jitter.rs
//! Good fixture: the same helper chain seeded from the *step counter* —
//! deterministic input, so the call graph carries no taint.

fn decay_seed(step: u64) -> u64 {
    step.rotate_left(7)
}

pub fn scale_gradients(g: &mut [f32], step: u64) {
    let s = decay_seed(step);
    for x in g.iter_mut() {
        *x *= 1.0 + (s % 3) as f32 * 1e-6;
    }
}

//! Gradient compression for sparse aggregation — the paper's "sparse
//! gradient aggregation" direction grown into an adaptive family.
//!
//! Every scheme carries **error feedback** (the part of the gradient a
//! round drops is folded into the next round's accumulator, so nothing is
//! permanently lost):
//!
//! * [`Compression::TopK`] — keep the `k = ratio·m` largest-magnitude
//!   coordinates at a fixed ratio (the static scheme from PR 2);
//! * [`Compression::Uniform8Bit`] — linear quantization of every value to
//!   8 bits with a per-vector scale;
//! * [`Compression::Sparse`] — adaptive sparsification v2: a
//!   [`KSchedule`] chooses this round's k (fixed, norm-adaptive à la
//!   Deng et al., or allocated layer-wise by per-block gradient norm),
//!   optionally composed with 8-bit value quantization (`q8`) and a
//!   union-growth bound in the sparse tree reduce (`union_bound`).
//!
//! **NaN policy** (bugfix): a NaN coordinate's magnitude is treated as
//! +∞, so selection always keeps it and the poison surfaces downstream
//! instead of silently scrambling `select_nth` (whose comparator used to
//! map incomparable pairs to `Equal`, making the kept set arbitrary).
//! The f32 wire transmits the NaN as-is; the 8-bit value lane cannot
//! represent it, so quantized frames transmit 0 for that coordinate and
//! the NaN stays in the error-feedback residual, where it resurfaces
//! every round rather than vanishing.
//!
//! **Quantized exactness**: quantization happens at *compression* time —
//! the lossy dense vector holds exactly `q·scale` per coordinate, and the
//! quantization error lives in the residual. The wire can therefore ship
//! `(q, scale)` and the receiver's `q·scale` reconstruction is bitwise
//! identical to the sender's, keeping the tree reduce a plain f32 sum
//! that the simulated backend mirrors exactly.
//!
//! [`Compression::wire_elements`] prices one leaf frame for the α–β cost
//! model; [`Compression::round_wire_bounds`] brackets the exact f32
//! element count a whole tree allreduce moves on the real wire, and the
//! engine's wire-accounting test reconciles it against the threaded
//! backend's traffic counters.

use sasgd_comm::sparse::{dense8_frame_elements, sparse8_frame_elements, sparse_frame_elements};

/// Selection magnitude: NaN maps to +∞ so it is always kept (see the
/// module-level NaN policy). Identical to `v.abs()` for non-NaN input.
fn mag(v: f32) -> f32 {
    if v.is_nan() {
        f32::INFINITY
    } else {
        v.abs()
    }
}

/// `‖v‖₂` accumulated in f64. NaN coordinates yield a NaN norm (callers
/// treat that as "hold the schedule steady").
fn l2_norm(v: &[f32]) -> f64 {
    v.iter()
        .map(|&x| {
            let x = f64::from(x);
            x * x
        })
        .sum::<f64>()
        .sqrt()
}

/// Snap `v` onto the 8-bit grid `{-127..127}·scale`, returning the
/// reconstruction. `0` reconstructions are canonical `+0.0` (never
/// `-0.0`) so sparse wire frames, which drop exact zeros, round-trip the
/// dense form bitwise. NaN maps to `0.0` — the grid cannot carry it; the
/// caller's residual keeps the NaN alive.
fn quantize8(v: f32, scale: f32) -> f32 {
    if v.is_nan() {
        return 0.0;
    }
    let q = (v / scale).round().clamp(-127.0, 127.0);
    if q == 0.0 {
        0.0
    } else {
        q * scale
    }
}

/// Quantization scale for a vector whose largest magnitude is `maxabs`,
/// clamped away from zero: a subnormal `maxabs` used to underflow
/// `maxabs/127` to `0.0`, turning every `(v/scale)` into NaN (bugfix).
fn q8_scale_for(maxabs: f32) -> f32 {
    (maxabs / 127.0).max(f32::MIN_POSITIVE)
}

/// Keep the `k` largest-magnitude coordinates of `g[lo..hi]` by writing
/// them into `d[lo..hi]` (other slots untouched); returns how many were
/// written. Ties at the threshold fill in index order; exact zeros are
/// never kept (they carry no mass), so a range with fewer than `k`
/// nonzeros keeps exactly its nonzeros. `k ≥ len` copies the range
/// verbatim (lossless).
fn keep_topk(g: &[f32], lo: usize, hi: usize, k: usize, d: &mut [f32]) -> usize {
    let len = hi - lo;
    if k >= len {
        d[lo..hi].copy_from_slice(&g[lo..hi]);
        return g[lo..hi].iter().filter(|&&v| v != 0.0).count();
    }
    let mut mags: Vec<f32> = g[lo..hi].iter().map(|&v| mag(v)).collect();
    let idx = len - k;
    mags.select_nth_unstable_by(idx, f32::total_cmp);
    let thresh = mags[idx];
    let mut kept = 0usize;
    // First pass: strictly above threshold.
    for (i, &v) in g[lo..hi].iter().enumerate() {
        if mag(v) > thresh {
            d[lo + i] = v;
            kept += 1;
        }
    }
    // Second pass: fill up with values equal to the threshold (ties)
    // until exactly k are kept.
    for (i, &v) in g[lo..hi].iter().enumerate() {
        if kept == k {
            break;
        }
        if d[lo + i] == 0.0 && mag(v) == thresh && v != 0.0 {
            d[lo + i] = v;
            kept += 1;
        }
    }
    kept
}

/// Largest-remainder apportionment of `k_total` over blocks proportional
/// to `weights`, capped at per-block `caps`. Deterministic: remainder
/// goes by descending fractional part, ties to the lower block index.
/// Degenerate weights (all zero, or non-finite totals, e.g. an Inf/NaN
/// block norm) fall back to capacity-proportional allocation.
fn apportion(weights: &[f64], caps: &[usize], k_total: usize) -> Vec<usize> {
    let n = weights.len();
    let mut ks = vec![0usize; n];
    if n == 0 || k_total == 0 {
        return ks;
    }
    let total: f64 = weights.iter().sum();
    let cap_total: usize = caps.iter().sum();
    let degenerate = !(total.is_finite() && total > 0.0);
    let mut fracs: Vec<(f64, usize)> = Vec::with_capacity(n);
    let mut assigned = 0usize;
    for j in 0..n {
        let share = if degenerate {
            caps[j] as f64 / cap_total as f64
        } else {
            weights[j] / total
        };
        let quota = k_total as f64 * share;
        // lint:allow(float-cast): quota ∈ [0, k_total] by construction;
        // floor of a finite non-negative f64 fits usize here.
        let fl = (quota.floor().max(0.0) as usize).min(caps[j]);
        ks[j] = fl;
        assigned += fl;
        fracs.push((quota - fl as f64, j));
    }
    fracs.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    // Hand out the remainder one slot at a time, skipping saturated
    // blocks, until the budget is spent or every block is full.
    while assigned < k_total.min(cap_total) {
        let mut progressed = false;
        for &(_, j) in &fracs {
            if assigned == k_total.min(cap_total) {
                break;
            }
            if ks[j] < caps[j] {
                ks[j] += 1;
                assigned += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    ks
}

/// Messages a binomial-tree reduce to one root sends at each level:
/// `(subtree_size, messages)` per level, ascending. A vrank sends at its
/// lowest set bit `b`, carrying a partial that aggregates its size-`b`
/// subtree; the number of such vranks in `[1, p)` is the message count.
fn reduce_levels(p: usize) -> Vec<(usize, u64)> {
    let mut out = Vec::new();
    let mut bit = 1usize;
    while bit < p {
        let mut count = 0u64;
        let mut v = bit;
        while v < p {
            count += 1;
            v += 2 * bit;
        }
        out.push((bit, count));
        bit <<= 1;
    }
    out
}

/// Per-round k policy for [`Compression::Sparse`] — how many coordinates
/// each learner keeps, and how the budget is spread over the model.
///
/// All ratios are fractions of the model size `m`, in `(0, 1]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum KSchedule {
    /// Keep `ceil(ratio·m)` every round (the static baseline).
    Fixed {
        /// Fraction of coordinates kept.
        ratio: f64,
    },
    /// Grow/shrink the ratio with the residual-to-gradient norm ratio
    /// `ρ = ‖residual‖/‖input‖` (Deng et al.): after each round,
    /// `ratio ← clamp(ratio·(1 + gain·(ρ − target)), min, max)`.
    /// Heavy truncation (ρ above target) buys more bandwidth next round;
    /// a well-captured gradient gives bandwidth back.
    NormAdaptive {
        /// Starting ratio.
        ratio0: f64,
        /// Lower clamp for the ratio.
        ratio_min: f64,
        /// Upper clamp for the ratio.
        ratio_max: f64,
        /// Residual-norm ratio the controller steers toward.
        target: f64,
        /// Multiplicative step size of the controller.
        gain: f64,
    },
    /// A global `ceil(ratio·m)` budget allocated across parameter blocks
    /// proportional to per-block gradient L2 norm (largest-remainder
    /// apportionment, capped at block size). Blocks come from the
    /// model's parameter layout via [`KState::new`]; with no block map
    /// this degrades to `Fixed`.
    LayerWise {
        /// Fraction of coordinates kept, summed over all blocks.
        ratio: f64,
    },
}

impl KSchedule {
    /// Fixed-ratio schedule.
    pub fn fixed(ratio: f64) -> Self {
        KSchedule::Fixed { ratio }
    }

    /// Norm-adaptive schedule with default controller settings: clamp to
    /// `[ratio0/4, min(16·ratio0, 1)]`, steer toward `ρ = 0.95`, gain
    /// `0.5`.
    pub fn norm_adaptive(ratio0: f64) -> Self {
        KSchedule::NormAdaptive {
            ratio0,
            ratio_min: ratio0 / 4.0,
            ratio_max: (16.0 * ratio0).min(1.0),
            target: 0.95,
            gain: 0.5,
        }
    }

    /// Layer-wise budget allocation at a fixed global ratio.
    pub fn layer_wise(ratio: f64) -> Self {
        KSchedule::LayerWise { ratio }
    }

    /// The ratio the schedule starts from.
    fn base_ratio(&self) -> f64 {
        match *self {
            KSchedule::Fixed { ratio } | KSchedule::LayerWise { ratio } => ratio,
            KSchedule::NormAdaptive { ratio0, .. } => ratio0,
        }
    }

    /// The range the per-round ratio can occupy over a run.
    pub fn ratio_bounds(&self) -> (f64, f64) {
        match *self {
            KSchedule::Fixed { ratio } | KSchedule::LayerWise { ratio } => (ratio, ratio),
            KSchedule::NormAdaptive {
                ratio_min,
                ratio_max,
                ..
            } => (ratio_min, ratio_max),
        }
    }

    /// The range of per-round kept-coordinate budgets for an `m`-element
    /// gradient.
    pub fn k_bounds(&self, m: usize) -> (usize, usize) {
        let (lo, hi) = self.ratio_bounds();
        (ratio_to_k(lo, m), ratio_to_k(hi, m))
    }

    /// Validate the schedule's parameters.
    ///
    /// # Panics
    /// Panics if a ratio is outside `(0, 1]`, bounds are inverted, or the
    /// controller constants are non-finite.
    pub fn validate(&self) {
        let ok_ratio = |r: f64| r > 0.0 && r <= 1.0;
        match *self {
            KSchedule::Fixed { ratio } | KSchedule::LayerWise { ratio } => {
                assert!(ok_ratio(ratio), "k-schedule ratio must be in (0,1]");
            }
            KSchedule::NormAdaptive {
                ratio0,
                ratio_min,
                ratio_max,
                target,
                gain,
            } => {
                assert!(
                    ok_ratio(ratio0) && ok_ratio(ratio_min) && ok_ratio(ratio_max),
                    "k-schedule ratio must be in (0,1]"
                );
                assert!(
                    ratio_min <= ratio0 && ratio0 <= ratio_max,
                    "norm-adaptive bounds must bracket ratio0"
                );
                assert!(
                    target.is_finite() && gain.is_finite(),
                    "norm-adaptive controller constants must be finite"
                );
            }
        }
    }

    /// Short label tag, e.g. `k1.0%`, `adk1.0%`, `lwk1.0%`.
    pub fn tag(&self) -> String {
        match *self {
            KSchedule::Fixed { ratio } => format!("k{:.1}%", ratio * 100.0),
            KSchedule::NormAdaptive { ratio0, .. } => format!("adk{:.1}%", ratio0 * 100.0),
            KSchedule::LayerWise { ratio } => format!("lwk{:.1}%", ratio * 100.0),
        }
    }
}

/// `ceil(ratio·m)` clamped to `[1, m]` (0 for an empty vector).
fn ratio_to_k(ratio: f64, m: usize) -> usize {
    // lint:allow(float-cast): ceil of ratio·m with ratio ∈ (0,1] is an
    // exact integer ≤ m; the clamp bounds any edge case.
    ((m as f64 * ratio).ceil() as usize).clamp(1.min(m), m)
}

/// Per-learner mutable schedule state: the current ratio of a
/// [`KSchedule`], the model's parameter-block map for layer-wise
/// allocation, and the last round's outcome for instrumentation.
///
/// Each learner owns one `KState` for the whole run; both backends drive
/// it with the same inputs in the same order, so the schedule itself is
/// deterministic and backend-agnostic.
#[derive(Clone, Debug)]
pub struct KState {
    schedule: KSchedule,
    ratio_now: f64,
    blocks: Vec<(usize, usize)>,
    /// Nonzero coordinates actually transmitted last round.
    pub last_k: usize,
    /// `‖residual‖₂` after the last round.
    pub last_residual_norm: f64,
}

impl KState {
    /// Fresh state for `c`. `blocks` is the model's per-layer parameter
    /// block map (`Model::param_blocks`); only `LayerWise` reads it.
    ///
    /// # Panics
    /// Panics on invalid [`Compression::Sparse`] schedule parameters (see
    /// [`KSchedule::validate`]); the legacy schemes validate their own
    /// ratio at compression time.
    pub fn new(c: &Compression, blocks: Vec<(usize, usize)>) -> Self {
        let schedule = match *c {
            Compression::Sparse { k, .. } => {
                k.validate();
                k
            }
            Compression::TopK { ratio } => KSchedule::Fixed { ratio },
            Compression::Uniform8Bit => KSchedule::Fixed { ratio: 1.0 },
        };
        KState {
            schedule,
            ratio_now: schedule.base_ratio(),
            blocks,
            last_k: 0,
            last_residual_norm: 0.0,
        }
    }

    /// The ratio the next round will use.
    pub fn ratio(&self) -> f64 {
        self.ratio_now
    }
}

/// A gradient compression scheme.
///
/// ```
/// use sasgd_core::Compression;
/// let g = [0.1f32, -5.0, 0.2, 3.0];
/// let c = Compression::TopK { ratio: 0.5 }.compress(&g);
/// // The two largest-magnitude coordinates survive; the rest feed the
/// // error-feedback residual.
/// assert_eq!(c.dense, vec![0.0, -5.0, 0.0, 3.0]);
/// assert_eq!(c.residual, vec![0.1, 0.0, 0.2, 0.0]);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Compression {
    /// Keep the largest `ratio·m` coordinates (0 < ratio ≤ 1); the rest
    /// stay in the sender's residual.
    TopK {
        /// Fraction of coordinates kept.
        ratio: f64,
    },
    /// 8-bit linear quantization of every coordinate.
    Uniform8Bit,
    /// Adaptive sparsification: a [`KSchedule`] picks each round's k,
    /// optionally composed with 8-bit value quantization and a
    /// union-growth bound in the sparse tree.
    Sparse {
        /// Per-round k policy.
        k: KSchedule,
        /// Quantize kept values to 8 bits (the composed
        /// sparsify+quantize wire codec, ~`k/4 + k` elements vs `2k`).
        q8: bool,
        /// Re-TopK merged partials at every tree level so nnz cannot
        /// grow with depth; trimmed mass folds back into rank-local
        /// residuals.
        union_bound: bool,
    },
}

/// Outcome of compressing one gradient vector.
pub struct Compressed {
    /// The reconstructed (lossy) dense vector that will be aggregated.
    pub dense: Vec<f32>,
    /// The residual to fold into the next accumulation (error feedback).
    pub residual: Vec<f32>,
    /// Nonzero coordinates in `dense` (what the sparse wire transmits).
    pub k_eff: usize,
    /// The schedule's kept-coordinate budget this round (`m` when the
    /// scheme is not sparse); also the union bound in the sparse tree.
    pub k_budget: usize,
    /// `‖residual‖₂`.
    pub residual_norm: f64,
    /// Quantization scale when values are on the 8-bit grid
    /// (`Uniform8Bit`, or `Sparse` with `q8`): every nonzero of `dense`
    /// is exactly `q·scale` for an integer `q ∈ [-127, 127]`.
    pub q8_scale: Option<f32>,
}

impl Compression {
    /// Compress `g` statelessly: adaptive schedules run from their
    /// starting ratio with no block map. Prefer
    /// [`Compression::compress_with`] inside a run.
    ///
    /// # Panics
    /// Panics if a ratio is outside `(0, 1]`.
    pub fn compress(&self, g: &[f32]) -> Compressed {
        self.compress_with(g, &mut KState::new(self, Vec::new()))
    }

    /// Compress `g`, returning the lossy dense reconstruction plus the
    /// residual, and advance the schedule state.
    ///
    /// # Panics
    /// Panics if a ratio is outside `(0, 1]`.
    pub fn compress_with(&self, g: &[f32], state: &mut KState) -> Compressed {
        match *self {
            Compression::TopK { ratio } => {
                assert!(ratio > 0.0 && ratio <= 1.0, "top-k ratio must be in (0,1]");
                let m = g.len();
                let k = ratio_to_k(ratio, m);
                let mut c = sparse_compress(g, &[(0, m)], &[k], k, false);
                c.k_budget = k;
                state.last_k = c.k_eff;
                state.last_residual_norm = c.residual_norm;
                c
            }
            Compression::Uniform8Bit => {
                let m = g.len();
                let maxabs = g.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
                if maxabs == 0.0 {
                    return Compressed {
                        dense: g.to_vec(),
                        residual: vec![0.0; m],
                        k_eff: m,
                        k_budget: m,
                        residual_norm: 0.0,
                        q8_scale: None,
                    };
                }
                let scale = q8_scale_for(maxabs);
                let mut dense = Vec::with_capacity(m);
                let mut residual = Vec::with_capacity(m);
                for &v in g {
                    let rec = quantize8(v, scale);
                    dense.push(rec);
                    residual.push(v - rec);
                }
                let residual_norm = l2_norm(&residual);
                state.last_k = m;
                state.last_residual_norm = residual_norm;
                Compressed {
                    dense,
                    residual,
                    k_eff: m,
                    k_budget: m,
                    residual_norm,
                    q8_scale: Some(scale),
                }
            }
            Compression::Sparse { q8, .. } => {
                state.schedule.validate();
                let m = g.len();
                let k_total = ratio_to_k(state.ratio_now, m);
                let layer_wise = matches!(state.schedule, KSchedule::LayerWise { .. });
                let (blocks, ks): (Vec<(usize, usize)>, Vec<usize>) = if layer_wise
                    && state.blocks.len() > 1
                {
                    let caps: Vec<usize> = state.blocks.iter().map(|&(lo, hi)| hi - lo).collect();
                    let weights: Vec<f64> = state
                        .blocks
                        .iter()
                        .map(|&(lo, hi)| l2_norm(&g[lo..hi]))
                        .collect();
                    (state.blocks.clone(), apportion(&weights, &caps, k_total))
                } else {
                    (vec![(0, m)], vec![k_total])
                };
                let mut c = sparse_compress(g, &blocks, &ks, k_total, q8);
                if let KSchedule::NormAdaptive {
                    ratio_min,
                    ratio_max,
                    target,
                    gain,
                    ..
                } = state.schedule
                {
                    let gn = l2_norm(g);
                    let rho = if gn > 0.0 { c.residual_norm / gn } else { 0.0 };
                    let next = state.ratio_now * (1.0 + gain * (rho - target));
                    if next.is_finite() {
                        state.ratio_now = next.clamp(ratio_min, ratio_max);
                    }
                }
                c.k_budget = k_total;
                state.last_k = c.k_eff;
                state.last_residual_norm = c.residual_norm;
                c
            }
        }
    }

    /// `f32` elements of one *leaf* wire frame for an `m`-parameter
    /// gradient (for the α–β cost model): top-k ships a
    /// `[len, nnz, idx…, val…]` frame (`2 + 2k`); 8-bit ships a packed
    /// `[len, scale, q…]` frame (`2 + ⌈m/4⌉`); the composed sparse codec
    /// ships `[len, nnz, scale, idx…, q…]` (`3 + k + ⌈k/4⌉`).
    pub fn wire_elements(&self, m: usize) -> f64 {
        match *self {
            Compression::TopK { ratio } => sparse_frame_elements(ratio_to_k(ratio, m)) as f64,
            Compression::Uniform8Bit => dense8_frame_elements(m) as f64,
            Compression::Sparse { k, q8, .. } => {
                let kk = ratio_to_k(k.base_ratio(), m);
                if q8 {
                    sparse8_frame_elements(kk) as f64
                } else {
                    sparse_frame_elements(kk) as f64
                }
            }
        }
    }

    /// Bracket the total `f32` elements one allreduce round of an
    /// `m`-parameter gradient moves on the real wire: a binomial-tree
    /// reduce to rank 0 plus a broadcast of the result, exactly what the
    /// threaded backend's traffic counters measure.
    ///
    /// For `Uniform8Bit` the count is exact (min == max). For sparse
    /// schemes the bracket assumes each learner's frame carries its full
    /// k budget of nonzeros (true whenever the gradient has at least k
    /// nonzeros); the upper bound lets merged partials grow to the union
    /// of their subtree (`subtree_size·k_max`, capped at `m`) unless the
    /// scheme is union-bounded, in which case every level stays at
    /// `k_max`.
    pub fn round_wire_bounds(&self, m: usize, p: usize) -> (u64, u64) {
        if p <= 1 {
            return (0, 0);
        }
        let levels = reduce_levels(p);
        let bcast_msgs = (p - 1) as u64;
        match *self {
            Compression::Uniform8Bit => {
                // Leaf senders ship the packed frame; internal partials
                // and the result broadcast ship dense f32.
                let mut total = bcast_msgs * m as u64;
                for &(bit, n) in &levels {
                    total += n * if bit == 1 {
                        dense8_frame_elements(m) as u64
                    } else {
                        m as u64
                    };
                }
                (total, total)
            }
            Compression::TopK { ratio } => {
                let k = ratio_to_k(ratio, m);
                sparse_round_bounds(&levels, bcast_msgs, m, p, k, k, false, false)
            }
            Compression::Sparse { k, q8, union_bound } => {
                let (kmin, kmax) = k.k_bounds(m);
                sparse_round_bounds(&levels, bcast_msgs, m, p, kmin, kmax, q8, union_bound)
            }
        }
    }
}

/// Shared sparse-round bracket: leaf frames at the leaf codec size,
/// internal/broadcast frames at the f32 sparse size, nnz growing with
/// subtree size unless bounded.
#[allow(clippy::too_many_arguments)]
fn sparse_round_bounds(
    levels: &[(usize, u64)],
    bcast_msgs: u64,
    m: usize,
    p: usize,
    kmin: usize,
    kmax: usize,
    q8: bool,
    bounded: bool,
) -> (u64, u64) {
    let leaf = |nnz: usize| -> u64 {
        if q8 {
            sparse8_frame_elements(nnz) as u64
        } else {
            sparse_frame_elements(nnz) as u64
        }
    };
    let inner = |nnz: usize| sparse_frame_elements(nnz) as u64;
    let mut min = 0u64;
    let mut max = 0u64;
    for &(bit, n) in levels {
        let (lo, hi) = if bit == 1 {
            (leaf(kmin), leaf(kmax))
        } else {
            let cap = if bounded { kmax } else { (bit * kmax).min(m) };
            (inner(kmin), inner(cap))
        };
        min += n * lo;
        max += n * hi;
    }
    let bcap = if bounded { kmax } else { (p * kmax).min(m) };
    min += bcast_msgs * inner(kmin);
    max += bcast_msgs * inner(bcap);
    (min, max)
}

/// Core sparse compression: per-block top-k selection, optional 8-bit
/// quantization of the kept values, residual fill. `k_total` is the
/// whole-vector budget (used only for the lossless fast path).
fn sparse_compress(
    g: &[f32],
    blocks: &[(usize, usize)],
    ks: &[usize],
    k_total: usize,
    q8: bool,
) -> Compressed {
    let m = g.len();
    let mut d = vec![0.0f32; m];
    let mut residual = vec![0.0f32; m];
    if k_total >= m && blocks.len() == 1 && !q8 {
        // Lossless identity: preserve the input bit-for-bit (including
        // signed zeros) with an all-zero residual, as ratio-1.0 TopK
        // always has.
        d.copy_from_slice(g);
        let k_eff = g.iter().filter(|&&v| v != 0.0).count();
        return Compressed {
            dense: d,
            residual,
            k_eff,
            k_budget: k_total,
            residual_norm: 0.0,
            q8_scale: None,
        };
    }
    for (&(lo, hi), &kj) in blocks.iter().zip(ks) {
        if kj > 0 {
            keep_topk(g, lo, hi, kj, &mut d);
        }
    }
    let q8_scale = if q8 {
        let maxabs = d.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
        let scale = q8_scale_for(maxabs);
        for v in d.iter_mut() {
            if *v != 0.0 {
                *v = quantize8(*v, scale);
            }
        }
        Some(scale)
    } else {
        None
    };
    let mut k_eff = 0usize;
    let mut rsq = 0.0f64;
    for i in 0..m {
        if d[i] == 0.0 {
            residual[i] = g[i];
        } else {
            k_eff += 1;
            if q8_scale.is_some() {
                residual[i] = g[i] - d[i];
            }
        }
        let r = f64::from(residual[i]);
        rsq += r * r;
    }
    Compressed {
        dense: d,
        residual,
        k_eff,
        k_budget: k_total,
        residual_norm: rsq.sqrt(),
        q8_scale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sasgd_tensor::SeedRng;

    #[test]
    fn topk_keeps_exactly_k_and_preserves_total() {
        let g = vec![0.1, -5.0, 0.2, 3.0, -0.05, 0.0, 1.0, -0.3];
        let c = Compression::TopK { ratio: 0.25 }.compress(&g);
        let kept = c.dense.iter().filter(|&&v| v != 0.0).count();
        assert_eq!(kept, 2);
        assert_eq!(c.k_eff, 2);
        assert_eq!(c.dense[1], -5.0);
        assert_eq!(c.dense[3], 3.0);
        // dense + residual == original, coordinate-wise.
        for ((&d, &r), &o) in c.dense.iter().zip(&c.residual).zip(&g) {
            assert_eq!(d + r, o);
        }
    }

    #[test]
    fn topk_full_ratio_is_lossless() {
        let g = vec![1.0, -2.0, 3.0];
        let c = Compression::TopK { ratio: 1.0 }.compress(&g);
        assert_eq!(c.dense, g);
        assert!(c.residual.iter().all(|&r| r == 0.0));
    }

    #[test]
    fn topk_handles_ties_without_over_keeping() {
        let g = vec![2.0, -2.0, 2.0, 2.0];
        let c = Compression::TopK { ratio: 0.5 }.compress(&g);
        let kept = c.dense.iter().filter(|&&v| v != 0.0).count();
        assert_eq!(kept, 2, "exactly k survive even with ties");
    }

    #[test]
    fn topk_with_fewer_nonzeros_than_k_keeps_exactly_the_nonzeros() {
        // k = 4 but only two nonzeros: the threshold lands on 0.0 and
        // the tie pass must not promote zeros. Everything real is kept,
        // the residual is exactly zero.
        let g = vec![0.0f32, 2.0, 0.0, -1.0, 0.0, 0.0, 0.0, 0.0];
        let c = Compression::TopK { ratio: 0.5 }.compress(&g);
        assert_eq!(c.dense, g);
        assert_eq!(c.k_eff, 2);
        assert!(c.residual.iter().all(|&r| r == 0.0));
    }

    #[test]
    fn topk_keeps_nan_coordinates() {
        // Regression: `select_nth_unstable_by` used to map incomparable
        // pairs to Equal, so one NaN made the kept set arbitrary. Policy:
        // NaN magnitude is +∞ — always kept, poison surfaces downstream.
        let g = vec![1.0f32, f32::NAN, 3.0, 2.0];
        let c = Compression::TopK { ratio: 0.5 }.compress(&g);
        assert!(c.dense[1].is_nan(), "NaN coordinate must be kept");
        assert_eq!(c.dense[2], 3.0, "largest finite coordinate rides along");
        assert_eq!(c.dense[0], 0.0);
        assert_eq!(c.dense[3], 0.0);
        assert_eq!(c.residual[0], 1.0);
        assert_eq!(c.residual[1], 0.0);
        assert_eq!(c.residual[3], 2.0);
    }

    #[test]
    fn uniform8_subnormal_gradient_does_not_nan_poison() {
        // Regression: a subnormal maxabs underflowed `maxabs/127` to 0.0,
        // so every `(v/0.0)` became NaN/Inf and the "compressed" dense
        // vector poisoned the model.
        let g = vec![0.0f32, 1.0e-44, -1.0e-44, 0.0];
        let c = Compression::Uniform8Bit.compress(&g);
        for (i, (&d, &r)) in c.dense.iter().zip(&c.residual).enumerate() {
            assert!(d.is_finite(), "dense[{i}] = {d} must be finite");
            assert!(r.is_finite(), "residual[{i}] = {r} must be finite");
            assert_eq!(d + r, g[i], "mass conserved at {i}");
        }
    }

    #[test]
    fn quantized_zero_is_canonical_positive_zero() {
        // A tiny negative value rounds to q = -0.0; the reconstruction
        // must be +0.0 so the sparse wire (which drops exact zeros)
        // round-trips the dense form bitwise.
        let rec = quantize8(-1.0e-9, 1.0);
        assert_eq!(rec.to_bits(), 0.0f32.to_bits());
    }

    #[test]
    fn quantization_error_is_bounded_by_half_step() {
        let mut rng = SeedRng::new(1);
        let g: Vec<f32> = (0..1000).map(|_| rng.normal() * 3.0).collect();
        let c = Compression::Uniform8Bit.compress(&g);
        let maxabs = g.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
        let step = maxabs / 127.0;
        for (&r, &o) in c.residual.iter().zip(&g) {
            assert!(r.abs() <= step / 2.0 + 1e-6, "residual {r} vs step {step}");
            let _ = o;
        }
    }

    #[test]
    fn quantization_of_zero_vector_is_identity() {
        let g = vec![0.0f32; 8];
        let c = Compression::Uniform8Bit.compress(&g);
        assert_eq!(c.dense, g);
    }

    #[test]
    fn sparse_fixed_matches_topk_bitwise() {
        let mut rng = SeedRng::new(7);
        let g: Vec<f32> = (0..257).map(|_| rng.normal()).collect();
        let a = Compression::TopK { ratio: 0.25 }.compress(&g);
        let b = Compression::Sparse {
            k: KSchedule::fixed(0.25),
            q8: false,
            union_bound: false,
        }
        .compress(&g);
        for i in 0..g.len() {
            assert_eq!(a.dense[i].to_bits(), b.dense[i].to_bits());
            assert_eq!(a.residual[i].to_bits(), b.residual[i].to_bits());
        }
        assert_eq!(a.k_eff, b.k_eff);
    }

    #[test]
    fn composed_q8_values_sit_exactly_on_the_grid() {
        let mut rng = SeedRng::new(3);
        let g: Vec<f32> = (0..512).map(|_| rng.normal() * 2.0).collect();
        let c = Compression::Sparse {
            k: KSchedule::fixed(0.1),
            q8: true,
            union_bound: false,
        }
        .compress(&g);
        let scale = c.q8_scale.expect("composed codec sets a scale");
        let step = f64::from(scale);
        for (i, (&d, &r)) in c.dense.iter().zip(&c.residual).enumerate() {
            if d != 0.0 {
                // Exactly representable as q·scale — the wire recovers q
                // by rounding and reconstructs bitwise.
                let q = (d / scale).round();
                assert!(q.abs() <= 127.0);
                assert_eq!((q * scale).to_bits(), d.to_bits(), "coord {i}");
                // Kept coordinates obey the half-step quantization bound.
                assert!(
                    f64::from(r.abs()) <= step / 2.0 + 1e-9,
                    "residual {r} vs step {step} at {i}"
                );
            }
        }
    }

    #[test]
    fn composed_q8_transmits_zero_for_nan_and_keeps_it_in_residual() {
        let g = vec![1.0f32, f32::NAN, 3.0, 2.0];
        let c = Compression::Sparse {
            k: KSchedule::fixed(0.5),
            q8: true,
            union_bound: false,
        }
        .compress(&g);
        assert_eq!(c.dense[1], 0.0, "q8 grid cannot carry NaN");
        assert!(c.residual[1].is_nan(), "NaN persists in the residual");
        assert!(c.dense[2] != 0.0, "finite top coordinate still travels");
    }

    #[test]
    fn norm_adaptive_ratio_grows_under_heavy_truncation() {
        // Flat magnitudes: keeping 5% leaves ρ ≈ √0.95 > target, so the
        // controller should buy more bandwidth.
        let comp = Compression::Sparse {
            k: KSchedule::NormAdaptive {
                ratio0: 0.05,
                ratio_min: 0.0125,
                ratio_max: 0.8,
                target: 0.5,
                gain: 0.5,
            },
            q8: false,
            union_bound: false,
        };
        let mut state = KState::new(&comp, Vec::new());
        let g: Vec<f32> = (0..400).map(|i| 1.0 + (i % 7) as f32 * 0.01).collect();
        let r0 = state.ratio();
        for _ in 0..5 {
            comp.compress_with(&g, &mut state);
        }
        assert!(
            state.ratio() > r0 * 1.2,
            "ratio should grow: {r0} -> {}",
            state.ratio()
        );
        assert!(state.ratio() <= 0.8);
    }

    #[test]
    fn norm_adaptive_ratio_shrinks_when_residual_is_small() {
        // One dominant coordinate: k=1 already captures almost all mass,
        // ρ ≈ 0 < target, so the controller gives bandwidth back.
        let comp = Compression::Sparse {
            k: KSchedule::NormAdaptive {
                ratio0: 0.25,
                ratio_min: 0.01,
                ratio_max: 0.5,
                target: 0.5,
                gain: 0.5,
            },
            q8: false,
            union_bound: false,
        };
        let mut state = KState::new(&comp, Vec::new());
        let mut g = vec![1.0e-6f32; 64];
        g[11] = 100.0;
        let r0 = state.ratio();
        for _ in 0..5 {
            comp.compress_with(&g, &mut state);
        }
        assert!(
            state.ratio() < r0 * 0.8,
            "ratio should shrink: {r0} -> {}",
            state.ratio()
        );
        assert!(state.ratio() >= 0.01);
    }

    #[test]
    fn layer_wise_allocates_budget_by_block_norm() {
        let comp = Compression::Sparse {
            k: KSchedule::layer_wise(0.5),
            q8: false,
            union_bound: false,
        };
        // Block 0 carries essentially all the gradient mass.
        let mut state = KState::new(&comp, vec![(0, 4), (4, 8)]);
        let g = vec![10.0f32, 9.0, 8.0, 7.0, 0.1, 0.1, 0.1, 0.1];
        let c = comp.compress_with(&g, &mut state);
        assert_eq!(c.k_eff, 4);
        assert_eq!(&c.dense[..4], &g[..4], "budget lands on the heavy block");
        assert!(c.dense[4..].iter().all(|&v| v == 0.0));
        // Balanced blocks split the budget.
        let mut state = KState::new(&comp, vec![(0, 4), (4, 8)]);
        let g = vec![5.0f32, 4.0, 0.1, 0.1, 5.0, 4.0, 0.1, 0.1];
        let c = comp.compress_with(&g, &mut state);
        let kept0 = c.dense[..4].iter().filter(|&&v| v != 0.0).count();
        let kept1 = c.dense[4..].iter().filter(|&&v| v != 0.0).count();
        assert_eq!((kept0, kept1), (2, 2));
    }

    #[test]
    fn apportionment_is_exact_and_capped() {
        // Largest-remainder: budgets sum exactly to k_total when
        // capacity allows, and never exceed a block's size.
        let ks = apportion(&[3.0, 1.0, 1.0], &[10, 10, 10], 10);
        assert_eq!(ks.iter().sum::<usize>(), 10);
        assert_eq!(ks[0], 6);
        let ks = apportion(&[100.0, 1.0], &[2, 10], 8);
        assert_eq!(ks[0], 2, "saturated block stays capped");
        assert_eq!(ks.iter().sum::<usize>(), 8, "spill goes to open blocks");
        // Degenerate (all-zero) weights fall back to capacity shares.
        let ks = apportion(&[0.0, 0.0], &[4, 12], 4);
        assert_eq!(ks.iter().sum::<usize>(), 4);
        assert!(ks[1] >= ks[0]);
    }

    #[test]
    fn wire_elements_shrink() {
        let m = 506_378;
        assert!(Compression::TopK { ratio: 0.01 }.wire_elements(m) < m as f64 * 0.03);
        let packed = 2.0 + (m as f64 / 4.0).ceil();
        assert!((Compression::Uniform8Bit.wire_elements(m) - packed).abs() < 1e-9);
        let composed = Compression::Sparse {
            k: KSchedule::fixed(0.01),
            q8: true,
            union_bound: false,
        };
        let plain = Compression::Sparse {
            k: KSchedule::fixed(0.01),
            q8: false,
            union_bound: false,
        };
        assert!(composed.wire_elements(m) < plain.wire_elements(m) * 0.7);
    }

    #[test]
    fn round_wire_bounds_uniform8_is_exact_and_below_dense() {
        // p=4 tree: two leaf sends (packed), one internal send (dense m),
        // three broadcast messages (dense m).
        let (m, p) = (1000usize, 4usize);
        let packed = dense8_frame_elements(m) as u64;
        let (lo, hi) = Compression::Uniform8Bit.round_wire_bounds(m, p);
        assert_eq!(lo, hi, "uniform8 accounting is exact");
        assert_eq!(lo, 2 * packed + m as u64 + 3 * m as u64);
        let dense_round = 2 * (p as u64 - 1) * m as u64;
        assert!(lo < dense_round);
    }

    #[test]
    fn round_wire_bounds_bracket_union_growth() {
        let (m, p) = (10_000usize, 8usize);
        let fixed = Compression::Sparse {
            k: KSchedule::fixed(0.01),
            q8: false,
            union_bound: false,
        };
        let bounded = Compression::Sparse {
            k: KSchedule::fixed(0.01),
            q8: false,
            union_bound: true,
        };
        let (lo_f, hi_f) = fixed.round_wire_bounds(m, p);
        let (lo_b, hi_b) = bounded.round_wire_bounds(m, p);
        assert!(lo_f <= hi_f);
        assert_eq!(lo_f, lo_b, "full-overlap floor is codec-independent");
        assert!(
            hi_b < hi_f,
            "union bound caps depth growth: {hi_b} vs {hi_f}"
        );
        assert!(lo_b <= hi_b);
        // p=1: no communication at all.
        assert_eq!(fixed.round_wire_bounds(m, 1), (0, 0));
    }

    #[test]
    fn error_feedback_recovers_dropped_mass() {
        // Repeatedly compressing (gradient + residual) must transmit every
        // coordinate's mass eventually: after many rounds of a constant
        // gradient, the cumulative transmitted vector approaches
        // rounds × gradient.
        let g = vec![1.0f32, 0.2, 0.05, -0.6];
        let comp = Compression::TopK { ratio: 0.25 };
        let mut residual = vec![0.0f32; 4];
        let mut transmitted = [0.0f32; 4];
        let rounds = 40;
        for _ in 0..rounds {
            let input: Vec<f32> = g.iter().zip(&residual).map(|(a, b)| a + b).collect();
            let c = comp.compress(&input);
            for (t, &d) in transmitted.iter_mut().zip(&c.dense) {
                *t += d;
            }
            residual = c.residual;
        }
        for (i, (&t, &gi)) in transmitted.iter().zip(&g).enumerate() {
            let expect = gi * rounds as f32;
            assert!(
                (t - expect).abs() <= gi.abs().max(1.0) * 2.0,
                "coord {i}: transmitted {t} vs {expect}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "top-k ratio")]
    fn bad_ratio_rejected() {
        Compression::TopK { ratio: 0.0 }.compress(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "ratio must be in (0,1]")]
    fn bad_schedule_ratio_rejected() {
        Compression::Sparse {
            k: KSchedule::fixed(1.5),
            q8: false,
            union_bound: false,
        }
        .compress(&[1.0]);
    }
}

//! Parallel iteration over index ranges (`into_par_iter`).

use crate::{map_collect_range, run_indexed};
use std::ops::Range;

/// Conversion into a parallel iterator (implemented for `Range<usize>`).
pub trait IntoParallelIterator {
    /// The parallel-iterator type produced.
    type Iter;

    /// Convert.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;

    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// Parallel iterator over a `Range<usize>`.
pub struct ParRange {
    range: Range<usize>,
}

impl ParRange {
    /// Apply `op(i)` for each index, in parallel.
    pub fn for_each<F: Fn(usize) + Sync>(self, op: F) {
        let start = self.range.start;
        let n = self.range.end.saturating_sub(start);
        run_indexed(n, move |i| op(start + i));
    }

    /// Map each index through `f`; collect with `.collect::<Vec<_>>()`.
    pub fn map<T, F>(self, f: F) -> ParMap<T, F>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        ParMap {
            range: self.range,
            f,
            _marker: std::marker::PhantomData,
        }
    }
}

/// `into_par_iter().map(f)` — eager on `collect`/`for_each`.
pub struct ParMap<T: Send, F: Fn(usize) -> T + Sync> {
    range: Range<usize>,
    f: F,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Send, F: Fn(usize) -> T + Sync> ParMap<T, F> {
    /// Run the map in parallel, collecting results in index order.
    /// (Only `Vec<T>` collection is supported by this mini-rayon.)
    pub fn collect<C: FromIndexedResults<T>>(self) -> C {
        C::from_vec(map_collect_range(self.range, self.f))
    }
}

/// Collection targets for [`ParMap::collect`].
pub trait FromIndexedResults<T> {
    /// Build from results already in index order.
    fn from_vec(v: Vec<T>) -> Self;
}

impl<T> FromIndexedResults<T> for Vec<T> {
    fn from_vec(v: Vec<T>) -> Self {
        v
    }
}

//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro all [--scale 0|1|2] [--epochs N] [--out DIR]
//! repro fig1|fig2|...|fig10|table1|table2|theorem1|theorem2 [flags]
//! ```
//!
//! Reports print to stdout; reports and CSV series are also written under
//! `--out` (default `target/repro/`).

use std::path::PathBuf;
use std::process::ExitCode;

use sasgd_bench::engine;
use sasgd_bench::extensions;
use sasgd_bench::faults;
use sasgd_bench::figures::{self, Artifact};
use sasgd_bench::Scale;
use sasgd_bench::{hotpath, kernels};
use sasgd_core::report::write_file;

/// Count heap traffic so the `hotpath` target can report per-step
/// steady-state allocation numbers.
#[global_allocator]
static GLOBAL: sasgd_bench::alloc::CountingAllocator = sasgd_bench::alloc::CountingAllocator;

struct Options {
    targets: Vec<String>,
    scale: Scale,
    epochs: Option<usize>,
    out: PathBuf,
    /// `analyze` also runs the DPOR model-checker leg.
    model: bool,
}

const ALL: &[&str] = &[
    "table1", "table2", "fig1", "fig2", "fig3", "theorem1", "theorem2", "fig4", "fig5", "fig6",
    "fig7", "fig8", "fig9", "fig10",
];

/// Extension artifacts beyond the paper (run via `ext` or by name).
const EXTENSIONS: &[&str] = &[
    "kernels",
    "hotpath",
    "engine",
    "faults",
    "async",
    "sparsity",
    "staleness",
    "compression",
    "noniid",
    "whatif",
    "gradnorm",
    "hierarchy",
    "timeline",
    "analyze",
    "launch",
];

fn usage() -> String {
    format!(
        "usage: repro <target>... [--scale 0|1|2] [--epochs N] [--out DIR] [--model]\n\
         targets: all {} | ext {}\n",
        ALL.join(" "),
        EXTENSIONS.join(" ")
    )
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        targets: Vec::new(),
        scale: Scale::Tiny,
        epochs: None,
        out: PathBuf::from("target/repro"),
        model: false,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                let v = args.get(i).ok_or("--scale needs a value")?;
                opts.scale = Scale::parse(v).ok_or(format!("bad scale {v:?}"))?;
            }
            "--epochs" => {
                i += 1;
                let v = args.get(i).ok_or("--epochs needs a value")?;
                opts.epochs = Some(v.parse().map_err(|_| format!("bad epoch count {v:?}"))?);
            }
            "--out" => {
                i += 1;
                opts.out = PathBuf::from(args.get(i).ok_or("--out needs a value")?);
            }
            "--model" => opts.model = true,
            "all" => opts.targets.extend(ALL.iter().map(|s| s.to_string())),
            "ext" => opts
                .targets
                .extend(EXTENSIONS.iter().map(|s| s.to_string())),
            t if ALL.contains(&t) || EXTENSIONS.contains(&t) => opts.targets.push(t.to_string()),
            other => return Err(format!("unknown argument {other:?}\n{}", usage())),
        }
        i += 1;
    }
    if opts.targets.is_empty() {
        return Err(usage());
    }
    Ok(opts)
}

/// Build one artifact. The second element is the target's verdict: only
/// `analyze` can fail; every other target reports unconditionally.
fn build(target: &str, o: &Options) -> (Artifact, bool) {
    if target == "analyze" {
        return sasgd_bench::analysis::analyze(o.model);
    }
    if target == "launch" {
        return sasgd_bench::launch::launch();
    }
    let artifact = match target {
        "table1" => figures::table1(),
        "table2" => figures::table2(),
        "fig1" => figures::fig1(),
        "fig2" => figures::fig2(o.scale, o.epochs),
        "fig3" => figures::fig3(o.scale, o.epochs),
        "theorem1" => figures::theorem1(),
        "theorem2" => figures::theorem2(),
        "fig4" => figures::fig4(),
        "fig5" => figures::fig5(),
        "fig6" => figures::fig6(),
        "fig7" => figures::fig7(o.scale, o.epochs),
        "fig8" => figures::fig8(o.scale, o.epochs),
        "fig9" => figures::fig9(o.scale, o.epochs),
        "fig10" => figures::fig10(o.scale, o.epochs),
        "kernels" => kernels::kernels(),
        "hotpath" => hotpath::hotpath(),
        "engine" => engine::engine(o.scale, o.epochs),
        "faults" => faults::faults(o.scale, o.epochs),
        "async" => sasgd_bench::async_bench::async_lattice(o.scale, o.epochs),
        "sparsity" => sasgd_bench::sparsity::sparsity(o.scale, o.epochs),
        "staleness" => extensions::staleness(o.scale, o.epochs),
        "compression" => extensions::compression(o.scale, o.epochs),
        "noniid" => extensions::noniid(o.scale, o.epochs),
        "whatif" => extensions::whatif(),
        "gradnorm" => extensions::gradnorm(o.scale, o.epochs),
        "hierarchy" => extensions::hierarchy(o.scale, o.epochs),
        "timeline" => extensions::timeline(),
        _ => unreachable!("validated in parse_args"),
    };
    (artifact, true)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Hidden subcommand: `repro _rank ...` is this binary re-invoked by the
    // `launch` target as one rank of a multi-process SASGD world.
    if args.first().is_some_and(|a| a == "_rank") {
        return match sasgd_bench::launch::rank_main(&args[1..]) {
            0 => ExitCode::SUCCESS,
            _ => ExitCode::FAILURE,
        };
    }
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let mut failed = false;
    for target in &opts.targets {
        let t0 = std::time::Instant::now();
        let (artifact, ok) = build(target, &opts);
        if !ok {
            failed = true;
        }
        println!("{}", "=".repeat(78));
        println!("{}", artifact.report);
        let report_path = opts.out.join(format!("{}.txt", artifact.name));
        if let Err(e) = write_file(&report_path, &artifact.report) {
            eprintln!("failed to write {}: {e}", report_path.display());
            return ExitCode::FAILURE;
        }
        for (file, content) in &artifact.csvs {
            let p = opts.out.join(file);
            if let Err(e) = write_file(&p, content) {
                eprintln!("failed to write {}: {e}", p.display());
                return ExitCode::FAILURE;
            }
        }
        eprintln!(
            "[{target}] {} in {:.1}s -> {}",
            if ok { "done" } else { "FAILED" },
            t0.elapsed().as_secs_f64(),
            opts.out.display()
        );
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

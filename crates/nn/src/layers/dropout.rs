//! Inverted dropout, matching Torch's `nn.Dropout` (the paper's stack).

use sasgd_tensor::Tensor;

use crate::layer::{Ctx, Layer};

/// Randomly zero activations with probability `p` during training, scaling
/// survivors by `1/(1-p)` so evaluation needs no correction.
pub struct Dropout {
    p: f32,
    /// Persistent mask buffer, refilled each stochastic forward.
    mask: Vec<f32>,
    mask_valid: bool,
}

impl Dropout {
    /// New dropout with drop probability `p` (the paper uses 0.5).
    ///
    /// # Panics
    /// Panics unless `0 <= p < 1`.
    pub fn new(p: f32) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "drop probability must be in [0, 1)"
        );
        Dropout {
            p,
            mask: Vec::new(),
            mask_valid: false,
        }
    }

    /// The drop probability.
    pub fn prob(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn name(&self) -> &'static str {
        "Dropout"
    }

    fn forward(&mut self, mut input: Tensor, ctx: &mut Ctx) -> Tensor {
        if !ctx.stochastic || self.p == 0.0 {
            self.mask_valid = false; // identity pass: backward must not reuse a stale mask
            return input;
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        self.mask.clear();
        // One Bernoulli draw per element, in element order — the exact RNG
        // consumption the reproduction's seeds depend on.
        for _ in 0..input.numel() {
            self.mask
                .push(if ctx.rng.bernoulli(keep) { scale } else { 0.0 });
        }
        for (x, &m) in input.as_mut_slice().iter_mut().zip(&self.mask) {
            *x *= m;
        }
        self.mask_valid = true;
        input
    }

    fn backward(&mut self, mut grad_out: Tensor, _ctx: &mut Ctx) -> Tensor {
        // An invalid mask means the forward pass was an identity
        // (deterministic mode or p = 0): gradients pass through unchanged.
        if self.mask_valid {
            self.mask_valid = false;
            for (g, &m) in grad_out.as_mut_slice().iter_mut().zip(&self.mask) {
                *g *= m;
            }
        }
        grad_out
    }

    fn out_shape(&self, in_dims: &[usize]) -> Vec<usize> {
        in_dims.to_vec()
    }

    fn macs(&self, in_dims: &[usize]) -> u64 {
        in_dims.iter().product::<usize>() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sasgd_tensor::SeedRng;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(0.5);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let y = d.forward(x.clone(), &mut Ctx::eval());
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn train_mode_zeroes_and_scales() {
        let mut d = Dropout::new(0.5);
        let n = 10_000;
        let x = Tensor::full(&[n], 1.0);
        let mut ctx = Ctx::train(SeedRng::new(42));
        let y = d.forward(x, &mut ctx);
        let zeros = y.as_slice().iter().filter(|&&v| v == 0.0).count();
        let kept = y
            .as_slice()
            .iter()
            .filter(|&&v| (v - 2.0).abs() < 1e-6)
            .count();
        assert_eq!(zeros + kept, n, "values are either 0 or 1/keep");
        assert!((zeros as f32 / n as f32 - 0.5).abs() < 0.03);
        // Expectation preserved: mean stays near 1.
        assert!((y.sum() / n as f32 - 1.0).abs() < 0.05);
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5);
        let x = Tensor::full(&[100], 1.0);
        let mut ctx = Ctx::train(SeedRng::new(7));
        let y = d.forward(x, &mut ctx);
        let dx = d.backward(Tensor::full(&[100], 1.0), &mut ctx);
        for (yv, dv) in y.as_slice().iter().zip(dx.as_slice()) {
            assert_eq!(yv, dv, "gradient gate must equal the forward mask");
        }
    }

    #[test]
    fn p_zero_is_identity_even_training() {
        let mut d = Dropout::new(0.0);
        let x = Tensor::from_vec(vec![4.0, 5.0], &[2]);
        let mut ctx = Ctx::train(SeedRng::new(0));
        let y = d.forward(x.clone(), &mut ctx);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn p_one_rejected() {
        Dropout::new(1.0);
    }

    #[test]
    fn measure_mode_is_identity_with_passthrough_grads() {
        let mut d = Dropout::new(0.5);
        // A training forward first, so a stale mask exists to be cleared.
        let _ = d.forward(Tensor::full(&[2], 1.0), &mut Ctx::train(SeedRng::new(1)));
        let x = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let mut mctx = Ctx::measure();
        let y = d.forward(x.clone(), &mut mctx);
        assert_eq!(y.as_slice(), x.as_slice(), "measure forward is identity");
        let dx = d.backward(Tensor::full(&[2], 3.0), &mut mctx);
        assert_eq!(dx.as_slice(), &[3.0, 3.0], "gradients pass through");
    }
}

//! # sasgd-core
//!
//! The paper's contribution and its baselines:
//!
//! * [`algorithms`] — **SASGD** (Algorithm 1 of the paper: local steps with
//!   rate `γ`, gradient accumulation `gs`, allreduce every `T` minibatches,
//!   global step with rate `γp`), plus the comparison algorithms it is
//!   evaluated against: sequential SGD, synchronous SGD (`T = 1`),
//!   **Downpour** (asynchronous sharded parameter server) and **EAMSGD**
//!   (elastic averaging), and the model-averaging heuristics discussed in
//!   §III;
//! * [`trainer`] — the event-driven distributed trainer: real gradient
//!   math on model replicas, virtual-time accounting from the
//!   `sasgd-simnet` cost model, per-epoch accuracy histories;
//! * [`threaded`] — SASGD over real OS threads using `sasgd-comm`
//!   collectives (bitwise-equal to the simulated run; used for wall-clock
//!   benches);
//! * [`epoch_time`] — the analytic epoch-time model behind Figs 1/4/5/6;
//! * [`theory`] — Section II/III mathematics: the Lian et al. ASGD bound
//!   (Eq. 1–2), Theorem 1's optimal-learning-rate cubic and guarantee gap,
//!   Theorem 2 / Corollary 3 / Theorem 4 for SASGD, and estimators for the
//!   Lipschitz constant `L` and gradient-variance bound `σ²`;
//! * [`history`] / [`report`] — experiment records, CSV output and ASCII
//!   plots.

pub mod algorithms;
pub mod compress;
pub mod engine;
pub mod epoch_time;
pub mod history;
pub mod report;
pub mod schedule;
pub mod sweep;
pub mod theory;
pub mod threaded;
pub mod trainer;

pub use algorithms::{Algorithm, GammaP};
pub use compress::{Compression, KSchedule, KState};
pub use engine::rank::{run_sasgd_ft_rank, run_sasgd_rank, SasgdRankSpec};
pub use engine::threaded::{run_threaded_averaging, run_threaded_eamsgd, run_threaded_sequential};
pub use engine::{Backend, Cadence, EngineError, Executor};
pub use history::{
    EpochRecord, History, MembershipEvent, RetirementEvent, SparsitySample, StalenessSample,
    StalenessStats, WireStats, MAX_SPARSITY_SAMPLES,
};
/// Per-tree-level wire profile types, re-exported from `sasgd-comm` so
/// embedders read [`History`] sparsity telemetry without a direct comm
/// dependency.
pub use sasgd_comm::sparse::{LevelStats, SparseLevelProfile};
/// Fault-injection plan types, re-exported from `sasgd-comm` so embedders
/// configure fault-tolerant runs without a direct comm dependency.
pub use sasgd_comm::{FaultEvent, FaultKind, FaultPlan};
pub use sasgd_data::ShardStrategy;
/// Intra-op thread-pool control for the compute kernels (re-exported from
/// `sasgd-tensor` so embedders size the pool without a direct tensor dep).
pub use sasgd_tensor::parallel;
pub use schedule::{LrSchedule, SyncPolicy, TSchedule};
pub use sweep::{run_sweep, SweepGrid, SweepResult};
pub use threaded::{
    run_threaded_downpour, run_threaded_hierarchical_sasgd, run_threaded_sasgd,
    run_threaded_sasgd_ft, try_run_threaded_hierarchical_sasgd, try_run_threaded_sasgd,
    try_run_threaded_sasgd_ft, FaultConfig,
};
pub use trainer::{train, TrainConfig};

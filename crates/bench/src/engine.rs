//! Execution-engine bench: every aggregation strategy through the unified
//! engine on **both** backends, recorded as `BENCH_engine.json` — per
//! strategy: epoch time, communication fraction, wire traffic (elements
//! and bytes), and final accuracy. The SASGD dense-vs-top-k pair on the
//! threaded backend measures the real wire saving of the sparse format
//! (counted by the substrate's traffic counters, not modeled).

use sasgd_core::algorithms::GammaP;
use sasgd_core::report::ascii_table;
use sasgd_core::{Algorithm, Backend, Compression, Executor, TrainConfig};
use sasgd_simnet::JitterModel;

use crate::figures::Artifact;
use crate::scale::{cifar_workload, Scale};

/// One strategy × backend measurement.
pub struct EngineRow {
    /// Strategy label as reported by the run's `History`.
    pub label: String,
    /// `"simulated"` or `"threaded"`.
    pub backend: &'static str,
    /// Seconds per collective epoch — virtual on the simulated backend,
    /// wall-clock on the threaded one.
    pub epoch_seconds: f64,
    /// Fraction of the observed learner's time spent communicating.
    pub comm_fraction: f64,
    /// Wire elements moved (`None` when the strategy has no accounting).
    pub wire_elements: Option<u64>,
    /// Final test accuracy.
    pub test_acc: f32,
}

/// Run the full strategy matrix on both backends.
pub fn run_matrix(scale: Scale, epochs: Option<usize>) -> Vec<EngineRow> {
    let w = cifar_workload(scale, epochs.or(Some(3)));
    let (p, t) = (4usize, 5usize);
    let algos: Vec<Algorithm> = vec![
        Algorithm::Sequential,
        Algorithm::sasgd(p, t, GammaP::OverP),
        Algorithm::sasgd_compressed(p, t, GammaP::OverP, Compression::TopK { ratio: 0.1 }),
        Algorithm::HierarchicalSasgd {
            groups: 2,
            per_group: 2,
            t_local: t,
            t_global: 2,
            gamma_p: GammaP::OverP,
        },
        Algorithm::Downpour {
            p,
            t,
            staleness_gamma: false,
        },
        Algorithm::Eamsgd {
            p,
            t,
            moving_rate: None,
            momentum: 0.9,
            staleness_gamma: false,
        },
        Algorithm::ModelAverageOnce { p },
    ];
    let mut rows = Vec::new();
    for algo in &algos {
        for (backend, name) in [
            (Backend::Simulated, "simulated"),
            (Backend::Threaded, "threaded"),
        ] {
            let mut cfg = TrainConfig::new(w.epochs, w.batch, w.gamma_hi, 0xE61);
            cfg.jitter = JitterModel::none();
            let h = Executor::new(backend).run(&*w.factory, &w.train, &w.test, algo, &cfg);
            rows.push(EngineRow {
                label: h.label.clone(),
                backend: name,
                epoch_seconds: h.epoch_seconds(),
                comm_fraction: h.comm_fraction(),
                wire_elements: h.wire.map(|ws| ws.elements),
                test_acc: h.final_test_acc(),
            });
        }
    }
    rows
}

/// Hand-rolled JSON (the workspace builds offline, with no serde).
pub fn to_json(rows: &[EngineRow]) -> String {
    let mut s = String::from("{\n  \"strategies\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let wire = match r.wire_elements {
            Some(e) => format!("{e}"),
            None => "null".to_string(),
        };
        let bytes = match r.wire_elements {
            Some(e) => format!("{}", e * 4),
            None => "null".to_string(),
        };
        s.push_str(&format!(
            "    {{\"strategy\": \"{}\", \"backend\": \"{}\", \"epoch_seconds\": {:.6}, \
             \"comm_fraction\": {:.4}, \"wire_elements\": {wire}, \"wire_bytes\": {bytes}, \
             \"test_acc\": {:.4}}}{}\n",
            r.label,
            r.backend,
            r.epoch_seconds,
            r.comm_fraction,
            r.test_acc,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// The `engine` repro target: strategy × backend matrix, emitted as a
/// report plus `BENCH_engine.json`.
pub fn engine(scale: Scale, epochs: Option<usize>) -> Artifact {
    let rows = run_matrix(scale, epochs);
    let headers = [
        "strategy", "backend", "epoch s", "comm %", "wire MB", "test acc",
    ];
    let mut table = Vec::new();
    for r in &rows {
        table.push(vec![
            r.label.clone(),
            r.backend.to_string(),
            format!("{:.3}", r.epoch_seconds),
            format!("{:.1}", 100.0 * r.comm_fraction),
            match r.wire_elements {
                Some(e) => format!("{:.3}", e as f64 * 4.0 / 1e6),
                None => "-".to_string(),
            },
            format!("{:.3}", r.test_acc),
        ]);
    }
    let mut report = String::from(
        "Unified execution engine: every aggregation strategy on both backends\n\
         (simulated epoch time is virtual seconds from the cost model;\n\
         threaded epoch time and wire traffic are measured on real threads)\n\n",
    );
    report.push_str(&ascii_table(&headers, &table));
    // Headline: what did the sparse wire format actually save?
    let threaded_wire = |needle: &str| {
        rows.iter()
            .find(|r| r.backend == "threaded" && r.label.contains(needle))
            .and_then(|r| r.wire_elements)
    };
    if let (Some(dense), Some(sparse)) = (
        threaded_wire("SASGD-threaded"),
        threaded_wire("SASGD-compressed-threaded"),
    ) {
        report.push_str(&format!(
            "\nThreaded SASGD wire elements: dense {dense} vs top-10% {sparse} \
             ({:.1}x fewer over the sparse wire format)\n",
            dense as f64 / sparse as f64
        ));
    }
    Artifact {
        name: "engine".to_string(),
        report,
        csvs: vec![("BENCH_engine.json".to_string(), to_json(&rows))],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_and_null_wire_is_legal() {
        let rows = vec![
            EngineRow {
                label: "SASGD(p=4,T=5)".into(),
                backend: "simulated",
                epoch_seconds: 1.5,
                comm_fraction: 0.25,
                wire_elements: Some(1000),
                test_acc: 0.5,
            },
            EngineRow {
                label: "Downpour(p=4,T=5)".into(),
                backend: "threaded",
                epoch_seconds: 0.2,
                comm_fraction: 0.1,
                wire_elements: None,
                test_acc: 0.4,
            },
        ];
        let j = to_json(&rows);
        assert!(j.contains("\"wire_elements\": 1000"));
        assert!(j.contains("\"wire_bytes\": 4000"));
        assert!(j.contains("\"wire_elements\": null"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}

//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment for this workspace has no network access and no
//! registry cache, so the handful of `rand` items the workspace actually
//! uses are reimplemented here behind the same names and signatures:
//! [`RngCore`], [`SeedableRng`] (with `seed_from_u64`), the [`Rng`]
//! extension trait (`gen`, `gen_range`), and
//! [`distributions::Distribution`] / [`distributions::Standard`].
//!
//! Streams are *not* guaranteed to match crates.io `rand` bit-for-bit;
//! the workspace only relies on determinism under a fixed seed, which
//! this implementation provides.

use std::ops::Range;

/// Core random-number source: 32/64-bit output words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits (default: two `next_u32` calls, low word first).
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let w = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanding it through SplitMix64 (like `rand`).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut z = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^= x >> 31;
            let bytes = x.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod distributions {
    //! Sampling distributions (the `Standard` uniform only).

    use super::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draw one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard distribution: uniform over a type's natural range
    /// (`[0, 1)` for floats, full range for integers).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            // 24 high bits -> [0, 1) with full f32 mantissa coverage.
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u32() & 1 == 1
        }
    }
}

/// Ranges (and other argument types) accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire, without the
                // rejection step — bias is < 2^-64 * span, irrelevant here).
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )+};
}

int_sample_range!(usize, u64, u32, u16, u8);

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        use distributions::{Distribution, Standard};
        let u: f32 = Standard.sample(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        use distributions::{Distribution, Standard};
        let u: f64 = Standard.sample(rng);
        self.start + (self.end - self.start) * u
    }
}

/// Convenience extension methods on any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Uniform sample from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            // A weak but deterministic word stream for API tests.
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            (self.0 >> 32) as u32
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = Counter(7);
        for _ in 0..1000 {
            let x: f32 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = Counter(3);
        for _ in 0..1000 {
            let k = r.gen_range(5usize..17);
            assert!((5..17).contains(&k));
        }
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        struct Raw([u8; 32]);
        impl SeedableRng for Raw {
            type Seed = [u8; 32];
            fn from_seed(seed: [u8; 32]) -> Self {
                Raw(seed)
            }
        }
        assert_eq!(Raw::seed_from_u64(42).0, Raw::seed_from_u64(42).0);
        assert_ne!(Raw::seed_from_u64(42).0, Raw::seed_from_u64(43).0);
    }
}

//! The repo-specific lint pass.
//!
//! Six lints encode the invariants the compiler cannot check (see
//! DESIGN.md §4d for the full table and rationale):
//!
//! | id           | rule |
//! |--------------|------|
//! | `map-iter`   | no `HashMap`/`HashSet` in numeric crates (`tensor`, `nn`, `core`, `comm`) — nondeterministic iteration order can reach numerics |
//! | `unsafe`     | no `unsafe` outside the allow-list; allowed blocks must carry a `// SAFETY:` comment within 4 lines above |
//! | `wall-clock` | no `Instant::now` / `SystemTime` outside the threaded backend and `bench` — the Simulated backend is virtual-clock pure |
//! | `raw-spawn`  | no `std::thread::spawn` outside `comm`, the threaded backend, and the race-checker host |
//! | `hot-alloc`  | no heap-allocating calls (`Vec::new`, `vec!`, `.to_vec()`, `.clone()`, …) inside functions annotated `// hot-path` |
//! | `float-cast` | no `as` casts with syntactic float evidence in gradient-math crates (float→int truncation, `f64`→`f32` width collapse) |
//!
//! Every lint is suppressible at the offending line with
//! `// lint:allow(<id>): <justification>` — on the same line or as a
//! full-line comment directly above (justification required by convention,
//! enforced by review).

use std::collections::BTreeSet;

use crate::lexer::{lex, Tok, TokKind};

/// One finding.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Lint id (`map-iter`, `unsafe`, …).
    pub lint: &'static str,
    /// Repo-relative path (unix separators).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable message.
    pub message: String,
}

/// All lint ids, in table order.
pub const LINT_IDS: &[&str] = &[
    "map-iter",
    "unsafe",
    "wall-clock",
    "raw-spawn",
    "hot-alloc",
    "float-cast",
];

// ---------------------------------------------------------------------------
// Scopes and allow-lists (the repo's invariants, encoded).
// ---------------------------------------------------------------------------

/// Crates whose numerics must be bitwise reproducible (`map-iter`,
/// `float-cast` scope).
const NUMERIC_CRATES: &[&str] = &[
    "crates/tensor/src/",
    "crates/nn/src/",
    "crates/core/src/",
    "crates/comm/src/",
];

/// Files allowed to contain `unsafe` (each block still needs `// SAFETY:`).
const UNSAFE_ALLOWED_FILES: &[&str] = &[
    "crates/tensor/src/workspace.rs",
    // The packed-GEMM microkernels: unchecked panel indexing inside the
    // 8-lane FMA chains, length-asserted at kernel entry.
    "crates/tensor/src/microkernel.rs",
    "crates/comm/src/sparse.rs",
    "crates/bench/src/alloc.rs",
];

/// Wall-clock reads are the threaded backend's business (plus everything
/// under `bench`, which measures real time by definition).
const WALL_CLOCK_ALLOWED: &[&str] = &[
    "crates/core/src/threaded.rs",
    "crates/core/src/engine/threaded.rs",
    // The per-rank loop the threaded backend and the multi-process
    // launcher share: its compute/comm stopwatches are the threaded
    // backend's measurements, factored out with the loop itself. The
    // simulated backend never calls it.
    "crates/core/src/engine/rank.rs",
    // Deadline-based failure detection is wall-clock by nature: recv
    // deadlines are real elapsed time, never part of the simulated clock.
    "crates/comm/src/world.rs",
    // The socket transport's rendezvous retries and recv deadlines, and
    // the mock transport's condvar waits, are the same sanction as
    // world.rs: real elapsed time on the wire path, never numerics.
    "crates/comm/src/socket.rs",
    "crates/comm/src/mock.rs",
    // The transport-conformance suite measures those deadlines (bounded
    // Timeout, PeerGone retry windows) — wall-clock is the subject.
    "crates/comm/tests/",
    "crates/bench/",
    "examples/",
];

/// Raw thread creation: the comm substrate, the threaded backend, and the
/// schedule-exploration harness itself (it hosts rank threads).
const SPAWN_ALLOWED: &[&str] = &[
    "crates/comm/",
    "crates/core/src/threaded.rs",
    "crates/core/src/engine/threaded.rs",
    "crates/analysis/",
];

/// Gradient-math scope for `float-cast`.
const FLOAT_CAST_SCOPE: &[&str] = &["crates/tensor/src/", "crates/nn/src/", "crates/core/src/"];

fn in_scope(path: &str, prefixes: &[&str]) -> bool {
    prefixes
        .iter()
        .any(|p| path.starts_with(p) || path == p.trim_end_matches('/'))
}

// ---------------------------------------------------------------------------
// Annotation maps derived from comments.
// ---------------------------------------------------------------------------

/// Lines covered by `lint:allow(...)` comments, per lint id.
struct AllowMap {
    /// `(line, lint_id)` pairs.
    allowed: BTreeSet<(u32, String)>,
}

impl AllowMap {
    fn build(toks: &[Tok]) -> Self {
        let mut allowed = BTreeSet::new();
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Comment {
                continue;
            }
            let Some(pos) = t.text.find("lint:allow(") else {
                continue;
            };
            let rest = &t.text[pos + "lint:allow(".len()..];
            let Some(end) = rest.find(')') else { continue };
            // The allow covers the comment's own line (trailing form) and
            // the line of the next non-comment token (block-above form).
            let mut lines = vec![t.line];
            if let Some(next) = toks[i + 1..].iter().find(|n| n.kind != TokKind::Comment) {
                lines.push(next.line);
            }
            for id in rest[..end].split(',') {
                for &l in &lines {
                    allowed.insert((l, id.trim().to_string()));
                }
            }
        }
        AllowMap { allowed }
    }

    fn is_allowed(&self, line: u32, lint: &str) -> bool {
        self.allowed.contains(&(line, lint.to_string()))
    }
}

/// Lines of comments containing `SAFETY:`.
fn safety_lines(toks: &[Tok]) -> Vec<u32> {
    toks.iter()
        .filter(|t| t.kind == TokKind::Comment && t.text.contains("SAFETY:"))
        .map(|t| t.line)
        .collect()
}

/// Is there a `SAFETY:` comment on `line` or within the 4 lines above?
fn has_safety_comment(safety: &[u32], line: u32) -> bool {
    safety.iter().any(|&s| s <= line && line - s <= 4)
}

// ---------------------------------------------------------------------------
// The lint pass proper.
// ---------------------------------------------------------------------------

/// Lint one file. `path` is the repo-relative path (used for scoping);
/// `src` is the file contents.
pub fn lint_file(path: &str, src: &str) -> Vec<Violation> {
    let toks = lex(src);
    let allow = AllowMap::build(&toks);
    let safety = safety_lines(&toks);
    let mut out = Vec::new();

    let push = |lint: &'static str, line: u32, message: String, out: &mut Vec<Violation>| {
        if !allow.is_allowed(line, lint) {
            out.push(Violation {
                lint,
                file: path.to_string(),
                line,
                message,
            });
        }
    };

    // L1 map-iter: HashMap/HashSet anywhere in numeric crates.
    if in_scope(path, NUMERIC_CRATES) {
        for t in &toks {
            if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
                push(
                    "map-iter",
                    t.line,
                    format!(
                        "{} in a numeric crate: iteration order is nondeterministic and can \
                         reach numerics; use BTreeMap/BTreeSet or an index-keyed Vec",
                        t.text
                    ),
                    &mut out,
                );
            }
        }
    }

    // L2 unsafe: outside the allow-list, or allowed but undocumented.
    for t in &toks {
        if t.kind == TokKind::Ident && t.text == "unsafe" {
            if !in_scope(path, UNSAFE_ALLOWED_FILES) {
                push(
                    "unsafe",
                    t.line,
                    "unsafe outside the allow-list (workspace arena, sparse bit-cast, counting \
                     allocator)"
                        .to_string(),
                    &mut out,
                );
            } else if !has_safety_comment(&safety, t.line) {
                push(
                    "unsafe",
                    t.line,
                    "allowed unsafe without a `// SAFETY:` comment within 4 lines above"
                        .to_string(),
                    &mut out,
                );
            }
        }
    }

    // L3 wall-clock: Instant::now / SystemTime outside the threaded backend.
    if !in_scope(path, WALL_CLOCK_ALLOWED) {
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident {
                continue;
            }
            let hit = match t.text.as_str() {
                "SystemTime" => true,
                "Instant" => matches!(
                    (toks.get(i + 1), toks.get(i + 2)),
                    (Some(a), Some(b)) if a.is("::") && b.is("now")
                ),
                _ => false,
            };
            if hit {
                push(
                    "wall-clock",
                    t.line,
                    format!(
                        "{} outside core::threaded/bench breaks the Simulated backend's \
                         virtual-clock purity",
                        t.text
                    ),
                    &mut out,
                );
            }
        }
    }

    // L4 raw-spawn: thread::spawn outside comm / the threaded backend.
    if !in_scope(path, SPAWN_ALLOWED) {
        for (i, t) in toks.iter().enumerate() {
            if t.kind == TokKind::Ident
                && t.text == "thread"
                && matches!(
                    (toks.get(i + 1), toks.get(i + 2)),
                    (Some(a), Some(b)) if a.is("::") && (b.is("spawn") || b.is("Builder"))
                )
            {
                push(
                    "raw-spawn",
                    t.line,
                    "std::thread::spawn outside comm/core::threaded: threads must go through \
                     the comm substrate so the race checker can see them"
                        .to_string(),
                    &mut out,
                );
            }
        }
    }

    // L5 hot-alloc: allocation calls inside `// hot-path` functions.
    for (lo, hi) in hot_path_bodies(&toks) {
        let body = &toks[lo..hi];
        for (j, t) in body.iter().enumerate() {
            if t.kind != TokKind::Ident {
                continue;
            }
            let prev = j.checked_sub(1).map(|k| &body[k]);
            let next = body.get(j + 1);
            let path_head = matches!(prev, Some(p) if p.is("::"));
            let method = matches!(prev, Some(p) if p.is("."));
            let hit = match t.text.as_str() {
                "new" | "with_capacity" => {
                    path_head
                        && matches!(
                            lo.checked_add(j).and_then(|k| k.checked_sub(2)).and_then(|k| toks.get(k)),
                            Some(h) if h.is("Vec") || h.is("Box") || h.is("String") || h.is("VecDeque")
                        )
                }
                "vec" | "format" => matches!(next, Some(nx) if nx.is("!")),
                "to_vec" | "clone" | "to_owned" | "collect" => method,
                _ => false,
            };
            if hit {
                push(
                    "hot-alloc",
                    t.line,
                    format!(
                        "heap allocation (`{}`) inside a `// hot-path` function: draw buffers \
                         from the Workspace arena instead",
                        t.text
                    ),
                    &mut out,
                );
            }
        }
    }

    // L6 float-cast: `as` casts with syntactic float evidence.
    if in_scope(path, FLOAT_CAST_SCOPE) {
        for v in float_cast_findings(&toks) {
            push("float-cast", v.0, v.1, &mut out);
        }
    }

    out
}

/// Is this comment the hot-path *annotation* (as opposed to prose that
/// merely mentions it)? The marker must be the first word of the comment:
/// `// hot-path` or `// hot-path: <note>`. Requiring the leading position
/// keeps doc comments that talk *about* the marker from annotating the
/// next function.
fn is_hot_path_marker(comment: &str) -> bool {
    comment
        .trim_start_matches(['/', '*', '!', ' '])
        .starts_with("hot-path")
}

/// Token index ranges (open brace .. close brace, exclusive) of the bodies
/// of functions annotated with a `// hot-path` comment.
fn hot_path_bodies(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Comment && is_hot_path_marker(&t.text) {
            // Find the `fn` this annotation covers (skipping attributes,
            // visibility, and further comments). Give up after a window.
            let mut j = i + 1;
            let mut fn_at = None;
            let mut budget = 40usize;
            while j < toks.len() && budget > 0 {
                if toks[j].is("fn") {
                    fn_at = Some(j);
                    break;
                }
                if toks[j].is("{") || toks[j].is("}") {
                    break; // wandered into other structure
                }
                j += 1;
                budget -= 1;
            }
            if let Some(f) = fn_at {
                // Scan to the body's opening brace (a `;` means no body).
                let mut k = f + 1;
                let mut angle = 0i32;
                while k < toks.len() {
                    let tk = &toks[k];
                    if tk.is("<") {
                        angle += 1;
                    } else if tk.is(">") {
                        angle -= 1;
                    } else if tk.is(";") && angle <= 0 {
                        break;
                    } else if tk.is("{") && angle <= 0 {
                        // Brace-match to the end of the body.
                        let mut depth = 1i32;
                        let open = k + 1;
                        let mut m = open;
                        while m < toks.len() && depth > 0 {
                            if toks[m].is("{") {
                                depth += 1;
                            } else if toks[m].is("}") {
                                depth -= 1;
                            }
                            m += 1;
                        }
                        out.push((open, m.saturating_sub(1)));
                        i = m;
                        break;
                    }
                    k += 1;
                }
            }
        }
        i += 1;
    }
    out
}

const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];
const FLOAT_METHODS: &[&str] = &[
    "floor", "ceil", "round", "trunc", "sqrt", "exp", "ln", "powf", "powi", "log2", "exp2",
    "recip", "ln_1p", "exp_m1",
];

/// Findings for the `float-cast` lint: `(line, message)` pairs.
///
/// Type inference is out of reach for a lexer, so the lint is evidence
/// based: a cast is flagged only when its source expression *syntactically*
/// shows float involvement — a float literal, a nested `as f32`/`as f64`,
/// or a float-only method call (`floor`, `sqrt`, …). Casts whose float-ness
/// hides behind a plain identifier are documented as out of scope
/// (DESIGN.md §4d); int→float index promotions are deliberately not
/// flagged.
fn float_cast_findings(toks: &[Tok]) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !(t.kind == TokKind::Ident && t.text == "as") {
            continue;
        }
        let Some(target) = toks.get(i + 1) else {
            continue;
        };
        let to_int = INT_TYPES.contains(&target.text.as_str());
        let to_float = target.text == "f32" || target.text == "f64";
        if !to_int && !to_float {
            continue;
        }
        // Evidence window: the full postfix chain of the source expression
        // (`(a as f64 * r).ceil()` walks back through `()` groups and
        // `.method` links), or up to 3 tokens back for a bare expression.
        let lo = if i > 0 && toks[i - 1].is(")") {
            let mut k = i;
            loop {
                if k > 0 && toks[k - 1].is(")") {
                    // Match this paren group.
                    let mut depth = 1i32;
                    k -= 1;
                    while k > 0 && depth > 0 {
                        k -= 1;
                        if toks[k].is(")") {
                            depth += 1;
                        } else if toks[k].is("(") {
                            depth -= 1;
                        }
                    }
                    // A method's arg list: step through `.method` to the
                    // receiver and keep walking the chain.
                    if k >= 2 && toks[k - 1].kind == TokKind::Ident && toks[k - 2].is(".") {
                        k -= 2;
                        continue;
                    }
                    break;
                }
                break;
            }
            k
        } else {
            i.saturating_sub(3)
        };
        let span = &toks[lo..i];
        let has_float_literal = span.iter().any(|s| s.is_float_literal());
        let has_width_cast = span.windows(2).any(|w| {
            w[0].kind == TokKind::Ident && w[0].text == "as" && (w[1].is("f32") || w[1].is("f64"))
        });
        let has_float_method = span.windows(2).any(|w| {
            w[0].is(".")
                && w[1].kind == TokKind::Ident
                && FLOAT_METHODS.contains(&w[1].text.as_str())
        });
        let flagged = if to_int {
            has_float_literal || has_width_cast || has_float_method
        } else {
            // int→float promotion is fine; flag only float-width collapse
            // (`(… as f64 …) as f32`) or a float-method source recast.
            has_width_cast || has_float_method
        };
        if flagged {
            out.push((
                t.line,
                format!(
                    "`as {}` cast with float evidence in gradient math: use explicit \
                     round/clamp helpers or `to_bits`/`from_bits` for bit moves",
                    target.text
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lints_of(path: &str, src: &str) -> Vec<&'static str> {
        lint_file(path, src).into_iter().map(|v| v.lint).collect()
    }

    #[test]
    fn map_iter_fires_in_numeric_crates_only() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(lints_of("crates/core/src/x.rs", src), vec!["map-iter"]);
        assert!(lints_of("crates/data/src/x.rs", src).is_empty());
    }

    #[test]
    fn map_iter_respects_allow() {
        let src = "// lint:allow(map-iter): build-time only, never iterated\n\
                   use std::collections::HashMap;\n";
        assert!(lints_of("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn unsafe_outside_allowlist() {
        let src = "fn f() { unsafe { std::hint::unreachable_unchecked() } }\n";
        assert_eq!(lints_of("crates/core/src/x.rs", src), vec!["unsafe"]);
    }

    #[test]
    fn unsafe_allowed_file_requires_safety_comment() {
        let bare = "unsafe fn g() {}\n";
        assert_eq!(
            lints_of("crates/tensor/src/workspace.rs", bare),
            vec!["unsafe"]
        );
        let documented =
            "// SAFETY: caller guarantees the buffer is fully written.\nunsafe fn g() {}\n";
        assert!(lints_of("crates/tensor/src/workspace.rs", documented).is_empty());
    }

    #[test]
    fn unsafe_allowlist_scopes_to_microkernel_not_siblings() {
        // The packed-GEMM microkernel file is sanctioned (with a SAFETY
        // comment), but its siblings in the packed path are not: pack.rs
        // and tune.rs must stay fully safe.
        let bare = "unsafe fn g() {}\n";
        assert_eq!(
            lints_of("crates/tensor/src/microkernel.rs", bare),
            vec!["unsafe"]
        );
        let documented =
            "// SAFETY: panel indices are bounded by the kernel-entry asserts.\nunsafe fn g() {}\n";
        assert!(lints_of("crates/tensor/src/microkernel.rs", documented).is_empty());
        let block = "fn f() { unsafe { std::hint::unreachable_unchecked() } }\n";
        assert_eq!(lints_of("crates/tensor/src/pack.rs", block), vec!["unsafe"]);
        assert_eq!(lints_of("crates/tensor/src/tune.rs", block), vec!["unsafe"]);
    }

    #[test]
    fn wall_clock_scoping() {
        let src = "let t = std::time::Instant::now();\n";
        assert_eq!(
            lints_of("crates/core/src/engine/simulated.rs", src),
            vec!["wall-clock"]
        );
        assert!(lints_of("crates/core/src/threaded.rs", src).is_empty());
        assert!(lints_of("crates/bench/src/kernels.rs", src).is_empty());
        // The transport impls and the shared per-rank loop carry recv
        // deadlines / comm stopwatches — sanctioned alongside world.rs.
        assert!(lints_of("crates/core/src/engine/rank.rs", src).is_empty());
        assert!(lints_of("crates/comm/src/socket.rs", src).is_empty());
        assert!(lints_of("crates/comm/src/mock.rs", src).is_empty());
        assert!(lints_of("crates/comm/tests/transport_conformance.rs", src).is_empty());
    }

    #[test]
    fn raw_spawn_scoping() {
        let src = "std::thread::spawn(|| {});\n";
        assert_eq!(lints_of("crates/nn/src/model.rs", src), vec!["raw-spawn"]);
        assert!(lints_of("crates/comm/src/ps.rs", src).is_empty());
        assert!(lints_of("crates/analysis/src/schedule.rs", src).is_empty());
    }

    #[test]
    fn hot_alloc_fires_only_in_annotated_fns() {
        let cold = "pub fn f() { let v = vec![0.0; 8]; }\n";
        assert!(lints_of("crates/tensor/src/conv.rs", cold).is_empty());
        let hot = "// hot-path\npub fn f() { let v = vec![0.0; 8]; }\n";
        assert_eq!(
            lints_of("crates/tensor/src/conv.rs", hot),
            vec!["hot-alloc"]
        );
        let hot_clone =
            "// hot-path\npub fn f(x: &[f32]) { let v = x.to_vec(); let w = v.clone(); }\n";
        assert_eq!(
            lints_of("crates/tensor/src/conv.rs", hot_clone),
            vec!["hot-alloc", "hot-alloc"]
        );
    }

    #[test]
    fn hot_alloc_allows_workspace_draws() {
        let src = "// hot-path\npub fn f(ws: &mut Workspace) { let v = ws.take_f32(8); }\n";
        assert!(lints_of("crates/tensor/src/conv.rs", src).is_empty());
    }

    #[test]
    fn hot_alloc_trailing_allow() {
        let src = "// hot-path\npub fn f(d: &[usize]) {\n\
                   let dims = d.to_vec(); // lint:allow(hot-alloc): O(ndims) shape metadata\n}\n";
        assert!(lints_of("crates/tensor/src/conv.rs", src).is_empty());
    }

    #[test]
    fn float_cast_truncation_flagged() {
        let src = "fn f(x: f32) -> usize { (x * 0.5) as usize }\n";
        assert_eq!(lints_of("crates/nn/src/loss.rs", src), vec!["float-cast"]);
        let ceil = "fn k(m: usize, r: f64) -> usize { ((m as f64 * r).ceil()) as usize }\n";
        assert_eq!(
            lints_of("crates/core/src/compress.rs", ceil),
            vec!["float-cast"]
        );
    }

    #[test]
    fn float_cast_sees_through_postfix_chains() {
        // No outer parens: the evidence sits behind `.ceil()` and must be
        // reached by walking the postfix chain.
        let src = "fn k(m: usize, r: f64) -> usize { (m as f64 * r).ceil() as usize }\n";
        assert_eq!(
            lints_of("crates/core/src/compress.rs", src),
            vec!["float-cast"]
        );
        let sqrt = "fn f(x: f32) -> i32 { x.abs().sqrt() as i32 }\n";
        assert_eq!(
            lints_of("crates/core/src/compress.rs", sqrt),
            vec!["float-cast"]
        );
    }

    #[test]
    fn hot_path_marker_must_lead_the_comment() {
        // Prose that merely *mentions* the marker must not annotate the fn.
        let src = "/// Finds functions annotated with a `// hot-path` comment.\n\
                   fn scan() { let v = Vec::new(); }\n";
        assert!(lints_of("crates/tensor/src/conv.rs", src).is_empty());
        let real = "// hot-path: inner GEMM loop\nfn f() { let v = Vec::new(); }\n";
        assert_eq!(
            lints_of("crates/tensor/src/conv.rs", real),
            vec!["hot-alloc"]
        );
    }

    #[test]
    fn float_cast_width_collapse_flagged() {
        let src = "fn f(a: f64, n: usize) -> f32 { (a / n as f64) as f32 }\n";
        assert_eq!(lints_of("crates/nn/src/loss.rs", src), vec!["float-cast"]);
    }

    #[test]
    fn float_cast_ignores_int_promotions() {
        let src = "fn f(k: usize) -> f32 { 1.0 / (k * k) as f32 }\n\
                   fn g(rows: usize, c: usize) -> u64 { (rows * c) as u64 }\n";
        assert!(lints_of("crates/nn/src/layers/pool_avg.rs", src).is_empty());
    }

    #[test]
    fn outside_scanned_scope_is_silent() {
        let src = "use std::collections::HashMap;\nstd::thread::spawn(|| {});\n";
        assert!(lints_of("crates/bench/src/figures.rs", src)
            .iter()
            .all(|l| *l != "map-iter"));
    }
}

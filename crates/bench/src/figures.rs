//! One driver per table/figure of the paper.
//!
//! Every driver returns an [`Artifact`]: a human-readable report (ASCII
//! tables/plots plus a paper-vs-measured shape check) and CSV files with
//! the exact series. The `repro` binary writes them under `target/repro/`.

use sasgd_core::algorithms::GammaP;
use sasgd_core::epoch_time::{epoch_time, speedup_over_sequential, Aggregation, Workload};
use sasgd_core::report::{ascii_plot, ascii_table};
use sasgd_core::theory::{self, ProblemConstants};
use sasgd_core::{train, Algorithm, History, TrainConfig};
use sasgd_nn::models;
use sasgd_simnet::{CostModel, JitterModel};
use sasgd_tensor::SeedRng;

use crate::scale::{cifar_workload, nlc_workload, ConvergenceWorkload, Scale};

/// A regenerated table or figure.
pub struct Artifact {
    /// Identifier (`fig1`, `table2`, …).
    pub name: String,
    /// Human-readable report.
    pub report: String,
    /// `(file name, contents)` pairs with the exact series.
    pub csvs: Vec<(String, String)>,
}

fn pct(x: f64) -> String {
    format!("{:.1}", x * 100.0)
}

fn run_algo(
    w: &ConvergenceWorkload,
    algo: &Algorithm,
    gamma: f32,
    epochs: usize,
    seed: u64,
) -> History {
    let cfg = TrainConfig::new(epochs, w.batch, gamma, seed);
    let mut factory = || (w.factory)();
    train(&mut factory, &w.train, &w.test, algo, &cfg)
}

// ---------------------------------------------------------------------------
// Tables I and II.
// ---------------------------------------------------------------------------

/// Table I: the CIFAR-10 network.
pub fn table1() -> Artifact {
    let model = models::cifar_cnn(&mut SeedRng::new(0));
    let mut report = String::from("Table I — CIFAR-10 convolutional network\n\n");
    report.push_str(&model.summary());
    report.push_str(&format!(
        "\npaper: ~0.5 M parameters | built: {} (exact per printed table)\n",
        model.param_len()
    ));
    Artifact {
        name: "table1".into(),
        report,
        csvs: Vec::new(),
    }
}

/// Table II: the NLC-F network.
pub fn table2() -> Artifact {
    let model = models::nlc_net(20, &mut SeedRng::new(0));
    let mut report = String::from("Table II — NLC-F network (sequence length 20)\n\n");
    report.push_str(&model.summary());
    report.push_str(&format!(
        "\npaper: ~2 M parameters | built: {} (fc100x200 + tconv(1000,2) + fc1000x1000 + fc1000x311)\n",
        model.param_len()
    ));
    Artifact {
        name: "table2".into(),
        report,
        csvs: Vec::new(),
    }
}

// ---------------------------------------------------------------------------
// Fig 1 — Downpour epoch-time breakdown.
// ---------------------------------------------------------------------------

/// Fig 1: computation/communication share of Downpour epoch time for
/// `p ∈ {1,2,4,8}` on both workloads.
pub fn fig1() -> Artifact {
    let cost = CostModel::paper_testbed();
    let jit = JitterModel::default();
    let mut rows = Vec::new();
    let mut csv = String::from("workload,p,compute_pct,comm_pct,epoch_s\n");
    for w in [Workload::nlc_f(), Workload::cifar10()] {
        for p in [1usize, 2, 4, 8] {
            let et = epoch_time(&cost, &w, Aggregation::ParamServer, p, 1, &jit, 1);
            let comm = et.comm_fraction();
            rows.push(vec![
                w.name.to_string(),
                p.to_string(),
                pct(1.0 - comm),
                pct(comm),
                format!("{:.2}", et.total()),
            ]);
            csv.push_str(&format!(
                "{},{},{},{},{}\n",
                w.name,
                p,
                pct(1.0 - comm),
                pct(comm),
                et.total()
            ));
        }
    }
    let table = ascii_table(
        &["workload", "p", "compute %", "comm %", "epoch (s)"],
        &rows,
    );
    let nlc1: f64 = rows[0][3].parse().expect("pct");
    let cifar1: f64 = rows[4][3].parse().expect("pct");
    let cifar8: f64 = rows[7][3].parse().expect("pct");
    let report = format!(
        "Fig 1 — breakdown of Downpour epoch time (T=1)\n\n{table}\n\
         shape check vs paper:\n\
         - NLC-F communication dominates (>60 %): measured {nlc1:.1} %\n\
         - CIFAR-10 comm ≈20 % at p=1 ({cifar1:.1} %) rising with p (p=8: {cifar8:.1} %)\n"
    );
    Artifact {
        name: "fig1".into(),
        report,
        csvs: vec![("fig1.csv".into(), csv)],
    }
}

// ---------------------------------------------------------------------------
// Figs 2 and 3 — Downpour convergence at practical vs theory-derived γ.
// ---------------------------------------------------------------------------

fn downpour_convergence(
    name: &str,
    title: &str,
    gamma: f32,
    scale: Scale,
    epochs: Option<usize>,
    extra: String,
) -> Artifact {
    let w = cifar_workload(scale, epochs);
    let mut series = Vec::new();
    let mut csv = String::from("p,epoch,test_acc\n");
    for p in [1usize, 2, 8, 16] {
        let h = run_algo(
            &w,
            &Algorithm::Downpour {
                p,
                t: 1,
                staleness_gamma: false,
            },
            gamma,
            w.epochs,
            0xF16 + p as u64,
        );
        for r in &h.records {
            csv.push_str(&format!("{},{},{}\n", p, r.epoch, r.test_acc));
        }
        series.push((format!("p={p}"), h.test_acc_series()));
    }
    let plot_series: Vec<(&str, Vec<(f64, f64)>)> = series
        .iter()
        .map(|(l, s)| (l.as_str(), s.clone()))
        .collect();
    let plot = ascii_plot(title, &plot_series, 70, 18);
    let finals: Vec<String> = series
        .iter()
        .map(|(l, s)| {
            format!(
                "  {l}: final test acc {:.1} %",
                s.last().map_or(0.0, |&(_, a)| a)
            )
        })
        .collect();
    let report = format!("{plot}\n{}\n{extra}", finals.join("\n"));
    Artifact {
        name: name.into(),
        report,
        csvs: vec![(format!("{name}.csv"), csv)],
    }
}

/// Fig 2: Downpour test accuracy at the practical learning rate — the
/// accuracy gap grows with `p` (sublinear convergence speedup).
pub fn fig2(scale: Scale, epochs: Option<usize>) -> Artifact {
    let w = cifar_workload(scale, epochs);
    let gamma = w.gamma_hi;
    downpour_convergence(
        "fig2",
        &format!("Fig 2 — Downpour convergence, CIFAR-like, γ = {gamma}"),
        gamma,
        scale,
        epochs,
        "shape check vs paper: curves separate as p grows; p=16 trails p=1 (no linear convergence speedup).\n".into(),
    )
}

/// Fig 3: Downpour at the Lian-et-al.-derived rate — curves overlap
/// (linear convergence speedup) but reach a worse accuracy than Fig 2's γ.
pub fn fig3(scale: Scale, epochs: Option<usize>) -> Artifact {
    let w = cifar_workload(scale, epochs);
    // Derive γ the way §II-B does: estimate Df, L, σ² on the actual
    // workload and apply √(Df/(M·K·L·σ²)) with M·K = the run's sample
    // budget.
    let mut model = (w.factory)();
    let consts = theory::estimate_constants(&mut model, &w.train, w.batch, 4, 0x717);
    let mk = w.epochs * w.train.len();
    let gamma_lian = theory::lian_learning_rate(&consts, w.batch, mk / w.batch) as f32;
    let gamma = gamma_lian.max(w.gamma_hi / 50.0);
    let extra = format!(
        "estimated constants: Df={:.3}, L={:.3}, σ²={:.3} → γ_lian={gamma_lian:.5} (used {gamma:.5}; paper: 0.005 vs practical 0.1)\n\
         shape check vs paper: curves for all p overlap (linear convergence speedup) at a sub-optimal accuracy vs Fig 2.\n",
        consts.df, consts.l, consts.sigma2
    );
    downpour_convergence(
        "fig3",
        &format!("Fig 3 — Downpour convergence, CIFAR-like, theory-derived γ = {gamma:.5}"),
        gamma,
        scale,
        epochs,
        extra,
    )
}

// ---------------------------------------------------------------------------
// Theorems.
// ---------------------------------------------------------------------------

/// Theorem 1: optimal learning-rate constant and the p-vs-1 guarantee gap.
pub fn theorem1() -> Artifact {
    let mut rows = Vec::new();
    let mut csv = String::from("p,alpha,c_star,gap,p_over_alpha\n");
    for &alpha in &[16.0f64, 32.0, 64.0] {
        for &p in &[1usize, 2, 8, 16, 32, 64, 128] {
            let c = theory::optimal_c(p, alpha);
            let gap = theory::theorem1_gap(p, alpha);
            rows.push(vec![
                p.to_string(),
                format!("{alpha}"),
                format!("{c:.4}"),
                format!("{gap:.3}"),
                format!("{:.3}", p as f64 / alpha),
            ]);
            csv.push_str(&format!("{p},{alpha},{c},{gap},{}\n", p as f64 / alpha));
        }
    }
    let table = ascii_table(&["p", "α", "c*", "guarantee gap", "p/α"], &rows);
    let worked = theory::theorem1_gap(32, 16.0);
    let report = format!(
        "Theorem 1 — optimal-γ cubic (4pc³+αc²−2α=0) and the ASGD guarantee gap\n\n{table}\n\
         paper's worked example: p=32, α≈16 → gap ≈ 2; measured {worked:.2}\n\
         shape check: for 16 ≤ α ≤ p the gap tracks p/α.\n"
    );
    Artifact {
        name: "theorem1".into(),
        report,
        csvs: vec![("theorem1.csv".into(), csv)],
    }
}

/// Theorem 2 / Corollary 3 / Theorem 4: SASGD bounds vs `T`.
pub fn theorem2() -> Artifact {
    let c = ProblemConstants {
        df: 2.3,
        l: 10.0,
        sigma2: 1.0,
    };
    let (m, p) = (16usize, 8usize);
    let s = 1.0e7;
    let mut rows = Vec::new();
    let mut csv = String::from("t,best_bound_fixed_s,k_min_corollary3\n");
    for &t in &[1usize, 5, 10, 25, 50, 100, 200] {
        let b = theory::sasgd_best_bound_fixed_s(&c, m, t, p, s);
        let kmin = theory::corollary3_k_min(&c, m, t, p);
        rows.push(vec![t.to_string(), format!("{b:.5}"), format!("{kmin:.0}")]);
        csv.push_str(&format!("{t},{b},{kmin}\n"));
    }
    let table = ascii_table(&["T", "best Thm-2 bound at fixed S", "Cor-3 K_min"], &rows);
    let report = format!(
        "Theorem 2 / Corollary 3 / Theorem 4 — SASGD sample complexity vs T\n\
         (Df={}, L={}, σ²={}, M={m}, p={p}, S={s:.0})\n\n{table}\n\
         shape check vs paper: at fixed sample budget the achievable guarantee\n\
         degrades monotonically as T grows (Theorem 4), and the K needed for the\n\
         asymptotic O(1/√S) rate grows once T exceeds p (Corollary 3).\n",
        c.df, c.l, c.sigma2
    );
    Artifact {
        name: "theorem2".into(),
        report,
        csvs: vec![("theorem2.csv".into(), csv)],
    }
}

// ---------------------------------------------------------------------------
// Figs 4/5 — impact of T on epoch time; Fig 6 — algorithm comparison.
// ---------------------------------------------------------------------------

fn interval_epoch_fig(
    name: &str,
    w: &Workload,
    paper_t_ratio: f64,
    paper_speedup: f64,
) -> Artifact {
    let cost = CostModel::paper_testbed();
    let jit = JitterModel::default();
    let mut rows = Vec::new();
    let mut csv = String::from("p,t,epoch_s,speedup_vs_seq\n");
    let seq = epoch_time(&cost, w, Aggregation::None, 1, 1, &jit, 1).total();
    for p in [1usize, 2, 4, 8] {
        for t in [1usize, 50] {
            let et = epoch_time(&cost, w, Aggregation::AllreduceTree, p, t, &jit, 1).total();
            rows.push(vec![
                p.to_string(),
                t.to_string(),
                format!("{et:.3}"),
                format!("{:.2}", seq / et),
            ]);
            csv.push_str(&format!("{p},{t},{et},{}\n", seq / et));
        }
    }
    let table = ascii_table(&["p", "T", "epoch (s)", "speedup vs SGD"], &rows);
    let t1 = epoch_time(&cost, w, Aggregation::AllreduceTree, 8, 1, &jit, 1).total();
    let t50 = epoch_time(&cost, w, Aggregation::AllreduceTree, 8, 50, &jit, 1).total();
    let sp = speedup_over_sequential(&cost, w, Aggregation::AllreduceTree, 8, 50, &jit, 1);
    let report = format!(
        "{name} — impact of T on SASGD epoch time, {} (sequential epoch {seq:.3} s)\n\n{table}\n\
         shape check vs paper (p=8): T=1/T=50 epoch-time ratio {:.2} (paper ≈{paper_t_ratio});\n\
         speedup over sequential at T=50: {sp:.2}× (paper {paper_speedup}×)\n",
        w.name,
        t1 / t50
    );
    Artifact {
        name: name.to_lowercase().replace(' ', ""),
        report,
        csvs: vec![(format!("{}.csv", name.to_lowercase()), csv)],
    }
}

/// Fig 4: SASGD epoch time vs `T` for CIFAR-10.
pub fn fig4() -> Artifact {
    interval_epoch_fig("Fig4", &Workload::cifar10(), 1.3, 4.45)
}

/// Fig 5: SASGD epoch time vs `T` for NLC-F.
pub fn fig5() -> Artifact {
    interval_epoch_fig("Fig5", &Workload::nlc_f(), 9.7, 5.35)
}

/// Fig 6: epoch time of Downpour, EAMSGD and SASGD at `T ∈ {1, 50}`,
/// 8 learners, both workloads.
pub fn fig6() -> Artifact {
    let cost = CostModel::paper_testbed();
    let jit = JitterModel::default();
    let mut rows = Vec::new();
    let mut csv = String::from("workload,t,algorithm,epoch_s\n");
    for w in [Workload::cifar10(), Workload::nlc_f()] {
        for t in [1usize, 50] {
            // Downpour and EAMSGD both pay a PS round trip per interval.
            for (algo, kind) in [
                ("Downpour", Aggregation::ParamServer),
                ("EAMSGD", Aggregation::ParamServer),
                ("SASGD", Aggregation::AllreduceTree),
            ] {
                let et = epoch_time(&cost, &w, kind, 8, t, &jit, 1).total();
                rows.push(vec![
                    w.name.to_string(),
                    t.to_string(),
                    algo.to_string(),
                    format!("{et:.3}"),
                ]);
                csv.push_str(&format!("{},{},{},{}\n", w.name, t, algo, et));
            }
        }
    }
    let table = ascii_table(&["workload", "T", "algorithm", "epoch (s)"], &rows);
    let gather = |wname: &str, t: &str| -> (f64, f64) {
        let get = |algo: &str| -> f64 {
            rows.iter()
                .find(|r| r[0] == wname && r[1] == t && r[2] == algo)
                .map(|r| r[3].parse().expect("number"))
                .expect("row")
        };
        (get("SASGD"), get("Downpour"))
    };
    let (s_c1, d_c1) = gather("CIFAR-10", "1");
    let (s_c50, d_c50) = gather("CIFAR-10", "50");
    let report = format!(
        "Fig 6 — epoch time, Downpour vs EAMSGD vs SASGD (p = 8)\n\n{table}\n\
         shape check vs paper: at T=1 SASGD is fastest (CIFAR: {s_c1:.2}s vs Downpour {d_c1:.2}s);\n\
         at T=50 the three approaches have similar epoch times ({s_c50:.2}s vs {d_c50:.2}s).\n"
    );
    Artifact {
        name: "fig6".into(),
        report,
        csvs: vec![("fig6.csv".into(), csv)],
    }
}

// ---------------------------------------------------------------------------
// Figs 7/8 — SASGD accuracy vs T; Figs 9/10 — algorithm comparison.
// ---------------------------------------------------------------------------

fn interval_accuracy_fig(name: &str, w: &ConvergenceWorkload, seed: u64) -> Artifact {
    let ts = [1usize, 5, 25, 50];
    let ps = [2usize, 4, 8, 16];
    let mut csv = String::from("p,t,epoch,test_acc\n");
    let mut final_rows = Vec::new();
    let mut report = format!(
        "{name} — SASGD test accuracy for T ∈ {{1,5,25,50}}, {} (γ = {})\n\n",
        w.name, w.gamma_hi
    );
    for &p in &ps {
        let mut series = Vec::new();
        for &t in &ts {
            let algo = Algorithm::Sasgd {
                p,
                t,
                gamma_p: GammaP::OverP,
                compression: None,
            };
            let h = run_algo(w, &algo, w.gamma_hi, w.epochs, seed + (p * 100 + t) as u64);
            for r in &h.records {
                csv.push_str(&format!("{},{},{},{}\n", p, t, r.epoch, r.test_acc));
            }
            final_rows.push(vec![
                p.to_string(),
                t.to_string(),
                format!("{:.1}", f64::from(h.final_test_acc()) * 100.0),
            ]);
            series.push((format!("T={t}"), h.test_acc_series()));
        }
        let plot_series: Vec<(&str, Vec<(f64, f64)>)> = series
            .iter()
            .map(|(l, s)| (l.as_str(), s.clone()))
            .collect();
        report.push_str(&ascii_plot(&format!("p = {p}"), &plot_series, 64, 12));
        report.push('\n');
    }
    report.push_str(&ascii_table(&["p", "T", "final test acc %"], &final_rows));
    report.push_str(
        "\nshape check vs paper: accuracy degrades mildly as T grows, and the\n\
         degradation widens with p (paper: 1.32 % at p=2 → 3.21 % at p=16 for CIFAR;\n\
         weaker for NLC-F where T=50 can even win at p=16).\n",
    );
    Artifact {
        name: name.into(),
        report,
        csvs: vec![(format!("{name}.csv"), csv)],
    }
}

/// Fig 7: SASGD accuracy vs `T`, CIFAR-like.
pub fn fig7(scale: Scale, epochs: Option<usize>) -> Artifact {
    interval_accuracy_fig("fig7", &cifar_workload(scale, epochs), 0x77)
}

/// Fig 8: SASGD accuracy vs `T`, NLC-like.
pub fn fig8(scale: Scale, epochs: Option<usize>) -> Artifact {
    interval_accuracy_fig("fig8", &nlc_workload(scale, epochs), 0x88)
}

fn algo_comparison_fig(name: &str, w: &ConvergenceWorkload, t: usize, seed: u64) -> Artifact {
    let ps = [2usize, 4, 8, 16];
    let mut csv = String::from("algorithm,p,epoch,train_acc,test_acc\n");
    let mut report = format!(
        "{name} — training (top) and test (bottom) accuracy, T = {t}, {} (γ = {})\n\n",
        w.name, w.gamma_hi
    );
    let mut final_rows = Vec::new();
    for &p in &ps {
        // EAMSGD keeps its momentum δ = 0.9 with γ scaled by (1−δ) so the
        // effective step size matches the plain-SGD competitors.
        let momentum = 0.9f32;
        let runs: Vec<(&str, Algorithm, f32)> = vec![
            (
                "Downpour",
                Algorithm::Downpour {
                    p,
                    t,
                    staleness_gamma: false,
                },
                w.gamma_hi,
            ),
            (
                "EAMSGD",
                Algorithm::Eamsgd {
                    p,
                    t,
                    moving_rate: None,
                    momentum,
                    staleness_gamma: false,
                },
                w.gamma_hi * (1.0 - momentum),
            ),
            (
                "SASGD",
                Algorithm::Sasgd {
                    p,
                    t,
                    gamma_p: GammaP::OverP,
                    compression: None,
                },
                w.gamma_hi,
            ),
        ];
        let mut train_series = Vec::new();
        let mut test_series = Vec::new();
        for (label, algo, gamma) in runs {
            let h = run_algo(w, &algo, gamma, w.epochs, seed + p as u64);
            for r in &h.records {
                csv.push_str(&format!(
                    "{label},{p},{},{},{}\n",
                    r.epoch, r.train_acc, r.test_acc
                ));
            }
            final_rows.push(vec![
                label.to_string(),
                p.to_string(),
                format!("{:.1}", f64::from(h.final_train_acc()) * 100.0),
                format!("{:.1}", f64::from(h.final_test_acc()) * 100.0),
            ]);
            train_series.push((label, h.train_acc_series()));
            test_series.push((label, h.test_acc_series()));
        }
        let tr: Vec<(&str, Vec<(f64, f64)>)> =
            train_series.iter().map(|(l, s)| (*l, s.clone())).collect();
        let te: Vec<(&str, Vec<(f64, f64)>)> =
            test_series.iter().map(|(l, s)| (*l, s.clone())).collect();
        report.push_str(&ascii_plot(&format!("p = {p} (train)"), &tr, 64, 10));
        report.push_str(&ascii_plot(&format!("p = {p} (test)"), &te, 64, 10));
        report.push('\n');
    }
    report.push_str(&ascii_table(
        &["algorithm", "p", "final train acc %", "final test acc %"],
        &final_rows,
    ));
    report.push_str(
        "\nshape check vs paper: SASGD ≥ EAMSGD ≥ Downpour throughout; the async\n\
         algorithms degrade as p grows (Downpour erratic from p=4-8, near random\n\
         guess at p=16) while SASGD stays close to the sequential accuracy.\n",
    );
    Artifact {
        name: name.into(),
        report,
        csvs: vec![(format!("{name}.csv"), csv)],
    }
}

/// Fig 9: Downpour vs EAMSGD vs SASGD, CIFAR-like, T = 50.
pub fn fig9(scale: Scale, epochs: Option<usize>) -> Artifact {
    algo_comparison_fig("fig9", &cifar_workload(scale, epochs), 50, 0x99)
}

/// Fig 10: Downpour vs EAMSGD vs SASGD, NLC-like, T = 50.
pub fn fig10(scale: Scale, epochs: Option<usize>) -> Artifact {
    algo_comparison_fig("fig10", &nlc_workload(scale, epochs), 50, 0xA0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_report_paper_counts() {
        let t1 = table1();
        assert!(t1.report.contains("506378"));
        let t2 = table2();
        assert!(t2.report.contains("1733511"));
    }

    #[test]
    fn fig1_reports_both_workloads() {
        let a = fig1();
        assert!(a.report.contains("NLC-F"));
        assert!(a.report.contains("CIFAR-10"));
        assert_eq!(a.csvs.len(), 1);
        assert!(a.csvs[0].1.lines().count() > 8);
    }

    #[test]
    fn theorem_artifacts_have_tables() {
        assert!(theorem1().report.contains("guarantee gap"));
        assert!(theorem2().report.contains("K_min"));
    }

    #[test]
    fn fig4_fig5_fig6_shapes() {
        let f4 = fig4();
        assert!(f4.report.contains("speedup"));
        let f5 = fig5();
        assert!(f5.report.contains("NLC-F"));
        let f6 = fig6();
        assert!(f6.report.contains("SASGD"));
        assert!(f6.report.contains("Downpour"));
    }

    #[test]
    fn fig2_runs_at_tiny_scale() {
        // 2-epoch smoke run of the convergence machinery.
        let a = fig2(Scale::Tiny, Some(2));
        assert!(a.report.contains("p=16"));
        assert!(a.csvs[0].1.lines().count() > 4);
    }
}

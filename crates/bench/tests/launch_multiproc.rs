//! End-to-end multi-process test: four OS processes over the socket
//! transport must reproduce the in-process threaded SASGD run bitwise.
//!
//! Cargo builds the `repro` binary for integration tests and exposes its
//! path via `CARGO_BIN_EXE_repro`; `run_launch` re-invokes it with the
//! hidden `_rank` subcommand for each rank and does the comparison itself
//! (spawn → rendezvous → train → compare, all bounded by the launcher's
//! hard timeout).

use std::path::Path;

use sasgd_bench::launch::run_launch;

#[test]
fn four_process_sasgd_matches_in_process_run_bitwise() {
    let exe = Path::new(env!("CARGO_BIN_EXE_repro"));
    let scratch = std::env::temp_dir().join(format!("sasgd-launch-test-{}", std::process::id()));
    let outcome = run_launch(exe, &scratch);
    assert!(
        outcome.ok,
        "multi-process run diverged or failed:\n{}",
        outcome.report
    );
    assert!(
        outcome.report.contains("IDENTICAL"),
        "report should carry the bitwise verdict:\n{}",
        outcome.report
    );
}

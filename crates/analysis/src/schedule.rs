//! Schedule-exploration race checker for the `sasgd-comm` substrate.
//!
//! The threaded backend's headline claim — "SASGD over threads equals
//! SASGD simulated, bit for bit" — rests on the collectives combining in a
//! *fixed* order no matter how the OS schedules the rank threads. This
//! harness attacks that claim directly: it runs each collective (and the
//! PS server) under many distinct injected-delay schedules that perturb
//! message arrival orders, and asserts
//!
//! * **(a) bitwise invariance** — every rank's result is bitwise identical
//!   across all explored schedules;
//! * **(b) deadlock freedom** — a polled **wait-for-graph cycle detector**
//!   samples the world's wait table and declares deadlock only when the
//!   same cycle of blocked ranks persists across consecutive polls,
//!   reporting the exact cycle and which ranks are blocked on which
//!   `(src, tag)` resource. Slow schedulers (1-core CI) cannot produce
//!   false positives: without a cycle, a run is only abandoned after the
//!   generous fallback budget;
//! * **(c) no lost updates** on the PS path — after all concurrent pushes,
//!   the pulled parameters equal the exact expected sum, and every
//!   mid-flight pull observes only shard states a serial application of
//!   that shard's messages could produce.
//!
//! ## Exploration model and its limits
//!
//! Schedules are *injected delays*, not a model checker's full interleaving
//! tree: for p ≤ 4 the harness exhaustively enumerates all `p!` start-order
//! permutations crossed with a basis of per-operation delay patterns
//! (pre-send, pre-recv, and none); for p = 8 it draws seeded pseudo-random
//! delay vectors. Delays bias the OS schedule toward the targeted arrival
//! orders rather than forcing them, so a pass is strong evidence over the
//! explored envelope, not a proof over all interleavings — see DESIGN.md
//! §4d. The regression tests show the harness *does* catch an
//! arrival-order-combining reduce and a real recv cycle.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use sasgd_comm::collectives::{allreduce_ring, allreduce_tree, reduce_tree};
use sasgd_comm::ft::{ft_allreduce, Membership};
use sasgd_comm::hierarchy::{grouped, hierarchical_allreduce};
use sasgd_comm::ps::{PsConfig, PsServer};
use sasgd_comm::sparse::{sparse_allreduce_tree, SparseVec};
use sasgd_comm::transport::Transport;
use sasgd_comm::world::{CommWorld, Communicator, DelaySchedule};

/// One delay unit. Long enough that a delayed send reliably loses the race
/// against an undelayed one; short enough that a full exploration stays in
/// CI budget.
const UNIT: Duration = Duration::from_micros(300);

/// Fallback budget per schedule run. Generous: a legitimate run finishes in
/// a few milliseconds even under maximal injected delay. Only reached when
/// ranks are stuck *without* a wait-for cycle (e.g. a thread wedged outside
/// the comm layer) — cyclic deadlocks are detected structurally long before.
const WATCHDOG: Duration = Duration::from_secs(10);

/// Poll cadence of the structural deadlock detector: each expiry samples
/// the world's wait table and looks for a wait-for cycle among the blocked
/// ranks.
const CYCLE_POLL: Duration = Duration::from_millis(25);

/// Consecutive polls one cycle must persist before it is declared real — a
/// rank can transiently appear blocked while its partner is mid-send, but
/// a true cycle can never dissolve on its own.
const CYCLE_CONFIRM: usize = 3;

/// Outcome of exploring one scenario.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Scenario name (`allreduce_tree`, `ps_push_pull`, …).
    pub name: String,
    /// Ranks / learners involved.
    pub p: usize,
    /// Schedules explored.
    pub schedules: usize,
    /// Distinct per-rank result checksums observed (must be 1).
    pub distinct_results: usize,
    /// Schedules on which a deadlock was detected (wait-for cycle, or the
    /// fallback budget with ranks still missing).
    pub deadlocks: usize,
    /// Deadlock diagnostics: per deadlocked schedule, which ranks were
    /// blocked on which `(src, tag)`.
    pub deadlock_reports: Vec<String>,
    /// PS-path consistency violations (lost updates / impossible shard
    /// states); 0 for collective scenarios.
    pub lost_updates: usize,
    /// FNV-1a over the per-rank result checksums of the first completed
    /// schedule — the bitwise fingerprint every other schedule must match.
    pub fingerprint: u64,
}

impl ScenarioResult {
    /// Did the scenario uphold all checked properties?
    pub fn ok(&self) -> bool {
        self.distinct_results <= 1 && self.deadlocks == 0 && self.lost_updates == 0
    }
}

/// FNV-1a over the bit patterns of a result vector — the same fingerprint
/// style as `tests/engine_golden.rs`.
pub fn fnv1a_f32(xs: &[f32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for x in xs {
        for b in x.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Deterministic pseudo-random stream (splitmix64) — the harness must not
/// depend on `rand` so it stays usable from every crate's dev-deps.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u32) -> u32 {
        (self.next() % u64::from(n.max(1))) as u32
    }
}

/// A full schedule: per-rank start delays plus the comm-level delay table.
#[derive(Clone, Debug, Default)]
pub struct Schedule {
    /// Delay units each rank sleeps before its first operation.
    pub start: Vec<u32>,
    /// Delay table handed to the communicators.
    pub delays: DelaySchedule,
}

/// All `p!` permutations of `0..p` (Heap's algorithm).
fn permutations(p: usize) -> Vec<Vec<u32>> {
    let mut a: Vec<u32> = (0..p as u32).collect();
    let mut out = vec![a.clone()];
    let mut c = vec![0usize; p];
    let mut i = 0usize;
    while i < p {
        if c[i] < i {
            if i.is_multiple_of(2) {
                a.swap(0, i);
            } else {
                a.swap(c[i], i);
            }
            out.push(a.clone());
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    out
}

/// The exhaustive schedule set for small `p`: every start-order permutation
/// crossed with three per-operation delay bases (none, alternating
/// pre-send, reversed pre-recv).
pub fn exhaustive_schedules(p: usize) -> Vec<Schedule> {
    let mut out = Vec::new();
    for perm in permutations(p) {
        for basis in 0..3u32 {
            let (send, recv): (Vec<Vec<u32>>, Vec<Vec<u32>>) = match basis {
                0 => (vec![Vec::new(); p], vec![Vec::new(); p]),
                1 => (
                    (0..p).map(|r| vec![perm[r] % 2, 1 - perm[r] % 2]).collect(),
                    vec![Vec::new(); p],
                ),
                _ => (
                    vec![Vec::new(); p],
                    (0..p).map(|r| vec![perm[p - 1 - r] % 3]).collect(),
                ),
            };
            out.push(Schedule {
                start: perm.clone(),
                delays: DelaySchedule {
                    unit: UNIT,
                    send,
                    recv,
                },
            });
        }
    }
    out
}

/// Seeded random schedules for larger `p`.
pub fn random_schedules(p: usize, count: usize, seed: u64) -> Vec<Schedule> {
    let mut rng = SplitMix(seed);
    (0..count)
        .map(|_| Schedule {
            start: (0..p).map(|_| rng.below(4)).collect(),
            delays: DelaySchedule {
                unit: UNIT,
                send: (0..p)
                    .map(|_| (0..4).map(|_| rng.below(3)).collect())
                    .collect(),
                recv: (0..p)
                    .map(|_| (0..4).map(|_| rng.below(2)).collect())
                    .collect(),
            },
        })
        .collect()
}

/// Rank inputs chosen so that any change in combine order is visible
/// bitwise: mixed magnitudes make float addition order-sensitive.
pub fn order_sensitive_input(rank: usize, m: usize) -> Vec<f32> {
    (0..m)
        .map(|j| {
            let base = match (rank + j) % 4 {
                0 => 1.0e8,
                1 => 1.0,
                2 => -1.0e8,
                _ => 3.7e-5,
            };
            base + (rank as f32 + 1.0) * 0.123 + j as f32 * 0.017
        })
        .collect()
}

/// One rank's body in a schedule run: `(rank, communicator) -> result`.
pub type RankFn = Arc<dyn Fn(usize, &mut Communicator) -> Vec<f32> + Send + Sync>;

/// Outcome of one schedule run.
enum RunOutcome {
    /// Per-rank result checksums, rank order.
    Done(Vec<u64>),
    /// Deadlock detected; human-readable cycle + held-resource report.
    Deadlock(String),
}

/// Find a wait-for cycle among blocked, unfinished ranks: `r` waits on
/// `src` iff the wait table holds `Some((src, _))` for `r`. Every blocked
/// rank has exactly one outgoing edge, so following edges either leaves the
/// blocked set or closes a cycle. The cycle is rotated to start at its
/// smallest rank so consecutive polls of the same stuck state compare equal.
fn wait_cycle(held: &[Option<(usize, u64)>], done: &[bool]) -> Option<Vec<usize>> {
    let blocked = |r: usize| !done[r] && held[r].is_some();
    for start in 0..held.len() {
        if !blocked(start) {
            continue;
        }
        let mut path = vec![start];
        let mut cur = start;
        while let Some((src, _)) = held[cur] {
            if !blocked(src) {
                break;
            }
            if let Some(pos) = path.iter().position(|&x| x == src) {
                let mut cycle = path[pos..].to_vec();
                let min_idx = cycle
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, &r)| r)
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                cycle.rotate_left(min_idx);
                return Some(cycle);
            }
            path.push(src);
            cur = src;
        }
    }
    None
}

/// Build the deadlock report: the cycle (when one exists) followed by the
/// held resource of every rank.
fn deadlock_report(held: &[Option<(usize, u64)>], cycle: Option<&[usize]>) -> String {
    let mut report = match cycle {
        Some(c) => {
            let hops: Vec<String> = c.iter().map(|r| format!("rank {r}")).collect();
            format!(
                "deadlock: wait-for cycle {} -> rank {}; ",
                hops.join(" -> "),
                c[0]
            )
        }
        None => String::from("deadlock: "),
    };
    for (r, w) in held.iter().enumerate() {
        match w {
            Some((src, tag)) => {
                report.push_str(&format!("rank {r} blocked on (src {src}, tag {tag}); "))
            }
            None => report.push_str(&format!("rank {r} not blocked in recv; ")),
        }
    }
    report
}

/// Run `scenario` on `p` fresh ranks under `sched`. The scenario receives
/// `(rank, communicator)` and returns the rank's result vector.
///
/// Deadlock detection is structural: the result channel is polled on a
/// short cadence, and each expiry samples the world's wait table looking
/// for a wait-for cycle among blocked ranks. A cycle that persists
/// [`CYCLE_CONFIRM`] consecutive polls is a deadlock — no matter how slow
/// the machine. `watchdog` is only the fallback for cycle-free wedges, so
/// a loaded 1-core runner cannot turn a slow-but-live schedule into a
/// false positive.
fn run_schedule(p: usize, sched: &Schedule, scenario: RankFn, watchdog: Duration) -> RunOutcome {
    let mut world = CommWorld::new(p);
    world.set_delays(Arc::new(sched.delays.clone()));
    let comms = world.communicators();
    let (tx, rx) = mpsc::channel::<(usize, u64)>();
    for (rank, mut comm) in comms.into_iter().enumerate() {
        let tx = tx.clone();
        let scenario = Arc::clone(&scenario);
        let start_units = sched.start.get(rank).copied().unwrap_or(0);
        // Detached threads: on deadlock they stay blocked and are leaked —
        // the cycle report is the product, and the process moves on.
        // lint:allow(raw-spawn): the race checker is the one sanctioned
        // thread host outside comm/core::threaded (see SPAWN_ALLOWED).
        std::thread::spawn(move || {
            if start_units > 0 {
                std::thread::sleep(UNIT * start_units);
            }
            let result = scenario(rank, &mut comm);
            let _ = tx.send((rank, fnv1a_f32(&result)));
        });
    }
    drop(tx);
    let max_polls = (watchdog.as_micros() / CYCLE_POLL.as_micros()).max(1) as usize;
    let mut sums = vec![0u64; p];
    let mut done = vec![false; p];
    let mut remaining = p;
    let mut last_cycle: Option<Vec<usize>> = None;
    let mut persist = 0usize;
    let mut polls_left = max_polls;
    loop {
        match rx.recv_timeout(CYCLE_POLL) {
            Ok((rank, h)) => {
                sums[rank] = h;
                if !done[rank] {
                    done[rank] = true;
                    remaining -= 1;
                }
                if remaining == 0 {
                    return RunOutcome::Done(sums);
                }
                // Progress: reset the cycle confirmation and the fallback.
                last_cycle = None;
                persist = 0;
                polls_left = max_polls;
            }
            Err(e) => {
                let held = world.waiting_snapshot();
                let cycle = wait_cycle(&held, &done);
                match &cycle {
                    Some(c) if last_cycle.as_ref() == Some(c) => persist += 1,
                    Some(_) => persist = 1,
                    None => persist = 0,
                }
                last_cycle = cycle;
                polls_left = polls_left.saturating_sub(1);
                // Disconnected with results missing: a rank exited without
                // reporting (panic) — no amount of waiting will finish.
                let wedged = matches!(e, mpsc::RecvTimeoutError::Disconnected);
                if persist >= CYCLE_CONFIRM || polls_left == 0 || wedged {
                    return RunOutcome::Deadlock(deadlock_report(&held, last_cycle.as_deref()));
                }
            }
        }
    }
}

/// Explore `schedules` for one collective scenario and fold the outcomes.
pub fn explore(name: &str, p: usize, schedules: &[Schedule], scenario: RankFn) -> ScenarioResult {
    explore_with(name, p, schedules, scenario, WATCHDOG)
}

/// [`explore`] with an explicit watchdog budget — the deliberate-deadlock
/// self-check uses a short one (its hang is certain, not probabilistic).
pub fn explore_with(
    name: &str,
    p: usize,
    schedules: &[Schedule],
    scenario: RankFn,
    watchdog: Duration,
) -> ScenarioResult {
    let mut seen: Vec<Vec<u64>> = Vec::new();
    let mut deadlocks = 0usize;
    let mut deadlock_reports = Vec::new();
    for sched in schedules {
        match run_schedule(p, sched, Arc::clone(&scenario), watchdog) {
            RunOutcome::Done(sums) => {
                if !seen.contains(&sums) {
                    seen.push(sums);
                }
            }
            RunOutcome::Deadlock(report) => {
                deadlocks += 1;
                if deadlock_reports.len() < 4 {
                    deadlock_reports.push(report);
                }
            }
        }
    }
    ScenarioResult {
        name: name.to_string(),
        p,
        schedules: schedules.len(),
        distinct_results: seen.len(),
        deadlocks,
        deadlock_reports,
        lost_updates: 0,
        fingerprint: seen.first().map_or(0, |s| fingerprint_of(s)),
    }
}

/// Fold per-rank checksums into one scenario fingerprint.
fn fingerprint_of(sums: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for s in sums {
        for b in s.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

// ---------------------------------------------------------------------------
// Scenario definitions.
// ---------------------------------------------------------------------------

/// Dense binomial-tree allreduce.
pub fn scenario_allreduce_tree(p: usize, schedules: &[Schedule]) -> ScenarioResult {
    explore(
        "allreduce_tree",
        p,
        schedules,
        Arc::new(|rank, comm| {
            let mut v = order_sensitive_input(rank, 9);
            allreduce_tree(comm, &mut v).expect("allreduce");
            v
        }),
    )
}

/// Dense binomial-tree reduce to a nonzero root (exercises the
/// virtual-rank remapping); result includes the non-root partials, which
/// are also schedule-invariant.
pub fn scenario_reduce_tree(p: usize, schedules: &[Schedule]) -> ScenarioResult {
    explore(
        "reduce_tree_root1",
        p,
        schedules,
        Arc::new(move |rank, comm| {
            let root = 1 % p;
            let mut v = order_sensitive_input(rank, 7);
            reduce_tree(comm, root, &mut v).expect("reduce");
            v
        }),
    )
}

/// Sparse tree allreduce over the `[len, nnz, idx…, val…]` wire format.
pub fn scenario_sparse_allreduce(p: usize, schedules: &[Schedule]) -> ScenarioResult {
    explore(
        "sparse_allreduce_tree",
        p,
        schedules,
        Arc::new(|rank, comm| {
            let m = 23;
            let dense: Vec<f32> = (0..m)
                .map(|j| {
                    if (j + rank) % 3 == 0 {
                        1.0e7 + (rank as f32 + 1.0) * 0.31 + j as f32
                    } else {
                        0.0
                    }
                })
                .collect();
            let mut sv = SparseVec::from_dense(&dense);
            sparse_allreduce_tree(comm, &mut sv).expect("sparse allreduce");
            sv.to_dense()
        }),
    )
}

/// Ring allreduce (reduce-scatter + allgather).
pub fn scenario_allreduce_ring(p: usize, schedules: &[Schedule]) -> ScenarioResult {
    explore(
        "allreduce_ring",
        p,
        schedules,
        Arc::new(|rank, comm| {
            let mut v = order_sensitive_input(rank, 11);
            allreduce_ring(comm, &mut v).expect("ring allreduce");
            v
        }),
    )
}

/// Two consecutive collectives — catches tag-space collisions between
/// overlapping operations under reordering.
pub fn scenario_back_to_back(p: usize, schedules: &[Schedule]) -> ScenarioResult {
    explore(
        "back_to_back_collectives",
        p,
        schedules,
        Arc::new(|rank, comm| {
            let mut a = order_sensitive_input(rank, 5);
            allreduce_tree(comm, &mut a).expect("allreduce a");
            let mut b = order_sensitive_input(rank + 1, 5);
            allreduce_tree(comm, &mut b).expect("allreduce b");
            a.extend_from_slice(&b);
            a
        }),
    )
}

/// Hierarchical (grouped) allreduce: local reduce → leader allreduce →
/// local broadcast. Delay injection is applied to all three communicator
/// scopes of every learner.
pub fn scenario_hierarchical(
    groups: usize,
    per_group: usize,
    schedules: &[Schedule],
) -> ScenarioResult {
    let p = groups * per_group;
    let mut seen: Vec<Vec<u64>> = Vec::new();
    let mut deadlocks = 0usize;
    let mut deadlock_reports = Vec::new();
    for sched in schedules {
        let delays = Arc::new(sched.delays.clone());
        let mut bundles = grouped(groups, per_group);
        for b in bundles.iter_mut() {
            b.global.set_delays(Arc::clone(&delays));
            b.local.set_delays(Arc::clone(&delays));
            if let Some(l) = b.leaders.as_mut() {
                l.set_delays(Arc::clone(&delays));
            }
        }
        let (tx, rx) = mpsc::channel::<(usize, u64)>();
        for (rank, mut b) in bundles.into_iter().enumerate() {
            let tx = tx.clone();
            let start_units = sched.start.get(rank).copied().unwrap_or(0);
            // lint:allow(raw-spawn): race-checker thread host.
            std::thread::spawn(move || {
                if start_units > 0 {
                    std::thread::sleep(UNIT * start_units);
                }
                let mut v = order_sensitive_input(rank, 9);
                hierarchical_allreduce(&mut b, &mut v).expect("hierarchical allreduce");
                let _ = tx.send((rank, fnv1a_f32(&v)));
            });
        }
        drop(tx);
        let mut sums = vec![0u64; p];
        let mut dead = false;
        for _ in 0..p {
            match rx.recv_timeout(WATCHDOG) {
                Ok((rank, h)) => sums[rank] = h,
                Err(_) => {
                    dead = true;
                    break;
                }
            }
        }
        if dead {
            deadlocks += 1;
            if deadlock_reports.len() < 4 {
                deadlock_reports
                    .push("deadlock in hierarchical_allreduce (grouped worlds)".to_string());
            }
        } else if !seen.contains(&sums) {
            seen.push(sums);
        }
    }
    ScenarioResult {
        name: format!("hierarchical_{groups}x{per_group}"),
        p,
        schedules: schedules.len(),
        distinct_results: seen.len(),
        deadlocks,
        deadlock_reports,
        lost_updates: 0,
        fingerprint: seen.first().map_or(0, |s| fingerprint_of(s)),
    }
}

/// PS push/pull under concurrent clients: lost-update and shard-state
/// consistency detection.
///
/// Every client `r` pushes `pushes` deltas of the constant vector
/// `r + 1` (exactly representable; sums stay exact in f32), with
/// schedule-injected sleeps between pushes. A concurrent reader pulls
/// mid-flight and checks each *shard segment* is uniform — a shard applies
/// whole `Add` messages serially, so a torn segment means a lost or
/// partial update. After all pushers join, the final pull must equal the
/// exact expected sum (any miss is a lost update).
pub fn scenario_ps(
    p: usize,
    shards: usize,
    pushes: usize,
    schedules: &[Schedule],
) -> ScenarioResult {
    let m = 24usize;
    let mut lost = 0usize;
    let mut deadlocks = 0usize;
    let mut deadlock_reports = Vec::new();
    let mut seen: Vec<Vec<u64>> = Vec::new();
    let expected: f32 = (1..=p).map(|r| (r * pushes) as f32).sum();
    for sched in schedules {
        let ps = PsServer::spawn(vec![0.0; m], PsConfig { shards });
        let bounds: Vec<(usize, usize)> = {
            // Mirror PsServer's shard split (base + extras-first).
            let base = m / shards;
            let extra = m % shards;
            let mut v = Vec::with_capacity(shards);
            let mut start = 0usize;
            for k in 0..shards {
                let len = base + usize::from(k < extra);
                v.push((start, start + len));
                start += len;
            }
            v
        };
        let (tx, rx) = mpsc::channel::<Result<(), String>>();
        for r in 0..p {
            let c = ps.client();
            let tx = tx.clone();
            let start_units = sched.start.get(r).copied().unwrap_or(0);
            let gaps: Vec<u32> = sched.delays.send.get(r).cloned().unwrap_or_default();
            // lint:allow(raw-spawn): race-checker thread host.
            std::thread::spawn(move || {
                if start_units > 0 {
                    std::thread::sleep(UNIT * start_units);
                }
                for k in 0..pushes {
                    if !gaps.is_empty() {
                        let u = gaps[k % gaps.len()];
                        if u > 0 {
                            std::thread::sleep(UNIT * u);
                        }
                    }
                    c.add(&vec![(r + 1) as f32; m]);
                }
                let _ = tx.send(Ok(()));
            });
        }
        // Concurrent reader: mid-flight pulls must observe uniform shards.
        let reader = ps.client();
        let reader_bounds = bounds.clone();
        let rtx = tx.clone();
        // lint:allow(raw-spawn): race-checker thread host.
        std::thread::spawn(move || {
            for _ in 0..6 {
                let x = reader.pull();
                for &(lo, hi) in &reader_bounds {
                    if hi > lo {
                        let v0 = x[lo];
                        if x[lo..hi].iter().any(|&v| v.to_bits() != v0.to_bits()) {
                            let _ = rtx.send(Err(format!(
                                "torn shard segment [{lo}, {hi}): {:?}",
                                &x[lo..hi]
                            )));
                            return;
                        }
                    }
                }
                std::thread::sleep(UNIT);
            }
            let _ = rtx.send(Ok(()));
        });
        drop(tx);
        let mut dead = false;
        for _ in 0..p + 1 {
            match rx.recv_timeout(WATCHDOG) {
                Ok(Ok(())) => {}
                Ok(Err(report)) => {
                    lost += 1;
                    if deadlock_reports.len() < 4 {
                        deadlock_reports.push(report);
                    }
                }
                Err(_) => {
                    dead = true;
                    break;
                }
            }
        }
        if dead {
            deadlocks += 1;
            continue;
        }
        let x = ps.client().pull();
        if x.iter().any(|&v| v != expected) {
            lost += 1;
            if deadlock_reports.len() < 4 {
                deadlock_reports.push(format!(
                    "lost update: expected uniform {expected}, got {:?}",
                    &x[..4.min(x.len())]
                ));
            }
        }
        let final_params = ps.shutdown();
        if !seen.contains(&vec![fnv1a_f32(&final_params)]) {
            seen.push(vec![fnv1a_f32(&final_params)]);
        }
    }
    ScenarioResult {
        name: format!("ps_push_pull_s{shards}"),
        p,
        schedules: schedules.len(),
        // Sums of identical commuting adds: final state must be invariant.
        distinct_results: seen.len(),
        deadlocks,
        deadlock_reports,
        lost_updates: lost,
        fingerprint: seen.first().map_or(0, |s| fingerprint_of(s)),
    }
}

/// Failure-detection deadline for the fault-free fault-tolerant scenario.
/// Far above any injected delay (units are 300 µs), so a live-but-delayed
/// rank is never spuriously evicted; a clean round never waits it out, so
/// generosity costs nothing.
const FT_DEADLINE: Duration = Duration::from_millis(400);

/// Deadline for the dead-rank scenario. Every round with a confirmed death
/// waits out the recovery-sweep window (a small multiple of this), so it
/// is shorter — still three orders of magnitude above the injected delays.
const FT_EVICT_DEADLINE: Duration = Duration::from_millis(150);

/// Fault-free fault-tolerant allreduce: schedule-invariant *and* bitwise
/// equal to the plain binomial tree (the FT path reduces in the identical
/// combine order; the mask prefix and direct result distribution must not
/// perturb a single bit).
pub fn scenario_ft_allreduce(p: usize, schedules: &[Schedule]) -> ScenarioResult {
    let mut r = explore(
        "ft_allreduce_fault_free",
        p,
        schedules,
        Arc::new(|rank, comm| {
            let mut membership = Membership::new(comm.size());
            let mut v = order_sensitive_input(rank, 9);
            let out = ft_allreduce(comm, &mut membership, &mut v, FT_DEADLINE)
                .expect("fault-free ft allreduce");
            assert!(out.lost.is_empty(), "fault-free round must not evict");
            v
        }),
    );
    let plain = explore(
        "plain_reference",
        p,
        &[Schedule::default()],
        Arc::new(|rank, comm| {
            let mut v = order_sensitive_input(rank, 9);
            allreduce_tree(comm, &mut v).expect("allreduce");
            v
        }),
    );
    if r.fingerprint != plain.fingerprint && r.distinct_results == 1 {
        r.lost_updates += 1;
        r.deadlock_reports.push(format!(
            "ft_allreduce fingerprint {:#x} differs from plain allreduce {:#x}",
            r.fingerprint, plain.fingerprint
        ));
    }
    r
}

/// Fault-tolerant allreduce with one rank dead from the start (its thread
/// returns immediately, dropping its endpoints — the crash signature the
/// threaded backend produces). Survivors must evict exactly that rank,
/// agree bitwise under every schedule, and never deadlock.
pub fn scenario_ft_one_dead(p: usize, dead: usize, schedules: &[Schedule]) -> ScenarioResult {
    assert!(
        dead > 0 && dead < p,
        "rank 0 coordinates; kill an interior rank"
    );
    let mut r = explore(
        "ft_allreduce_one_dead",
        p,
        schedules,
        Arc::new(move |rank, comm| {
            if rank == dead {
                return Vec::new(); // crash before the collective
            }
            let mut membership = Membership::new(comm.size());
            let mut v = order_sensitive_input(rank, 9);
            let out = ft_allreduce(comm, &mut membership, &mut v, FT_EVICT_DEADLINE)
                .expect("survivor ft allreduce");
            assert_eq!(out.lost, vec![dead], "exactly the dead rank is evicted");
            assert_eq!(membership.len(), comm.size() - 1);
            v
        }),
    );
    r.name = format!("ft_allreduce_dead_rank{dead}");
    r
}

/// Epoch-versioned snapshot under concurrent cross-shard pushes: every
/// client pushes constant full-vector deltas, so *any* transaction-
/// consistent cut is uniform across the whole vector — not merely within
/// each shard segment, which is all plain `pull` guarantees. A torn
/// cross-shard snapshot (EXPERIMENTS.md's documented `pull` caveat) shows
/// up as a non-uniform vector and is counted as a violation.
pub fn scenario_ps_snapshot(
    p: usize,
    shards: usize,
    pushes: usize,
    schedules: &[Schedule],
) -> ScenarioResult {
    let m = 24usize;
    let mut lost = 0usize;
    let mut deadlocks = 0usize;
    let mut deadlock_reports = Vec::new();
    let mut seen: Vec<Vec<u64>> = Vec::new();
    let expected: f32 = (1..=p).map(|r| (r * pushes) as f32).sum();
    for sched in schedules {
        let ps = PsServer::spawn(vec![0.0; m], PsConfig { shards });
        let (tx, rx) = mpsc::channel::<Result<(), String>>();
        for r in 0..p {
            let c = ps.client();
            let tx = tx.clone();
            let start_units = sched.start.get(r).copied().unwrap_or(0);
            let gaps: Vec<u32> = sched.delays.send.get(r).cloned().unwrap_or_default();
            // lint:allow(raw-spawn): race-checker thread host.
            std::thread::spawn(move || {
                if start_units > 0 {
                    std::thread::sleep(UNIT * start_units);
                }
                for k in 0..pushes {
                    if !gaps.is_empty() {
                        let u = gaps[k % gaps.len()];
                        if u > 0 {
                            std::thread::sleep(UNIT * u);
                        }
                    }
                    c.add(&vec![(r + 1) as f32; m]);
                }
                let _ = tx.send(Ok(()));
            });
        }
        // Concurrent snapshot reader: every mid-flight snapshot must be a
        // consistent cut, i.e. uniform across shard boundaries.
        let reader = ps.client();
        let rtx = tx.clone();
        // lint:allow(raw-spawn): race-checker thread host.
        std::thread::spawn(move || {
            for _ in 0..6 {
                match reader.pull_snapshot(400) {
                    Ok(x) => {
                        let v0 = x[0];
                        if x.iter().any(|&v| v.to_bits() != v0.to_bits()) {
                            let _ = rtx.send(Err(format!(
                                "torn cross-shard snapshot: {:?}",
                                &x[..8.min(x.len())]
                            )));
                            return;
                        }
                    }
                    Err(e) => {
                        let _ = rtx.send(Err(format!("snapshot failed: {e}")));
                        return;
                    }
                }
                std::thread::sleep(UNIT);
            }
            let _ = rtx.send(Ok(()));
        });
        drop(tx);
        let mut dead = false;
        for _ in 0..p + 1 {
            match rx.recv_timeout(WATCHDOG) {
                Ok(Ok(())) => {}
                Ok(Err(report)) => {
                    lost += 1;
                    if deadlock_reports.len() < 4 {
                        deadlock_reports.push(report);
                    }
                }
                Err(_) => {
                    dead = true;
                    break;
                }
            }
        }
        if dead {
            deadlocks += 1;
            continue;
        }
        // Quiescent snapshot must equal the exact commutative sum.
        match ps.client().pull_snapshot(400) {
            Ok(x) => {
                if x.iter().any(|&v| v != expected) {
                    lost += 1;
                    if deadlock_reports.len() < 4 {
                        deadlock_reports.push(format!(
                            "lost update in snapshot: expected uniform {expected}, got {:?}",
                            &x[..4.min(x.len())]
                        ));
                    }
                }
            }
            Err(e) => {
                lost += 1;
                if deadlock_reports.len() < 4 {
                    deadlock_reports.push(format!("quiescent snapshot failed: {e}"));
                }
            }
        }
        let final_params = ps.shutdown();
        if !seen.contains(&vec![fnv1a_f32(&final_params)]) {
            seen.push(vec![fnv1a_f32(&final_params)]);
        }
    }
    ScenarioResult {
        name: format!("ps_snapshot_s{shards}"),
        p,
        schedules: schedules.len(),
        distinct_results: seen.len(),
        deadlocks,
        deadlock_reports,
        lost_updates: lost,
        fingerprint: seen.first().map_or(0, |s| fingerprint_of(s)),
    }
}

// ---------------------------------------------------------------------------
// Bad fixtures: what a failure looks like (used by tests and the
// analyzer's self-check).
// ---------------------------------------------------------------------------

/// A deliberately broken tree reduce that merges children in **arrival
/// order** (via [`Communicator::recv_any`]) instead of rank order. Float
/// addition does not commute bitwise, so its result depends on the thread
/// schedule — the race checker must observe divergent checksums.
pub fn bad_reduce_arrival_order<T: Transport>(comm: &mut T, root: usize, buf: &mut [f32]) {
    let p = comm.size();
    if p == 1 {
        comm.next_op();
        return;
    }
    let op = comm.next_op();
    let tag = (op << 4) | 1;
    let vrank = (comm.rank() + p - root) % p;
    // Children/parent sets identical to the correct reduce_tree…
    let mut children = Vec::new();
    let mut bit = 1usize;
    let mut parent = None;
    while bit < p {
        if vrank & bit != 0 {
            parent = Some(((vrank & !bit) + root) % p);
            break;
        }
        let child_v = vrank | bit;
        if child_v < p {
            children.push((child_v + root) % p);
        }
        bit <<= 1;
    }
    // …but the merge happens in whatever order the messages arrive.
    let candidates: Vec<(usize, u64)> = children.iter().map(|&c| (c, tag)).collect();
    let mut outstanding = candidates.len();
    while outstanding > 0 {
        let (_, part) = comm.recv_any(&candidates).expect("arrival-order recv");
        for (a, b) in buf.iter_mut().zip(&part) {
            *a += b;
        }
        outstanding -= 1;
    }
    if let Some(par) = parent {
        comm.send(par, tag, buf.to_vec()).expect("bad-reduce send");
    }
}

/// Explore the bad reduce; a healthy checker reports `distinct_results > 1`.
pub fn scenario_bad_reduce(p: usize, schedules: &[Schedule]) -> ScenarioResult {
    let mut r = explore(
        "bad_reduce_arrival_order",
        p,
        schedules,
        Arc::new(|rank, comm| {
            let mut v = order_sensitive_input(rank, 6);
            bad_reduce_arrival_order(comm, 0, &mut v);
            v
        }),
    );
    r.name = "bad_reduce_arrival_order (expected to diverge)".to_string();
    r
}

/// A deliberate recv cycle: every rank waits for its right neighbour
/// before sending. The watchdog must flag it and name the held resources.
pub fn scenario_deadlock(p: usize) -> ScenarioResult {
    let schedules = vec![Schedule {
        start: vec![0; p],
        delays: DelaySchedule::default(),
    }];
    // The hang is certain (a pure recv cycle), so a short watchdog suffices
    // and keeps the self-check cheap.
    explore_with(
        "deliberate_recv_cycle",
        p,
        &schedules,
        Arc::new(move |rank, comm| {
            let peer = (rank + 1) % p;
            // Everyone receives first: classic cycle, nobody ever sends.
            let v = comm.recv(peer, 99).expect("cycle recv");
            comm.send(peer, 99, v.clone()).expect("cycle send");
            v
        }),
        Duration::from_millis(500),
    )
}

/// The full production sweep: every shipped collective and the PS path,
/// exhaustive at p ≤ 4 and seeded-random at p = 8.
pub fn run_production_sweep() -> Vec<ScenarioResult> {
    let mut out = Vec::new();
    for p in [2usize, 3, 4] {
        let scheds = exhaustive_schedules(p);
        out.push(scenario_allreduce_tree(p, &scheds));
    }
    let s4 = exhaustive_schedules(4);
    out.push(scenario_reduce_tree(4, &s4));
    out.push(scenario_sparse_allreduce(4, &s4));
    out.push(scenario_allreduce_ring(4, &s4));
    out.push(scenario_back_to_back(4, &s4));
    out.push(scenario_hierarchical(2, 2, &s4));
    out.push(scenario_ps(4, 2, 6, &s4));
    out.push(scenario_ps_snapshot(4, 3, 6, &s4));
    out.push(scenario_ft_allreduce(4, &s4));
    // Dead-rank rounds wait out the recovery sweep, so a schedule subset
    // keeps the sweep in CI budget (coverage of the fast path stays full
    // via the fault-free scenario above).
    out.push(scenario_ft_one_dead(4, 3, &s4[..8.min(s4.len())]));
    let s8 = random_schedules(8, 12, 0x0005_a56d);
    out.push(scenario_allreduce_tree(8, &s8));
    out.push(scenario_sparse_allreduce(8, &s8));
    out.push(scenario_allreduce_ring(8, &s8));
    out.push(scenario_hierarchical(2, 4, &s8));
    out.push(scenario_ps(8, 3, 4, &s8));
    out.push(scenario_ft_allreduce(8, &s8));
    out.push(scenario_ft_one_dead(8, 5, &s8[..6.min(s8.len())]));
    out
}

//! # sasgd-bench
//!
//! The reproduction harness: one driver per table/figure of the paper
//! (consumed by the `repro` binary and the Criterion benches).
//!
//! Timing figures (1, 4, 5, 6) are regenerated analytically from the
//! calibrated cost model applied to the *full-size* paper workloads;
//! convergence figures (2, 3, 7, 8, 9, 10) run real training on scaled
//! synthetic workloads (see [`scale`]), since the full CIFAR-scale runs
//! are GPU-months on CPU. EXPERIMENTS.md records paper-vs-measured for
//! every artifact.

pub mod alloc;
pub mod analysis;
pub mod async_bench;
pub mod engine;
pub mod extensions;
pub mod faults;
pub mod figures;
pub mod hotpath;
pub mod kernels;
pub mod launch;
pub mod scale;
pub mod sparsity;

pub use scale::Scale;

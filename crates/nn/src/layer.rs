//! The [`Layer`] trait: forward/backward, flat parameter access, FLOP model.

use sasgd_tensor::{SeedRng, Tensor, Workspace};

/// Per-pass context threaded through the forward and backward passes.
///
/// Carries two orthogonal flags — whether layers should cache activations
/// for a following `backward` (`training`) and whether stochastic
/// regularizers like dropout are active (`stochastic`) — plus the RNG
/// stream that makes dropout masks reproducible per learner, plus the
/// [`Workspace`] scratch-buffer pool layers draw their per-step tensors
/// from. A hot loop keeps one workspace alive across steps (see
/// `Learner::compute_gradient` in `sasgd-core`) so steady-state training
/// stops allocating; a fresh default workspace merely degrades to
/// per-call allocation with identical numbers.
pub struct Ctx {
    /// `true` when layers must cache activations for `backward`.
    pub training: bool,
    /// `true` when stochastic regularizers (dropout) are active. Always
    /// `false` outside [`Ctx::train`]: measurements stay deterministic.
    pub stochastic: bool,
    /// Deterministic RNG for stochastic layers.
    pub rng: SeedRng,
    /// Scratch-buffer pool for activations, gradients and conv patch
    /// matrices. Reuse is bitwise-invisible (see `sasgd_tensor::workspace`).
    pub ws: Workspace,
}

impl Ctx {
    /// Training-mode context: caches for backward, dropout active.
    pub fn train(rng: SeedRng) -> Self {
        Ctx {
            training: true,
            stochastic: true,
            rng,
            ws: Workspace::new(),
        }
    }

    /// Evaluation-mode context (no caching, dropout disabled; RNG unused).
    pub fn eval() -> Self {
        Ctx {
            training: false,
            stochastic: false,
            rng: SeedRng::new(0),
            ws: Workspace::new(),
        }
    }

    /// Measurement-mode context: caches activations so gradients can be
    /// taken, but with dropout disabled — for deterministic gradient
    /// probes (e.g. per-epoch gradient-norm estimates) that must not
    /// sample regularization noise. RNG unused.
    pub fn measure() -> Self {
        Ctx {
            training: true,
            stochastic: false,
            rng: SeedRng::new(0),
            ws: Workspace::new(),
        }
    }
}

/// One differentiable layer.
///
/// Layers own their parameters, their parameter gradients (accumulated
/// across `backward` calls until [`Layer::zero_grads`]), and whatever
/// activations they must cache between `forward` and `backward`.
///
/// Shapes use *per-sample* dimensions (the batch axis is implicit and
/// dynamic): a conv layer maps `[ci, h, w] -> [co, oh, ow]`, a linear layer
/// maps `[..., in] -> [..., out]`.
pub trait Layer: Send {
    /// Human-readable layer name for model summaries.
    fn name(&self) -> &'static str;

    /// Forward pass over a batch. Consumes the input (layers that need it
    /// for backward cache it internally).
    fn forward(&mut self, input: Tensor, ctx: &mut Ctx) -> Tensor;

    /// Backward pass: receives `dL/d(output)`, returns `dL/d(input)`, and
    /// *accumulates* parameter gradients internally. Consumed tensors are
    /// recycled into `ctx.ws` so the next step reuses their storage.
    fn backward(&mut self, grad_out: Tensor, ctx: &mut Ctx) -> Tensor;

    /// Number of learnable scalars.
    fn param_len(&self) -> usize {
        0
    }

    /// Copy parameters into `out` (length exactly [`Layer::param_len`]).
    fn read_params(&self, _out: &mut [f32]) {}

    /// Overwrite parameters from `src` (length exactly [`Layer::param_len`]).
    fn write_params(&mut self, _src: &[f32]) {}

    /// Copy accumulated gradients into `out`.
    fn read_grads(&self, _out: &mut [f32]) {}

    /// Reset accumulated gradients to zero.
    fn zero_grads(&mut self) {}

    /// Per-sample output dimensions given per-sample input dimensions.
    fn out_shape(&self, in_dims: &[usize]) -> Vec<usize>;

    /// Forward multiply–accumulates for one sample with the given
    /// per-sample input dimensions. Element-wise layers report their element
    /// count; parameter-free reshapes report zero.
    fn macs(&self, in_dims: &[usize]) -> u64;
}

/// Batch a per-sample shape into full tensor dims.
pub fn with_batch(n: usize, per_sample: &[usize]) -> Vec<usize> {
    let mut d = Vec::with_capacity(per_sample.len() + 1);
    d.push(n);
    d.extend_from_slice(per_sample);
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_modes() {
        let t = Ctx::train(SeedRng::new(1));
        assert!(t.training && t.stochastic);
        let e = Ctx::eval();
        assert!(!e.training && !e.stochastic);
        let m = Ctx::measure();
        assert!(m.training && !m.stochastic, "measure: grads yes, noise no");
    }

    #[test]
    fn with_batch_prepends() {
        assert_eq!(with_batch(4, &[3, 32, 32]), vec![4, 3, 32, 32]);
        assert_eq!(with_batch(1, &[]), vec![1]);
    }
}

// virtual-path: crates/nn/src/fixture_spawn.rs
// BAD: raw thread creation outside comm / the threaded backend — the race
// checker cannot inject schedules into threads it cannot see.

pub fn background_update(mut params: Vec<f32>) {
    std::thread::spawn(move || {
        for p in params.iter_mut() {
            *p *= 0.99;
        }
    });
}

pub fn named_background() {
    let _ = std::thread::Builder::new().name("rogue".into());
}

//! Mock transport: a minimal shared-memory reference implementation of
//! [`Transport`].
//!
//! Where [`crate::world::Communicator`] carries the production machinery
//! (delay/fault injection, wait tables, traffic counters) and
//! [`crate::socket::SocketTransport`] carries a real wire, this impl is
//! the failure-semantics table from [`crate::transport`] and *nothing
//! else*: one mutex-guarded inbox per rank, a condvar for arrival
//! notification, an alive flag per endpoint. The transport-conformance
//! suite runs against all three; when a semantics question comes up, this
//! file is the shortest statement of the intended answer.

// Receive deadlines are wall-clock by nature (the condvar wait needs
// remaining-time bookkeeping); the numeric path never reads these clocks.
// This file is on the analyzer's `wall-clock` allow-list for that reason.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::transport::Transport;
use crate::world::CommError;

/// An undelivered message in a rank's inbox.
struct Slot {
    from: usize,
    tag: u64,
    payload: Vec<f32>,
}

/// State shared by every endpoint of one mock world.
struct Shared {
    inboxes: Vec<Mutex<VecDeque<Slot>>>,
    arrivals: Vec<Condvar>,
    alive: Vec<AtomicBool>,
}

/// One rank's endpoint in a [`mock_world`].
pub struct MockTransport {
    rank: usize,
    size: usize,
    shared: Arc<Shared>,
    /// Out-of-order arrivals parked until a matching receive (ordered map:
    /// `map-iter` lint, same rationale as `world.rs`).
    pending: BTreeMap<(usize, u64), VecDeque<Vec<f32>>>,
    op_counter: u64,
    default_deadline: Option<Duration>,
}

/// Build the `p` endpoints of a fresh mock world.
pub fn mock_world(p: usize) -> Vec<MockTransport> {
    assert!(p > 0, "world needs at least one rank");
    let shared = Arc::new(Shared {
        inboxes: (0..p).map(|_| Mutex::new(VecDeque::new())).collect(),
        arrivals: (0..p).map(|_| Condvar::new()).collect(),
        alive: (0..p).map(|_| AtomicBool::new(true)).collect(),
    });
    (0..p)
        .map(|rank| MockTransport {
            rank,
            size: p,
            shared: Arc::clone(&shared),
            pending: BTreeMap::new(),
            op_counter: 0,
            default_deadline: None,
        })
        .collect()
}

impl MockTransport {
    /// Set or clear this endpoint's default receive deadline.
    pub fn set_default_deadline(&mut self, deadline: Option<Duration>) {
        self.default_deadline = deadline;
    }

    /// Pop the next inbox message, blocking until one arrives or
    /// `deadline` passes (`None` = block forever, like the channel world).
    fn next_slot(
        &self,
        deadline: Option<Instant>,
        src: usize,
        tag: u64,
    ) -> Result<Slot, CommError> {
        let mut inbox = self.shared.inboxes[self.rank].lock().expect("inbox lock");
        loop {
            if let Some(slot) = inbox.pop_front() {
                return Ok(slot);
            }
            match deadline {
                None => {
                    inbox = self.shared.arrivals[self.rank]
                        .wait(inbox)
                        .expect("inbox lock");
                }
                Some(dl) => {
                    let remaining = dl.saturating_duration_since(Instant::now());
                    if remaining.is_zero() {
                        return Err(CommError::Timeout { src, tag });
                    }
                    let (guard, _) = self.shared.arrivals[self.rank]
                        .wait_timeout(inbox, remaining)
                        .expect("inbox lock");
                    inbox = guard;
                }
            }
        }
    }

    fn recv_inner(
        &mut self,
        src: usize,
        tag: u64,
        timeout: Option<Duration>,
    ) -> Result<Vec<f32>, CommError> {
        if let Some(q) = self.pending.get_mut(&(src, tag)) {
            if let Some(m) = q.pop_front() {
                return Ok(m);
            }
        }
        let deadline = timeout.map(|t| Instant::now() + t);
        loop {
            match self.next_slot(deadline, src, tag) {
                Ok(slot) if slot.from == src && slot.tag == tag => return Ok(slot.payload),
                Ok(slot) => self
                    .pending
                    .entry((slot.from, slot.tag))
                    .or_default()
                    .push_back(slot.payload),
                Err(e) => return Err(e),
            }
        }
    }

    fn recv_any_inner(
        &mut self,
        candidates: &[(usize, u64)],
        timeout: Option<Duration>,
    ) -> Result<(usize, Vec<f32>), CommError> {
        let &(first_src, first_tag) = candidates.first().ok_or(CommError::NoCandidates)?;
        for &(src, tag) in candidates {
            if let Some(q) = self.pending.get_mut(&(src, tag)) {
                if let Some(m) = q.pop_front() {
                    return Ok((src, m));
                }
            }
        }
        let deadline = timeout.map(|t| Instant::now() + t);
        loop {
            match self.next_slot(deadline, first_src, first_tag) {
                Ok(slot) if candidates.contains(&(slot.from, slot.tag)) => {
                    return Ok((slot.from, slot.payload));
                }
                Ok(slot) => self
                    .pending
                    .entry((slot.from, slot.tag))
                    .or_default()
                    .push_back(slot.payload),
                Err(e) => return Err(e),
            }
        }
    }
}

impl Transport for MockTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send(&mut self, dst: usize, tag: u64, payload: Vec<f32>) -> Result<(), CommError> {
        if dst == self.rank {
            self.pending
                .entry((dst, tag))
                .or_default()
                .push_back(payload);
            return Ok(());
        }
        if !self.shared.alive[dst].load(Ordering::Acquire) {
            return Err(CommError::PeerGone { peer: dst });
        }
        self.shared.inboxes[dst]
            .lock()
            .expect("inbox lock")
            .push_back(Slot {
                from: self.rank,
                tag,
                payload,
            });
        self.shared.arrivals[dst].notify_all();
        Ok(())
    }

    fn recv(&mut self, src: usize, tag: u64) -> Result<Vec<f32>, CommError> {
        self.recv_inner(src, tag, self.default_deadline)
    }

    fn recv_deadline(
        &mut self,
        src: usize,
        tag: u64,
        timeout: Duration,
    ) -> Result<Vec<f32>, CommError> {
        self.recv_inner(src, tag, Some(timeout))
    }

    fn recv_any(&mut self, candidates: &[(usize, u64)]) -> Result<(usize, Vec<f32>), CommError> {
        self.recv_any_inner(candidates, self.default_deadline)
    }

    fn recv_any_deadline(
        &mut self,
        candidates: &[(usize, u64)],
        timeout: Duration,
    ) -> Result<(usize, Vec<f32>), CommError> {
        self.recv_any_inner(candidates, Some(timeout))
    }

    fn next_op(&mut self) -> u64 {
        let op = self.op_counter;
        self.op_counter += 1;
        op
    }
}

impl Drop for MockTransport {
    fn drop(&mut self) {
        // Hangup is immediate here (like the channel world): the next send
        // to this rank fails with PeerGone.
        self.shared.alive[self.rank].store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::allreduce_tree;
    use std::thread;

    #[test]
    fn ping_pong() {
        let mut world = mock_world(2);
        let mut c1 = world.pop().expect("rank 1");
        let mut c0 = world.pop().expect("rank 0");
        let t = thread::spawn(move || {
            let v = c1.recv(0, 7).expect("recv");
            c1.send(0, 8, v.iter().map(|x| x + 1.0).collect())
                .expect("send");
        });
        c0.send(1, 7, vec![1.0]).expect("send");
        assert_eq!(c0.recv(1, 8).expect("recv"), vec![2.0]);
        t.join().expect("peer");
    }

    #[test]
    fn allreduce_over_mock_world() {
        let world = mock_world(4);
        thread::scope(|s| {
            for mut c in world {
                s.spawn(move || {
                    let mut v = vec![c.rank() as f32 + 1.0; 2];
                    allreduce_tree(&mut c, &mut v).expect("allreduce");
                    assert_eq!(v, vec![10.0; 2]);
                });
            }
        });
    }

    #[test]
    fn send_to_dropped_peer_is_peer_gone() {
        let mut world = mock_world(2);
        let c1 = world.pop().expect("rank 1");
        let mut c0 = world.pop().expect("rank 0");
        drop(c1);
        assert_eq!(
            c0.send(1, 3, vec![1.0]),
            Err(CommError::PeerGone { peer: 1 })
        );
    }
}

//! Rank-to-rank message passing over crossbeam channels.
//!
//! The pending-message store is a `BTreeMap` (not `HashMap`): nothing may
//! iterate a nondeterministically ordered container anywhere near the
//! numeric path (lint `map-iter`), and the ordered map makes that a
//! non-question even for future code that walks `pending`.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};

/// A point-to-point message: payload plus matching metadata.
struct Message {
    from: usize,
    tag: u64,
    payload: Vec<f32>,
}

/// Aggregate traffic counters for a world, shared by all ranks.
#[derive(Default)]
pub struct Traffic {
    /// Total `f32` elements sent point-to-point.
    pub elements: AtomicU64,
    /// Total messages sent.
    pub messages: AtomicU64,
}

impl Traffic {
    /// Elements sent so far.
    pub fn elements_sent(&self) -> u64 {
        self.elements.load(Ordering::Relaxed)
    }

    /// Messages sent so far.
    pub fn messages_sent(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }
}

/// Deterministic delay injection at communication points, for the
/// schedule-exploration race checker in `sasgd-analysis`.
///
/// `send[rank]` / `recv[rank]` are cycled by each rank's operation index;
/// every unit is one [`DelaySchedule::unit`] sleep before the operation
/// proceeds. An empty vector means no delays for that rank. Injected
/// delays perturb *when* messages arrive, never *what* they carry — the
/// checker asserts results are bitwise invariant under all of them.
#[derive(Clone, Debug, Default)]
pub struct DelaySchedule {
    /// Sleep quantum for one delay unit.
    pub unit: Duration,
    /// Per-rank delay units before each `send`, cycled by send index.
    pub send: Vec<Vec<u32>>,
    /// Per-rank delay units before each `recv`, cycled by recv index.
    pub recv: Vec<Vec<u32>>,
}

impl DelaySchedule {
    fn units(table: &[Vec<u32>], rank: usize, seq: u64) -> u32 {
        match table.get(rank) {
            Some(d) if !d.is_empty() => d[(seq % d.len() as u64) as usize],
            _ => 0,
        }
    }

    fn apply(&self, table: &[Vec<u32>], rank: usize, seq: u64) {
        let u = Self::units(table, rank, seq);
        if u > 0 && !self.unit.is_zero() {
            std::thread::sleep(self.unit * u);
        }
    }
}

/// What each rank is currently blocked on (`(src, tag)`), if anything.
/// Shared between the world (for watchdog snapshots) and the endpoints.
type WaitTable = Arc<Vec<Mutex<Option<(usize, u64)>>>>;

/// A communication group of `size` ranks (MPI_COMM_WORLD analogue).
pub struct CommWorld {
    senders: Vec<Sender<Message>>,
    receivers: Vec<Option<Receiver<Message>>>,
    traffic: Arc<Traffic>,
    delays: Option<Arc<DelaySchedule>>,
    waiting: WaitTable,
}

impl CommWorld {
    /// Create a world with `size` ranks.
    ///
    /// # Panics
    /// Panics if `size == 0`.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "world needs at least one rank");
        let mut senders = Vec::with_capacity(size);
        let mut receivers = Vec::with_capacity(size);
        for _ in 0..size {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(Some(rx));
        }
        CommWorld {
            senders,
            receivers,
            traffic: Arc::new(Traffic::default()),
            delays: None,
            waiting: Arc::new((0..size).map(|_| Mutex::new(None)).collect()),
        }
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.senders.len()
    }

    /// Shared traffic counters.
    pub fn traffic(&self) -> Arc<Traffic> {
        Arc::clone(&self.traffic)
    }

    /// Install a delay-injection schedule (race-checker hook). Must be
    /// called before [`CommWorld::communicators`]; endpoints handed out
    /// later inherit it.
    pub fn set_delays(&mut self, delays: Arc<DelaySchedule>) {
        self.delays = Some(delays);
    }

    /// Snapshot of what each rank is currently blocked on (`(src, tag)`),
    /// `None` for ranks that are running. The race checker's watchdog reads
    /// this to report held resources when a schedule deadlocks.
    pub fn waiting_snapshot(&self) -> Vec<Option<(usize, u64)>> {
        self.waiting
            .iter()
            .map(|m| *m.lock().expect("wait-table lock"))
            .collect()
    }

    /// Take the per-rank endpoints (callable once; each goes to one thread).
    ///
    /// # Panics
    /// Panics on a second call.
    pub fn communicators(&mut self) -> Vec<Communicator> {
        let size = self.size();
        (0..size)
            .map(|rank| Communicator {
                rank,
                size,
                senders: self.senders.clone(),
                receiver: self.receivers[rank]
                    .take()
                    .expect("communicators() may only be called once"),
                pending: BTreeMap::new(),
                op_counter: 0,
                traffic: Arc::clone(&self.traffic),
                delays: self.delays.clone(),
                send_seq: std::cell::Cell::new(0),
                recv_seq: 0,
                waiting: Arc::clone(&self.waiting),
            })
            .collect()
    }
}

/// One rank's endpoint: send to any rank, receive matched by (from, tag).
pub struct Communicator {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Message>>,
    receiver: Receiver<Message>,
    /// Out-of-order arrivals parked until a matching `recv`. Ordered map:
    /// see the module docs (lint `map-iter`).
    pending: BTreeMap<(usize, u64), VecDeque<Vec<f32>>>,
    /// Collective sequence number; all ranks call collectives in the same
    /// order, so equal counters identify the same operation.
    op_counter: u64,
    traffic: Arc<Traffic>,
    /// Delay-injection schedule (race-checker hook); `None` in production.
    delays: Option<Arc<DelaySchedule>>,
    /// `Cell`: `send` takes `&self` (endpoints are per-thread, never shared).
    send_seq: std::cell::Cell<u64>,
    recv_seq: u64,
    waiting: WaitTable,
}

impl Communicator {
    /// This endpoint's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Install a delay-injection schedule on this endpoint (race-checker
    /// hook; see [`DelaySchedule`]). Also settable world-wide before the
    /// endpoints are taken via [`CommWorld::set_delays`].
    pub fn set_delays(&mut self, delays: Arc<DelaySchedule>) {
        self.delays = Some(delays);
    }

    /// Send `payload` to `dst` with a `tag` (non-blocking; channels are
    /// unbounded).
    pub fn send(&self, dst: usize, tag: u64, payload: Vec<f32>) {
        if let Some(d) = &self.delays {
            let seq = self.send_seq.get();
            self.send_seq.set(seq + 1);
            d.apply(&d.send, self.rank, seq);
        }
        self.traffic
            .elements
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        self.traffic.messages.fetch_add(1, Ordering::Relaxed);
        self.senders[dst]
            .send(Message {
                from: self.rank,
                tag,
                payload,
            })
            .expect("peer rank hung up");
    }

    /// Blocking receive matched on `(src, tag)`; unrelated messages are
    /// parked for later matching (MPI-style tag matching).
    pub fn recv(&mut self, src: usize, tag: u64) -> Vec<f32> {
        if let Some(d) = self.delays.clone() {
            d.apply(&d.recv, self.rank, self.recv_seq);
            self.recv_seq += 1;
        }
        if let Some(q) = self.pending.get_mut(&(src, tag)) {
            if let Some(m) = q.pop_front() {
                return m;
            }
        }
        *self.waiting[self.rank].lock().expect("wait-table lock") = Some((src, tag));
        loop {
            let msg = self.receiver.recv().expect("world dropped while receiving");
            if msg.from == src && msg.tag == tag {
                *self.waiting[self.rank].lock().expect("wait-table lock") = None;
                return msg.payload;
            }
            self.pending
                .entry((msg.from, msg.tag))
                .or_default()
                .push_back(msg.payload);
        }
    }

    /// Receive the first available message matching **any** of
    /// `candidates`, in *arrival order* (pending messages are drained in
    /// candidate order first).
    ///
    /// This is deliberately **not** used by the crate's collectives: the
    /// combine order it yields depends on the thread schedule, which is
    /// exactly the nondeterminism the fixed-order collectives exist to
    /// avoid. It is public for the `sasgd-analysis` race checker — whose
    /// bad-fixture reduce uses it to demonstrate that the checker catches
    /// arrival-order combining — and for future asynchronous variants whose
    /// schedule-sensitivity must then be checked the same way.
    pub fn recv_any(&mut self, candidates: &[(usize, u64)]) -> (usize, Vec<f32>) {
        if let Some(d) = self.delays.clone() {
            d.apply(&d.recv, self.rank, self.recv_seq);
            self.recv_seq += 1;
        }
        for &(src, tag) in candidates {
            if let Some(q) = self.pending.get_mut(&(src, tag)) {
                if let Some(m) = q.pop_front() {
                    return (src, m);
                }
            }
        }
        let first = candidates
            .first()
            .copied()
            .unwrap_or((usize::MAX, u64::MAX));
        *self.waiting[self.rank].lock().expect("wait-table lock") = Some(first);
        loop {
            let msg = self.receiver.recv().expect("world dropped while receiving");
            if candidates.contains(&(msg.from, msg.tag)) {
                *self.waiting[self.rank].lock().expect("wait-table lock") = None;
                return (msg.from, msg.payload);
            }
            self.pending
                .entry((msg.from, msg.tag))
                .or_default()
                .push_back(msg.payload);
        }
    }

    /// Next collective sequence number (advances the counter).
    pub fn next_op(&mut self) -> u64 {
        let op = self.op_counter;
        self.op_counter += 1;
        op
    }

    /// Shared traffic counters.
    pub fn traffic(&self) -> &Traffic {
        &self.traffic
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn ping_pong() {
        let mut world = CommWorld::new(2);
        let mut comms = world.communicators();
        let c1 = comms.pop().expect("rank 1");
        let mut c0 = comms.pop().expect("rank 0");
        let t = thread::spawn(move || {
            let mut c1 = c1;
            let v = c1.recv(0, 7);
            c1.send(0, 8, v.iter().map(|x| x * 2.0).collect());
        });
        c0.send(1, 7, vec![1.0, 2.0]);
        let back = c0.recv(1, 8);
        assert_eq!(back, vec![2.0, 4.0]);
        t.join().expect("peer thread");
    }

    #[test]
    fn out_of_order_matching() {
        let mut world = CommWorld::new(2);
        let mut comms = world.communicators();
        let c1 = comms.pop().expect("rank 1");
        let mut c0 = comms.pop().expect("rank 0");
        let t = thread::spawn(move || {
            let c1 = c1;
            // Send tag 2 first, then tag 1.
            c1.send(0, 2, vec![2.0]);
            c1.send(0, 1, vec![1.0]);
        });
        t.join().expect("peer thread");
        // Receive in the opposite order.
        assert_eq!(c0.recv(1, 1), vec![1.0]);
        assert_eq!(c0.recv(1, 2), vec![2.0]);
    }

    #[test]
    fn fifo_within_same_tag() {
        let mut world = CommWorld::new(2);
        let mut comms = world.communicators();
        let c1 = comms.pop().expect("rank 1");
        let mut c0 = comms.pop().expect("rank 0");
        c1.send(0, 5, vec![1.0]);
        c1.send(0, 5, vec![2.0]);
        // Force both into the pending map by receiving another tag after.
        c1.send(0, 9, vec![9.0]);
        assert_eq!(c0.recv(1, 9), vec![9.0]);
        assert_eq!(c0.recv(1, 5), vec![1.0]);
        assert_eq!(c0.recv(1, 5), vec![2.0]);
    }

    #[test]
    fn traffic_is_counted() {
        let mut world = CommWorld::new(2);
        let traffic = world.traffic();
        let mut comms = world.communicators();
        let c1 = comms.pop().expect("rank 1");
        let mut c0 = comms.pop().expect("rank 0");
        c1.send(0, 1, vec![0.0; 10]);
        let _ = c0.recv(1, 1);
        assert_eq!(traffic.elements_sent(), 10);
        assert_eq!(traffic.messages_sent(), 1);
    }

    #[test]
    #[should_panic(expected = "only be called once")]
    fn communicators_single_use() {
        let mut world = CommWorld::new(1);
        let _a = world.communicators();
        let _b = world.communicators();
    }
}

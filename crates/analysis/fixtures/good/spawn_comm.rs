// virtual-path: crates/comm/src/fixture_spawn_ok.rs
// GOOD: the comm substrate may create threads (shard servers, rank hosts).

pub fn shard_host() {
    let h = std::thread::spawn(|| 42);
    let _ = h.join();
}

//! Reusable scratch-buffer arenas for the compute hot path.
//!
//! Every training step needs the same family of short-lived buffers —
//! conv patch matrices, layer activations and gradients, pooling index
//! maps. Allocating them fresh each step makes the threaded backend
//! measure allocator churn as much as math, so a [`Workspace`] keeps the
//! freed buffers on per-type free lists and hands them back on the next
//! request.
//!
//! ## Determinism contract
//!
//! Buffer *reuse* must be invisible in the numbers. [`Workspace::take_f32`]
//! therefore always returns a zero-filled buffer — bitwise identical to a
//! fresh `vec![0.0; n]` — and [`Workspace::take_f32_uninit`] (whose
//! contents are arbitrary leftovers) is reserved for outputs where the
//! kernel provably writes every element before anyone reads it. Nothing
//! about the arena changes what values are computed, only where they live.

/// A scratch-buffer pool. Buffers are checked out with `take_*`, returned
/// with `give_*` / [`recycle`](Workspace::recycle), and retain their heap
/// capacity across steps so a steady-state training loop stops allocating.
#[derive(Debug, Default)]
pub struct Workspace {
    f32_free: Vec<Vec<f32>>,
    u32_free: Vec<Vec<u32>>,
    lane_free: Vec<Vec<Lane>>,
}

/// Eight `f32`s forced to a 32-byte boundary — the allocation unit behind
/// [`Workspace::take_f32_aligned`]. A `Vec<Lane>`'s storage is aligned to
/// `align_of::<Lane>() == 32`, which a plain `Vec<f32>` (4-byte aligned)
/// cannot promise.
#[repr(C, align(32))]
#[derive(Clone, Copy, Debug, Default)]
struct Lane([f32; 8]);

/// A 32-byte-aligned `f32` scratch buffer checked out of a [`Workspace`].
/// Dereferences to `[f32]` of exactly the requested length; return it with
/// [`Workspace::give_f32_aligned`] so its storage is reused.
#[derive(Debug)]
pub struct AlignedF32 {
    raw: Vec<Lane>,
    len: usize,
}

impl AlignedF32 {
    /// The buffer as a plain `f32` slice (always 32-byte aligned).
    pub fn as_slice(&self) -> &[f32] {
        // SAFETY: `Lane` is `repr(C)` over `[f32; 8]`, so `raw`'s storage
        // is `raw.len() * 8` contiguous, initialized `f32`s; `len` is
        // capped at that count by construction in `take_f32_aligned`.
        unsafe { std::slice::from_raw_parts(self.raw.as_ptr().cast::<f32>(), self.len) }
    }

    /// Mutable view of the buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        // SAFETY: same layout argument as `as_slice`; `&mut self` grants
        // unique access to the underlying storage.
        unsafe { std::slice::from_raw_parts_mut(self.raw.as_mut_ptr().cast::<f32>(), self.len) }
    }

    /// Elements in the buffer (the length requested at checkout).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl std::ops::Deref for AlignedF32 {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        self.as_slice()
    }
}

impl std::ops::DerefMut for AlignedF32 {
    fn deref_mut(&mut self) -> &mut [f32] {
        self.as_mut_slice()
    }
}

/// Pop the best-fitting free buffer: the smallest capacity ≥ `len`, or the
/// largest available one (which then grows in place at most once).
fn pop_best<T>(free: &mut Vec<Vec<T>>, len: usize) -> Option<Vec<T>> {
    let mut best: Option<usize> = None;
    for (i, buf) in free.iter().enumerate() {
        let cap = buf.capacity();
        best = Some(match best {
            None => i,
            Some(j) => {
                let bc = free[j].capacity();
                // If the incumbent fits, only a tighter fit beats it;
                // otherwise any larger buffer is an improvement.
                let better = if bc >= len {
                    cap >= len && cap < bc
                } else {
                    cap > bc
                };
                if better {
                    i
                } else {
                    j
                }
            }
        });
    }
    best.map(|i| free.swap_remove(i))
}

impl Workspace {
    /// An empty workspace (no buffers held; nothing allocated yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// A zero-filled `f32` buffer of exactly `len` elements — bitwise
    /// identical to `vec![0.0f32; len]`, but reusing pooled capacity.
    pub fn take_f32(&mut self, len: usize) -> Vec<f32> {
        let mut buf = self.take_f32_uninit(len);
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// An `f32` buffer of `len` elements whose contents are **arbitrary**
    /// (stale values from earlier checkouts). Only for outputs where the
    /// caller writes every element before any read.
    pub fn take_f32_uninit(&mut self, len: usize) -> Vec<f32> {
        let mut buf = pop_best(&mut self.f32_free, len).unwrap_or_default();
        buf.resize(len, 0.0);
        buf
    }

    /// A zero-filled `u32` buffer of exactly `len` elements.
    pub fn take_u32(&mut self, len: usize) -> Vec<u32> {
        let mut buf = pop_best(&mut self.u32_free, len).unwrap_or_default();
        buf.clear();
        buf.resize(len, 0);
        buf
    }

    /// A **32-byte-aligned**, zero-filled `f32` buffer of exactly `len`
    /// elements — the same zero-fill contract as [`take_f32`]
    /// (bitwise identical to `vec![0.0f32; len]` element for element),
    /// with an alignment guarantee the plain take cannot make. Pack
    /// buffers for the vectorized GEMM path check out through here.
    ///
    /// [`take_f32`]: Workspace::take_f32
    pub fn take_f32_aligned(&mut self, len: usize) -> AlignedF32 {
        let lanes = len.div_ceil(8);
        let mut raw = pop_best(&mut self.lane_free, lanes).unwrap_or_default();
        raw.clear();
        raw.resize(lanes, Lane::default());
        AlignedF32 { raw, len }
    }

    /// Return an aligned buffer to the pool.
    pub fn give_f32_aligned(&mut self, buf: AlignedF32) {
        if buf.raw.capacity() > 0 {
            self.lane_free.push(buf.raw);
        }
    }

    /// Return an `f32` buffer to the pool.
    pub fn give_f32(&mut self, buf: Vec<f32>) {
        if buf.capacity() > 0 {
            self.f32_free.push(buf);
        }
    }

    /// Return a `u32` buffer to the pool.
    pub fn give_u32(&mut self, buf: Vec<u32>) {
        if buf.capacity() > 0 {
            self.u32_free.push(buf);
        }
    }

    /// Return a [`Tensor`](crate::Tensor)'s storage to the pool.
    pub fn recycle(&mut self, t: crate::Tensor) {
        self.give_f32(t.into_vec());
    }

    /// Buffers currently parked on the free lists.
    pub fn pooled(&self) -> usize {
        self.f32_free.len() + self.u32_free.len() + self.lane_free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zero_filled_after_reuse() {
        let mut ws = Workspace::new();
        let mut a = ws.take_f32(8);
        a.iter_mut().for_each(|v| *v = 3.5);
        let cap = a.capacity();
        ws.give_f32(a);
        let b = ws.take_f32(4);
        assert_eq!(b, vec![0.0; 4]);
        assert_eq!(b.capacity(), cap, "capacity reused, not reallocated");
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_buffer() {
        let mut ws = Workspace::new();
        let small = Vec::with_capacity(10);
        let big = Vec::with_capacity(100);
        ws.give_f32(small);
        ws.give_f32(big);
        let got = ws.take_f32(8);
        assert_eq!(got.capacity(), 10);
        ws.give_f32(got);
        let got = ws.take_f32(50);
        assert_eq!(got.capacity(), 100);
    }

    #[test]
    fn grows_largest_when_nothing_fits() {
        let mut ws = Workspace::new();
        ws.give_f32(Vec::with_capacity(4));
        ws.give_f32(Vec::with_capacity(16));
        let got = ws.take_f32(32);
        assert_eq!(got.len(), 32);
        assert_eq!(ws.pooled(), 1, "the small buffer stays pooled");
    }

    #[test]
    fn u32_pool_round_trips() {
        let mut ws = Workspace::new();
        let mut a = ws.take_u32(6);
        a[0] = 7;
        ws.give_u32(a);
        let b = ws.take_u32(6);
        assert_eq!(b, vec![0; 6]);
    }

    #[test]
    fn aligned_take_is_32_byte_aligned_and_zero_filled() {
        let mut ws = Workspace::new();
        for len in [1usize, 7, 8, 9, 64, 1000] {
            let mut buf = ws.take_f32_aligned(len);
            assert_eq!(buf.as_ptr() as usize % 32, 0, "len {len}: misaligned");
            assert_eq!(buf.len(), len);
            // Zero-fill semantics must be bitwise-equal to a fresh vec.
            let fresh = vec![0.0f32; len];
            assert_eq!(
                buf.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                fresh.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
            buf.iter_mut().for_each(|v| *v = -3.25); // dirty it
            ws.give_f32_aligned(buf);
        }
        // Reused storage must stay aligned and come back zeroed.
        let buf = ws.take_f32_aligned(500);
        assert_eq!(buf.as_ptr() as usize % 32, 0);
        assert!(buf.iter().all(|&v| v.to_bits() == 0.0f32.to_bits()));
    }

    #[test]
    fn aligned_pool_reuses_capacity() {
        let mut ws = Workspace::new();
        let a = ws.take_f32_aligned(64);
        let cap = a.raw.capacity();
        ws.give_f32_aligned(a);
        assert_eq!(ws.pooled(), 1);
        let b = ws.take_f32_aligned(40);
        assert_eq!(
            b.raw.capacity(),
            cap,
            "lane storage reused, not reallocated"
        );
        assert_eq!(ws.pooled(), 0);
    }

    #[test]
    fn recycle_accepts_tensors() {
        let mut ws = Workspace::new();
        let t = crate::Tensor::zeros(&[2, 3]);
        ws.recycle(t);
        assert_eq!(ws.pooled(), 1);
    }
}

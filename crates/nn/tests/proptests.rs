//! Property-based tests on the layer/model invariants backprop relies on.

use proptest::prelude::*;
use sasgd_nn::layers::{Linear, Relu, Tanh};
use sasgd_nn::loss::softmax_cross_entropy;
use sasgd_nn::{models, Ctx, Layer, Model};
use sasgd_tensor::{SeedRng, Tensor};

fn rand_tensor(dims: &[usize], seed: u64) -> Tensor {
    SeedRng::new(seed).normal_tensor(dims, 1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn linear_backward_matches_fd(
        din in 1usize..6, dout in 1usize..5, batch in 1usize..5, seed in 0u64..500
    ) {
        let mut layer = Linear::new(din, dout, &mut SeedRng::new(seed));
        let x = rand_tensor(&[batch, din], seed + 1);
        let mut ctx = Ctx::train(SeedRng::new(0));
        let out = layer.forward(x.clone(), &mut ctx);
        layer.backward(Tensor::full(out.dims(), 1.0), &mut ctx);
        let mut grads = vec![0.0; layer.param_len()];
        layer.read_grads(&mut grads);
        let mut params = vec![0.0; layer.param_len()];
        layer.read_params(&mut params);
        let eps = 1e-2f32;
        let base = layer.forward(x.clone(), &mut Ctx::eval()).sum();
        // Probe the first weight and the last bias.
        for &k in &[0usize, layer.param_len() - 1] {
            let mut p2 = params.clone();
            p2[k] += eps;
            layer.write_params(&p2);
            let up = layer.forward(x.clone(), &mut Ctx::eval()).sum();
            layer.write_params(&params);
            let fd = (up - base) / eps;
            prop_assert!((fd - grads[k]).abs() < 0.05 * (1.0 + grads[k].abs()),
                "k={} fd={} grad={}", k, fd, grads[k]);
        }
    }

    #[test]
    fn activations_are_idempotent_shapes(n in 1usize..40, seed in 0u64..500) {
        let x = rand_tensor(&[n], seed);
        let mut relu = Relu::new();
        let y = relu.forward(x.clone(), &mut Ctx::eval());
        prop_assert_eq!(y.dims(), x.dims());
        prop_assert!(y.as_slice().iter().all(|&v| v >= 0.0));
        let mut tanh = Tanh::new();
        let z = tanh.forward(x, &mut Ctx::eval());
        prop_assert!(z.as_slice().iter().all(|&v| (-1.0..=1.0).contains(&v)));
    }

    #[test]
    fn cross_entropy_invariant_under_logit_shift(
        n in 1usize..6, c in 2usize..6, shift in -5.0f32..5.0, seed in 0u64..500
    ) {
        let logits = rand_tensor(&[n, c], seed);
        let labels: Vec<usize> = (0..n).map(|i| i % c).collect();
        let a = softmax_cross_entropy(&logits, &labels);
        let mut shifted = logits.clone();
        shifted.as_mut_slice().iter_mut().for_each(|v| *v += shift);
        let b = softmax_cross_entropy(&shifted, &labels);
        prop_assert!((a.loss - b.loss).abs() < 1e-3, "{} vs {}", a.loss, b.loss);
        prop_assert_eq!(a.correct, b.correct);
    }

    #[test]
    fn cross_entropy_nonnegative_and_grad_balanced(
        n in 1usize..6, c in 2usize..8, seed in 0u64..500
    ) {
        let logits = rand_tensor(&[n, c], seed);
        let labels: Vec<usize> = (0..n).map(|i| (i * 3) % c).collect();
        let out = softmax_cross_entropy(&logits, &labels);
        prop_assert!(out.loss >= 0.0);
        for i in 0..n {
            let row_sum: f32 = out.dlogits.row(i).iter().sum();
            prop_assert!(row_sum.abs() < 1e-5);
        }
    }

    #[test]
    fn model_forward_shape_matches_out_shape_chain(seed in 0u64..500, batch in 1usize..4) {
        let mut model = models::tiny_cnn(5, &mut SeedRng::new(seed));
        let x = rand_tensor(&[batch, 3, 8, 8], seed + 1);
        let logits = model.forward(x, &mut Ctx::eval());
        prop_assert_eq!(logits.dims(), &[batch, 5]);
    }

    #[test]
    fn param_vector_roundtrip_any_model(seed in 0u64..500) {
        let configs: [(usize, usize, usize); 2] = [(4, 6, 3), (2, 9, 2)];
        for (i, h, c) in configs {
            let src = models::tiny_mlp(i, h, c, &mut SeedRng::new(seed));
            let v = src.param_vector();
            let mut dst = models::tiny_mlp(i, h, c, &mut SeedRng::new(seed + 7));
            dst.write_params(&v);
            prop_assert_eq!(dst.param_vector(), v);
        }
    }

    #[test]
    fn gradient_accumulation_is_additive(seed in 0u64..200) {
        // backward twice on the same batch == 2 × backward once.
        let build = || -> Model { models::tiny_mlp(4, 5, 3, &mut SeedRng::new(seed)) };
        let x = rand_tensor(&[3, 4], seed + 1);
        let labels = [0usize, 1, 2];
        let grad_after = |passes: usize| -> Vec<f32> {
            let mut m = build();
            for _ in 0..passes {
                let mut ctx = Ctx::train(SeedRng::new(0));
                m.forward_loss(&x, &labels, &mut ctx);
                m.backward(&mut ctx);
            }
            m.grad_vector()
        };
        let g1 = grad_after(1);
        let g2 = grad_after(2);
        for (a, b) in g1.iter().zip(&g2) {
            prop_assert!((2.0 * a - b).abs() < 1e-4 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn sgd_step_moves_against_gradient(seed in 0u64..200) {
        let mut m = models::tiny_mlp(4, 5, 3, &mut SeedRng::new(seed));
        let x = rand_tensor(&[4, 4], seed + 1);
        let labels = [0usize, 1, 2, 0];
        let mut ctx = Ctx::train(SeedRng::new(0));
        let before = m.forward_loss(&x, &labels, &mut ctx).loss;
        m.backward(&mut ctx);
        m.sgd_step(0.01);
        m.zero_grads();
        let after = m.forward_loss(&x, &labels, &mut ctx).loss;
        // A small step along the negative gradient cannot increase the
        // loss by more than second-order effects.
        prop_assert!(after < before + 0.05, "{} -> {}", before, after);
    }
}

//! Register-blocked MR×NR GEMM microkernels (the `simd` feature's core).
//!
//! Each kernel computes `C[0..mr_eff, 0..nr_eff] += Ap · Bp` for one
//! packed `A` micropanel (`kc`×`MR`, row-groups interleaved by `l`) and one
//! packed `B` micropanel (`kc`×`NR`), holding the full `MR`×`NR` tile in
//! accumulator arrays for the whole `kc` extent. The inner statement is
//! `acc[i][j] += a[i] * b[j]` over fixed-width arrays — `MR·NR/8`
//! independent 8-lane FMA chains that the backend vectorizes without any
//! reassociation freedom, so one binary always produces one answer.
//!
//! **Fold-order contract:** within a tile element the reduction runs in
//! ascending packed `l`, accumulating from `0.0` and adding the block sum
//! into `C` afterwards, and there is **no zero-skip** — see the
//! `linalg` module docs for why this path is tolerance-mode only.
//!
//! With the nightly-only `simd-nightly` feature the same kernels are
//! expressed through `std::simd` (`f32x8`) instead of unrolled arrays;
//! identical arithmetic per lane, so the two spellings agree bitwise.

/// One microkernel shape. `ap`: `kc*MR` packed floats (`MR` row values per
/// `l`, edge rows zero-padded); `bp`: `kc*NR` packed floats; `c`: output
/// slab with row stride `ldc`, updated in its top-left `mr_eff`×`nr_eff`
/// corner (padded lanes are computed and discarded).
macro_rules! def_ukr {
    ($name:ident, $mr:expr, $nr:expr) => {
        // hot-path: innermost packed GEMM tile — no allocation allowed
        pub(crate) fn $name(
            ap: &[f32],
            bp: &[f32],
            kc: usize,
            c: &mut [f32],
            ldc: usize,
            mr_eff: usize,
            nr_eff: usize,
        ) {
            assert!(ap.len() >= kc * $mr, "A micropanel short");
            assert!(bp.len() >= kc * $nr, "B micropanel short");
            assert!(mr_eff <= $mr && nr_eff <= $nr);
            assert!(
                (mr_eff.saturating_sub(1)) * ldc + nr_eff <= c.len(),
                "C slab short"
            );
            let mut acc = [[0.0f32; $nr]; $mr];
            for l in 0..kc {
                // Unchecked indexing keeps the 8-lane FMA chains free of
                // per-iteration bound tests the optimizer cannot always
                // hoist past the macro expansion.
                // SAFETY: l < kc and the entry asserts guarantee
                // `l*$mr + $mr <= ap.len()` and `l*$nr + $nr <= bp.len()`.
                let (a, b) = unsafe {
                    (
                        ap.get_unchecked(l * $mr..l * $mr + $mr),
                        bp.get_unchecked(l * $nr..l * $nr + $nr),
                    )
                };
                #[cfg(feature = "simd-nightly")]
                {
                    use std::simd::f32x8;
                    for i in 0..$mr {
                        let av = f32x8::splat(a[i]);
                        for j8 in 0..$nr / 8 {
                            let bv = f32x8::from_slice(&b[j8 * 8..j8 * 8 + 8]);
                            let cv = f32x8::from_slice(&acc[i][j8 * 8..j8 * 8 + 8]);
                            (cv + av * bv).copy_to_slice(&mut acc[i][j8 * 8..j8 * 8 + 8]);
                        }
                    }
                }
                #[cfg(not(feature = "simd-nightly"))]
                for i in 0..$mr {
                    let av = a[i];
                    for j in 0..$nr {
                        acc[i][j] += av * b[j];
                    }
                }
            }
            for (i, arow) in acc.iter().enumerate().take(mr_eff) {
                let crow = &mut c[i * ldc..i * ldc + nr_eff];
                for (cv, &av) in crow.iter_mut().zip(arow) {
                    *cv += av;
                }
            }
        }
    };
}

def_ukr!(ukr_4x8, 4, 8);
def_ukr!(ukr_8x8, 8, 8);
def_ukr!(ukr_4x16, 4, 16);
def_ukr!(ukr_8x16, 8, 16);

/// Microkernel entry for a `(mr, nr)` pair from the tune grid.
pub(crate) type Ukr = fn(&[f32], &[f32], usize, &mut [f32], usize, usize, usize);

/// Resolve the microkernel for a tile plan's `(mr, nr)`.
///
/// # Panics
/// Panics on a pair outside the fixed grid — `tune::plan_for` can only
/// return grid entries, so hitting this means a caller bypassed tuning.
pub(crate) fn ukr_for(mr: usize, nr: usize) -> Ukr {
    match (mr, nr) {
        (4, 8) => ukr_4x8,
        (8, 8) => ukr_8x8,
        (4, 16) => ukr_4x16,
        (8, 16) => ukr_8x16,
        other => panic!("no microkernel for tile {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference: same block fold order, naive indexing.
    #[allow(clippy::too_many_arguments)] // mirrors the `Ukr` signature plus (mr, nr)
    fn ukr_ref(
        ap: &[f32],
        bp: &[f32],
        kc: usize,
        mr: usize,
        nr: usize,
        c: &mut [f32],
        ldc: usize,
        mr_eff: usize,
        nr_eff: usize,
    ) {
        for i in 0..mr_eff {
            for j in 0..nr_eff {
                let mut s = 0.0f32;
                for l in 0..kc {
                    s += ap[l * mr + i] * bp[l * nr + j];
                }
                c[i * ldc + j] += s;
            }
        }
        let _ = (mr, nr);
    }

    #[test]
    fn all_grid_kernels_match_reference_bitwise() {
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 40) as f32 / 1024.0 - 8.0
        };
        for &(mr, nr) in &[(4usize, 8usize), (8, 8), (4, 16), (8, 16)] {
            for kc in [1usize, 3, 17, 64] {
                let ap: Vec<f32> = (0..kc * mr).map(|_| next()).collect();
                let bp: Vec<f32> = (0..kc * nr).map(|_| next()).collect();
                let ldc = nr + 3;
                for (mr_eff, nr_eff) in [(mr, nr), (mr - 1, nr - 3), (1, 1)] {
                    let mut c = vec![0.5f32; mr * ldc];
                    let mut want = c.clone();
                    ukr_for(mr, nr)(&ap, &bp, kc, &mut c, ldc, mr_eff, nr_eff);
                    ukr_ref(&ap, &bp, kc, mr, nr, &mut want, ldc, mr_eff, nr_eff);
                    assert_eq!(
                        c.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        "tile {mr}x{nr} kc={kc} eff=({mr_eff},{nr_eff})"
                    );
                }
            }
        }
    }

    #[test]
    fn padded_lanes_never_reach_c() {
        // Poison the padded region of the panels with NaN: results for the
        // effective corner must stay finite because padded lanes are
        // discarded, not stored.
        let (mr, nr, kc) = (4usize, 8usize, 5usize);
        let mut ap = vec![1.0f32; kc * mr];
        let mut bp = vec![2.0f32; kc * nr];
        for l in 0..kc {
            ap[l * mr + 3] = f32::NAN; // row 3 is padding when mr_eff = 3
            bp[l * nr + 7] = f32::NAN; // col 7 is padding when nr_eff = 7
        }
        let mut c = vec![0.0f32; mr * nr];
        ukr_4x8(&ap, &bp, kc, &mut c, nr, 3, 7);
        for i in 0..3 {
            for j in 0..7 {
                assert!(c[i * nr + j].is_finite(), "({i},{j}) poisoned");
            }
        }
    }
}

//! Sparse wire format and sparse tree collectives.
//!
//! Top-k gradient compression only pays off if the *wire* carries the
//! sparse form. This module gives the comm substrate an index/value
//! encoding and a binomial-tree allreduce over it, so compressed SASGD on
//! the threaded backend moves `O(k)` elements per hop instead of `O(m)` —
//! and the traffic counters record the real (compressed) sizes.
//!
//! The reduction mirrors [`crate::collectives::reduce_tree`]'s combine order
//! exactly (accumulated self `+=` incoming child, children in ascending
//! bit order), so a sparse allreduce of vectors produces the same sums, bit
//! for bit, as the dense tree allreduce of their densified forms — with one
//! IEEE corner: a coordinate whose every contribution is `-0.0` densifies
//! to `+0.0` here (`-0.0` entries are structurally absent) while a dense
//! reduction keeps `-0.0`. Gradient payloads never hit it; tests exclude
//! `-0.0` explicitly.
//!
//! Wire encoding inside the existing `Vec<f32>` message type:
//! `[len, nnz, idx..., val...]` with `len`/`nnz`/indices bit-cast from
//! `u32` via [`f32::from_bits`] (exact round-trip; an index would need to
//! exceed 2³¹ before its bit pattern could collide with a NaN).

use crate::collectives::broadcast;
use crate::transport::Transport;
use crate::world::CommError;

/// A sparse view of an `m`-element `f32` vector: sorted indices plus
/// values. Zero values may appear (sums that cancel stay represented so
/// repeated merges keep the dense addition structure); `-0.0` never enters
/// through [`SparseVec::from_dense`].
#[derive(Clone, Debug, PartialEq)]
pub struct SparseVec {
    /// Dense length.
    pub len: u32,
    /// Strictly increasing coordinate indices.
    pub idx: Vec<u32>,
    /// Values, parallel to `idx`.
    pub val: Vec<f32>,
}

impl SparseVec {
    /// Extract the nonzero coordinates of `dense` (`±0.0` excluded).
    pub fn from_dense(dense: &[f32]) -> Self {
        assert!(dense.len() <= u32::MAX as usize, "vector too long for wire");
        let mut idx = Vec::new();
        let mut val = Vec::new();
        for (i, &v) in dense.iter().enumerate() {
            if v != 0.0 {
                idx.push(i as u32);
                val.push(v);
            }
        }
        SparseVec {
            len: dense.len() as u32,
            idx,
            val,
        }
    }

    /// Stored entries (including exact-zero sums).
    pub fn nnz(&self) -> usize {
        self.idx.len()
    }

    /// Densify.
    pub fn to_dense(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.len as usize];
        for (&i, &v) in self.idx.iter().zip(&self.val) {
            out[i as usize] = v;
        }
        out
    }

    /// Merge-add `other` into `self` (`self[i] += other[i]` on shared
    /// coordinates, union elsewhere) — the sparse mirror of the dense
    /// reduce's `a += b`.
    pub fn add_assign(&mut self, other: &SparseVec) {
        assert_eq!(self.len, other.len, "length mismatch in sparse add");
        let (n_a, n_b) = (self.idx.len(), other.idx.len());
        let mut idx = Vec::with_capacity(n_a + n_b);
        let mut val = Vec::with_capacity(n_a + n_b);
        let (mut a, mut b) = (0usize, 0usize);
        while a < n_a && b < n_b {
            match self.idx[a].cmp(&other.idx[b]) {
                std::cmp::Ordering::Less => {
                    idx.push(self.idx[a]);
                    val.push(self.val[a]);
                    a += 1;
                }
                std::cmp::Ordering::Greater => {
                    idx.push(other.idx[b]);
                    val.push(other.val[b]);
                    b += 1;
                }
                std::cmp::Ordering::Equal => {
                    idx.push(self.idx[a]);
                    val.push(self.val[a] + other.val[b]);
                    a += 1;
                    b += 1;
                }
            }
        }
        idx.extend_from_slice(&self.idx[a..]);
        val.extend_from_slice(&self.val[a..]);
        idx.extend_from_slice(&other.idx[b..]);
        val.extend_from_slice(&other.val[b..]);
        self.idx = idx;
        self.val = val;
    }

    /// Encode as a `Vec<f32>` message: `[len, nnz, idx..., val...]`,
    /// integers bit-cast.
    pub fn encode(&self) -> Vec<f32> {
        let nnz = self.idx.len();
        let mut out = Vec::with_capacity(2 + 2 * nnz);
        out.push(f32::from_bits(self.len));
        out.push(f32::from_bits(nnz as u32));
        out.extend(self.idx.iter().map(|&i| f32::from_bits(i)));
        out.extend_from_slice(&self.val);
        out
    }

    /// Decode an [`encode`](SparseVec::encode)d message.
    ///
    /// # Panics
    /// Panics if the buffer is malformed.
    pub fn decode(buf: &[f32]) -> Self {
        assert!(buf.len() >= 2, "sparse message too short");
        let len = buf[0].to_bits();
        let nnz = buf[1].to_bits() as usize;
        assert_eq!(buf.len(), 2 + 2 * nnz, "sparse message length mismatch");
        let idx: Vec<u32> = buf[2..2 + nnz].iter().map(|v| v.to_bits()).collect();
        let val = buf[2 + nnz..].to_vec();
        SparseVec { len, idx, val }
    }
}

/// Tag space mirroring `collectives::tag` (kept private there).
fn tag(op: u64, phase: u64) -> u64 {
    (op << 4) | phase
}

/// Binomial-tree sum-reduce of sparse vectors to `root`, in the exact
/// combine order of [`crate::collectives::reduce_tree`]. On non-root ranks `sv`
/// is left as the partial this rank forwarded.
pub fn sparse_reduce_tree<T: Transport>(
    comm: &mut T,
    root: usize,
    sv: &mut SparseVec,
) -> Result<(), CommError> {
    let p = comm.size();
    if p == 1 {
        comm.next_op();
        return Ok(());
    }
    let op = comm.next_op();
    let vrank = (comm.rank() + p - root) % p;
    let mut bit = 1usize;
    while bit < p {
        if vrank & bit != 0 {
            let parent_v = vrank & !bit;
            let parent = (parent_v + root) % p;
            comm.send(parent, tag(op, 1), sv.encode())?;
            return Ok(());
        }
        let child_v = vrank | bit;
        if child_v < p {
            let child = (child_v + root) % p;
            let part = SparseVec::decode(&comm.recv(child, tag(op, 1))?);
            sv.add_assign(&part);
        }
        bit <<= 1;
    }
    Ok(())
}

/// Sparse allreduce (sum): sparse reduce to rank 0 plus broadcast of the
/// encoded result. Every rank returns with the full sparse sum; wire
/// traffic is `O(nnz)` per hop.
pub fn sparse_allreduce_tree<T: Transport>(
    comm: &mut T,
    sv: &mut SparseVec,
) -> Result<(), CommError> {
    sparse_reduce_tree(comm, 0, sv)?;
    let mut enc = sv.encode();
    broadcast(comm, 0, &mut enc)?;
    *sv = SparseVec::decode(&enc);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::allreduce_tree;
    use crate::world::{CommWorld, Communicator};
    use std::thread;

    fn run_world<T: Send>(p: usize, f: impl Fn(&mut Communicator) -> T + Sync) -> Vec<T> {
        let mut world = CommWorld::new(p);
        let comms = world.communicators();
        let mut out: Vec<Option<T>> = (0..p).map(|_| None).collect();
        thread::scope(|s| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|mut c| {
                    let f = &f;
                    s.spawn(move || f(&mut c))
                })
                .collect();
            for (slot, h) in out.iter_mut().zip(handles) {
                *slot = Some(h.join().expect("rank thread"));
            }
        });
        out.into_iter().map(|o| o.expect("result")).collect()
    }

    #[test]
    fn encode_decode_round_trip() {
        let v = vec![0.0f32, -1.5, 0.0, 3.25, 0.0, 1e-30];
        let sv = SparseVec::from_dense(&v);
        assert_eq!(sv.nnz(), 3);
        let back = SparseVec::decode(&sv.encode());
        assert_eq!(back, sv);
        assert_eq!(back.to_dense(), v);
    }

    #[test]
    fn merge_matches_dense_addition() {
        let a = vec![1.0f32, 0.0, 2.0, 0.0];
        let b = vec![0.5f32, -1.0, 0.0, 0.0];
        let mut sa = SparseVec::from_dense(&a);
        sa.add_assign(&SparseVec::from_dense(&b));
        let want: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        assert_eq!(sa.to_dense(), want);
    }

    #[test]
    fn cancelling_sum_keeps_entry() {
        let mut a = SparseVec::from_dense(&[2.0f32, 0.0]);
        a.add_assign(&SparseVec::from_dense(&[-2.0f32, 0.0]));
        assert_eq!(a.nnz(), 1, "exact-zero sums stay represented");
        assert_eq!(a.to_dense(), vec![0.0, 0.0]);
    }

    #[test]
    fn sparse_allreduce_equals_dense_allreduce_bitwise() {
        for p in [1usize, 2, 3, 4, 7, 8] {
            let m = 17;
            // Rank r contributes a sparse vector touching every third
            // coordinate offset by r.
            let input = |r: usize| -> Vec<f32> {
                (0..m)
                    .map(|j| {
                        if (j + r).is_multiple_of(3) {
                            (r as f32 + 1.0) * 0.1 + j as f32
                        } else {
                            0.0
                        }
                    })
                    .collect()
            };
            let dense = run_world(p, |c| {
                let mut v = input(c.rank());
                allreduce_tree(c, &mut v).expect("allreduce");
                v
            });
            let sparse = run_world(p, |c| {
                let mut sv = SparseVec::from_dense(&input(c.rank()));
                sparse_allreduce_tree(c, &mut sv).expect("sparse allreduce");
                sv.to_dense()
            });
            for (d, s) in dense.iter().zip(&sparse) {
                for (a, b) in d.iter().zip(s) {
                    assert_eq!(a.to_bits(), b.to_bits(), "p={p}");
                }
            }
        }
    }

    #[test]
    fn sparse_wire_traffic_shrinks() {
        let p = 4;
        let m = 1000usize;
        // 10 nonzeros per rank → sparse messages ≪ dense m.
        let dense_elems = {
            let mut world = CommWorld::new(p);
            let traffic = world.traffic();
            let comms = world.communicators();
            thread::scope(|s| {
                for mut c in comms {
                    s.spawn(move || {
                        let mut v = vec![0.0f32; m];
                        for j in 0..10 {
                            v[j * 97 % m] = c.rank() as f32 + 1.0;
                        }
                        allreduce_tree(&mut c, &mut v).expect("allreduce");
                    });
                }
            });
            traffic.elements_sent()
        };
        let sparse_elems = {
            let mut world = CommWorld::new(p);
            let traffic = world.traffic();
            let comms = world.communicators();
            thread::scope(|s| {
                for mut c in comms {
                    s.spawn(move || {
                        let mut v = vec![0.0f32; m];
                        for j in 0..10 {
                            v[j * 97 % m] = c.rank() as f32 + 1.0;
                        }
                        let mut sv = SparseVec::from_dense(&v);
                        sparse_allreduce_tree(&mut c, &mut sv).expect("sparse allreduce");
                    });
                }
            });
            traffic.elements_sent()
        };
        assert!(
            sparse_elems * 10 < dense_elems,
            "sparse {sparse_elems} vs dense {dense_elems}"
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_rejected() {
        let mut a = SparseVec::from_dense(&[1.0f32]);
        a.add_assign(&SparseVec::from_dense(&[1.0f32, 2.0]));
    }
}

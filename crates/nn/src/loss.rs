//! Softmax cross-entropy — the error measure of both paper networks.

use sasgd_tensor::{Tensor, Workspace};

/// Loss value plus everything needed to continue backprop.
pub struct LossOutput {
    /// Mean cross-entropy over the batch.
    pub loss: f32,
    /// `dL/d(logits)`, already divided by the batch size.
    pub dlogits: Tensor,
    /// Number of correct argmax predictions.
    pub correct: usize,
}

/// Numerically stable softmax cross-entropy with mean reduction.
///
/// `logits`: `[n, classes]`; `labels`: `n` class indices.
///
/// # Panics
/// Panics if shapes disagree or any label is out of range.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> LossOutput {
    softmax_cross_entropy_ws(logits, labels, &mut Workspace::new())
}

/// [`softmax_cross_entropy`] with `dlogits` drawn from a workspace arena
/// instead of a fresh allocation.
pub fn softmax_cross_entropy_ws(
    logits: &Tensor,
    labels: &[usize],
    ws: &mut Workspace,
) -> LossOutput {
    let (n, c) = (logits.dims()[0], logits.dims()[1]);
    assert_eq!(n, labels.len(), "batch size mismatch");
    let mut dlogits = Tensor::zeros_in(&[n, c], ws);
    let mut loss = 0.0f64;
    let mut correct = 0usize;
    let ld = logits.as_slice();
    let dd = dlogits.as_mut_slice();
    let inv_n = 1.0 / n as f32;
    for i in 0..n {
        let row = &ld[i * c..(i + 1) * c];
        let label = labels[i];
        assert!(label < c, "label {label} out of range for {c} classes");
        let maxv = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        let mut denom = 0.0f32;
        for &v in row {
            denom += (v - maxv).exp();
        }
        let log_denom = denom.ln();
        loss += f64::from(log_denom - (row[label] - maxv));
        let drow = &mut dd[i * c..(i + 1) * c];
        for (j, &v) in row.iter().enumerate() {
            let p = (v - maxv).exp() / denom;
            drow[j] = (p - if j == label { 1.0 } else { 0.0 }) * inv_n;
        }
        let mut best = 0usize;
        for (j, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = j;
            }
        }
        if best == label {
            correct += 1;
        }
    }
    LossOutput {
        // lint:allow(float-cast): deliberate narrowing — the mean is
        // accumulated in f64 for order-stability, reported in f32.
        loss: (loss / n as f64) as f32,
        dlogits,
        correct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sasgd_tensor::SeedRng;

    #[test]
    fn uniform_logits_give_log_c() {
        let logits = Tensor::zeros(&[4, 10]);
        let out = softmax_cross_entropy(&logits, &[0, 1, 2, 3]);
        assert!((out.loss - 10f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn confident_correct_prediction_has_small_loss() {
        let mut logits = Tensor::zeros(&[1, 3]);
        logits.as_mut_slice()[1] = 10.0;
        let out = softmax_cross_entropy(&logits, &[1]);
        assert!(out.loss < 1e-3);
        assert_eq!(out.correct, 1);
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let mut rng = SeedRng::new(1);
        let logits = rng.normal_tensor(&[5, 7], 2.0);
        let out = softmax_cross_entropy(&logits, &[0, 1, 2, 3, 4]);
        for i in 0..5 {
            let s: f32 = out.dlogits.row(i).iter().sum();
            assert!(s.abs() < 1e-5, "row {i} sums to {s}");
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut rng = SeedRng::new(2);
        let logits = rng.normal_tensor(&[3, 4], 1.0);
        let labels = [2usize, 0, 3];
        let out = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-2f32;
        for k in 0..logits.numel() {
            let mut lp = logits.clone();
            lp.as_mut_slice()[k] += eps;
            let up = softmax_cross_entropy(&lp, &labels).loss;
            let fd = (up - out.loss) / eps;
            let an = out.dlogits.as_slice()[k];
            assert!((fd - an).abs() < 2e-2, "k={k} fd {fd} vs {an}");
        }
    }

    #[test]
    fn stability_under_huge_logits() {
        let logits = Tensor::from_vec(vec![1000.0, -1000.0], &[1, 2]);
        let out = softmax_cross_entropy(&logits, &[0]);
        assert!(out.loss.is_finite());
        assert!(out.dlogits.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_label_panics() {
        softmax_cross_entropy(&Tensor::zeros(&[1, 3]), &[3]);
    }
}

//! Transport conformance suite: one generic body of tests run against
//! every [`Transport`] implementation — the in-process crossbeam world,
//! the TCP socket mesh, the mock, and the model checker's live-mode
//! [`ModelTransport`](sasgd_analysis::model) — so the trait's
//! failure-semantics contract is checked by construction, not by
//! convention.
//!
//! Each scenario is a generic function over a *world factory* (`p` →
//! endpoints); the per-implementation `#[test]` wrappers at the bottom are
//! the only impl-specific code.

use sasgd_comm::collectives::allreduce_tree;
use sasgd_comm::mock::mock_world;
use sasgd_comm::socket::SocketTransport;
use sasgd_comm::transport::Transport;
use sasgd_comm::world::{CommError, CommWorld};
use std::net::TcpListener;
use std::thread;
use std::time::{Duration, Instant};

const RENDEZVOUS: Duration = Duration::from_secs(30);

/// Build a `p`-rank socket world on ephemeral loopback ports: bind the
/// listeners first (so every rank knows every address), then run the
/// rendezvous in parallel. (The same shape as `socket.rs`'s internal test
/// helper, which `#[cfg(test)]` keeps invisible to integration tests.)
fn socket_world(p: usize) -> Vec<SocketTransport> {
    let listeners: Vec<TcpListener> = (0..p)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind ephemeral"))
        .collect();
    let addrs: Vec<_> = listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr"))
        .collect();
    let mut out: Vec<Option<SocketTransport>> = (0..p).map(|_| None).collect();
    thread::scope(|s| {
        let handles: Vec<_> = listeners
            .into_iter()
            .enumerate()
            .map(|(rank, listener)| {
                let addrs = &addrs;
                s.spawn(move || {
                    SocketTransport::with_listener(rank, listener, addrs, RENDEZVOUS)
                        .expect("rendezvous")
                })
            })
            .collect();
        for (slot, h) in out.iter_mut().zip(handles) {
            *slot = Some(h.join().expect("rendezvous thread"));
        }
    });
    out.into_iter().map(|o| o.expect("endpoint")).collect()
}

fn inproc_world(p: usize) -> Vec<sasgd_comm::world::Communicator> {
    CommWorld::new(p).communicators()
}

// ---------------------------------------------------------------- scenarios

/// `recv_deadline` with no matching message times out as `Timeout`, in
/// bounded wall-clock time, and does not disturb later traffic.
fn deadline_timeout<T: Transport>(world: Vec<T>) {
    let mut endpoints = world;
    let mut r1 = endpoints.pop().expect("rank 1");
    let mut r0 = endpoints.pop().expect("rank 0");
    let started = Instant::now();
    match r0.recv_deadline(1, 7, Duration::from_millis(50)) {
        Err(CommError::Timeout { .. }) => {}
        other => panic!("expected Timeout, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "timeout returned promptly"
    );
    // The channel still works after a timeout.
    r1.send(0, 7, vec![1.0, 2.0]).expect("post-timeout send");
    let got = r0
        .recv_deadline(1, 7, Duration::from_secs(5))
        .expect("post-timeout recv");
    assert_eq!(got, vec![1.0, 2.0]);
}

/// Sending to a hung-up peer surfaces `PeerGone` within a bounded number
/// of retries. Socket transports may buffer a send or two before the
/// hangup is observed, so the contract is "eventually typed", not
/// "immediately typed" — the retry loop is part of the contract.
fn peer_gone_on_hangup<T: Transport>(world: Vec<T>) {
    let mut endpoints = world;
    let r1 = endpoints.pop().expect("rank 1");
    let mut r0 = endpoints.pop().expect("rank 0");
    drop(r1);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match r0.send(1, 3, vec![0.5; 16]) {
            Err(CommError::PeerGone { peer }) => {
                assert_eq!(peer, 1);
                break;
            }
            Ok(()) => {
                assert!(
                    Instant::now() < deadline,
                    "send to dead peer never surfaced PeerGone"
                );
                thread::sleep(Duration::from_millis(5));
            }
            Err(other) => panic!("expected PeerGone, got {other:?}"),
        }
    }
}

/// Messages on distinct tags match by tag, not arrival order; messages on
/// one tag are FIFO per sender.
fn tag_ordering<T: Transport + 'static>(world: Vec<T>) {
    let mut endpoints = world;
    let mut r1 = endpoints.pop().expect("rank 1");
    let mut r0 = endpoints.pop().expect("rank 0");
    let sender = thread::spawn(move || {
        r1.send(0, 10, vec![1.0]).expect("send tag 10 #1");
        r1.send(0, 20, vec![2.0]).expect("send tag 20");
        r1.send(0, 10, vec![3.0]).expect("send tag 10 #2");
        r1
    });
    // Claim the later tag first: the tag-10 messages must park, then be
    // drained FIFO.
    assert_eq!(r0.recv(1, 20).expect("tag 20"), vec![2.0]);
    assert_eq!(r0.recv(1, 10).expect("tag 10 first"), vec![1.0]);
    assert_eq!(r0.recv(1, 10).expect("tag 10 second"), vec![3.0]);
    drop(sender.join().expect("sender thread"));
}

/// `recv_any` claims exactly one message and reports its source.
fn recv_any_claims_one<T: Transport + 'static>(world: Vec<T>) {
    let mut endpoints = world;
    let mut r2 = endpoints.pop().expect("rank 2");
    let mut r1 = endpoints.pop().expect("rank 1");
    let mut r0 = endpoints.pop().expect("rank 0");
    let s1 = thread::spawn(move || {
        r1.send(0, 5, vec![1.0]).expect("send from 1");
        r1
    });
    let s2 = thread::spawn(move || {
        r2.send(0, 5, vec![2.0]).expect("send from 2");
        r2
    });
    let mut seen = Vec::new();
    for _ in 0..2 {
        let (src, payload) = r0.recv_any(&[(1, 5), (2, 5)]).expect("recv_any");
        assert_eq!(payload, vec![src as f32]);
        seen.push(src);
    }
    seen.sort_unstable();
    assert_eq!(seen, vec![1, 2]);
    drop(s1.join().expect("sender 1"));
    drop(s2.join().expect("sender 2"));
}

/// A large payload survives the wire bit-exactly — for the socket
/// transport this exercises multi-read framing well past any single
/// kernel buffer.
fn large_message_round_trip<T: Transport + 'static>(world: Vec<T>) {
    let n = 300_000usize;
    let payload: Vec<f32> = (0..n)
        .map(|i| {
            if i == 17 {
                f32::NAN
            } else if i == 18 {
                -0.0
            } else {
                (i as f32).sin() * 1e-3
            }
        })
        .collect();
    let mut endpoints = world;
    let mut r1 = endpoints.pop().expect("rank 1");
    let mut r0 = endpoints.pop().expect("rank 0");
    let expect = payload.clone();
    let sender = thread::spawn(move || {
        r1.send(0, 42, payload).expect("large send");
        r1
    });
    let got = r0.recv(1, 42).expect("large recv");
    assert_eq!(got.len(), expect.len());
    for (a, b) in got.iter().zip(&expect) {
        assert_eq!(a.to_bits(), b.to_bits(), "bit-exact payload");
    }
    drop(sender.join().expect("sender thread"));
}

/// The crate's collectives run unchanged over the implementation: a p=4
/// tree allreduce produces the exact dense sums on every rank.
fn allreduce_over_transport<T: Transport + 'static>(world: Vec<T>) {
    let m = 33usize;
    let p = world.len();
    let results: Vec<Vec<f32>> = thread::scope(|s| {
        let handles: Vec<_> = world
            .into_iter()
            .map(|mut endpoint| {
                s.spawn(move || {
                    let r = endpoint.rank();
                    let mut v: Vec<f32> = (0..m).map(|j| (r * m + j) as f32).collect();
                    allreduce_tree(&mut endpoint, &mut v).expect("allreduce");
                    v
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread"))
            .collect()
    });
    let expect: Vec<f32> = (0..m)
        .map(|j| (0..p).map(|r| (r * m + j) as f32).sum())
        .collect();
    for (r, v) in results.iter().enumerate() {
        assert_eq!(v, &expect, "rank {r}");
    }
}

// ------------------------------------------------------- per-impl wrappers

macro_rules! conformance {
    ($modname:ident, $factory:path) => {
        mod $modname {
            use super::*;

            #[test]
            fn deadline_timeout() {
                super::deadline_timeout($factory(2));
            }

            #[test]
            fn peer_gone_on_hangup() {
                super::peer_gone_on_hangup($factory(2));
            }

            #[test]
            fn tag_ordering() {
                super::tag_ordering($factory(2));
            }

            #[test]
            fn recv_any_claims_one() {
                super::recv_any_claims_one($factory(3));
            }

            #[test]
            fn large_message_round_trip() {
                super::large_message_round_trip($factory(2));
            }

            #[test]
            fn allreduce_over_transport() {
                super::allreduce_over_transport($factory(4));
            }
        }
    };
}

conformance!(inproc, inproc_world);
conformance!(socket, socket_world);
conformance!(mock, mock_world);
// The model checker's transport in *live* mode: same failure-semantics
// contract as the real substrates, so `repro analyze --model` results
// transfer to the transports the engine actually runs on.
use sasgd_analysis::model::model_world;
conformance!(model, model_world);

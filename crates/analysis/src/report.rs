//! Machine-readable (`ANALYSIS.json`) and human-readable report emission.
//!
//! JSON is hand-rolled: the workspace vendors no serde, and the schema is
//! small and flat. Strings are escaped per RFC 8259 minimal rules.

use crate::dpor::{ModelScenarioResult, ModelSelfCheck};
use crate::lints::Violation;
use crate::schedule::ScenarioResult;

/// Escape a string for embedding in a JSON document.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The complete analyzer outcome, ready for serialization.
pub struct Analysis {
    /// Files the lint pass scanned.
    pub files_scanned: usize,
    /// Lint findings on the real tree (must be empty for a green run).
    pub violations: Vec<Violation>,
    /// Self-check: findings on the bad-fixture corpus (must be non-empty —
    /// proves the lints can still fire).
    pub fixture_violations: usize,
    /// Fixture files exercised by the self-check.
    pub fixture_files: usize,
    /// Race-checker scenario outcomes.
    pub scenarios: Vec<ScenarioResult>,
    /// Self-check: the arrival-order bad reduce diverged as expected.
    pub bad_fixture_diverged: bool,
    /// Self-check: the deliberate recv cycle was caught with a wait-for
    /// cycle report.
    pub deadlock_detected: bool,
    /// Model-checker leg (`repro analyze --model`): DPOR exploration
    /// results plus the implanted-bug self-check. `None` when the leg was
    /// not requested.
    pub model: Option<ModelReport>,
}

/// The model-checker leg's outcome.
pub struct ModelReport {
    /// Per-scenario DPOR exploration results.
    pub scenarios: Vec<ModelScenarioResult>,
    /// Implanted-bug self-check verdict.
    pub self_check: ModelSelfCheck,
}

impl ModelReport {
    /// Total interleavings explored across scenarios.
    pub fn explored_total(&self) -> usize {
        self.scenarios.iter().map(|s| s.explored).sum()
    }

    /// Total branches DPOR pruned across scenarios.
    pub fn pruned_total(&self) -> usize {
        self.scenarios.iter().map(|s| s.pruned).sum()
    }

    /// Happens-before races found on real code (must be 0).
    pub fn races_total(&self) -> usize {
        self.scenarios.iter().map(|s| s.races).sum()
    }

    /// Wait-for cycles found on real code (must be 0).
    pub fn cycles_total(&self) -> usize {
        self.scenarios.iter().map(|s| s.cycles).sum()
    }

    /// Lost updates found on real code (must be 0).
    pub fn lost_updates_total(&self) -> usize {
        self.scenarios.iter().map(|s| s.lost_updates).sum()
    }

    /// The sleep-set reduction actually pruned something — a dead DPOR
    /// layer would silently degrade to naive enumeration.
    pub fn reduction_nonzero(&self) -> bool {
        self.pruned_total() > 0
    }

    /// Every scenario clean and exhaustive (or declared bounded), the
    /// reduction alive, and every implanted bug caught.
    pub fn ok(&self) -> bool {
        self.scenarios.iter().all(ModelScenarioResult::ok)
            && self.reduction_nonzero()
            && self.self_check.ok()
    }
}

impl Analysis {
    /// Overall verdict: clean tree, invariant schedules, working self-checks.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
            && self.fixture_violations > 0
            && self.scenarios.iter().all(ScenarioResult::ok)
            && self.bad_fixture_diverged
            && self.deadlock_detected
            && self.model.as_ref().is_none_or(ModelReport::ok)
    }

    /// Serialize to the `ANALYSIS.json` document.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"ok\": {},\n", self.ok()));
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str("  \"lint_violations\": [\n");
        for (i, v) in self.violations.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"lint\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}{}\n",
                esc(v.lint),
                esc(&v.file),
                v.line,
                esc(&v.message),
                if i + 1 < self.violations.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!(
            "  \"fixture_selfcheck\": {{\"files\": {}, \"violations\": {}, \"fired\": {}}},\n",
            self.fixture_files,
            self.fixture_violations,
            self.fixture_violations > 0
        ));
        s.push_str("  \"schedule_scenarios\": [\n");
        for (i, sc) in self.scenarios.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"p\": {}, \"schedules\": {}, \"distinct_results\": {}, \
                 \"deadlocks\": {}, \"lost_updates\": {}, \"fingerprint\": \"{:016x}\", \"ok\": {}}}{}\n",
                esc(&sc.name),
                sc.p,
                sc.schedules,
                sc.distinct_results,
                sc.deadlocks,
                sc.lost_updates,
                sc.fingerprint,
                sc.ok(),
                if i + 1 < self.scenarios.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!(
            "  \"race_selfcheck\": {{\"bad_fixture_diverged\": {}, \"deadlock_detected\": {}}},\n",
            self.bad_fixture_diverged, self.deadlock_detected
        ));
        match &self.model {
            None => s.push_str("  \"model\": {\"enabled\": false}\n"),
            Some(m) => {
                s.push_str("  \"model_scenarios\": [\n");
                for (i, sc) in m.scenarios.iter().enumerate() {
                    s.push_str(&format!(
                        "    {{\"name\": \"{}\", \"p\": {}, \"explored\": {}, \"pruned\": {}, \
                         \"distinct_results\": {}, \"races\": {}, \"lost_updates\": {}, \
                         \"cycles\": {}, \"exhausted\": {}, \"bounded\": {}, \"ok\": {}}}{}\n",
                        esc(&sc.name),
                        sc.p,
                        sc.explored,
                        sc.pruned,
                        sc.distinct_results,
                        sc.races,
                        sc.lost_updates,
                        sc.cycles,
                        sc.exhausted,
                        sc.bounded,
                        sc.ok(),
                        if i + 1 < m.scenarios.len() { "," } else { "" }
                    ));
                }
                s.push_str("  ],\n");
                s.push_str(&format!(
                    "  \"model\": {{\"enabled\": true, \"explored_total\": {}, \
                     \"pruned_total\": {}, \"races_total\": {}, \"cycles_total\": {}, \
                     \"lost_updates_total\": {}, \"reduction_nonzero\": {}, \
                     \"selfcheck_ok\": {}, \"bad_reduce_witness\": \"{}\", \
                     \"cycle_report\": \"{}\", \"ok\": {}}}\n",
                    m.explored_total(),
                    m.pruned_total(),
                    m.races_total(),
                    m.cycles_total(),
                    m.lost_updates_total(),
                    m.reduction_nonzero(),
                    m.self_check.ok(),
                    esc(&m.self_check.bad_reduce_witness),
                    esc(&m.self_check.cycle_report),
                    m.ok()
                ));
            }
        }
        s.push_str("}\n");
        s
    }

    /// Human-readable summary for the terminal / bench report.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        s.push_str("== sasgd-analysis ==\n\n");
        s.push_str(&format!(
            "lint pass: {} files scanned, {} violation(s)\n",
            self.files_scanned,
            self.violations.len()
        ));
        for v in &self.violations {
            s.push_str(&format!(
                "  [{}] {}:{} {}\n",
                v.lint, v.file, v.line, v.message
            ));
        }
        s.push_str(&format!(
            "lint self-check: {} fixture file(s), {} violation(s) fired ({})\n\n",
            self.fixture_files,
            self.fixture_violations,
            if self.fixture_violations > 0 {
                "ok"
            } else {
                "FAIL: lints are dead"
            }
        ));
        s.push_str("schedule exploration:\n");
        for sc in &self.scenarios {
            s.push_str(&format!(
                "  {:<38} p={} schedules={:>3} distinct={} deadlocks={} lost={}  {}\n",
                sc.name,
                sc.p,
                sc.schedules,
                sc.distinct_results,
                sc.deadlocks,
                sc.lost_updates,
                if sc.ok() { "ok" } else { "FAIL" }
            ));
            for r in &sc.deadlock_reports {
                s.push_str(&format!("      {r}\n"));
            }
        }
        s.push_str(&format!(
            "race self-check: bad fixture diverged = {}, deadlock detected = {}\n",
            self.bad_fixture_diverged, self.deadlock_detected
        ));
        if let Some(m) = &self.model {
            s.push_str("\nmodel checker (DPOR over ModelTransport):\n");
            for sc in &m.scenarios {
                s.push_str(&format!(
                    "  {:<34} p={} explored={:>5} pruned={:>5} distinct={} races={} lost={} \
                     cycles={} {}  {}\n",
                    sc.name,
                    sc.p,
                    sc.explored,
                    sc.pruned,
                    sc.distinct_results,
                    sc.races,
                    sc.lost_updates,
                    sc.cycles,
                    if sc.bounded {
                        "bounded"
                    } else if sc.exhausted {
                        "exhaustive"
                    } else {
                        "TRUNCATED"
                    },
                    if sc.ok() { "ok" } else { "FAIL" }
                ));
                for r in &sc.reports {
                    s.push_str(&format!("      {r}\n"));
                }
                if let Some(w) = &sc.witness {
                    s.push_str(&format!("      witness: {w}\n"));
                }
                for e in &sc.errors {
                    s.push_str(&format!("      error: {e}\n"));
                }
            }
            let c = &m.self_check;
            s.push_str(&format!(
                "  model self-check: races={} (witness {}, replay {}), lost={}, rmw clean={}, \
                 cycle caught={} ({})\n",
                c.bad_reduce_races,
                if c.bad_reduce_witness.is_empty() {
                    "MISSING"
                } else {
                    &c.bad_reduce_witness
                },
                if c.bad_reduce_replay_confirms {
                    "confirms"
                } else {
                    "FAILS"
                },
                c.lost_updates_caught,
                c.rmw_clean,
                c.cycle_caught,
                if c.ok() { "ok" } else { "FAIL" }
            ));
            s.push_str(&format!(
                "  model totals: explored={} pruned={} reduction_nonzero={}\n",
                m.explored_total(),
                m.pruned_total(),
                m.reduction_nonzero()
            ));
        }
        s.push_str(&format!(
            "\noverall: {}\n",
            if self.ok() { "OK" } else { "FAIL" }
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_specials() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn empty_analysis_round_trips() {
        let a = Analysis {
            files_scanned: 3,
            violations: vec![Violation {
                lint: "map-iter",
                file: "crates/x.rs".into(),
                line: 7,
                message: "no \"maps\"".into(),
            }],
            fixture_violations: 5,
            fixture_files: 2,
            scenarios: Vec::new(),
            bad_fixture_diverged: true,
            deadlock_detected: true,
            model: None,
        };
        let j = a.to_json();
        assert!(j.contains("\"files_scanned\": 3"));
        assert!(j.contains("no \\\"maps\\\""));
        assert!(j.contains("\"model\": {\"enabled\": false}"));
        assert!(j.contains("\"ok\": false")); // violations present → not ok
    }
}

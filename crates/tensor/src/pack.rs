//! Panel packing and the blocked driver for the packed GEMM path
//! (`simd` feature).
//!
//! A GEMM `C = A·B` (any of the NN/NT/TN physical layouts, abstracted by
//! the crate-internal `MatRef`) runs as: for each `KC`-deep reduction
//! block, pack the
//! active slices of `A` and `B` into micropanel buffers — `MR`-row groups
//! of `A` and `NR`-column groups of `B`, interleaved by the reduction
//! index so the microkernel streams both with unit stride — then sweep the
//! `MR`×`NR` microkernel over the output. Pack buffers come from the
//! caller's [`Workspace`] via the 32-byte-aligned take, so a steady-state
//! training loop allocates nothing here.
//!
//! **Parallelism & determinism.** Packing parallelizes over micropanels
//! and the macrokernel over row *bands* (whole `MR` panels), both through
//! [`parallel::for_each_chunk_mut`] — work item `i` is always item `i`,
//! and `C` element `(i, j)` accumulates its `KC` blocks in ascending order
//! regardless of band boundaries or thread count, so the packed kernel is
//! bitwise identical to itself at any pool size. It is *not* bitwise
//! identical to the `*_ref` scalar kernels (block-sum association, no
//! zero-skip) — that divergence is the documented tolerance mode; see the
//! `linalg` module docs.
//!
//! Ragged edges (`m % MR`, `n % NR`, `k % KC` nonzero) are packed with
//! explicit zero padding; padded lanes are computed and discarded by the
//! microkernel, never stored.

use crate::microkernel;
use crate::parallel;
use crate::tune;
use crate::workspace::Workspace;

/// A logical row-major matrix view over one of the two physical layouts
/// the GEMM entry points take.
#[derive(Clone, Copy)]
pub(crate) enum MatRef<'a> {
    /// Element `(r, c)` is `d[r * ld + c]` (physically row-major).
    Rm { d: &'a [f32], ld: usize },
    /// Element `(r, c)` is `d[c * ld + r]` (physically the transpose).
    Cm { d: &'a [f32], ld: usize },
}

impl MatRef<'_> {
    #[inline]
    fn at(&self, r: usize, c: usize) -> f32 {
        match *self {
            MatRef::Rm { d, ld } => d[r * ld + c],
            MatRef::Cm { d, ld } => d[c * ld + r],
        }
    }
}

/// Pack `A`'s micropanel `ip` for the reduction block `[pc, pc+kc)`:
/// `dst[l*mr + i] = A[ip*mr + i, pc + l]`, rows past `m` zero-padded.
// hot-path: per-block panel packing — no allocation allowed
fn pack_a_panel(
    a: &MatRef<'_>,
    m: usize,
    pc: usize,
    kc: usize,
    ip: usize,
    mr: usize,
    dst: &mut [f32],
) {
    debug_assert_eq!(dst.len(), kc * mr);
    for l in 0..kc {
        let drow = &mut dst[l * mr..(l + 1) * mr];
        for (i, dv) in drow.iter_mut().enumerate() {
            let row = ip * mr + i;
            *dv = if row < m { a.at(row, pc + l) } else { 0.0 };
        }
    }
}

/// Pack `B`'s micropanel `jp` for the reduction block `[pc, pc+kc)`:
/// `dst[l*nr + j] = B[pc + l, jp*nr + j]`, columns past `n` zero-padded.
/// Fully in-bounds rows of a physically row-major `B` copy contiguously.
// hot-path: per-block panel packing — no allocation allowed
fn pack_b_panel(
    b: &MatRef<'_>,
    n: usize,
    pc: usize,
    kc: usize,
    jp: usize,
    nr: usize,
    dst: &mut [f32],
) {
    debug_assert_eq!(dst.len(), kc * nr);
    let col0 = jp * nr;
    if let MatRef::Rm { d, ld } = *b {
        if col0 + nr <= n {
            for l in 0..kc {
                let src = (pc + l) * ld + col0;
                dst[l * nr..(l + 1) * nr].copy_from_slice(&d[src..src + nr]);
            }
            return;
        }
    }
    for l in 0..kc {
        let drow = &mut dst[l * nr..(l + 1) * nr];
        for (j, dv) in drow.iter_mut().enumerate() {
            let col = col0 + j;
            *dv = if col < n { b.at(pc + l, col) } else { 0.0 };
        }
    }
}

/// Rows per macrokernel band: enough bands to feed the pool (~4 per
/// thread), whole `MR` panels, never fewer than one panel.
fn band_rows(m: usize, mr: usize) -> usize {
    let target_bands = parallel::threads() * 4;
    m.div_ceil(target_bands.max(1)).div_ceil(mr).max(1) * mr
}

/// Packed, register-blocked `out = A · B` for logical `A: [m,k]`,
/// `B: [k,n]` (physical layouts per [`MatRef`]). Overwrites `out`.
/// Tiles come from [`tune::plan_recorded`]; pack scratch from `ws`.
// hot-path: packed GEMM driver — all scratch from the Workspace arena
pub(crate) fn gemm_packed(
    out: &mut [f32],
    a: MatRef<'_>,
    b: MatRef<'_>,
    m: usize,
    k: usize,
    n: usize,
    ws: &mut Workspace,
) {
    debug_assert_eq!(out.len(), m * n);
    let plan = tune::plan_recorded(m, k, n);
    let (mr, nr) = (plan.mr, plan.nr);
    let mpan = m.div_ceil(mr);
    let npan = n.div_ceil(nr);
    let nc_pan = (plan.nc / nr).max(1);
    let mut ap = ws.take_f32_aligned(mpan * mr * plan.kc);
    let mut bp = ws.take_f32_aligned(npan * nr * plan.kc);
    let ukr = microkernel::ukr_for(mr, nr);
    let bands = band_rows(m, mr);
    out.iter_mut().for_each(|x| *x = 0.0);
    let mut pc = 0;
    while pc < k {
        let kc = plan.kc.min(k - pc);
        parallel::for_each_chunk_mut(
            &mut bp.as_mut_slice()[..npan * nr * kc],
            nr * kc,
            |jp, dst| {
                pack_b_panel(&b, n, pc, kc, jp, nr, dst);
            },
        );
        parallel::for_each_chunk_mut(
            &mut ap.as_mut_slice()[..mpan * mr * kc],
            mr * kc,
            |ip, dst| {
                pack_a_panel(&a, m, pc, kc, ip, mr, dst);
            },
        );
        let (ap_ro, bp_ro) = (
            &ap.as_slice()[..mpan * mr * kc],
            &bp.as_slice()[..npan * nr * kc],
        );
        parallel::for_each_chunk_mut(out, bands * n, |bandi, cband| {
            let ip0 = bandi * bands / mr;
            let band_pan = (cband.len() / n).div_ceil(mr);
            let mut jc0 = 0;
            while jc0 < npan {
                let jc1 = (jc0 + nc_pan).min(npan);
                for ipl in 0..band_pan {
                    let ip = ip0 + ipl;
                    let mr_eff = mr.min(m - ip * mr);
                    for jp in jc0..jc1 {
                        let nr_eff = nr.min(n - jp * nr);
                        ukr(
                            &ap_ro[ip * mr * kc..(ip + 1) * mr * kc],
                            &bp_ro[jp * nr * kc..(jp + 1) * nr * kc],
                            kc,
                            &mut cband[ipl * mr * n + jp * nr..],
                            n,
                            mr_eff,
                            nr_eff,
                        );
                    }
                }
                jc0 = jc1;
            }
        });
        pc += kc;
    }
    ws.give_f32_aligned(ap);
    ws.give_f32_aligned(bp);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedRng;

    fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0f64;
                for l in 0..k {
                    s += a[i * k + l] as f64 * b[l * n + j] as f64;
                }
                c[i * n + j] = s as f32;
            }
        }
        c
    }

    #[test]
    fn packed_nn_close_to_f64_naive_across_ragged_shapes() {
        let mut r = SeedRng::new(21);
        let mut ws = Workspace::new();
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (4, 8, 16),
            (37, 131, 93),
            (130, 75, 64),
            (65, 300, 17),
        ] {
            let a = r.normal_tensor(&[m, k], 1.0);
            let b = r.normal_tensor(&[k, n], 1.0);
            let mut c = vec![f32::NAN; m * n];
            gemm_packed(
                &mut c,
                MatRef::Rm {
                    d: a.as_slice(),
                    ld: k,
                },
                MatRef::Rm {
                    d: b.as_slice(),
                    ld: n,
                },
                m,
                k,
                n,
                &mut ws,
            );
            let want = naive(a.as_slice(), b.as_slice(), m, k, n);
            for (i, (&got, &w)) in c.iter().zip(&want).enumerate() {
                let tol = 1e-4f32.max(w.abs() * 1e-4);
                assert!((got - w).abs() <= tol, "({m},{k},{n})[{i}]: {got} vs {w}");
            }
        }
    }

    #[test]
    fn transpose_views_agree_with_row_major() {
        // NT and TN physical layouts must produce bitwise the same packed
        // result as the equivalent explicit row-major operands (packing
        // normalizes layout before any arithmetic).
        let (m, k, n) = (21usize, 13usize, 19usize);
        let mut r = SeedRng::new(22);
        let a = r.normal_tensor(&[m, k], 1.0);
        let b = r.normal_tensor(&[k, n], 1.0);
        let mut bt = vec![0.0f32; n * k]; // physical [n, k]
        for l in 0..k {
            for j in 0..n {
                bt[j * k + l] = b.as_slice()[l * n + j];
            }
        }
        let mut at = vec![0.0f32; k * m]; // physical [k, m]
        for i in 0..m {
            for l in 0..k {
                at[l * m + i] = a.as_slice()[i * k + l];
            }
        }
        let mut ws = Workspace::new();
        let mut c_rm = vec![0.0f32; m * n];
        let mut c_nt = vec![0.0f32; m * n];
        let mut c_tn = vec![0.0f32; m * n];
        let arm = MatRef::Rm {
            d: a.as_slice(),
            ld: k,
        };
        let brm = MatRef::Rm {
            d: b.as_slice(),
            ld: n,
        };
        gemm_packed(&mut c_rm, arm, brm, m, k, n, &mut ws);
        gemm_packed(
            &mut c_nt,
            arm,
            MatRef::Cm { d: &bt, ld: k },
            m,
            k,
            n,
            &mut ws,
        );
        gemm_packed(
            &mut c_tn,
            MatRef::Cm { d: &at, ld: m },
            brm,
            m,
            k,
            n,
            &mut ws,
        );
        assert_eq!(c_rm, c_nt);
        assert_eq!(c_rm, c_tn);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn packed_parallel_equals_packed_serial_bitwise() {
        let (m, k, n) = (131usize, 77usize, 45usize);
        let mut r = SeedRng::new(23);
        let a = r.normal_tensor(&[m, k], 1.0);
        let b = r.normal_tensor(&[k, n], 1.0);
        let arm = MatRef::Rm {
            d: a.as_slice(),
            ld: k,
        };
        let brm = MatRef::Rm {
            d: b.as_slice(),
            ld: n,
        };
        let mut ws = Workspace::new();
        parallel::configure_threads(1);
        let mut serial = vec![0.0f32; m * n];
        gemm_packed(&mut serial, arm, brm, m, k, n, &mut ws);
        parallel::configure_threads(4);
        let mut par = vec![0.0f32; m * n];
        gemm_packed(&mut par, arm, brm, m, k, n, &mut ws);
        parallel::configure_threads(0);
        assert_eq!(
            serial.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            par.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "packed path must not depend on thread count"
        );
    }
}

//! Offline vendored subset of the `proptest` API.
//!
//! Supports the surface this workspace uses: the `proptest!` macro with an
//! optional `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! `name in strategy` bindings over numeric ranges and
//! `proptest::collection::vec`, `prop_assert!` / `prop_assert_eq!`, and
//! test bodies that `return Ok(())` early.
//!
//! Unlike real proptest there is no shrinking and no persisted failure
//! seeds: inputs are drawn from a deterministic per-test RNG (seeded from
//! the test name and case index), so every run exercises the same cases
//! and failures are reproducible by construction.

pub mod strategy {
    //! Input-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The value type produced.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )+};
    }

    int_strategy!(usize, u64, u32, u16, u8);

    macro_rules! signed_strategy {
        ($($t:ty as $u:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i64 - self.start as i64) as u64;
                    (self.start as i64 + (rng.next_u64() % span) as i64) as $t
                }
            }
        )+};
    }

    signed_strategy!(i64 as u64, i32 as u32, i16 as u16, i8 as u8);

    impl Strategy for Range<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + (self.end - self.start) * rng.unit_f32()
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Build a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Deterministic RNG and failure plumbing for generated tests.

    /// SplitMix64-based RNG; deterministic per (test name, case index).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test name and case number.
        pub fn deterministic(name: &str, case: u32) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform f32 in `[0, 1)`.
        pub fn unit_f32(&mut self) -> f32 {
            (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// A failed `prop_assert!` inside a test case.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Build from a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for TestCaseError {}
}

/// Per-block configuration (`with_cases` only).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Define property tests: each `name in strategy` argument is drawn fresh
/// per case; the body runs once per case and may `return Ok(())` to skip.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!(
                            "proptest {} failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e,
                            [$(format!(concat!(stringify!($arg), " = {:?}"), &$arg)),+]
                                .join(", "),
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name( $($arg in $strat),+ ) $body
            )*
        }
    };
}

/// Assert inside a proptest body; failure reports the generated inputs
/// instead of panicking on the spot.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `prop_assert!` for equality, with both sides in the failure message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            lhs,
            rhs
        );
    }};
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(n in 3usize..17, x in -1.5f32..2.5, s in 0u64..9) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((-1.5..2.5).contains(&x));
            prop_assert!(s < 9);
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec(0.0f64..1e6, 1..60)) {
            prop_assert!(!v.is_empty() && v.len() < 60);
            prop_assert!(v.iter().all(|&x| (0.0..1e6).contains(&x)));
            if v.len() == 1 {
                return Ok(());
            }
            prop_assert_eq!(v.len(), v.len());
        }
    }

    #[test]
    fn rng_is_deterministic_per_name_and_case() {
        use crate::test_runner::TestRng;
        let a = TestRng::deterministic("t", 0).next_u64();
        let b = TestRng::deterministic("t", 0).next_u64();
        let c = TestRng::deterministic("t", 1).next_u64();
        let d = TestRng::deterministic("u", 0).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }
}

//! A sequential model with the flat parameter/gradient view that every
//! distributed algorithm in the paper operates on.

use sasgd_tensor::Tensor;

use crate::layer::{Ctx, Layer};
use crate::loss::softmax_cross_entropy_ws;

/// Result of one forward (+loss) pass.
pub struct ForwardOutput {
    /// Mean cross-entropy over the minibatch.
    pub loss: f32,
    /// Correct argmax predictions in the minibatch.
    pub correct: usize,
    /// Batch size.
    pub total: usize,
}

/// A stack of layers ending in softmax cross-entropy.
///
/// `Model` is the unit a *learner* replicates: SASGD broadcasts one model to
/// `p` learners, each computes gradients locally, and the flat
/// [`Model::read_params`] / [`Model::write_params`] / [`Model::read_grads`]
/// views are what travels through allreduce or the parameter server.
pub struct Model {
    layers: Vec<Box<dyn Layer>>,
    /// Per-sample input dimensions (e.g. `[3, 32, 32]`).
    input_dims: Vec<usize>,
    /// Cached gradient of the loss w.r.t. the logits from the last
    /// `forward_loss`, consumed by `backward`.
    pending_dlogits: Option<Tensor>,
    param_len: usize,
    offsets: Vec<usize>,
}

impl Model {
    /// Build from layers; `input_dims` are per-sample (no batch axis).
    pub fn new(layers: Vec<Box<dyn Layer>>, input_dims: &[usize]) -> Self {
        let mut offsets = Vec::with_capacity(layers.len() + 1);
        let mut acc = 0usize;
        for l in &layers {
            offsets.push(acc);
            acc += l.param_len();
        }
        offsets.push(acc);
        Model {
            layers,
            input_dims: input_dims.to_vec(),
            pending_dlogits: None,
            param_len: acc,
            offsets,
        }
    }

    /// Per-sample input dimensions.
    pub fn input_dims(&self) -> &[usize] {
        &self.input_dims
    }

    /// Total learnable scalars — the model size `m` of the paper's
    /// communication analysis.
    pub fn param_len(&self) -> usize {
        self.param_len
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Per-layer parameter blocks as `(start, end)` offsets into the flat
    /// parameter vector, parameterless layers (activations, pooling)
    /// skipped. Layer-wise gradient compression allocates its k budget
    /// over these blocks.
    pub fn param_blocks(&self) -> Vec<(usize, usize)> {
        (0..self.layers.len())
            .map(|i| (self.offsets[i], self.offsets[i + 1]))
            .filter(|(s, e)| e > s)
            .collect()
    }

    /// Forward through all layers (no loss); returns logits.
    pub fn forward(&mut self, input: Tensor, ctx: &mut Ctx) -> Tensor {
        let mut x = input;
        for l in &mut self.layers {
            x = l.forward(x, ctx);
        }
        x
    }

    /// Forward plus loss/accuracy; caches `dL/d(logits)` for [`Model::backward`].
    pub fn forward_loss(
        &mut self,
        input: &Tensor,
        labels: &[usize],
        ctx: &mut Ctx,
    ) -> ForwardOutput {
        let n = labels.len();
        let batch = Tensor::clone_in(input, &mut ctx.ws);
        let logits = self.forward(batch, ctx);
        let out = softmax_cross_entropy_ws(&logits, labels, &mut ctx.ws);
        ctx.ws.recycle(logits);
        if ctx.training {
            self.pending_dlogits = Some(out.dlogits);
        } else {
            ctx.ws.recycle(out.dlogits);
        }
        ForwardOutput {
            loss: out.loss,
            correct: out.correct,
            total: n,
        }
    }

    /// Backpropagate the cached loss gradient, accumulating parameter
    /// gradients in every layer.
    ///
    /// # Panics
    /// Panics if called without a preceding training-mode `forward_loss`.
    pub fn backward(&mut self, ctx: &mut Ctx) {
        let mut g = self
            .pending_dlogits
            .take()
            .expect("backward() requires a training-mode forward_loss first");
        for l in self.layers.iter_mut().rev() {
            g = l.backward(g, ctx);
        }
        ctx.ws.recycle(g);
    }

    /// Copy all parameters into a fresh flat vector.
    pub fn param_vector(&self) -> Vec<f32> {
        let mut v = vec![0.0; self.param_len];
        self.read_params(&mut v);
        v
    }

    /// Copy all parameters into `out`.
    pub fn read_params(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.param_len, "param buffer length");
        for (i, l) in self.layers.iter().enumerate() {
            l.read_params(&mut out[self.offsets[i]..self.offsets[i + 1]]);
        }
    }

    /// Overwrite all parameters from `src`.
    pub fn write_params(&mut self, src: &[f32]) {
        assert_eq!(src.len(), self.param_len, "param buffer length");
        for (i, l) in self.layers.iter_mut().enumerate() {
            l.write_params(&src[self.offsets[i]..self.offsets[i + 1]]);
        }
    }

    /// Copy accumulated gradients into `out`.
    pub fn read_grads(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.param_len, "grad buffer length");
        for (i, l) in self.layers.iter().enumerate() {
            l.read_grads(&mut out[self.offsets[i]..self.offsets[i + 1]]);
        }
    }

    /// Copy accumulated gradients into a fresh vector.
    pub fn grad_vector(&self) -> Vec<f32> {
        let mut v = vec![0.0; self.param_len];
        self.read_grads(&mut v);
        v
    }

    /// Zero every layer's gradient accumulator.
    pub fn zero_grads(&mut self) {
        for l in &mut self.layers {
            l.zero_grads();
        }
    }

    /// In-place SGD step `x ← x − γ·g` over the flat views.
    pub fn sgd_step(&mut self, gamma: f32) {
        let mut params = self.param_vector();
        let grads = self.grad_vector();
        for (p, g) in params.iter_mut().zip(&grads) {
            *p -= gamma * g;
        }
        self.write_params(&params);
    }

    /// Forward multiply–accumulates for one sample.
    pub fn macs_per_sample(&self) -> u64 {
        let mut dims = self.input_dims.clone();
        let mut total = 0u64;
        for l in &self.layers {
            total += l.macs(&dims);
            dims = l.out_shape(&dims);
        }
        total
    }

    /// One-line-per-layer summary with shapes and parameter counts.
    pub fn summary(&self) -> String {
        let mut dims = self.input_dims.clone();
        let mut s = String::new();
        s.push_str(&format!("input: {dims:?}\n"));
        for l in &self.layers {
            let out = l.out_shape(&dims);
            s.push_str(&format!(
                "{:<18} {:?} -> {:?}  params={}\n",
                l.name(),
                dims,
                out,
                l.param_len()
            ));
            dims = out;
        }
        s.push_str(&format!("total params: {}\n", self.param_len));
        s
    }

    /// Evaluate mean loss and accuracy over a whole dataset (in chunks).
    pub fn evaluate(&mut self, inputs: &[Tensor], labels: &[Vec<usize>]) -> (f32, f32) {
        assert_eq!(inputs.len(), labels.len());
        let mut ctx = Ctx::eval();
        let mut loss_sum = 0.0f64;
        let mut correct = 0usize;
        let mut total = 0usize;
        for (x, y) in inputs.iter().zip(labels) {
            let out = self.forward_loss(x, y, &mut ctx);
            loss_sum += f64::from(out.loss) * y.len() as f64;
            correct += out.correct;
            total += y.len();
        }
        if total == 0 {
            return (0.0, 0.0);
        }
        (
            // lint:allow(float-cast): deliberate narrowing — the epoch mean
            // is accumulated in f64 for order-stability, reported in f32.
            (loss_sum / total as f64) as f32,
            correct as f32 / total as f32,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Relu};
    use sasgd_tensor::SeedRng;

    fn mlp(seed: u64) -> Model {
        let mut rng = SeedRng::new(seed);
        Model::new(
            vec![
                Box::new(Linear::new(4, 8, &mut rng)),
                Box::new(Relu::new()),
                Box::new(Linear::new(8, 3, &mut rng)),
            ],
            &[4],
        )
    }

    #[test]
    fn param_roundtrip_through_flat_vector() {
        let m = mlp(1);
        assert_eq!(m.param_len(), 4 * 8 + 8 + 8 * 3 + 3);
        let v = m.param_vector();
        let mut m2 = mlp(999);
        assert_ne!(m2.param_vector(), v);
        m2.write_params(&v);
        assert_eq!(m2.param_vector(), v);
    }

    /// Separable toy data: class is encoded in which coordinate is largest.
    fn separable(n: usize, rng: &mut SeedRng) -> (Tensor, Vec<usize>) {
        let mut x = rng.normal_tensor(&[n, 4], 0.3);
        let labels: Vec<usize> = (0..n).map(|i| i % 3).collect();
        for (i, &l) in labels.iter().enumerate() {
            x.as_mut_slice()[i * 4 + l] += 2.0;
        }
        (x, labels)
    }

    #[test]
    fn training_reduces_loss() {
        let mut m = mlp(2);
        let mut rng = SeedRng::new(3);
        let (x, labels) = separable(16, &mut rng);
        let mut ctx = Ctx::train(SeedRng::new(4));
        let first = m.forward_loss(&x, &labels, &mut ctx);
        m.backward(&mut ctx);
        let mut last = first.loss;
        for _ in 0..100 {
            m.sgd_step(0.2);
            m.zero_grads();
            let o = m.forward_loss(&x, &labels, &mut ctx);
            m.backward(&mut ctx);
            last = o.loss;
        }
        assert!(last < first.loss * 0.5, "loss {} -> {last}", first.loss);
    }

    #[test]
    fn grad_vector_zeroing() {
        let mut m = mlp(5);
        let mut rng = SeedRng::new(6);
        let x = rng.normal_tensor(&[4, 4], 1.0);
        let mut ctx = Ctx::train(SeedRng::new(7));
        m.forward_loss(&x, &[0, 1, 2, 0], &mut ctx);
        m.backward(&mut ctx);
        assert!(m.grad_vector().iter().any(|&g| g != 0.0));
        m.zero_grads();
        assert!(m.grad_vector().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn macs_per_sample_counts_linear_layers() {
        let m = mlp(8);
        // 4*8 + 8 (relu elements) + 8*3
        assert_eq!(m.macs_per_sample(), 32 + 8 + 24);
    }

    #[test]
    fn evaluate_on_perfectly_learned_data() {
        let mut m = mlp(9);
        let mut rng = SeedRng::new(10);
        let (x, labels) = separable(30, &mut rng);
        let mut ctx = Ctx::train(SeedRng::new(11));
        for _ in 0..300 {
            m.forward_loss(&x, &labels, &mut ctx);
            m.backward(&mut ctx);
            m.sgd_step(0.2);
            m.zero_grads();
        }
        let (loss, acc) = m.evaluate(&[x], &[labels]);
        assert!(acc > 0.9, "separable data should be learned, acc={acc}");
        assert!(loss < 0.5);
    }

    #[test]
    #[should_panic(expected = "requires a training-mode forward_loss")]
    fn backward_without_forward_panics() {
        mlp(12).backward(&mut Ctx::train(SeedRng::new(0)));
    }

    #[test]
    fn summary_mentions_layers_and_total() {
        let m = mlp(13);
        let s = m.summary();
        assert!(s.contains("Linear"));
        assert!(s.contains("ReLU"));
        assert!(s.contains("total params: 67"), "summary:\n{s}");
    }
}

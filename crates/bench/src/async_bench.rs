//! The `async` repro target: accuracy vs modeled epoch time across the
//! staleness-adaptive strategy lattice, recorded as `BENCH_async.json`.
//!
//! One sweep per learner count (p = 4 and p = 8), all on the simulated
//! backend with per-learner speed jitter so stragglers cost real virtual
//! time: bulk-synchronous SASGD (the lockstep baseline every row is judged
//! against), Local SGD with a fixed and with an adaptive interval, DaSGD
//! delayed averaging, and Downpour with and without staleness-aware γ.
//! A row "meets target" when it reaches the sync baseline's final accuracy
//! within one point at a measurably lower modeled epoch time — the
//! lattice's reason to exist. One lattice point is run twice and compared
//! bitwise so `deterministic_replay` is measured, not asserted.

use sasgd_core::algorithms::GammaP;
use sasgd_core::report::ascii_table;
use sasgd_core::{train, Algorithm, History, TSchedule, TrainConfig};
use sasgd_simnet::JitterModel;

use crate::figures::Artifact;
use crate::scale::{cifar_workload, Scale};

/// Aggregation interval shared by every fixed-T lattice point.
const T: usize = 5;
/// Accuracy tolerance against the sync baseline (the ±1 % of the target).
const ACC_TOL: f32 = 0.01;
/// A row must beat the baseline's epoch time by at least this factor to
/// count as "measurably" faster (guards against float dust).
const TIME_MARGIN: f64 = 0.99;

/// The lattice at a given learner count. The first entry is the sync
/// SASGD baseline the other rows are measured against.
fn lattice(p: usize) -> Vec<Algorithm> {
    vec![
        Algorithm::Sasgd {
            p,
            t: T,
            gamma_p: GammaP::OverP,
            compression: None,
        },
        Algorithm::LocalSgd {
            p,
            schedule: TSchedule::Fixed { t: T },
        },
        Algorithm::LocalSgd {
            p,
            schedule: TSchedule::AdaptivePlateau {
                t0: T,
                t_max: 4 * T,
                patience: 2,
                rel_improve: 0.05,
            },
        },
        Algorithm::DelayedAvg { p, t: 2 },
        Algorithm::DelayedAvg { p, t: T },
        Algorithm::DelayedAvg { p, t: 2 * T },
        Algorithm::Downpour {
            p,
            t: T,
            staleness_gamma: false,
        },
        Algorithm::Downpour {
            p,
            t: T,
            staleness_gamma: true,
        },
    ]
}

/// One lattice point's outcome.
pub struct AsyncRow {
    /// Algorithm label.
    pub label: String,
    /// Learner count.
    pub p: usize,
    /// Final test accuracy.
    pub test_acc: f32,
    /// Modeled (virtual) seconds per collective epoch.
    pub epoch_seconds: f64,
    /// Virtual seconds spent communicating/waiting (learner 0, total).
    pub comm_seconds: f64,
    /// Aggregation rounds executed.
    pub sync_rounds: u64,
    /// Mean measured staleness (0 for synchronous points).
    pub staleness_mean: f64,
    /// Whether this row reaches the same-p sync baseline's accuracy
    /// (±`ACC_TOL`) at a measurably lower epoch time. `None` for the
    /// baseline itself.
    pub meets_target: Option<bool>,
}

fn row(algo: &Algorithm, h: &History, baseline: Option<(f32, f64)>) -> AsyncRow {
    let epoch_seconds = h.epoch_seconds();
    AsyncRow {
        label: algo.label(),
        p: algo.learners(),
        test_acc: h.final_test_acc(),
        epoch_seconds,
        comm_seconds: h.records.last().map_or(0.0, |r| r.comm_seconds),
        sync_rounds: h.sync_rounds,
        staleness_mean: h.staleness.as_ref().map_or(0.0, |s| s.mean),
        meets_target: baseline.map(|(acc, secs)| {
            h.final_test_acc() >= acc - ACC_TOL && epoch_seconds < secs * TIME_MARGIN
        }),
    }
}

/// Hand-rolled JSON (the workspace builds offline, with no serde).
pub fn to_json(rows: &[AsyncRow], deterministic_replay: bool, winners_p8: usize) -> String {
    let mut s = format!(
        "{{\n  \"t\": {T},\n  \"acc_tolerance\": {ACC_TOL},\n  \
         \"deterministic_replay\": {deterministic_replay},\n  \
         \"lattice_points_beating_sync_at_p8\": {winners_p8},\n  \"rows\": [\n"
    );
    for (i, r) in rows.iter().enumerate() {
        let target = match r.meets_target {
            None => "null".to_string(),
            Some(v) => v.to_string(),
        };
        s.push_str(&format!(
            "    {{\"label\": \"{}\", \"p\": {}, \"test_acc\": {:.4}, \
             \"epoch_seconds\": {:.4}, \"comm_seconds\": {:.4}, \
             \"sync_rounds\": {}, \"staleness_mean\": {:.3}, \
             \"meets_target\": {target}}}{}\n",
            r.label,
            r.p,
            r.test_acc,
            r.epoch_seconds,
            r.comm_seconds,
            r.sync_rounds,
            r.staleness_mean,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// The `async` repro target: the staleness lattice at p = 4 and p = 8,
/// emitted as a report plus `BENCH_async.json`.
pub fn async_lattice(scale: Scale, epochs: Option<usize>) -> Artifact {
    let w = cifar_workload(scale, epochs.or(Some(24)));
    // Run the lattice slightly cooler than the sync-tuned `gamma_hi`: the
    // staleness penalty of the delayed/asynchronous points scales with γ,
    // and the paper's Fig. 5-style comparison is about communication
    // schedules, not learning-rate headroom.
    let mut cfg = TrainConfig::new(w.epochs, w.batch, w.gamma_hi * 0.6, 0xA51C);
    // Per-learner speed spread: the straggler penalty the asynchronous
    // lattice points exist to avoid. Jitter shapes virtual time only, so
    // accuracies stay deterministic.
    cfg.jitter = JitterModel {
        cv: 0.2,
        learner_spread: 0.3,
    };

    let mut rows = Vec::new();
    for p in [4usize, 8] {
        let mut baseline: Option<(f32, f64)> = None;
        for algo in lattice(p) {
            let mut f = &*w.factory;
            let h = train(&mut f, &w.train, &w.test, &algo, &cfg);
            rows.push(row(&algo, &h, baseline));
            if baseline.is_none() {
                baseline = Some((h.final_test_acc(), h.epoch_seconds()));
            }
        }
    }

    // Replay one event-driven lattice point and compare bitwise.
    let replay_algo = Algorithm::DelayedAvg { p: 8, t: T };
    let mut f1 = &*w.factory;
    let first = train(&mut f1, &w.train, &w.test, &replay_algo, &cfg);
    let mut f2 = &*w.factory;
    let second = train(&mut f2, &w.train, &w.test, &replay_algo, &cfg);
    let deterministic_replay =
        first.final_params.is_some() && first.final_params == second.final_params;

    let winners_p8 = rows
        .iter()
        .filter(|r| r.p == 8 && r.meets_target == Some(true))
        .count();

    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                format!("{:.4}", r.test_acc),
                format!("{:.3}", r.epoch_seconds),
                format!("{:.3}", r.comm_seconds),
                r.sync_rounds.to_string(),
                format!("{:.2}", r.staleness_mean),
                r.meets_target.map_or("baseline".into(), |v| v.to_string()),
            ]
        })
        .collect();
    let table = ascii_table(
        &[
            "lattice point",
            "test acc",
            "epoch s (modeled)",
            "comm s",
            "rounds",
            "mean τ",
            "beats sync",
        ],
        &table_rows,
    );
    let report = format!(
        "Staleness lattice — simulated backend, T = {T}, jitter cv 0.2 / \
         spread 0.3, {} epochs\n\n{table}\n\
         \"beats sync\" = reaches the same-p synchronous SASGD accuracy\n\
         (±{ACC_TOL}) at a measurably lower modeled epoch time. At p = 8,\n\
         {winners_p8} lattice points beat the sync baseline. Event-driven\n\
         replay of DaSGD(p=8) is bitwise deterministic: {deterministic_replay}.\n",
        w.epochs
    );
    Artifact {
        name: "async".into(),
        report,
        csvs: vec![(
            "BENCH_async.json".into(),
            to_json(&rows, deterministic_replay, winners_p8),
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_and_flags() {
        let rows = vec![
            AsyncRow {
                label: "SASGD(p=8,T=5)".into(),
                p: 8,
                test_acc: 0.8,
                epoch_seconds: 2.0,
                comm_seconds: 1.0,
                sync_rounds: 10,
                staleness_mean: 5.0,
                meets_target: None,
            },
            AsyncRow {
                label: "DaSGD(p=8,T=5)".into(),
                p: 8,
                test_acc: 0.795,
                epoch_seconds: 1.5,
                comm_seconds: 0.2,
                sync_rounds: 10,
                staleness_mean: 1.0,
                meets_target: Some(true),
            },
        ];
        let j = to_json(&rows, true, 1);
        assert!(j.contains("\"deterministic_replay\": true"));
        assert!(j.contains("\"lattice_points_beating_sync_at_p8\": 1"));
        assert!(j.contains("\"meets_target\": null"));
        assert!(j.contains("\"meets_target\": true"));
    }
}

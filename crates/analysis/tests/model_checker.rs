//! Negative controls for the DPOR model checker: every detector must
//! catch its implanted bug — with a replayable witness — and the clean
//! twins must stay clean. These are the tests that prove the checker can
//! see the classes of bug it exists for; `repro analyze --model` runs the
//! same scenarios as part of the CI gate.

use sasgd_analysis::dpor::{
    explore_exhaustive, model_scenarios, replay_decisions, sc_bad_reduce, sc_lost_update,
    sc_recv_cycle, sc_rmw_clean,
};
use sasgd_analysis::model::parse_witness;

/// The implanted arrival-order reduce: the root's wildcard receive can
/// match concurrent, bitwise-different children. The checker must flag a
/// happens-before race AND hand back a decision string that replays to
/// the same race deterministically.
#[test]
fn implanted_bad_reduce_yields_replayable_racy_witness() {
    let sc = sc_bad_reduce();
    let r = explore_exhaustive(&sc);
    assert!(r.exhausted, "{r:?}");
    assert!(r.races > 0, "race not detected: {r:?}");
    let witness = r.witness.as_deref().expect("racy witness");
    let prefix = parse_witness(witness).expect("witness parses");
    assert!(!prefix.is_empty(), "empty witness {witness:?}");
    // Minimality in the useful sense: the witness is the decision prefix
    // up to the racy delivery, not a full-execution trace.
    assert!(
        prefix.len() <= 4,
        "witness {witness:?} is not a minimal prefix"
    );
    let rec = replay_decisions(&sc, &prefix);
    assert!(
        !rec.races.is_empty(),
        "replaying {witness:?} did not reproduce the race"
    );
}

/// The implanted PS lost update (load, then blind store) must be caught by
/// the vector-clock check, and the read-modify-write twin of the same
/// access pattern must stay clean — the detector keys on the blind write,
/// not on mere concurrency.
#[test]
fn implanted_lost_update_caught_and_rmw_twin_clean() {
    let lost = explore_exhaustive(&sc_lost_update());
    assert!(lost.lost_updates > 0, "lost update not detected: {lost:?}");
    assert!(
        lost.witness.as_deref().is_some_and(|w| !w.is_empty()),
        "no witness for the lost update: {lost:?}"
    );
    let rmw = explore_exhaustive(&sc_rmw_clean());
    assert_eq!(rmw.lost_updates, 0, "{rmw:?}");
    assert_eq!(rmw.races, 0, "{rmw:?}");
    assert_eq!(rmw.cycles, 0, "{rmw:?}");
    assert!(rmw.exhausted, "{rmw:?}");
}

/// The implanted recv cycle must be reported *structurally* from the
/// wait-for graph — naming each blocked `(src, tag)` edge — not via a
/// wall-clock watchdog.
#[test]
fn implanted_recv_cycle_reported_from_wait_for_graph() {
    let r = explore_exhaustive(&sc_recv_cycle());
    assert!(r.cycles > 0, "cycle not detected: {r:?}");
    let report = r.reports.first().expect("cycle report");
    assert!(report.contains("wait-for cycle"), "{report}");
    assert!(report.contains("blocked on"), "{report}");
    assert!(report.contains("tag 99"), "{report}");
}

/// Spot-check the real corpus: the shipped collectives are clean over the
/// full trace space, and sleep-set DPOR actually prunes (collectives have
/// exactly one Mazurkiewicz trace, so everything beyond the first
/// execution must be pruned, not explored).
#[test]
fn shipped_collectives_are_clean_and_dpor_prunes() {
    let corpus = model_scenarios();
    for name in ["allreduce_tree_p3", "allreduce_ring"] {
        let sc = corpus
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("{name} missing from corpus"));
        let r = explore_exhaustive(sc);
        assert!(r.ok(), "{name}: {r:?}");
        assert!(r.exhausted, "{name}: {r:?}");
        assert_eq!(r.explored, 1, "{name} has >1 trace: {r:?}");
        assert!(r.pruned > 0, "{name}: DPOR pruned nothing: {r:?}");
    }
}

//! Hierarchical SASGD — a two-level extension of Algorithm 1.
//!
//! The paper's 16-learner runs place two learners per GPU; its conclusion
//! expects GPU counts to keep growing. At that point one flat allreduce
//! over all learners wastes the locality: learners sharing a device (or a
//! PCIe switch) can aggregate almost for free. This module implements the
//! natural two-level scheme:
//!
//! * **level 1** — every `t_local` minibatches, each *group* of
//!   `per_group` learners aggregates its gradient sums over the fast local
//!   fabric and applies the global step to a group-local parameter copy
//!   (exactly Algorithm 1 run per group);
//! * **level 2** — every `t_global` level-1 rounds, the group parameter
//!   copies are averaged across groups over the slower global fabric
//!   (periodic model averaging, which §III shows is what Algorithm 1
//!   simulates).
//!
//! With `groups = 1` this reduces to flat SASGD with `T = t_local`
//! (verified by a test); with `t_global = 1` it is flat SASGD at twice the
//! granularity. The interesting regime is `t_global > 1`: global traffic
//! drops by `t_global×` while staleness across groups stays explicitly
//! bounded by `t_local · t_global`.

use sasgd_data::Dataset;
use sasgd_nn::Model;

use crate::algorithms::GammaP;
use crate::engine::{simulated, AggregationStrategy};
use crate::history::{History, StalenessStats};
use crate::trainer::{Learner, TrainConfig};

/// Speed advantage of the intra-group fabric over the global GPU fabric
/// (learners in a group share a device or PCIe switch).
pub(crate) const LOCAL_FABRIC_SPEEDUP: f64 = 8.0;

/// Two-level SASGD over `groups × per_group` learners.
pub(crate) struct HierarchicalStrategy {
    groups: usize,
    per_group: usize,
    t_local: usize,
    t_global: usize,
    gamma_p: GammaP,
    /// One parameter copy per group (level-1 state).
    group_x: Vec<Vec<f32>>,
    /// Level-1 rounds since the last level-2 averaging.
    local_rounds: usize,
    local_ar: f64,
    global_ar: f64,
}

impl HierarchicalStrategy {
    pub(crate) fn new(
        groups: usize,
        per_group: usize,
        t_local: usize,
        t_global: usize,
        gamma_p: GammaP,
    ) -> Self {
        assert!(groups >= 1 && per_group >= 1, "need at least one learner");
        assert!(t_local >= 1 && t_global >= 1, "intervals must be positive");
        HierarchicalStrategy {
            groups,
            per_group,
            t_local,
            t_global,
            gamma_p,
            group_x: Vec::new(),
            local_rounds: 0,
            local_ar: 0.0,
            global_ar: 0.0,
        }
    }
}

impl AggregationStrategy for HierarchicalStrategy {
    fn label(&self) -> String {
        format!(
            "H-SASGD(g={}x{},Tl={},Tg={})",
            self.groups, self.per_group, self.t_local, self.t_global
        )
    }

    fn p(&self) -> usize {
        self.groups * self.per_group
    }

    fn sync_interval(&self) -> usize {
        self.t_local
    }

    fn history_interval(&self) -> usize {
        self.t_local * self.t_global
    }

    fn setup(&mut self, _factory: &mut dyn FnMut() -> Model, x0: &[f32], cfg: &TrainConfig) -> f64 {
        let m = x0.len();
        self.group_x = (0..self.groups).map(|_| x0.to_vec()).collect();
        self.local_ar = cfg.cost.allreduce_tree(m, self.per_group).seconds / LOCAL_FABRIC_SPEEDUP;
        self.global_ar = cfg.cost.allreduce_tree(m, self.groups).seconds;
        cfg.cost.broadcast(m, self.p())
    }

    fn sync(&mut self, learners: &mut [Learner], gamma_now: f32) {
        let gp = self.gamma_p.resolve(gamma_now, self.per_group);
        level1(
            learners,
            &mut self.group_x,
            self.groups,
            self.per_group,
            gp,
            self.local_ar,
        );
        self.local_rounds += 1;
        if self.local_rounds == self.t_global {
            level2(learners, &mut self.group_x, self.per_group, self.global_ar);
            self.local_rounds = 0;
        }
    }

    fn staleness(&self, syncs: u64) -> Option<StalenessStats> {
        let bound = (self.t_local * self.t_global) as f64;
        Some(StalenessStats {
            mean: bound,
            max: bound as u64,
            pushes: syncs,
        })
    }
}

/// Level-1: per-group barrier + allreduce of `gs`, group step, resync.
fn level1(
    learners: &mut [Learner],
    group_x: &mut [Vec<f32>],
    groups: usize,
    per_group: usize,
    gamma_p: f32,
    local_ar_seconds: f64,
) {
    for g in 0..groups {
        let members = &mut learners[g * per_group..(g + 1) * per_group];
        let t_max = members.iter().map(|l| l.clock).fold(0.0_f64, f64::max);
        // Binomial-tree-order sum of the members' gs.
        let bufs: Vec<Vec<f32>> = members.iter().map(|l| l.gs.clone()).collect();
        let total = crate::engine::tree_reduce(bufs);
        for (xi, &gv) in group_x[g].iter_mut().zip(&total) {
            *xi -= gamma_p * gv;
        }
        for l in members.iter_mut() {
            let wait = t_max - l.clock;
            l.charge_comm(wait + local_ar_seconds);
            l.model.write_params(&group_x[g]);
            l.gs.iter_mut().for_each(|gv| *gv = 0.0);
        }
    }
}

/// Level-2: global barrier + model averaging across the group copies.
fn level2(
    learners: &mut [Learner],
    group_x: &mut [Vec<f32>],
    per_group: usize,
    global_ar_seconds: f64,
) {
    let groups = group_x.len();
    let t_max = learners.iter().map(|l| l.clock).fold(0.0_f64, f64::max);
    let m = group_x[0].len();
    let mut avg = vec![0.0f32; m];
    for gx in group_x.iter() {
        for (a, &b) in avg.iter_mut().zip(gx) {
            *a += b / groups as f32;
        }
    }
    for gx in group_x.iter_mut() {
        gx.copy_from_slice(&avg);
    }
    for (id, l) in learners.iter_mut().enumerate() {
        let wait = t_max - l.clock;
        l.charge_comm(wait + global_ar_seconds);
        l.model.write_params(&group_x[id / per_group]);
    }
}

/// Run hierarchical SASGD with `groups × per_group` learners.
#[allow(clippy::too_many_arguments)] // mirrors the algorithm's parameter set
pub(crate) fn run(
    factory: &mut dyn FnMut() -> Model,
    train_set: &Dataset,
    test_set: &Dataset,
    cfg: &TrainConfig,
    groups: usize,
    per_group: usize,
    t_local: usize,
    t_global: usize,
    gamma_p: GammaP,
) -> History {
    let mut s = HierarchicalStrategy::new(groups, per_group, t_local, t_global, gamma_p);
    simulated::run_auto(&mut s, factory, train_set, test_set, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sasgd_data::cifar_like::{generate, CifarLikeConfig};
    use sasgd_nn::models;
    use sasgd_simnet::JitterModel;
    use sasgd_tensor::SeedRng;

    fn quiet_cfg(epochs: usize, gamma: f32) -> TrainConfig {
        let mut cfg = TrainConfig::new(epochs, 8, gamma, 42);
        cfg.jitter = JitterModel::none();
        cfg
    }

    #[test]
    fn single_group_equals_flat_sasgd() {
        let (train, test) = generate(&CifarLikeConfig::tiny(128, 32, 3));
        let cfg = quiet_cfg(3, 0.05);
        let mut f1 = || models::tiny_cnn(3, &mut SeedRng::new(5));
        let flat =
            crate::algorithms::sasgd::run(&mut f1, &train, &test, &cfg, 4, 2, GammaP::OverP, None);
        let mut f2 = || models::tiny_cnn(3, &mut SeedRng::new(5));
        let hier = run(&mut f2, &train, &test, &cfg, 1, 4, 2, 3, GammaP::OverP);
        for (a, b) in flat.records.iter().zip(&hier.records) {
            assert_eq!(
                a.train_loss, b.train_loss,
                "one group must equal flat SASGD"
            );
            assert_eq!(a.test_acc, b.test_acc);
        }
    }

    #[test]
    fn hierarchical_learns_and_spends_less_on_global_comm() {
        let (train, test) = generate(&CifarLikeConfig::tiny(160, 60, 3));
        let cfg = quiet_cfg(8, 0.05);
        // Flat SASGD at T=2 vs hierarchy: local sync every 2 steps, global
        // every 4 local rounds.
        let mut f1 = || models::tiny_cnn(3, &mut SeedRng::new(7));
        let flat =
            crate::algorithms::sasgd::run(&mut f1, &train, &test, &cfg, 4, 2, GammaP::OverP, None);
        let mut f2 = || models::tiny_cnn(3, &mut SeedRng::new(7));
        let hier = run(&mut f2, &train, &test, &cfg, 2, 2, 2, 4, GammaP::OverP);
        assert!(
            hier.final_test_acc() > 0.5,
            "acc {:.2}",
            hier.final_test_acc()
        );
        // Accuracy should be in the same league as flat SASGD...
        assert!(
            hier.final_test_acc() > flat.final_test_acc() - 0.2,
            "hier {:.2} vs flat {:.2}",
            hier.final_test_acc(),
            flat.final_test_acc()
        );
        // ...while the observed learner communicates less (cheap local
        // rounds replace most global ones).
        let flat_comm = flat.records.last().expect("r").comm_seconds;
        let hier_comm = hier.records.last().expect("r").comm_seconds;
        assert!(
            hier_comm < flat_comm,
            "hier comm {hier_comm} vs flat {flat_comm}"
        );
    }

    #[test]
    fn staleness_bound_is_product_of_intervals() {
        let (train, test) = generate(&CifarLikeConfig::tiny(96, 24, 2));
        let cfg = quiet_cfg(2, 0.02);
        let mut f = || models::tiny_cnn(2, &mut SeedRng::new(1));
        let h = run(&mut f, &train, &test, &cfg, 2, 2, 3, 2, GammaP::OverP);
        let st = h.staleness.expect("hierarchical records staleness");
        assert_eq!(st.max, 6, "bound = t_local × t_global");
    }

    #[test]
    #[should_panic(expected = "intervals must be positive")]
    fn zero_interval_rejected() {
        let (train, test) = generate(&CifarLikeConfig::tiny(32, 8, 2));
        let cfg = quiet_cfg(1, 0.02);
        let mut f = || models::tiny_cnn(2, &mut SeedRng::new(1));
        run(&mut f, &train, &test, &cfg, 2, 2, 0, 1, GammaP::OverP);
    }
}

//! A counting global allocator for the `hotpath` target: wraps the system
//! allocator and keeps running totals of heap operations, so the harness
//! can report per-step steady-state allocation counts.
//!
//! The `repro` binary installs [`CountingAllocator`] as its
//! `#[global_allocator]`; library tests run without it, in which case the
//! counters simply never move (the harness reports zeros and skips ratio
//! claims).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// System allocator plus relaxed atomic counters. Counting is on every
/// path (alloc, zeroed, realloc) so `Vec` growth is visible.
pub struct CountingAllocator;

// SAFETY: every method forwards verbatim to the `System` allocator after
// bumping relaxed counters; `GlobalAlloc`'s contract is upheld exactly as
// `System` upholds it (no layout is altered, no pointer is fabricated).
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: caller upholds `GlobalAlloc::alloc`'s contract (valid layout).
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        // SAFETY: same layout the caller handed us, forwarded unchanged.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller upholds `GlobalAlloc::alloc_zeroed`'s contract.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        // SAFETY: same layout the caller handed us, forwarded unchanged.
        unsafe { System.alloc_zeroed(layout) }
    }

    // SAFETY: caller upholds `GlobalAlloc::realloc`'s contract (`ptr` from
    // this allocator with `layout`, `new_size` nonzero and in range).
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        // SAFETY: `ptr` came from `System` (all our paths forward to it),
        // with the same `layout`; arguments pass through unchanged.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    // SAFETY: caller upholds `GlobalAlloc::dealloc`'s contract.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was allocated by `System` via this wrapper with
        // this exact `layout`.
        unsafe { System.dealloc(ptr, layout) }
    }
}

/// Zero both counters.
pub fn reset() {
    ALLOCS.store(0, Ordering::Relaxed);
    BYTES.store(0, Ordering::Relaxed);
}

/// Heap operations since the last [`reset`].
pub fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Bytes requested since the last [`reset`].
pub fn bytes() -> u64 {
    BYTES.load(Ordering::Relaxed)
}

/// Whether the counting allocator is actually installed in this binary
/// (true when a fresh allocation moves the counter).
pub fn counting() -> bool {
    let before = allocs();
    let v = std::hint::black_box(vec![0u8; 1024]);
    drop(v);
    allocs() != before
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_reset_and_report() {
        reset();
        assert_eq!(allocs(), 0);
        assert_eq!(bytes(), 0);
        // Not installed as the test harness's global allocator, so the
        // probe must answer consistently rather than panic.
        let _ = counting();
    }
}

//! Learning-rate schedules.
//!
//! The paper trains at constant γ and notes (§II-B) that with a constant
//! rate "there is a limit on how close the algorithm can reach to the
//! optimum without lowering the learning rate". These schedules let the
//! experiments probe exactly that: decay recovers the lost accuracy floor,
//! warmup stabilizes large effective batches (large `p·T`).

/// How the local learning rate evolves over collective epochs.
///
/// ```
/// use sasgd_core::LrSchedule;
/// let s = LrSchedule::StepDecay { every: 10, factor: 0.5 };
/// assert_eq!(s.at(0.1, 0.0), 0.1);
/// assert!((s.at(0.1, 10.0) - 0.05).abs() < 1e-8);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LrSchedule {
    /// The paper's setting: γ fixed for the whole run.
    Constant,
    /// Multiply by `factor` every `every` epochs.
    StepDecay {
        /// Epochs between decays.
        every: usize,
        /// Multiplier applied at each decay (0 < factor < 1).
        factor: f32,
    },
    /// `γ / (1 + rate·epoch)` — the classic Robbins–Monro-style decay the
    /// asymptotic theory assumes.
    InvEpoch {
        /// Decay speed.
        rate: f32,
    },
    /// Linear ramp from `γ·start_frac` to γ over `epochs` epochs, constant
    /// afterwards.
    Warmup {
        /// Ramp length in epochs.
        epochs: usize,
        /// Starting fraction of γ (0 ≤ start_frac ≤ 1).
        start_frac: f32,
    },
}

impl LrSchedule {
    /// The learning rate at (fractional) `epoch`, given the base rate.
    pub fn at(&self, base: f32, epoch: f64) -> f32 {
        let epoch = epoch.max(0.0);
        match *self {
            LrSchedule::Constant => base,
            LrSchedule::StepDecay { every, factor } => {
                assert!(every > 0, "decay interval must be positive");
                // lint:allow(float-cast): floor of a small nonnegative
                // epoch count — exact for any realistic training length.
                let steps = (epoch / every as f64).floor() as i32;
                base * factor.powi(steps)
            }
            LrSchedule::InvEpoch { rate } => base / (1.0 + rate * epoch as f32),
            LrSchedule::Warmup { epochs, start_frac } => {
                if epochs == 0 || epoch >= epochs as f64 {
                    base
                } else {
                    let frac =
                        start_frac as f64 + (1.0 - start_frac as f64) * epoch / epochs as f64;
                    base * frac as f32
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_flat() {
        let s = LrSchedule::Constant;
        assert_eq!(s.at(0.1, 0.0), 0.1);
        assert_eq!(s.at(0.1, 99.0), 0.1);
    }

    #[test]
    fn step_decay_halves_on_schedule() {
        let s = LrSchedule::StepDecay {
            every: 10,
            factor: 0.5,
        };
        assert_eq!(s.at(0.1, 0.0), 0.1);
        assert_eq!(s.at(0.1, 9.9), 0.1);
        assert!((s.at(0.1, 10.0) - 0.05).abs() < 1e-8);
        assert!((s.at(0.1, 25.0) - 0.025).abs() < 1e-8);
    }

    #[test]
    fn inv_epoch_decays_hyperbolically() {
        let s = LrSchedule::InvEpoch { rate: 1.0 };
        assert_eq!(s.at(0.2, 0.0), 0.2);
        assert!((s.at(0.2, 1.0) - 0.1).abs() < 1e-8);
        assert!((s.at(0.2, 3.0) - 0.05).abs() < 1e-8);
    }

    #[test]
    fn warmup_ramps_then_holds() {
        let s = LrSchedule::Warmup {
            epochs: 4,
            start_frac: 0.25,
        };
        assert!((s.at(0.1, 0.0) - 0.025).abs() < 1e-8);
        let mid = s.at(0.1, 2.0);
        assert!(mid > 0.025 && mid < 0.1);
        assert_eq!(s.at(0.1, 4.0), 0.1);
        assert_eq!(s.at(0.1, 50.0), 0.1);
    }

    #[test]
    fn zero_length_warmup_is_constant() {
        let s = LrSchedule::Warmup {
            epochs: 0,
            start_frac: 0.5,
        };
        assert_eq!(s.at(0.1, 0.0), 0.1);
    }

    #[test]
    fn negative_epoch_clamped() {
        let s = LrSchedule::InvEpoch { rate: 1.0 };
        assert_eq!(s.at(0.1, -5.0), 0.1);
    }
}

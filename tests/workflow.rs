//! Workflow-level integration: checkpoint/resume, schedules recovering the
//! constant-rate accuracy floor, deeper architectures, and sweeps.

use sasgd::core::algorithms::GammaP;
use sasgd::core::sweep::{run_sweep, summarize, SweepGrid};
use sasgd::core::{train, Algorithm, LrSchedule, TrainConfig};
use sasgd::data::cifar_like::{generate, CifarLikeConfig};
use sasgd::nn::io::{load_checkpoint, save_checkpoint};
use sasgd::nn::models;
use sasgd::simnet::JitterModel;
use sasgd::tensor::SeedRng;

fn cifar(n_train: usize, n_test: usize) -> (sasgd::data::Dataset, sasgd::data::Dataset) {
    generate(&CifarLikeConfig::tiny(n_train, n_test, 3))
}

#[test]
fn checkpoint_resume_reaches_same_quality_as_uninterrupted() {
    // Train 6 epochs straight vs 3 epochs, checkpoint, reload into a fresh
    // replica, train 3 more. Trajectories differ (fresh batch RNG after
    // resume) but quality must match.
    let (train_set, test_set) = cifar(160, 60);
    let mut cfg = TrainConfig::new(6, 8, 0.05, 42);
    cfg.jitter = JitterModel::none();
    let algo = Algorithm::Sasgd {
        p: 2,
        t: 2,
        gamma_p: GammaP::OverP,
        compression: None,
    };

    let mut f = || models::tiny_cnn(3, &mut SeedRng::new(7));
    let straight = train(&mut f, &train_set, &test_set, &algo, &cfg);

    // Phase 1: 3 epochs, then persist learner-0's parameters. The trainer
    // returns histories, not models, so re-run phase 1 through a tracked
    // model: sequential API usage a real user would follow.
    let ckpt = std::env::temp_dir().join(format!("sasgd_resume_{}", std::process::id()));
    let mut tracked = models::tiny_cnn(3, &mut SeedRng::new(7));
    {
        // Run phase 1 manually with the public Model API (mirrors the
        // quickstart loop).
        let shard = &train_set.shards(1)[0];
        let mut rng = SeedRng::new(42);
        let mut ctx = sasgd::nn::Ctx::train(SeedRng::new(1));
        for _ in 0..3 {
            for idx in shard.epoch_iter(8, &mut rng) {
                let (x, y) = train_set.batch(&idx);
                tracked.forward_loss(&x, &y, &mut ctx);
                tracked.backward(&mut ctx);
                tracked.sgd_step(0.05);
                tracked.zero_grads();
            }
        }
        save_checkpoint(&tracked, &ckpt).expect("save");
    }
    let mut resumed = models::tiny_cnn(3, &mut SeedRng::new(999));
    load_checkpoint(&mut resumed, &ckpt).expect("load");
    assert_eq!(resumed.param_vector(), tracked.param_vector());
    // Phase 2 continues from the checkpoint.
    {
        let shard = &train_set.shards(1)[0];
        let mut rng = SeedRng::new(43);
        let mut ctx = sasgd::nn::Ctx::train(SeedRng::new(2));
        for _ in 0..3 {
            for idx in shard.epoch_iter(8, &mut rng) {
                let (x, y) = train_set.batch(&idx);
                resumed.forward_loss(&x, &y, &mut ctx);
                resumed.backward(&mut ctx);
                resumed.sgd_step(0.05);
                resumed.zero_grads();
            }
        }
    }
    let (xs, ys) = test_set.eval_batches(32);
    let (_, resumed_acc) = resumed.evaluate(&xs, &ys);
    assert!(
        resumed_acc > straight.final_test_acc() - 0.2,
        "resumed {resumed_acc:.2} vs straight {:.2}",
        straight.final_test_acc()
    );
    let _ = std::fs::remove_file(&ckpt);
}

#[test]
fn decay_schedule_beats_constant_on_final_loss() {
    // §II-B: with a constant rate "there is a limit on how close the
    // algorithm can reach to the optimum without lowering the learning
    // rate". Pick a γ deliberately too hot for this problem: the constant
    // run bounces around its noise floor while the decayed run settles
    // below it.
    // Label noise makes interpolation impossible, so the gradient noise
    // never vanishes and the constant-γ noise floor is real.
    let (clean_train, test_set) = generate(&CifarLikeConfig::tiny(160, 40, 3));
    let train_set = {
        let idx: Vec<usize> = (0..clean_train.len()).collect();
        let (x, mut y) = clean_train.batch(&idx);
        for (i, label) in y.iter_mut().enumerate() {
            if i % 3 == 0 {
                *label = (*label + 1) % 3;
            }
        }
        sasgd::data::Dataset::new(x.into_vec(), y, clean_train.sample_dims(), 3)
    };
    let algo = Algorithm::Sequential;
    let run_with = |schedule: LrSchedule| {
        let mut cfg = TrainConfig::new(20, 8, 0.3, 21);
        cfg.jitter = JitterModel::none();
        cfg.schedule = schedule;
        let mut f = || models::tiny_cnn(3, &mut SeedRng::new(5));
        train(&mut f, &train_set, &test_set, &algo, &cfg)
    };
    // Compare the mean of the last few epochs so one lucky/unlucky batch
    // order doesn't decide the verdict.
    let tail_loss = |h: &sasgd::core::History| -> f32 {
        let tail: Vec<f32> = h
            .records
            .iter()
            .rev()
            .take(4)
            .map(|r| r.train_loss)
            .collect();
        tail.iter().sum::<f32>() / tail.len() as f32
    };
    let constant = run_with(LrSchedule::Constant);
    let decayed = run_with(LrSchedule::StepDecay {
        every: 8,
        factor: 0.25,
    });
    let lc = tail_loss(&constant);
    let ld = tail_loss(&decayed);
    assert!(
        ld < lc,
        "lowering γ must beat the too-hot constant-rate floor: {ld} vs {lc}"
    );
}

#[test]
fn alexnet_style_network_trains_with_sasgd() {
    // The §II claim that the approach works for deeper networks too.
    let (train_set, test_set) = cifar(96, 48);
    // alexnet_32 takes 32×32 inputs; regenerate matching data.
    let (train_set, test_set) = {
        let _ = (train_set, test_set);
        generate(&CifarLikeConfig {
            noise: 0.4,
            ..CifarLikeConfig::scaled(96, 48)
        })
    };
    let mut cfg = TrainConfig::new(6, 8, 0.02, 42);
    cfg.jitter = JitterModel::none();
    cfg.eval_cap = 96;
    let mut f = || models::alexnet_32(8, 10, &mut SeedRng::new(7));
    let algo = Algorithm::Sasgd {
        p: 2,
        t: 2,
        gamma_p: GammaP::OverP,
        compression: None,
    };
    let h = train(&mut f, &train_set, &test_set, &algo, &cfg);
    let first = h.records.first().expect("r").train_loss;
    let last = h.records.last().expect("r").train_loss;
    assert!(
        last < first,
        "deeper net must make progress: {first} -> {last}"
    );
}

#[test]
fn sweep_reproduces_figure_style_grid() {
    let (train_set, test_set) = cifar(96, 24);
    let mut cfg = TrainConfig::new(2, 8, 0.05, 42);
    cfg.jitter = JitterModel::none();
    let grid = SweepGrid::over_p(
        &[1, 2, 4],
        |p| Algorithm::Sasgd {
            p,
            t: 2,
            gamma_p: GammaP::OverP,
            compression: None,
        },
        cfg,
    );
    let factory = || models::tiny_cnn(3, &mut SeedRng::new(7));
    let results = run_sweep(&grid, &factory, &train_set, &test_set, 2);
    let rows = summarize(&results);
    assert_eq!(rows.len(), 3);
    assert!(rows.iter().all(|(_, acc, _)| *acc > 0.0));
    assert!(rows[0].0.contains("p=1"));
    assert!(rows[2].0.contains("p=4"));
}

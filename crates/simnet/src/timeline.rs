//! Execution timelines: what each learner is doing, second by second.
//!
//! Generates per-learner phase traces (compute / barrier wait / transfer)
//! for the bulk-synchronous and parameter-server execution patterns from
//! the same cost and jitter models the trainer uses, and renders them as
//! ASCII Gantt charts. This makes the paper's §II claim — "communication
//! includes sending ... waiting for the server ... receiving" — visible:
//! SASGD's idle time is the barrier (stragglers), ASGD's is the server
//! round trip.

use sasgd_tensor::SeedRng;

use crate::cost::CostModel;
use crate::jitter::JitterModel;

/// What a learner is doing during one segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Minibatch computation.
    Compute,
    /// Waiting at a synchronous barrier for slower learners.
    Wait,
    /// Moving bytes (allreduce rounds or a server round trip).
    Transfer,
}

impl Phase {
    fn glyph(self) -> char {
        match self {
            Phase::Compute => '#',
            Phase::Wait => '.',
            Phase::Transfer => '~',
        }
    }
}

/// One learner's trace: contiguous `(phase, start, end)` segments.
#[derive(Clone, Debug, Default)]
pub struct LearnerTrace {
    /// Segments in time order.
    pub segments: Vec<(Phase, f64, f64)>,
}

impl LearnerTrace {
    fn push(&mut self, phase: Phase, start: f64, end: f64) {
        if end > start {
            self.segments.push((phase, start, end));
        }
    }

    /// Total seconds spent in `phase`.
    pub fn total(&self, phase: Phase) -> f64 {
        self.segments
            .iter()
            .filter(|(p, _, _)| *p == phase)
            .map(|(_, s, e)| e - s)
            .sum()
    }

    /// End time of the trace.
    pub fn end(&self) -> f64 {
        self.segments.last().map_or(0.0, |&(_, _, e)| e)
    }
}

/// Parameters of a timeline simulation.
#[derive(Clone, Debug)]
pub struct TimelineSpec {
    /// Learners.
    pub p: usize,
    /// Aggregation interval (minibatches).
    pub t: usize,
    /// Aggregation rounds to trace.
    pub rounds: usize,
    /// Model parameters.
    pub m: usize,
    /// Forward MACs per sample.
    pub macs_per_sample: u64,
    /// Minibatch size.
    pub batch: usize,
    /// Seed for the jitter draws.
    pub seed: u64,
}

/// Trace SASGD: per round, each learner computes `t` jittered minibatches,
/// waits at the barrier, then pays the allreduce.
pub fn trace_sasgd(
    spec: &TimelineSpec,
    cost: &CostModel,
    jitter: &JitterModel,
) -> Vec<LearnerTrace> {
    let step = cost.minibatch_compute(spec.macs_per_sample, spec.batch, spec.p);
    let ar = cost.allreduce_tree(spec.m, spec.p).seconds;
    let mut rngs: Vec<SeedRng> = (0..spec.p)
        .map(|id| SeedRng::new(spec.seed).split(0x71 + id as u64))
        .collect();
    let speeds: Vec<f64> = (0..spec.p)
        .map(|id| jitter.learner_factor(id, spec.seed))
        .collect();
    let mut traces = vec![LearnerTrace::default(); spec.p];
    let mut clocks = vec![0.0f64; spec.p];
    for _ in 0..spec.rounds {
        for (i, trace) in traces.iter_mut().enumerate() {
            let mut t0 = clocks[i];
            for _ in 0..spec.t {
                let dur = step * speeds[i] * jitter.minibatch_factor(&mut rngs[i]);
                trace.push(Phase::Compute, t0, t0 + dur);
                t0 += dur;
            }
            clocks[i] = t0;
        }
        let barrier = clocks.iter().copied().fold(0.0_f64, f64::max);
        for (i, trace) in traces.iter_mut().enumerate() {
            trace.push(Phase::Wait, clocks[i], barrier);
            trace.push(Phase::Transfer, barrier, barrier + ar);
            clocks[i] = barrier + ar;
        }
    }
    traces
}

/// Trace Downpour: each learner independently alternates compute blocks
/// and server round trips — no barrier, but every round pays the (shared,
/// contended) host channel.
pub fn trace_downpour(
    spec: &TimelineSpec,
    cost: &CostModel,
    jitter: &JitterModel,
) -> Vec<LearnerTrace> {
    let step = cost.minibatch_compute(spec.macs_per_sample, spec.batch, spec.p);
    let ps = cost.ps_roundtrip(spec.m, spec.p).seconds;
    let mut rngs: Vec<SeedRng> = (0..spec.p)
        .map(|id| SeedRng::new(spec.seed).split(0xD0 + id as u64))
        .collect();
    let speeds: Vec<f64> = (0..spec.p)
        .map(|id| jitter.learner_factor(id, spec.seed))
        .collect();
    let mut traces = vec![LearnerTrace::default(); spec.p];
    for (i, trace) in traces.iter_mut().enumerate() {
        let mut t0 = 0.0f64;
        for _ in 0..spec.rounds {
            for _ in 0..spec.t {
                let dur = step * speeds[i] * jitter.minibatch_factor(&mut rngs[i]);
                trace.push(Phase::Compute, t0, t0 + dur);
                t0 += dur;
            }
            trace.push(Phase::Transfer, t0, t0 + ps);
            t0 += ps;
        }
    }
    traces
}

/// Render traces as an ASCII Gantt chart (`#` compute, `.` wait,
/// `~` transfer), one row per learner.
///
/// ```
/// use sasgd_simnet::{render_gantt, trace_sasgd, CostModel, JitterModel, TimelineSpec};
/// let spec = TimelineSpec {
///     p: 2, t: 2, rounds: 1, m: 1000, macs_per_sample: 100_000, batch: 8, seed: 1,
/// };
/// let traces = trace_sasgd(&spec, &CostModel::paper_testbed(), &JitterModel::default());
/// let chart = render_gantt("demo", &traces, 40);
/// assert!(chart.contains('#'));
/// ```
pub fn render_gantt(title: &str, traces: &[LearnerTrace], width: usize) -> String {
    let end = traces.iter().map(LearnerTrace::end).fold(0.0_f64, f64::max);
    let mut out = format!(
        "{title}  (span {:.3}s; # compute, . wait, ~ transfer)\n",
        end
    );
    if end <= 0.0 {
        out.push_str("(empty)\n");
        return out;
    }
    for (i, tr) in traces.iter().enumerate() {
        let mut row = vec![' '; width];
        for &(phase, s, e) in &tr.segments {
            let c0 = ((s / end) * width as f64) as usize;
            let c1 = (((e / end) * width as f64).ceil() as usize).min(width);
            for cell in row.iter_mut().take(c1).skip(c0.min(width)) {
                *cell = phase.glyph();
            }
        }
        out.push_str(&format!("L{i:<2}|"));
        out.extend(row.iter());
        out.push_str("|\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(p: usize) -> TimelineSpec {
        TimelineSpec {
            p,
            t: 3,
            rounds: 2,
            m: 10_000,
            macs_per_sample: 1_000_000,
            batch: 8,
            seed: 5,
        }
    }

    #[test]
    fn sasgd_trace_is_barrier_aligned() {
        let cost = CostModel::paper_testbed();
        let jit = JitterModel {
            cv: 0.2,
            learner_spread: 0.1,
        };
        let traces = trace_sasgd(&spec(4), &cost, &jit);
        assert_eq!(traces.len(), 4);
        // All learners end at the same instant (bulk synchrony).
        let ends: Vec<f64> = traces.iter().map(LearnerTrace::end).collect();
        for e in &ends {
            assert!((e - ends[0]).abs() < 1e-12, "ends {ends:?}");
        }
        // Someone waited (jitter ⇒ stragglers) and everyone transferred.
        let total_wait: f64 = traces.iter().map(|t| t.total(Phase::Wait)).sum();
        assert!(total_wait > 0.0);
        for t in &traces {
            assert!(t.total(Phase::Transfer) > 0.0);
        }
    }

    #[test]
    fn sasgd_no_jitter_no_wait() {
        let cost = CostModel::paper_testbed();
        let traces = trace_sasgd(&spec(4), &cost, &JitterModel::none());
        for t in &traces {
            assert!(t.total(Phase::Wait) < 1e-12);
        }
    }

    #[test]
    fn downpour_trace_has_no_waits_but_pays_transfers() {
        let cost = CostModel::paper_testbed();
        let jit = JitterModel {
            cv: 0.2,
            learner_spread: 0.3,
        };
        let traces = trace_downpour(&spec(4), &cost, &jit);
        for t in &traces {
            assert_eq!(t.total(Phase::Wait), 0.0, "async never waits at barriers");
            assert!(t.total(Phase::Transfer) > 0.0);
        }
        // Learners desynchronize: end times differ.
        let ends: Vec<f64> = traces.iter().map(LearnerTrace::end).collect();
        let spread = ends.iter().copied().fold(0.0_f64, f64::max)
            - ends.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(spread > 0.0, "speed spread must desynchronize learners");
    }

    #[test]
    fn gantt_renders_every_learner() {
        let cost = CostModel::paper_testbed();
        let traces = trace_sasgd(&spec(3), &cost, &JitterModel::default());
        let g = render_gantt("demo", &traces, 60);
        assert_eq!(g.lines().count(), 4, "title + 3 rows");
        assert!(g.contains('#'));
        assert!(g.contains('~'));
        assert!(g.contains("L0 |"));
    }

    #[test]
    fn phase_accounting_sums_to_span() {
        let cost = CostModel::paper_testbed();
        let traces = trace_sasgd(&spec(2), &cost, &JitterModel::default());
        for t in &traces {
            let parts = t.total(Phase::Compute) + t.total(Phase::Wait) + t.total(Phase::Transfer);
            assert!(
                (parts - t.end()).abs() < 1e-9,
                "segments must tile the span"
            );
        }
    }
}

//! Vector clocks for the model checker's happens-before analysis.
//!
//! Every rank in a [`crate::model`] world carries one clock; every message
//! and every shared-cell write is stamped with the clock of the rank that
//! produced it. The partial order the clocks encode is exactly
//! happens-before: `a ≤ b` iff event `a` is in event `b`'s causal past.
//! Two stamps that are ordered by neither `≤` are *concurrent* — the
//! raw material for the wildcard-receive race check and the lost-update
//! check in [`crate::dpor`].

/// A vector clock over a fixed-size world: one logical-time component per
/// rank. Comparison is componentwise; see [`VClock::dominates`] and
/// [`VClock::concurrent`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VClock(Vec<u32>);

impl VClock {
    /// The zero clock of a `p`-rank world (causal past of everything).
    pub fn new(p: usize) -> Self {
        VClock(vec![0; p])
    }

    /// Advance `rank`'s own component by one — called once per event the
    /// rank performs.
    pub fn tick(&mut self, rank: usize) {
        self.0[rank] += 1;
    }

    /// Merge another clock into this one (componentwise max) — called when
    /// a rank observes an event stamped `other` (message receipt, shared
    /// read).
    pub fn join(&mut self, other: &VClock) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    /// `self ≥ other` componentwise: everything `other` has seen, `self`
    /// has seen too (the event stamped `other` happens-before the state
    /// stamped `self`).
    pub fn dominates(&self, other: &VClock) -> bool {
        self.0.iter().zip(&other.0).all(|(a, b)| a >= b)
    }

    /// Neither clock dominates: the two stamped events are causally
    /// unordered, i.e. a genuine race window exists between them.
    pub fn concurrent(&self, other: &VClock) -> bool {
        !self.dominates(other) && !other.dominates(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_clocks_dominate_each_other() {
        let a = VClock::new(3);
        let b = VClock::new(3);
        assert!(a.dominates(&b) && b.dominates(&a));
        assert!(!a.concurrent(&b));
    }

    #[test]
    fn independent_ticks_are_concurrent() {
        let mut a = VClock::new(2);
        let mut b = VClock::new(2);
        a.tick(0);
        b.tick(1);
        assert!(a.concurrent(&b));
    }

    #[test]
    fn join_restores_order() {
        let mut a = VClock::new(2);
        a.tick(0); // a = [1, 0]
        let mut b = VClock::new(2);
        b.join(&a); // b observed a's event
        b.tick(1); // b = [1, 1]
        assert!(b.dominates(&a));
        assert!(!a.dominates(&b));
        assert!(!a.concurrent(&b));
    }

    #[test]
    fn message_chain_is_transitive() {
        // r0 ticks, sends to r1; r1 joins+ticks, sends to r2; r2 joins.
        let mut c0 = VClock::new(3);
        c0.tick(0);
        let stamp0 = c0.clone();
        let mut c1 = VClock::new(3);
        c1.join(&stamp0);
        c1.tick(1);
        let stamp1 = c1.clone();
        let mut c2 = VClock::new(3);
        c2.join(&stamp1);
        c2.tick(2);
        assert!(c2.dominates(&stamp0), "transitively ordered");
    }
}

//! The simulated backend: one learner loop over virtual time.
//!
//! Two loop shapes cover every strategy:
//!
//! * **lockstep** — epochs of aligned steps; after each collective step
//!   the engine counts toward the strategy's sync interval and hands the
//!   whole learner cohort to `AggregationStrategy::sync`. Barrier waits
//!   and aggregation costs are charged by the strategy through the
//!   learners' virtual clocks.
//! * **event-driven** — each learner's next `T`-minibatch block is an
//!   event ordered by virtual completion time; at each completion the
//!   engine applies the strategy's local math and single-learner sync, so
//!   gradient staleness emerges from the same speed variation a real
//!   cluster has while staying bit-reproducible under a seed.
//!
//! Per-learner RNG streams make the two interleavings composable: a
//! learner's batch order and dropout draws depend only on its own stream,
//! never on how learners interleave.

use sasgd_data::Dataset;
use sasgd_nn::Model;
use sasgd_simnet::{EventQueue, VirtualTime};

use super::{AggregationStrategy, BatchStream, Cadence};
use crate::history::{History, StalenessStats};
use crate::trainer::{EvalSets, Learner, TrainConfig};

/// Run `strategy` on the simulated backend.
pub(crate) fn run(
    strategy: &mut dyn AggregationStrategy,
    factory: &mut dyn FnMut() -> Model,
    train_set: &Dataset,
    test_set: &Dataset,
    cfg: &TrainConfig,
) -> History {
    match strategy.cadence() {
        Cadence::Lockstep => run_lockstep(strategy, factory, train_set, test_set, cfg),
        Cadence::EventDriven => run_event_driven(strategy, factory, train_set, test_set, cfg),
    }
}

fn run_lockstep(
    s: &mut dyn AggregationStrategy,
    factory: &mut dyn FnMut() -> Model,
    train_set: &Dataset,
    test_set: &Dataset,
    cfg: &TrainConfig,
) -> History {
    let p = s.p();
    let mut learners: Vec<Learner> = (0..p).map(|id| Learner::new(id, factory(), cfg)).collect();
    let macs = learners[0].model.macs_per_sample();
    let x0 = learners[0].model.param_vector();
    let init_comm = s.setup(factory, &x0, cfg);
    for l in &mut learners {
        l.model.write_params(&x0);
        l.charge_comm(init_comm);
    }

    let evals = EvalSets::prepare(train_set, test_set, cfg.eval_cap);
    let shards = s.shards(train_set, cfg);
    let steps_cap = if s.lockstep_truncates() {
        // Bulk-synchrony needs aligned step counts: truncate every
        // learner's epoch to the smallest shard's whole-minibatch count.
        let cap = shards
            .iter()
            .map(|sh| sh.len() / cfg.batch_size)
            .min()
            .expect("at least one shard");
        assert!(
            cap > 0,
            "shards too small: {} samples over {p} learners at batch {}",
            train_set.len(),
            cfg.batch_size
        );
        Some(cap)
    } else {
        None
    };
    let step_s = cfg.cost.minibatch_compute(macs, cfg.batch_size, p);
    let sync_every = s.sync_interval();

    let mut history = History::new(s.label(), p, s.history_interval());
    let mut samples = 0u64;
    let mut since_sync = 0usize;
    let mut syncs = 0u64;

    for epoch in 1..=cfg.epochs {
        let iters: Vec<Vec<Vec<usize>>> = learners
            .iter_mut()
            .zip(&shards)
            .map(|(l, sh)| {
                let it = sh.epoch_iter(cfg.batch_size, &mut l.rng);
                match steps_cap {
                    Some(cap) => it.take(cap).collect(),
                    None => it.collect(),
                }
            })
            .collect();
        let steps = iters.iter().map(Vec::len).max().unwrap_or(0);
        let gamma_steps = iters[0].len().max(1);
        for step in 0..steps {
            let epoch_f = s.gamma_epoch(epoch, step, gamma_steps);
            let gamma_now = cfg.gamma_at(epoch_f);
            for (id, (l, batches)) in learners.iter_mut().zip(&iters).enumerate() {
                // Ragged tails only exist for non-truncating strategies,
                // whose learners are independent between sync points.
                let Some(idx) = batches.get(step) else {
                    continue;
                };
                samples += idx.len() as u64;
                let j = l.draw_jitter(&cfg.jitter);
                s.local_step(l, id, train_set, idx, gamma_now, step_s, j);
            }
            if sync_every > 0 {
                since_sync += 1;
                if since_sync == sync_every {
                    s.sync(&mut learners, gamma_now);
                    syncs += 1;
                    since_sync = 0;
                }
            }
        }
        for l in &mut learners {
            l.clock += cfg.cost.epoch_overhead;
        }
        s.epoch_end(&mut learners, epoch, cfg);
        let (comp, comm) = (learners[0].compute_s, learners[0].comm_s);
        let rec = evals.record(
            s.eval_model(&mut learners),
            epoch as f64,
            comp,
            comm,
            samples,
        );
        history.records.push(rec);
    }
    history.staleness = s.staleness(syncs);
    history.wire = s.wire(syncs);
    history.final_params = Some(s.final_params(&learners));
    history
}

/// One learner's pending compute block.
struct Block {
    learner: usize,
    start: f64,
}

fn run_event_driven(
    s: &mut dyn AggregationStrategy,
    factory: &mut dyn FnMut() -> Model,
    train_set: &Dataset,
    test_set: &Dataset,
    cfg: &TrainConfig,
) -> History {
    let p = s.p();
    let t = s.sync_interval();
    assert!(t >= 1, "event-driven strategies must sync");
    let mut learners: Vec<Learner> = (0..p).map(|id| Learner::new(id, factory(), cfg)).collect();
    let m = learners[0].model.param_len();
    let macs = learners[0].model.macs_per_sample();
    let x0 = learners[0].model.param_vector();
    let init_comm = s.setup(factory, &x0, cfg);
    for l in &mut learners {
        l.model.write_params(&x0);
        l.charge_comm(init_comm);
    }

    let evals = EvalSets::prepare(train_set, test_set, cfg.eval_cap);
    let n = train_set.len();
    let step_s = cfg.cost.minibatch_compute(macs, cfg.batch_size, p);
    let comm_round = cfg.cost.ps_roundtrip(m, p).seconds;
    let target_samples = (cfg.epochs as u64) * (n as u64);

    let mut streams: Vec<BatchStream> = s
        .shards(train_set, cfg)
        .into_iter()
        .map(|sh| BatchStream::new(sh.indices().to_vec(), cfg.batch_size))
        .collect();
    let mut queue: EventQueue<Block> = EventQueue::new();
    for (id, l) in learners.iter_mut().enumerate() {
        let dur = block_duration(l, t, step_s, cfg);
        queue.push(
            VirtualTime(dur),
            Block {
                learner: id,
                start: 0.0,
            },
        );
    }

    let mut history = History::new(s.label(), p, s.history_interval());
    let mut samples = 0u64;
    let mut recorded_passes = 0u64;
    // Staleness bookkeeping: how many shared-state updates landed between
    // a learner's pull and its next push.
    let mut shared_version = 0u64;
    let mut pulled_version = vec![0u64; p];
    let mut staleness_obs: Vec<u64> = Vec::new();

    while let Some((tv, block)) = queue.pop() {
        let id = block.learner;
        // The block's math: T local minibatches against the state pulled
        // at the previous sync.
        let gamma_now = cfg.gamma_at(samples as f64 / n as f64);
        for _ in 0..t {
            let idx = {
                let l = &mut learners[id];
                streams[id].next(&mut l.rng)
            };
            samples += idx.len() as u64;
            s.event_step(&mut learners[id], id, train_set, &idx, gamma_now);
        }
        {
            let l = &mut learners[id];
            l.compute_s += tv.seconds() - block.start;
            l.clock = tv.seconds();
            staleness_obs.push(shared_version - pulled_version[id]);
            shared_version += 1;
            s.event_sync(l, id, gamma_now);
            pulled_version[id] = shared_version;
            l.charge_comm(comm_round);
        }
        // Record accuracy when learner 0 finishes a pass over its shard.
        if id == 0 && streams[0].completed_passes() > recorded_passes {
            recorded_passes = streams[0].completed_passes();
            let epoch = samples as f64 / n as f64;
            let (comp, comm) = (learners[0].compute_s, learners[0].comm_s);
            let rec = evals.record(&mut learners[0].model, epoch, comp, comm, samples);
            history.records.push(rec);
        }
        if samples < target_samples {
            let start = learners[id].clock;
            let dur = block_duration(&mut learners[id], t, step_s, cfg);
            queue.push(VirtualTime(start + dur), Block { learner: id, start });
        }
    }
    // Guarantee a final record even if learner 0 did not end on a pass
    // boundary.
    if history.records.is_empty() || history.records.last().expect("nonempty").samples < samples {
        let epoch = samples as f64 / n as f64;
        let (comp, comm) = (learners[0].compute_s, learners[0].comm_s);
        let rec = evals.record(&mut learners[0].model, epoch, comp, comm, samples);
        history.records.push(rec);
    }
    history.staleness = StalenessStats::from_observations(&staleness_obs);
    history.final_params = Some(s.final_params(&learners));
    history
}

/// Duration of the next `t`-minibatch compute block (jitter drawn now so
/// completion order is known to the event queue up front).
pub(crate) fn block_duration(l: &mut Learner, t: usize, step_s: f64, cfg: &TrainConfig) -> f64 {
    let mut dur = 0.0;
    for _ in 0..t {
        dur += step_s * l.speed * l.draw_jitter(&cfg.jitter);
    }
    dur
}

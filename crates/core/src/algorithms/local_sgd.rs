//! Local SGD — periodic parameter averaging (Stich, ICLR 2019; Zhang
//! et al.'s "model averaging" done *during* training instead of once).
//!
//! `p` learners run `T` local minibatch steps independently, then every
//! replica is overwritten by the allreduce average of all replicas. For
//! `γp = γ/p` this is exactly the model-averaging view of Algorithm 1 the
//! paper derives in §III — SASGD's global step on the summed gradients
//! equals averaging the locally updated replicas — so Local SGD sits on
//! the same lattice point as SASGD-OverP up to float association.
//!
//! What this strategy adds is the **adaptive interval**: the squared
//! displacement of the average between consecutive rounds is emitted as
//! the sync signal, and an [`TSchedule::AdaptivePlateau`] policy doubles
//! `T` when that signal plateaus — communicating less as training
//! stabilizes. Since `T` only grows, the adaptive run never aggregates
//! more often than `Fixed { t: t0 }` over the same number of steps.

use sasgd_data::Dataset;
use sasgd_nn::Model;

use crate::engine::{delta_sq_norm, simulated, tree_reduce, AggregationStrategy, Cadence};
use crate::history::{History, WireStats};
use crate::schedule::{SyncPolicy, TSchedule};
use crate::trainer::{Learner, TrainConfig};

/// Periodic parameter averaging with a fixed or adaptive interval.
pub(crate) struct LocalSgdStrategy {
    p: usize,
    schedule: TSchedule,
    /// The average written at the previous round (x0 before any round) —
    /// baseline for the displacement signal.
    prev_avg: Vec<f32>,
    /// Signal from the latest round, consumed by [`Self::sync_signal`].
    last_signal: Option<f32>,
    /// Cost of one dense parameter allreduce.
    ar_seconds: f64,
    /// Parameter count (for wire accounting).
    m: usize,
}

impl LocalSgdStrategy {
    pub(crate) fn new(p: usize, schedule: TSchedule) -> Self {
        assert!(p >= 1, "need at least one learner");
        if let TSchedule::Fixed { t } = schedule {
            assert!(t >= 1, "Local SGD needs T >= 1");
        }
        LocalSgdStrategy {
            p,
            schedule,
            prev_avg: Vec::new(),
            last_signal: None,
            ar_seconds: 0.0,
            m: 0,
        }
    }

    fn initial_t(&self) -> usize {
        match self.schedule {
            TSchedule::Fixed { t } => t,
            TSchedule::AdaptivePlateau { t0, .. } => t0,
        }
    }
}

impl AggregationStrategy for LocalSgdStrategy {
    fn label(&self) -> String {
        let p = self.p;
        match self.schedule {
            TSchedule::Fixed { t } => format!("LocalSGD(p={p},T={t})"),
            TSchedule::AdaptivePlateau { t0, .. } => format!("LocalSGD-adT(p={p},T0={t0})"),
        }
    }

    fn p(&self) -> usize {
        self.p
    }

    fn cadence(&self) -> Cadence {
        Cadence::EventDriven
    }

    fn sync_interval(&self) -> usize {
        self.initial_t()
    }

    fn sync_policy(&self) -> SyncPolicy {
        SyncPolicy::new(self.schedule)
    }

    fn setup(&mut self, _factory: &mut dyn FnMut() -> Model, x0: &[f32], cfg: &TrainConfig) -> f64 {
        self.m = x0.len();
        self.prev_avg = x0.to_vec();
        self.ar_seconds = cfg.cost.allreduce_tree(self.m, self.p).seconds;
        // Replicas start identical from the shared factory — no broadcast,
        // matching the threaded ParamAverage runner.
        0.0
    }

    fn local_step(
        &mut self,
        l: &mut Learner,
        _id: usize,
        data: &Dataset,
        idx: &[usize],
        gamma: f32,
        step_s: f64,
        jitter: f64,
    ) {
        l.local_step(data, idx, gamma, step_s, jitter);
        // Averaging consumes parameters, not gradients: keep gs empty.
        l.gs.iter_mut().for_each(|g| *g = 0.0);
    }

    fn on_local_step(
        &mut self,
        l: &mut Learner,
        _id: usize,
        data: &Dataset,
        idx: &[usize],
        gamma: f32,
    ) {
        l.local_step(data, idx, gamma, 0.0, 1.0);
        l.gs.iter_mut().for_each(|g| *g = 0.0);
    }

    fn sync(&mut self, learners: &mut [Learner], _gamma_now: f32) {
        // Barrier: averaging waits for the slowest learner, like SASGD's
        // aggregation.
        let t_max = learners.iter().map(|l| l.clock).fold(0.0_f64, f64::max);
        // Sum replicas in binomial-tree order (the sasgd-comm allreduce
        // order) and scale by the reciprocal — the exact float sequence of
        // the threaded backend's ParamAverage op, so p-way runs stay
        // bitwise equal across backends.
        let bufs: Vec<Vec<f32>> = learners.iter().map(|l| l.model.param_vector()).collect();
        let mut avg = tree_reduce(bufs);
        let inv = 1.0 / self.p as f32;
        avg.iter_mut().for_each(|v| *v *= inv);
        self.last_signal = Some(delta_sq_norm(&avg, &self.prev_avg));
        for l in learners.iter_mut() {
            let wait = t_max - l.clock;
            l.charge_comm(wait + self.ar_seconds);
            l.model.write_params(&avg);
            l.gs.iter_mut().for_each(|g| *g = 0.0);
        }
        self.prev_avg = avg;
    }

    fn sync_signal(&mut self) -> Option<f32> {
        self.last_signal.take()
    }

    fn wire(&self, syncs: u64) -> Option<WireStats> {
        // One dense tree allreduce per averaging round: 2(p−1) messages of
        // m elements each. No initial broadcast (replicas start identical).
        let p1 = (self.p - 1) as u64;
        Some(WireStats {
            elements: 2 * p1 * self.m as u64 * syncs,
            messages: 2 * p1 * syncs,
        })
    }
}

/// Run Local SGD on the simulated backend under the event-driven engine.
pub(crate) fn run(
    factory: &mut dyn FnMut() -> Model,
    train_set: &Dataset,
    test_set: &Dataset,
    cfg: &TrainConfig,
    p: usize,
    schedule: TSchedule,
) -> History {
    let mut s = LocalSgdStrategy::new(p, schedule);
    simulated::run_auto(&mut s, factory, train_set, test_set, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sasgd_data::cifar_like::{generate, CifarLikeConfig};
    use sasgd_nn::models;
    use sasgd_simnet::JitterModel;
    use sasgd_tensor::SeedRng;

    fn quiet_cfg(epochs: usize, gamma: f32) -> TrainConfig {
        let mut cfg = TrainConfig::new(epochs, 8, gamma, 42);
        cfg.jitter = JitterModel::none();
        cfg
    }

    #[test]
    fn learns_with_four_learners() {
        let (train, test) = generate(&CifarLikeConfig::tiny(160, 60, 3));
        let cfg = quiet_cfg(8, 0.05);
        let mut factory = || models::tiny_cnn(3, &mut SeedRng::new(7));
        let h = run(
            &mut factory,
            &train,
            &test,
            &cfg,
            4,
            TSchedule::Fixed { t: 2 },
        );
        assert!(h.final_test_acc() > 0.5, "acc {}", h.final_test_acc());
        assert!(
            h.records.last().expect("r").comm_seconds > 0.0,
            "p>1 must communicate"
        );
    }

    #[test]
    fn adaptive_schedule_syncs_no_more_than_fixed_t0() {
        let (train, test) = generate(&CifarLikeConfig::tiny(128, 32, 3));
        let cfg = quiet_cfg(6, 0.05);
        let t0 = 2;
        let mut f1 = || models::tiny_cnn(3, &mut SeedRng::new(5));
        let fixed = run(&mut f1, &train, &test, &cfg, 2, TSchedule::Fixed { t: t0 });
        let mut f2 = || models::tiny_cnn(3, &mut SeedRng::new(5));
        let adaptive = run(
            &mut f2,
            &train,
            &test,
            &cfg,
            2,
            TSchedule::AdaptivePlateau {
                t0,
                t_max: 16,
                patience: 1,
                rel_improve: 0.5,
            },
        );
        assert!(
            adaptive.sync_rounds <= fixed.sync_rounds,
            "adaptive {} rounds vs fixed {}",
            adaptive.sync_rounds,
            fixed.sync_rounds
        );
        // A 50% improvement bar with patience 1 plateaus almost every
        // round, so T must actually have grown.
        assert!(
            adaptive.sync_rounds < fixed.sync_rounds,
            "plateau schedule should have grown T"
        );
    }

    #[test]
    fn signal_is_emitted_and_consumed() {
        let mut s = LocalSgdStrategy::new(1, TSchedule::Fixed { t: 1 });
        assert_eq!(s.sync_signal(), None);
        s.last_signal = Some(0.25);
        assert_eq!(s.sync_signal(), Some(0.25));
        assert_eq!(s.sync_signal(), None, "take() semantics");
    }
}

//! Fully connected layer, applied over the last input dimension.

use sasgd_tensor::{linalg, SeedRng, Tensor};

use crate::init;
use crate::layer::{Ctx, Layer};

/// `y = x · W + b` with `W: [in, out]`, applied to any input whose last
/// dimension is `in` (leading dimensions are folded into rows). This lets
/// the same layer serve both the classifier heads (`[n, in]`) and the
/// per-timestep projection of the NLC network (`[n, len, in]`).
pub struct Linear {
    in_dim: usize,
    out_dim: usize,
    weight: Tensor,
    bias: Vec<f32>,
    dweight: Tensor,
    dbias: Vec<f32>,
    cached_input: Option<Tensor>,
    cached_lead: Vec<usize>,
}

impl Linear {
    /// New layer with Torch-default initialization.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut SeedRng) -> Self {
        Linear {
            in_dim,
            out_dim,
            weight: init::torch_uniform(rng, &[in_dim, out_dim], in_dim),
            bias: init::torch_uniform_bias(rng, out_dim, in_dim),
            dweight: Tensor::zeros(&[in_dim, out_dim]),
            dbias: vec![0.0; out_dim],
            cached_input: None,
            cached_lead: Vec::new(),
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }
}

impl Layer for Linear {
    fn name(&self) -> &'static str {
        "Linear"
    }

    // hot-path: per-step matmul; O(m) scratch must come from ctx.ws
    fn forward(&mut self, input: Tensor, ctx: &mut Ctx) -> Tensor {
        let dims = input.dims().to_vec(); // lint:allow(hot-alloc): O(ndims) shape metadata, not O(m)
        assert_eq!(
            *dims.last().expect("linear input needs >= 1 dim"),
            self.in_dim,
            "Linear expected last dim {}, got {:?}",
            self.in_dim,
            dims
        );
        let rows: usize = dims[..dims.len() - 1].iter().product();
        let flat = input.reshape(&[rows, self.in_dim]);
        let mut out = Tensor::zeros_in(&[rows, self.out_dim], &mut ctx.ws);
        linalg::gemm_nn_ws(
            out.as_mut_slice(),
            flat.as_slice(),
            self.weight.as_slice(),
            rows,
            self.in_dim,
            self.out_dim,
            &mut ctx.ws,
        );
        linalg::add_bias_rows(&mut out, &self.bias);
        if ctx.training {
            self.cached_input = Some(flat);
            // lint:allow(hot-alloc): O(ndims) shape metadata, not O(m)
            self.cached_lead = dims[..dims.len() - 1].to_vec();
        } else {
            ctx.ws.recycle(flat);
        }
        let mut out_dims = dims[..dims.len() - 1].to_vec(); // lint:allow(hot-alloc): O(ndims) shape metadata
        out_dims.push(self.out_dim);
        out.reshape(&out_dims)
    }

    // hot-path: per-step gradient GEMMs; O(m) scratch must come from ctx.ws
    fn backward(&mut self, grad_out: Tensor, ctx: &mut Ctx) -> Tensor {
        let x = self
            .cached_input
            .take()
            .expect("backward without forward (or eval-mode forward)");
        let rows = x.dims()[0];
        let g = grad_out.reshape(&[rows, self.out_dim]);
        // dW += X^T G ; db += colsum(G) ; dX = G W^T
        let mut dw = Tensor::zeros_in(&[self.in_dim, self.out_dim], &mut ctx.ws);
        linalg::gemm_tn_ws(
            dw.as_mut_slice(),
            x.as_slice(),
            g.as_slice(),
            rows,
            self.in_dim,
            self.out_dim,
            &mut ctx.ws,
        );
        self.dweight.add_assign(&dw);
        ctx.ws.recycle(dw);
        linalg::col_sums_into(&g, &mut self.dbias);
        let mut dx = Tensor::zeros_in(&[rows, self.in_dim], &mut ctx.ws);
        linalg::gemm_nt_ws(
            dx.as_mut_slice(),
            g.as_slice(),
            self.weight.as_slice(),
            rows,
            self.out_dim,
            self.in_dim,
            &mut ctx.ws,
        );
        ctx.ws.recycle(x);
        ctx.ws.recycle(g);
        let mut in_dims = self.cached_lead.clone(); // lint:allow(hot-alloc): O(ndims) shape metadata
        in_dims.push(self.in_dim);
        dx.reshape(&in_dims)
    }

    fn param_len(&self) -> usize {
        self.in_dim * self.out_dim + self.out_dim
    }

    fn read_params(&self, out: &mut [f32]) {
        let w = self.weight.numel();
        out[..w].copy_from_slice(self.weight.as_slice());
        out[w..].copy_from_slice(&self.bias);
    }

    fn write_params(&mut self, src: &[f32]) {
        let w = self.weight.numel();
        self.weight.as_mut_slice().copy_from_slice(&src[..w]);
        self.bias.copy_from_slice(&src[w..]);
    }

    fn read_grads(&self, out: &mut [f32]) {
        let w = self.dweight.numel();
        out[..w].copy_from_slice(self.dweight.as_slice());
        out[w..].copy_from_slice(&self.dbias);
    }

    fn zero_grads(&mut self) {
        self.dweight.zero_();
        self.dbias.iter_mut().for_each(|x| *x = 0.0);
    }

    fn out_shape(&self, in_dims: &[usize]) -> Vec<usize> {
        let mut d = in_dims.to_vec();
        let last = d.last_mut().expect("linear input needs >= 1 dim");
        assert_eq!(*last, self.in_dim, "Linear shape mismatch");
        *last = self.out_dim;
        d
    }

    fn macs(&self, in_dims: &[usize]) -> u64 {
        let rows: usize = in_dims[..in_dims.len() - 1].iter().product();
        (rows.max(1) * self.in_dim * self.out_dim) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fd_check(layer: &mut Linear, x: &Tensor, param_probe: &[usize]) {
        // Loss = sum(outputs). Finite-difference the parameters.
        let mut ctx = Ctx::train(SeedRng::new(0));
        let out = layer.forward(x.clone(), &mut ctx);
        let gones = Tensor::full(out.dims(), 1.0);
        layer.backward(gones, &mut ctx);
        let mut grads = vec![0.0; layer.param_len()];
        layer.read_grads(&mut grads);

        let mut params = vec![0.0; layer.param_len()];
        layer.read_params(&mut params);
        let eps = 1e-2f32;
        let base = {
            let mut c = Ctx::eval();
            layer.forward(x.clone(), &mut c).sum()
        };
        for &k in param_probe {
            let mut p2 = params.clone();
            p2[k] += eps;
            layer.write_params(&p2);
            let up = {
                let mut c = Ctx::eval();
                layer.forward(x.clone(), &mut c).sum()
            };
            layer.write_params(&params);
            let fd = (up - base) / eps;
            assert!(
                (fd - grads[k]).abs() < 0.02 * (1.0 + grads[k].abs()),
                "param {k}: fd {fd} vs analytic {}",
                grads[k]
            );
        }
    }

    #[test]
    fn forward_shape_2d_and_3d() {
        let mut rng = SeedRng::new(1);
        let mut l = Linear::new(5, 3, &mut rng);
        let mut ctx = Ctx::eval();
        let y = l.forward(Tensor::zeros(&[4, 5]), &mut ctx);
        assert_eq!(y.dims(), &[4, 3]);
        let y3 = l.forward(Tensor::zeros(&[2, 7, 5]), &mut ctx);
        assert_eq!(y3.dims(), &[2, 7, 3]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = SeedRng::new(2);
        let mut l = Linear::new(4, 3, &mut rng);
        let x = rng.normal_tensor(&[5, 4], 1.0);
        fd_check(&mut l, &x, &[0, 5, 11, 12, 14]);
    }

    #[test]
    fn gradients_match_fd_time_distributed() {
        let mut rng = SeedRng::new(3);
        let mut l = Linear::new(4, 2, &mut rng);
        let x = rng.normal_tensor(&[2, 3, 4], 1.0);
        fd_check(&mut l, &x, &[0, 3, 7, 8, 9]);
    }

    #[test]
    fn input_gradient_matches_fd() {
        let mut rng = SeedRng::new(4);
        let mut l = Linear::new(3, 2, &mut rng);
        let x = rng.normal_tensor(&[2, 3], 1.0);
        let mut ctx = Ctx::train(SeedRng::new(0));
        let out = l.forward(x.clone(), &mut ctx);
        let dx = l.backward(Tensor::full(out.dims(), 1.0), &mut ctx);
        let eps = 1e-2f32;
        let base = l.forward(x.clone(), &mut Ctx::eval()).sum();
        for k in 0..x.numel() {
            let mut xp = x.clone();
            xp.as_mut_slice()[k] += eps;
            let up = l.forward(xp, &mut Ctx::eval()).sum();
            let fd = (up - base) / eps;
            assert!((fd - dx.as_slice()[k]).abs() < 0.02 * (1.0 + fd.abs()));
        }
    }

    #[test]
    fn grads_accumulate_until_zeroed() {
        let mut rng = SeedRng::new(5);
        let mut l = Linear::new(2, 2, &mut rng);
        let x = rng.normal_tensor(&[1, 2], 1.0);
        let run = |l: &mut Linear, x: &Tensor| {
            let mut ctx = Ctx::train(SeedRng::new(0));
            let out = l.forward(x.clone(), &mut ctx);
            l.backward(Tensor::full(out.dims(), 1.0), &mut ctx);
        };
        run(&mut l, &x);
        let mut g1 = vec![0.0; l.param_len()];
        l.read_grads(&mut g1);
        run(&mut l, &x);
        let mut g2 = vec![0.0; l.param_len()];
        l.read_grads(&mut g2);
        for (a, b) in g1.iter().zip(&g2) {
            assert!(
                (2.0 * a - b).abs() < 1e-5,
                "second pass should double grads"
            );
        }
        l.zero_grads();
        let mut g3 = vec![0.0; l.param_len()];
        l.read_grads(&mut g3);
        assert!(g3.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn param_roundtrip() {
        let mut rng = SeedRng::new(6);
        let l = Linear::new(3, 4, &mut rng);
        let mut buf = vec![0.0; l.param_len()];
        l.read_params(&mut buf);
        let mut l2 = Linear::new(3, 4, &mut SeedRng::new(99));
        l2.write_params(&buf);
        let mut buf2 = vec![0.0; l2.param_len()];
        l2.read_params(&mut buf2);
        assert_eq!(buf, buf2);
    }

    #[test]
    fn macs_and_shape() {
        let l = Linear::new(100, 200, &mut SeedRng::new(1));
        assert_eq!(l.param_len(), 100 * 200 + 200);
        assert_eq!(l.out_shape(&[100]), vec![200]);
        assert_eq!(l.out_shape(&[7, 100]), vec![7, 200]);
        assert_eq!(l.macs(&[100]), 20_000);
        assert_eq!(l.macs(&[7, 100]), 140_000);
    }
}

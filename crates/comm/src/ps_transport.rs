//! A sharded parameter server over any [`Transport`].
//!
//! The channel-based [`crate::ps`] server owns its threads and mailboxes —
//! the right shape for the in-process threaded backend, but tied to a
//! shared address space. This module is the same sharded-PS protocol
//! expressed purely in transport sends and receives, so server shards can
//! be ranks of *any* world — in-process, socket, or mock.
//!
//! ## World layout and protocol
//!
//! A PS world of `p + s` ranks: learners are ranks `0..p`, shard servers
//! are ranks `p..p+s`. Shard `k` owns the parameter segment given by
//! [`crate::collectives::chunk_bounds`]`(dim, s)[k]` — the same split rule
//! as [`crate::ps::PsConfig`], so the two servers shard identically.
//!
//! Message tags (disjoint from the collectives' `(op << 4) | phase`
//! space by the high base bits):
//!
//! * [`TAG_ADD`] — payload is a delta for the shard's segment; the shard
//!   adds it elementwise (asynchronously — arrival order is the learner
//!   schedule, exactly like Downpour against the channel PS).
//! * [`TAG_PULL`] — payload is a bit-cast request sequence number; the
//!   shard replies with its segment under `TAG_REPLY_BASE + seq`, so a
//!   learner's consecutive pulls can never cross-match.
//! * [`TAG_DONE`] — the learner is finished; a shard returns its final
//!   segment once every learner has said so.

use crate::collectives::chunk_bounds;
use crate::transport::Transport;
use crate::world::CommError;

/// Base of the PS tag space (collective tags stay far below 2³²).
const PS_TAG_BASE: u64 = 1 << 32;
/// Add a delta to the shard's segment.
pub const TAG_ADD: u64 = PS_TAG_BASE | 1;
/// Request the shard's segment (payload: bit-cast request seq).
pub const TAG_PULL: u64 = PS_TAG_BASE | 2;
/// Learner is done; shard exits after hearing this from every learner.
pub const TAG_DONE: u64 = PS_TAG_BASE | 3;
/// Replies travel at `TAG_REPLY_BASE + seq` (a second disjoint range).
pub const TAG_REPLY_BASE: u64 = 2 << 32;

/// Typed failure of a transport-PS operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PsTransportError {
    /// The shard's endpoint is gone — its process or thread died.
    ShardDown {
        /// World rank of the dead shard.
        shard: usize,
    },
    /// The shard did not answer a pull before the deadline.
    Timeout {
        /// World rank of the silent shard.
        shard: usize,
    },
    /// Any other wire failure.
    Comm(CommError),
}

impl std::fmt::Display for PsTransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PsTransportError::ShardDown { shard } => write!(f, "PS shard rank {shard} is gone"),
            PsTransportError::Timeout { shard } => {
                write!(f, "PS shard rank {shard} missed the pull deadline")
            }
            PsTransportError::Comm(e) => write!(f, "PS wire failure: {e}"),
        }
    }
}

impl std::error::Error for PsTransportError {}

/// How a `p`-learner, `s`-shard PS world is laid out over `p + s` ranks.
#[derive(Clone, Copy, Debug)]
pub struct PsLayout {
    /// Learner count (learners are ranks `0..p`).
    pub p: usize,
    /// Shard count (shards are ranks `p..p+s`).
    pub shards: usize,
    /// Full parameter dimension.
    pub dim: usize,
}

impl PsLayout {
    /// World rank of shard `k`.
    pub fn shard_rank(&self, k: usize) -> usize {
        self.p + k
    }

    /// `(lo, hi)` segment bounds of shard `k` (matching
    /// [`crate::ps::PsConfig`]'s split).
    pub fn segment(&self, k: usize) -> (usize, usize) {
        chunk_bounds(self.dim, self.shards)[k]
    }
}

/// Run one PS shard to completion on this rank: serve adds and pulls
/// until every learner has sent [`TAG_DONE`], then return the final
/// segment. `segment` is the shard's initial parameter slice.
pub fn serve_shard<T: Transport>(
    comm: &mut T,
    layout: &PsLayout,
    mut segment: Vec<f32>,
) -> Result<Vec<f32>, CommError> {
    let candidates: Vec<(usize, u64)> = (0..layout.p)
        .flat_map(|l| [(l, TAG_ADD), (l, TAG_PULL), (l, TAG_DONE)])
        .collect();
    let mut done = vec![false; layout.p];
    while !done.iter().all(|&d| d) {
        let (learner, payload) = comm.recv_any(&candidates)?;
        // recv_any drains parked messages in candidate order, so for one
        // learner the claim order is add, pull, done — never a done
        // overtaking that learner's still-parked traffic.
        if payload.len() == 1 && !done[learner] {
            let word = payload[0].to_bits();
            if word == u32::MAX {
                done[learner] = true;
                continue;
            }
            // A pull request: reply under the seq-specific tag. A dead
            // learner is its own problem — it will stop pulling and its
            // DONE (or its hangup) ends the serve loop via the others.
            let reply = TAG_REPLY_BASE + u64::from(word);
            let mut out = Vec::with_capacity(segment.len());
            out.extend_from_slice(&segment);
            if let Err(CommError::PeerGone { .. }) = comm.send(learner, reply, out) {
                done[learner] = true;
            }
            continue;
        }
        // A delta add.
        assert_eq!(payload.len(), segment.len(), "delta length mismatch");
        for (a, b) in segment.iter_mut().zip(&payload) {
            *a += b;
        }
    }
    Ok(segment)
}

/// The learner-side client: splits adds across shards, assembles pulls.
pub struct PsTransportClient<T: Transport> {
    comm: T,
    layout: PsLayout,
    pull_seq: u32,
}

impl<T: Transport> PsTransportClient<T> {
    /// Wrap a learner endpoint (`comm.rank() < layout.p`).
    pub fn new(comm: T, layout: PsLayout) -> Self {
        assert!(comm.rank() < layout.p, "client must be a learner rank");
        PsTransportClient {
            comm,
            layout,
            pull_seq: 0,
        }
    }

    /// Add `delta` (full-dimension) across the shards.
    pub fn add(&mut self, delta: &[f32]) -> Result<(), PsTransportError> {
        assert_eq!(delta.len(), self.layout.dim, "delta dimension mismatch");
        for k in 0..self.layout.shards {
            let (lo, hi) = self.layout.segment(k);
            let shard = self.layout.shard_rank(k);
            self.comm
                .send(shard, TAG_ADD, delta[lo..hi].to_vec())
                .map_err(|e| match e {
                    CommError::PeerGone { peer } => PsTransportError::ShardDown { shard: peer },
                    other => PsTransportError::Comm(other),
                })?;
        }
        Ok(())
    }

    /// Fetch the assembled full parameter vector, bounding each shard
    /// round-trip by `timeout`.
    pub fn pull(&mut self, timeout: std::time::Duration) -> Result<Vec<f32>, PsTransportError> {
        let seq = self.pull_seq;
        self.pull_seq = self.pull_seq.wrapping_add(1);
        // The pull fans out to every shard first, then collects — one
        // round-trip latency regardless of shard count.
        for k in 0..self.layout.shards {
            let shard = self.layout.shard_rank(k);
            self.comm
                .send(shard, TAG_PULL, vec![f32::from_bits(seq)])
                .map_err(|e| match e {
                    CommError::PeerGone { peer } => PsTransportError::ShardDown { shard: peer },
                    other => PsTransportError::Comm(other),
                })?;
        }
        let mut out = vec![0.0f32; self.layout.dim];
        for k in 0..self.layout.shards {
            let shard = self.layout.shard_rank(k);
            let seg = self
                .comm
                .recv_deadline(shard, TAG_REPLY_BASE + u64::from(seq), timeout)
                .map_err(|e| match e {
                    CommError::Timeout { .. } => PsTransportError::Timeout { shard },
                    other => PsTransportError::Comm(other),
                })?;
            let (lo, hi) = self.layout.segment(k);
            out[lo..hi].copy_from_slice(&seg);
        }
        Ok(out)
    }

    /// Tell every shard this learner is finished (shards exit once all
    /// learners have). Consumes the client; its endpoint is returned for
    /// any remaining wind-down traffic.
    pub fn finish(mut self) -> Result<T, PsTransportError> {
        for k in 0..self.layout.shards {
            let shard = self.layout.shard_rank(k);
            self.comm
                .send(shard, TAG_DONE, vec![f32::from_bits(u32::MAX)])
                .map_err(|e| match e {
                    CommError::PeerGone { peer } => PsTransportError::ShardDown { shard: peer },
                    other => PsTransportError::Comm(other),
                })?;
        }
        Ok(self.comm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mock::mock_world;
    use crate::world::CommWorld;
    use std::thread;
    use std::time::Duration;

    const PULL: Duration = Duration::from_secs(5);

    /// 2 learners × 2 shards over the in-process world: concurrent adds
    /// and pulls; the final server state is the sum of every delta.
    #[test]
    fn adds_and_pulls_over_inproc_world() {
        let (p, s, dim) = (2usize, 2usize, 7usize);
        let layout = PsLayout { p, shards: s, dim };
        let mut world = CommWorld::new(p + s);
        let comms = world.communicators();
        let mut finals: Vec<Option<Vec<f32>>> = (0..s).map(|_| None).collect();
        thread::scope(|scope| {
            let mut handles = Vec::new();
            for (rank, comm) in comms.into_iter().enumerate() {
                if rank < p {
                    scope.spawn(move || {
                        let mut client = PsTransportClient::new(comm, layout);
                        let x0 = client.pull(PULL).expect("initial pull");
                        assert_eq!(x0, vec![0.0; dim]);
                        for step in 0..3 {
                            let delta: Vec<f32> = (0..dim)
                                .map(|j| (rank * 100 + step * 10 + j) as f32)
                                .collect();
                            client.add(&delta).expect("add");
                            let _ = client.pull(PULL).expect("pull");
                        }
                        client.finish().expect("finish");
                    });
                } else {
                    let mut comm = comm;
                    handles.push((
                        rank - p,
                        scope.spawn(move || {
                            serve_shard(&mut comm, &layout, {
                                let (lo, hi) = layout.segment(rank - p);
                                vec![0.0; hi - lo]
                            })
                            .expect("serve")
                        }),
                    ));
                }
            }
            for (k, h) in handles {
                finals[k] = Some(h.join().expect("shard thread"));
            }
        });
        let mut assembled = vec![0.0f32; dim];
        for (k, seg) in finals.into_iter().enumerate() {
            let (lo, hi) = layout.segment(k);
            assembled[lo..hi].copy_from_slice(&seg.expect("segment"));
        }
        let expect: Vec<f32> = (0..dim)
            .map(|j| {
                (0..2usize)
                    .flat_map(|r| (0..3usize).map(move |st| (r * 100 + st * 10 + j) as f32))
                    .sum()
            })
            .collect();
        assert_eq!(assembled, expect);
    }

    /// The same protocol runs unchanged over the mock transport, and a
    /// dead shard surfaces as a typed ShardDown on the next add.
    #[test]
    fn dead_shard_is_typed_over_mock_world() {
        let (p, s, dim) = (1usize, 1usize, 3usize);
        let layout = PsLayout { p, shards: s, dim };
        let mut world = mock_world(p + s);
        let shard = world.pop().expect("shard endpoint");
        let learner = world.pop().expect("learner endpoint");
        drop(shard); // shard dies before serving anything
        let mut client = PsTransportClient::new(learner, layout);
        assert_eq!(
            client.add(&[1.0, 2.0, 3.0]),
            Err(PsTransportError::ShardDown { shard: 1 })
        );
    }
}

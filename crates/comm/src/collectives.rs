//! Collective operations over any [`Transport`].
//!
//! The reproduction's SASGD uses [`allreduce_tree`] — the `O(m log p)`
//! binomial pattern the paper's communication analysis assumes. The
//! bandwidth-optimal [`allreduce_ring`] (reduce-scatter + allgather,
//! `2·m·(p−1)/p` elements per rank) is implemented for the tree-vs-ring
//! ablation bench.
//!
//! Reduction order is fixed (children merge into parents in rank order), so
//! results are bitwise deterministic across runs and thread schedules.
//!
//! Every collective returns `Result<_, CommError>`: a crashed peer surfaces
//! as [`CommError::PeerGone`] at the rank adjacent to it (and, with a
//! default deadline installed, as [`CommError::Timeout`] on waiting ranks)
//! instead of panicking the whole group. Membership-aware, self-healing
//! variants live in [`crate::ft`].
//!
//! All collectives are generic over [`Transport`], so the same code runs
//! over in-process channels, TCP sockets, or the mock — the combine order
//! (and therefore the bitwise result) is a property of this module, not of
//! the wire underneath.

use crate::transport::Transport;
use crate::world::CommError;

/// Tag space: collectives encode `(op_counter << 4) | phase` so concurrent
/// phases of one collective never collide.
fn tag(op: u64, phase: u64) -> u64 {
    (op << 4) | phase
}

/// Binomial-tree broadcast from `root`.
pub fn broadcast<T: Transport>(
    comm: &mut T,
    root: usize,
    buf: &mut Vec<f32>,
) -> Result<(), CommError> {
    let p = comm.size();
    if p == 1 {
        comm.next_op();
        return Ok(());
    }
    let op = comm.next_op();
    // Work in root-relative rank space so any root works.
    let vrank = (comm.rank() + p - root) % p;
    // Receive from the parent (vrank with its highest set bit cleared),
    // then forward to children.
    if vrank != 0 {
        let hb = usize::BITS - 1 - vrank.leading_zeros();
        let parent_v = vrank & !(1 << hb);
        let parent = (parent_v + root) % p;
        *buf = comm.recv(parent, tag(op, 0))?;
    }
    // Children are vrank | bit for bits above vrank's highest set bit.
    let start_bit = if vrank == 0 {
        1usize
    } else {
        1usize << (usize::BITS - vrank.leading_zeros())
    };
    let mut bit = start_bit;
    while bit < p {
        let child_v = vrank | bit;
        if child_v < p && child_v != vrank {
            let child = (child_v + root) % p;
            comm.send(child, tag(op, 0), buf.clone())?;
        }
        bit <<= 1;
    }
    Ok(())
}

/// Binomial-tree sum-reduce to `root`; on non-root ranks `buf` is left as
/// the partial sum this rank forwarded.
pub fn reduce_tree<T: Transport>(
    comm: &mut T,
    root: usize,
    buf: &mut [f32],
) -> Result<(), CommError> {
    let p = comm.size();
    if p == 1 {
        comm.next_op();
        return Ok(());
    }
    let op = comm.next_op();
    let vrank = (comm.rank() + p - root) % p;
    let mut bit = 1usize;
    while bit < p {
        if vrank & bit != 0 {
            // Send partial to parent and stop.
            let parent_v = vrank & !bit;
            let parent = (parent_v + root) % p;
            comm.send(parent, tag(op, 1), buf.to_vec())?;
            return Ok(());
        }
        let child_v = vrank | bit;
        if child_v < p {
            let child = (child_v + root) % p;
            let part = comm.recv(child, tag(op, 1))?;
            for (a, b) in buf.iter_mut().zip(&part) {
                *a += b;
            }
        }
        bit <<= 1;
    }
    Ok(())
}

/// Allreduce (sum) via reduce-to-0 plus broadcast: `2·m·log₂(p)` elements
/// through the root's subtree links — the paper's `O(m log p)` collective.
pub fn allreduce_tree<T: Transport>(comm: &mut T, buf: &mut Vec<f32>) -> Result<(), CommError> {
    reduce_tree(comm, 0, buf)?;
    broadcast(comm, 0, buf)
}

/// Ring allreduce (reduce-scatter + allgather).
///
/// Each rank sends `2·m·(p−1)/p` elements regardless of `p` — the
/// bandwidth-optimal collective modern NCCL uses; contrast with
/// [`allreduce_tree`] in the ablation bench.
pub fn allreduce_ring<T: Transport>(comm: &mut T, buf: &mut [f32]) -> Result<(), CommError> {
    let p = comm.size();
    if p == 1 {
        comm.next_op();
        return Ok(());
    }
    let op = comm.next_op();
    let r = comm.rank();
    let m = buf.len();
    // Chunk boundaries (first m % p chunks get one extra element).
    let bounds: Vec<(usize, usize)> = {
        let base = m / p;
        let extra = m % p;
        let mut v = Vec::with_capacity(p);
        let mut start = 0usize;
        for k in 0..p {
            let len = base + usize::from(k < extra);
            v.push((start, start + len));
            start += len;
        }
        v
    };
    let next = (r + 1) % p;
    let prev = (r + p - 1) % p;
    // Reduce-scatter: after p-1 steps, rank r owns the full sum of chunk
    // (r+1) mod p.
    for step in 0..p - 1 {
        let send_chunk = (r + p - step) % p;
        let recv_chunk = (r + p - step - 1) % p;
        let (slo, shi) = bounds[send_chunk];
        comm.send(next, tag(op, 2 + step as u64), buf[slo..shi].to_vec())?;
        let incoming = comm.recv(prev, tag(op, 2 + step as u64))?;
        let (rlo, rhi) = bounds[recv_chunk];
        for (a, b) in buf[rlo..rhi].iter_mut().zip(&incoming) {
            *a += b;
        }
    }
    // Allgather: circulate the completed chunks.
    for step in 0..p - 1 {
        let send_chunk = (r + 1 + p - step) % p;
        let recv_chunk = (r + p - step) % p;
        let (slo, shi) = bounds[send_chunk];
        comm.send(
            next,
            tag(op, 2 + (p - 1 + step) as u64),
            buf[slo..shi].to_vec(),
        )?;
        let incoming = comm.recv(prev, tag(op, 2 + (p - 1 + step) as u64))?;
        let (rlo, rhi) = bounds[recv_chunk];
        buf[rlo..rhi].copy_from_slice(&incoming);
    }
    Ok(())
}

/// Barrier: zero-length allreduce.
pub fn barrier<T: Transport>(comm: &mut T) -> Result<(), CommError> {
    let mut empty: Vec<f32> = Vec::new();
    allreduce_tree(comm, &mut empty)
}

/// Near-equal chunk boundaries of an `m`-element buffer over `p` ranks
/// (the first `m % p` chunks get one extra element).
pub fn chunk_bounds(m: usize, p: usize) -> Vec<(usize, usize)> {
    let base = m / p;
    let extra = m % p;
    let mut v = Vec::with_capacity(p);
    let mut start = 0usize;
    for k in 0..p {
        let len = base + usize::from(k < extra);
        v.push((start, start + len));
        start += len;
    }
    v
}

/// Ring reduce-scatter: on return, this rank's chunk of `buf` (per
/// [`chunk_bounds`]) holds the global sum; other chunks hold partials.
/// Returns the `(lo, hi)` bounds of the completed chunk.
pub fn reduce_scatter<T: Transport>(
    comm: &mut T,
    buf: &mut [f32],
) -> Result<(usize, usize), CommError> {
    let p = comm.size();
    let r = comm.rank();
    let bounds = chunk_bounds(buf.len(), p);
    if p == 1 {
        comm.next_op();
        return Ok(bounds[0]);
    }
    let op = comm.next_op();
    let next = (r + 1) % p;
    let prev = (r + p - 1) % p;
    for step in 0..p - 1 {
        let send_chunk = (r + p - step) % p;
        let recv_chunk = (r + p - step - 1) % p;
        let (slo, shi) = bounds[send_chunk];
        comm.send(next, tag(op, 2 + step as u64), buf[slo..shi].to_vec())?;
        let incoming = comm.recv(prev, tag(op, 2 + step as u64))?;
        let (rlo, rhi) = bounds[recv_chunk];
        for (a, b) in buf[rlo..rhi].iter_mut().zip(&incoming) {
            *a += b;
        }
    }
    Ok(bounds[(r + 1) % p])
}

/// Ring allgather: every rank contributes the chunk it owns (chunk index
/// `(rank+1) % p`, matching [`reduce_scatter`]'s output) and receives all
/// others, leaving `buf` identical on every rank.
pub fn allgather<T: Transport>(comm: &mut T, buf: &mut [f32]) -> Result<(), CommError> {
    let p = comm.size();
    let r = comm.rank();
    if p == 1 {
        comm.next_op();
        return Ok(());
    }
    let op = comm.next_op();
    let bounds = chunk_bounds(buf.len(), p);
    let next = (r + 1) % p;
    let prev = (r + p - 1) % p;
    for step in 0..p - 1 {
        let send_chunk = (r + 1 + p - step) % p;
        let recv_chunk = (r + p - step) % p;
        let (slo, shi) = bounds[send_chunk];
        comm.send(next, tag(op, 2 + step as u64), buf[slo..shi].to_vec())?;
        let incoming = comm.recv(prev, tag(op, 2 + step as u64))?;
        let (rlo, rhi) = bounds[recv_chunk];
        buf[rlo..rhi].copy_from_slice(&incoming);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{CommWorld, Communicator};
    use std::thread;

    /// Run `f` on `p` ranks and collect per-rank results in rank order.
    fn run_world<T: Send>(p: usize, f: impl Fn(&mut Communicator) -> T + Sync) -> Vec<T> {
        let mut world = CommWorld::new(p);
        let comms = world.communicators();
        let mut out: Vec<Option<T>> = (0..p).map(|_| None).collect();
        thread::scope(|s| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|mut c| {
                    let f = &f;
                    s.spawn(move || f(&mut c))
                })
                .collect();
            for (slot, h) in out.iter_mut().zip(handles) {
                *slot = Some(h.join().expect("rank thread"));
            }
        });
        out.into_iter().map(|o| o.expect("result")).collect()
    }

    #[test]
    fn broadcast_all_sizes() {
        for p in [1usize, 2, 3, 4, 5, 8] {
            let res = run_world(p, |c| {
                let mut v = if c.rank() == 0 {
                    vec![3.25, -1.0]
                } else {
                    vec![0.0; 2]
                };
                broadcast(c, 0, &mut v).expect("broadcast");
                v
            });
            for v in res {
                assert_eq!(v, vec![3.25, -1.0], "p={p}");
            }
        }
    }

    #[test]
    fn broadcast_nonzero_root() {
        let res = run_world(5, |c| {
            let mut v = if c.rank() == 3 { vec![7.0] } else { vec![0.0] };
            broadcast(c, 3, &mut v).expect("broadcast");
            v
        });
        for v in res {
            assert_eq!(v, vec![7.0]);
        }
    }

    #[test]
    fn allreduce_tree_sums() {
        for p in [1usize, 2, 3, 4, 7, 8, 16] {
            let res = run_world(p, |c| {
                let mut v = vec![c.rank() as f32 + 1.0; 4];
                allreduce_tree(c, &mut v).expect("allreduce");
                v
            });
            let expect = (p * (p + 1) / 2) as f32;
            for v in res {
                assert_eq!(v, vec![expect; 4], "p={p}");
            }
        }
    }

    #[test]
    fn allreduce_ring_sums() {
        for p in [1usize, 2, 3, 4, 5, 8] {
            // Buffer length not divisible by p on purpose.
            let res = run_world(p, |c| {
                let mut v: Vec<f32> = (0..11).map(|j| (c.rank() * 11 + j) as f32).collect();
                allreduce_ring(c, &mut v).expect("allreduce");
                v
            });
            let expect: Vec<f32> = (0..11)
                .map(|j| (0..p).map(|r| (r * 11 + j) as f32).sum())
                .collect();
            for v in res {
                assert_eq!(v, expect, "p={p}");
            }
        }
    }

    #[test]
    fn tree_and_ring_agree() {
        let p = 6;
        let tree = run_world(p, |c| {
            let mut v: Vec<f32> = (0..9).map(|j| ((c.rank() + 1) * (j + 1)) as f32).collect();
            allreduce_tree(c, &mut v).expect("allreduce");
            v
        });
        let ring = run_world(p, |c| {
            let mut v: Vec<f32> = (0..9).map(|j| ((c.rank() + 1) * (j + 1)) as f32).collect();
            allreduce_ring(c, &mut v).expect("allreduce");
            v
        });
        for (a, b) in tree.iter().zip(&ring) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn consecutive_collectives_do_not_cross() {
        let res = run_world(4, |c| {
            let mut a = vec![1.0f32];
            allreduce_tree(c, &mut a).expect("allreduce");
            let mut b = vec![10.0f32];
            allreduce_tree(c, &mut b).expect("allreduce");
            barrier(c).expect("barrier");
            (a[0], b[0])
        });
        for (a, b) in res {
            assert_eq!(a, 4.0);
            assert_eq!(b, 40.0);
        }
    }

    #[test]
    fn reduce_scatter_then_allgather_equals_allreduce() {
        for p in [1usize, 2, 3, 4, 6, 8] {
            let res = run_world(p, |c| {
                let mut v: Vec<f32> = (0..13).map(|j| ((c.rank() + 2) * (j + 1)) as f32).collect();
                let (lo, hi) = reduce_scatter(c, &mut v).expect("reduce_scatter");
                // The owned chunk holds the exact global sum already.
                let expect: Vec<f32> = (0..13)
                    .map(|j| (0..c.size()).map(|r| ((r + 2) * (j + 1)) as f32).sum())
                    .collect();
                assert_eq!(&v[lo..hi], &expect[lo..hi], "owned chunk p={}", c.size());
                allgather(c, &mut v).expect("allgather");
                v
            });
            let expect: Vec<f32> = (0..13)
                .map(|j| (0..p).map(|r| ((r + 2) * (j + 1)) as f32).sum())
                .collect();
            for v in res {
                assert_eq!(v, expect, "p={p}");
            }
        }
    }

    #[test]
    fn chunk_bounds_cover_everything() {
        for (m, p) in [(10usize, 3usize), (7, 7), (5, 8), (0, 2)] {
            let b = chunk_bounds(m, p);
            assert_eq!(b.len(), p);
            assert_eq!(b[0].0, 0);
            assert_eq!(b[p - 1].1, m);
            for w in b.windows(2) {
                assert_eq!(w[0].1, w[1].0, "contiguous");
            }
        }
    }

    #[test]
    fn tree_traffic_scales_logarithmically_per_rank() {
        // Total tree-allreduce traffic = 2*(p-1)*m elements (each non-root
        // link carries m up and m down) vs PS traffic 2*p*m: same order,
        // but the *root bottleneck* differs — measured in the simnet crate.
        let m = 64usize;
        for p in [2usize, 4, 8] {
            let mut world = CommWorld::new(p);
            let traffic = world.traffic();
            let comms = world.communicators();
            thread::scope(|s| {
                for mut c in comms {
                    s.spawn(move || {
                        let mut v = vec![1.0f32; m];
                        allreduce_tree(&mut c, &mut v).expect("allreduce");
                    });
                }
            });
            assert_eq!(traffic.elements_sent(), (2 * (p - 1) * m) as u64, "p={p}");
        }
    }

    #[test]
    fn collective_surfaces_peer_gone() {
        // Rank 1 crashes (endpoint dropped) before the collective; rank 0's
        // broadcast send to it must surface PeerGone, not panic.
        let mut world = CommWorld::new(2);
        let mut comms = world.communicators();
        let c1 = comms.pop().expect("rank 1");
        let mut c0 = comms.pop().expect("rank 0");
        drop(c1);
        let mut v = vec![1.0f32];
        assert_eq!(
            broadcast(&mut c0, 0, &mut v),
            Err(crate::world::CommError::PeerGone { peer: 1 })
        );
    }
}

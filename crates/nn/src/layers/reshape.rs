//! Shape-only layers.

use sasgd_tensor::Tensor;

use crate::layer::{Ctx, Layer};

/// Flatten all per-sample dimensions into one (`[n, c, h, w] -> [n, c*h*w]`),
/// feeding the classifier head of the CIFAR network.
#[derive(Default)]
pub struct Flatten {
    cached_in_dims: Vec<usize>,
}

impl Flatten {
    /// New flatten layer.
    pub fn new() -> Self {
        Flatten::default()
    }
}

impl Layer for Flatten {
    fn name(&self) -> &'static str {
        "Flatten"
    }

    fn forward(&mut self, input: Tensor, ctx: &mut Ctx) -> Tensor {
        let dims = input.dims().to_vec();
        let n = dims[0];
        let rest: usize = dims[1..].iter().product();
        if ctx.training {
            self.cached_in_dims = dims;
        }
        input.reshape(&[n, rest])
    }

    fn backward(&mut self, grad_out: Tensor, _ctx: &mut Ctx) -> Tensor {
        grad_out.reshape(&self.cached_in_dims.clone())
    }

    fn out_shape(&self, in_dims: &[usize]) -> Vec<usize> {
        vec![in_dims.iter().product()]
    }

    fn macs(&self, _in_dims: &[usize]) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sasgd_tensor::SeedRng;

    #[test]
    fn roundtrip() {
        let mut f = Flatten::new();
        let x = Tensor::zeros(&[2, 3, 4, 5]);
        let mut ctx = Ctx::train(SeedRng::new(0));
        let y = f.forward(x, &mut ctx);
        assert_eq!(y.dims(), &[2, 60]);
        let dx = f.backward(Tensor::zeros(&[2, 60]), &mut ctx);
        assert_eq!(dx.dims(), &[2, 3, 4, 5]);
    }

    #[test]
    fn per_sample_shape() {
        let f = Flatten::new();
        assert_eq!(f.out_shape(&[128, 1, 1]), vec![128]);
        assert_eq!(f.macs(&[128, 1, 1]), 0);
    }
}

//! Offline vendored subset of `crossbeam` used by this workspace.
//!
//! Only `crossbeam::channel::{unbounded, bounded, Sender, Receiver}` is
//! provided, implemented over `std::sync::mpsc`. Semantics relied upon by
//! the workspace — FIFO per channel, blocking `recv`, timed `recv_timeout`,
//! `Sender: Clone`, disconnect surfacing as `Err` — all hold for the std
//! implementation.
//! (Crossbeam's extras — `select!`, `Receiver: Clone` — are not offered.)

pub mod channel {
    //! MPSC channels with the crossbeam-channel API shape.

    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    /// Carries the unsent message, like crossbeam's.
    pub struct SendError<T>(pub T);

    // Like crossbeam, Debug does not require `T: Debug` (the payload is
    // elided), so `.expect()` works on channels of opaque message types.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::recv_timeout`]: either no message
    /// arrived within the timeout, or all senders disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the timeout elapsed.
        Timeout,
        /// All senders are gone and the buffer is drained.
        Disconnected,
    }

    impl std::fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// Sending half of a channel. Cloneable for both flavours.
    #[derive(Debug)]
    pub enum Sender<T> {
        /// From [`unbounded`].
        Unbounded(mpsc::Sender<T>),
        /// From [`bounded`] (backpressure via `std::sync::mpsc::SyncSender`).
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match self {
                Sender::Unbounded(tx) => Sender::Unbounded(tx.clone()),
                Sender::Bounded(tx) => Sender::Bounded(tx.clone()),
            }
        }
    }

    impl<T> Sender<T> {
        /// Send `msg`, blocking if a bounded channel is full.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match self {
                Sender::Unbounded(tx) => tx.send(msg).map_err(|e| SendError(e.0)),
                Sender::Bounded(tx) => tx.send(msg).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// Receiving half of a channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Block until a message arrives, all senders disconnect, or
        /// `timeout` elapses — whichever happens first.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    /// Channel with unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender::Unbounded(tx), Receiver(rx))
    }

    /// Channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender::Bounded(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_and_clone() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(1).expect("send");
            tx2.send(2).expect("send");
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn disconnect_surfaces_as_err() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            let (tx, rx) = bounded::<u8>(1);
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(7).expect("send");
            assert_eq!(rx.recv_timeout(std::time::Duration::from_millis(5)), Ok(7));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn bounded_works_across_threads() {
            let (tx, rx) = bounded(1);
            std::thread::spawn(move || {
                for i in 0..10 {
                    tx.send(i).expect("send");
                }
            });
            for i in 0..10 {
                assert_eq!(rx.recv(), Ok(i));
            }
        }
    }
}

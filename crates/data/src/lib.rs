//! # sasgd-data
//!
//! Datasets for the reproduction.
//!
//! The paper evaluates on CIFAR-10 and on NLC-F, an in-house finance NLP
//! corpus that was never released. Neither is available here, so this crate
//! provides *synthetic stand-ins with the same geometry*:
//!
//! * [`cifar_like`] — procedurally generated 3×32×32 images in 10 classes
//!   (smooth per-class templates + shift/flip/noise), sized like CIFAR-10
//!   by default and scalable down for CPU experiments;
//! * [`nlc_like`] — sequences of 100-d "word2vec" embeddings where class
//!   keywords are planted among noise words, defaulting to the paper's
//!   2 500 sentences × 311 labels.
//!
//! Both are learnable by the paper's architectures, deterministic under a
//! seed, and tunable in difficulty — which is what the convergence-shape
//! experiments (Figs 2–3, 7–10) need. See DESIGN.md §2 for why this
//! substitution preserves the relevant behaviour.

pub mod cifar_like;
pub mod dataset;
pub mod nlc_like;
pub mod sharding;

pub use dataset::{Dataset, MinibatchIter, Shard};
pub use sharding::{make_shards, ShardStrategy};

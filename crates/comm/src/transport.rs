//! The `Transport` trait: the comm substrate behind an interface.
//!
//! Everything above the point-to-point layer — the collectives in
//! [`crate::collectives`] and [`crate::sparse`], the fault-tolerant
//! allreduce in [`crate::ft`], the hierarchy bundles in
//! [`crate::hierarchy`], the transport-backed parameter server in
//! [`crate::ps_transport`], and the threaded engine backend in
//! `sasgd-core` — is written against this trait, not against a concrete
//! endpoint type. A rank endpoint is opaque: it knows its own rank, the
//! world size, and how to move tagged `f32` payloads; [`CommError`] is the
//! only failure channel. That is exactly the contract a multi-host wire
//! needs, so the same collective code runs unchanged over
//!
//! * [`InProcTransport`] — the crossbeam-channel world of
//!   [`crate::world`], one endpoint per OS thread (the original substrate;
//!   delay/fault injection for the race checker remains a capability of
//!   this impl only);
//! * [`crate::socket::SocketTransport`] — length-prefixed frames over TCP
//!   sockets, one endpoint per OS *process*;
//! * [`crate::mock::MockTransport`] — a shared-memory reference
//!   implementation of the failure-semantics table, for conformance tests.
//!
//! ## Contract
//!
//! Implementations must provide MPI-style `(src, tag)` matching: a receive
//! names its source and tag, unrelated arrivals are parked (FIFO per
//! `(src, tag)` pair) until a matching receive claims them. The required
//! failure semantics, asserted by the transport-conformance suite in
//! `tests/transport_conformance.rs`:
//!
//! | situation                                  | result                    |
//! |--------------------------------------------|---------------------------|
//! | `send` to a rank whose endpoint is gone    | `Err(PeerGone)`           |
//! | `recv_deadline` with no matching arrival   | `Err(Timeout)`            |
//! | `recv` with a default deadline installed   | `Err(Timeout)` (as above) |
//! | `recv_any` over an empty candidate list    | `Err(NoCandidates)`       |
//! | world torn down mid-receive                | `Err(Disconnected)`       |
//!
//! `PeerGone` detection may be asynchronous on a real wire (a TCP send can
//! buffer before the hangup is observed), so callers that probe for a dead
//! peer retry-send until the error surfaces; on `InProcTransport` it is
//! immediate.

use std::time::Duration;

use crate::world::{CommError, Communicator};

/// One rank's endpoint into a communication world, seen abstractly.
///
/// `Send` (the auto trait) is a supertrait bound because every backend
/// hands endpoints to learner threads or processes. Methods take
/// `&mut self` uniformly — endpoints are owned by exactly one rank's
/// execution context and never shared.
pub trait Transport: Send {
    /// This endpoint's rank.
    fn rank(&self) -> usize;

    /// World size (number of ranks).
    fn size(&self) -> usize;

    /// Send `payload` to `dst` under `tag`. Non-blocking (or bounded by
    /// socket buffering); [`CommError::PeerGone`] when `dst` is known dead.
    fn send(&mut self, dst: usize, tag: u64, payload: Vec<f32>) -> Result<(), CommError>;

    /// Blocking receive matched on `(src, tag)`; honors the endpoint's
    /// default deadline when one is set.
    fn recv(&mut self, src: usize, tag: u64) -> Result<Vec<f32>, CommError>;

    /// Receive matched on `(src, tag)` bounded by `timeout`:
    /// [`CommError::Timeout`] when nothing matching arrives in time.
    fn recv_deadline(
        &mut self,
        src: usize,
        tag: u64,
        timeout: Duration,
    ) -> Result<Vec<f32>, CommError>;

    /// First available message matching any of `candidates`, in arrival
    /// order (parked messages drained in candidate order first). Empty
    /// candidate list is [`CommError::NoCandidates`].
    fn recv_any(&mut self, candidates: &[(usize, u64)]) -> Result<(usize, Vec<f32>), CommError>;

    /// [`Transport::recv_any`] bounded by `timeout`.
    fn recv_any_deadline(
        &mut self,
        candidates: &[(usize, u64)],
        timeout: Duration,
    ) -> Result<(usize, Vec<f32>), CommError>;

    /// Next collective sequence number. All ranks issue collectives in the
    /// same program order, so equal counters identify the same operation —
    /// the tag space of every collective is derived from this.
    fn next_op(&mut self) -> u64;
}

/// The in-process transport: the crossbeam-channel [`Communicator`] of
/// [`crate::world`], under the name the trait-facing code uses. Race-checker
/// delay injection ([`Communicator::set_delays`]) and wire fault injection
/// are capabilities of this impl, deliberately outside the trait.
pub type InProcTransport = Communicator;

impl Transport for Communicator {
    fn rank(&self) -> usize {
        Communicator::rank(self)
    }

    fn size(&self) -> usize {
        Communicator::size(self)
    }

    fn send(&mut self, dst: usize, tag: u64, payload: Vec<f32>) -> Result<(), CommError> {
        Communicator::send(self, dst, tag, payload)
    }

    fn recv(&mut self, src: usize, tag: u64) -> Result<Vec<f32>, CommError> {
        Communicator::recv(self, src, tag)
    }

    fn recv_deadline(
        &mut self,
        src: usize,
        tag: u64,
        timeout: Duration,
    ) -> Result<Vec<f32>, CommError> {
        Communicator::recv_deadline(self, src, tag, timeout)
    }

    fn recv_any(&mut self, candidates: &[(usize, u64)]) -> Result<(usize, Vec<f32>), CommError> {
        Communicator::recv_any(self, candidates)
    }

    fn recv_any_deadline(
        &mut self,
        candidates: &[(usize, u64)],
        timeout: Duration,
    ) -> Result<(usize, Vec<f32>), CommError> {
        Communicator::recv_any_deadline(self, candidates, timeout)
    }

    fn next_op(&mut self) -> u64 {
        Communicator::next_op(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::CommWorld;
    use std::thread;

    /// The trait delegates to the same machinery as the inherent methods:
    /// a ping-pong through `dyn`-free generic code behaves identically.
    fn ping<T: Transport>(a: &mut T, b: &mut T) {
        assert_eq!(a.size(), 2);
        a.send(b.rank(), 3, vec![1.5]).expect("send");
        assert_eq!(b.recv(a.rank(), 3).expect("recv"), vec![1.5]);
    }

    #[test]
    fn communicator_implements_transport() {
        let mut world = CommWorld::new(2);
        let mut comms = world.communicators();
        let mut c1 = comms.pop().expect("rank 1");
        let mut c0 = comms.pop().expect("rank 0");
        ping(&mut c0, &mut c1);
    }

    #[test]
    fn trait_objects_are_usable() {
        // Box<dyn Transport> must work for heterogeneous harness code.
        let mut world = CommWorld::new(2);
        let mut comms = world.communicators();
        let c1 = comms.pop().expect("rank 1");
        let mut b: Box<dyn Transport> = Box::new(c1);
        assert_eq!(b.rank(), 1);
        assert_eq!(b.size(), 2);
        let t = thread::spawn(move || b.recv_deadline(0, 9, Duration::from_millis(10)));
        let res = t.join().expect("thread");
        assert_eq!(res, Err(CommError::Timeout { src: 0, tag: 9 }));
    }
}

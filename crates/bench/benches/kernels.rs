//! Compute-kernel microbenchmarks: the per-minibatch work the cost model
//! abstracts, measured for real on this host (matmul sequential vs Rayon,
//! conv2d forward/backward on a Table-I-shaped layer).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sasgd_tensor::conv::{conv2d_backward, conv2d_forward, Conv2dSpec};
use sasgd_tensor::{linalg, SeedRng, Tensor};

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul");
    g.sample_size(10);
    let mut rng = SeedRng::new(1);
    for &n in &[64usize, 192] {
        let a = rng.normal_tensor(&[n, n], 1.0);
        let b = rng.normal_tensor(&[n, n], 1.0);
        g.bench_with_input(BenchmarkId::new("sequential", n), &n, |bch, _| {
            bch.iter(|| linalg::matmul(&a, &b))
        });
        g.bench_with_input(BenchmarkId::new("rayon", n), &n, |bch, _| {
            bch.iter(|| linalg::matmul_par(&a, &b))
        });
    }
    g.finish();
}

fn bench_conv(c: &mut Criterion) {
    let mut g = c.benchmark_group("conv2d");
    g.sample_size(10);
    // The first Table I layer at reduced batch: conv(3→64, 5×5, pad 2).
    let spec = Conv2dSpec {
        ci: 3,
        co: 64,
        kh: 5,
        kw: 5,
        stride: 1,
        pad: 2,
    };
    let mut rng = SeedRng::new(2);
    let input = rng.normal_tensor(&[4, 3, 32, 32], 1.0);
    let weight = rng.normal_tensor(&[64, spec.patch_len()], 0.1);
    let bias = vec![0.0f32; 64];
    g.bench_function("forward_b4_32x32", |b| {
        b.iter(|| conv2d_forward(&input, &weight, &bias, &spec))
    });
    let out = conv2d_forward(&input, &weight, &bias, &spec);
    let grad = Tensor::full(out.dims(), 1.0);
    g.bench_function("backward_b4_32x32", |b| {
        b.iter(|| conv2d_backward(&input, &weight, &grad, &spec))
    });
    g.finish();
}

criterion_group!(benches, bench_matmul, bench_conv);
criterion_main!(benches);

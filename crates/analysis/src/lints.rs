//! The repo-specific lint pass.
//!
//! Eight lints encode the invariants the compiler cannot check (see
//! DESIGN.md §4d for the full table and rationale):
//!
//! | id            | rule |
//! |---------------|------|
//! | `map-iter`    | no `HashMap`/`HashSet` in numeric crates (`tensor`, `nn`, `core`, `comm`) — nondeterministic iteration order can reach numerics |
//! | `unsafe`      | no `unsafe` outside the allow-list; allowed blocks must carry a `// SAFETY:` comment within 4 lines above |
//! | `wall-clock`  | no `Instant::now` / `SystemTime` outside the threaded backend and `bench` — the Simulated backend is virtual-clock pure |
//! | `raw-spawn`   | no `std::thread::spawn` outside `comm`, the threaded backend, and the race-checker host |
//! | `hot-alloc`   | no heap-allocating calls (`Vec::new`, `vec!`, `.to_vec()`, `.clone()`, …) inside functions annotated `// hot-path` |
//! | `float-cast`  | no `as` casts with syntactic float evidence in gradient-math crates (float→int truncation, `f64`→`f32` width collapse) |
//! | `comm-unwrap` | no `.unwrap()`/`.expect()` on `CommError`-carrying Results in `comm`/`core` library code — peer loss and timeouts are runtime conditions, not bugs |
//! | `call-taint`  | no *indirect* nondeterminism in numeric crates: a cheap intra-crate call graph flags calls to helpers whose bodies (transitively) read wall clocks, thread identity, or hash-map iteration order |
//!
//! The first seven are per-file ([`lint_file`]); `call-taint` needs the
//! whole crate ([`scan_functions`] + [`call_taint`], driven by
//! [`crate::scan::lint_repo`]). Every lint is suppressible at the
//! offending line with `// lint:allow(<id>): <justification>` — on the
//! same line or as a full-line comment directly above (justification
//! required by convention, enforced by review).

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{lex, Tok, TokKind};

/// One finding.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Lint id (`map-iter`, `unsafe`, …).
    pub lint: &'static str,
    /// Repo-relative path (unix separators).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable message.
    pub message: String,
}

/// All lint ids, in table order.
pub const LINT_IDS: &[&str] = &[
    "map-iter",
    "unsafe",
    "wall-clock",
    "raw-spawn",
    "hot-alloc",
    "float-cast",
    "comm-unwrap",
    "call-taint",
];

// ---------------------------------------------------------------------------
// Scopes and allow-lists (the repo's invariants, encoded).
// ---------------------------------------------------------------------------

/// Crates whose numerics must be bitwise reproducible (`map-iter`,
/// `float-cast` scope).
const NUMERIC_CRATES: &[&str] = &[
    "crates/tensor/src/",
    "crates/nn/src/",
    "crates/core/src/",
    "crates/comm/src/",
];

/// Files allowed to contain `unsafe` (each block still needs `// SAFETY:`).
const UNSAFE_ALLOWED_FILES: &[&str] = &[
    "crates/tensor/src/workspace.rs",
    // The packed-GEMM microkernels: unchecked panel indexing inside the
    // 8-lane FMA chains, length-asserted at kernel entry.
    "crates/tensor/src/microkernel.rs",
    "crates/comm/src/sparse.rs",
    "crates/bench/src/alloc.rs",
];

/// Wall-clock reads are the threaded backend's business (plus everything
/// under `bench`, which measures real time by definition).
const WALL_CLOCK_ALLOWED: &[&str] = &[
    "crates/core/src/threaded.rs",
    "crates/core/src/engine/threaded.rs",
    // The per-rank loop the threaded backend and the multi-process
    // launcher share: its compute/comm stopwatches are the threaded
    // backend's measurements, factored out with the loop itself. The
    // simulated backend never calls it.
    "crates/core/src/engine/rank.rs",
    // Deadline-based failure detection is wall-clock by nature: recv
    // deadlines are real elapsed time, never part of the simulated clock.
    "crates/comm/src/world.rs",
    // The socket transport's rendezvous retries and recv deadlines, and
    // the mock transport's condvar waits, are the same sanction as
    // world.rs: real elapsed time on the wire path, never numerics.
    "crates/comm/src/socket.rs",
    "crates/comm/src/mock.rs",
    // The model transport's *live* mode implements the same real recv
    // deadlines as the mock for the conformance suite; controlled mode
    // owns all nondeterminism and never reads a clock.
    "crates/analysis/src/model.rs",
    // The transport-conformance suite measures those deadlines (bounded
    // Timeout, PeerGone retry windows) — wall-clock is the subject.
    "crates/comm/tests/",
    "crates/bench/",
    "examples/",
];

/// Raw thread creation: the comm substrate, the threaded backend, and the
/// schedule-exploration harness itself (it hosts rank threads).
const SPAWN_ALLOWED: &[&str] = &[
    "crates/comm/",
    "crates/core/src/threaded.rs",
    "crates/core/src/engine/threaded.rs",
    "crates/analysis/",
];

/// Gradient-math scope for `float-cast`.
const FLOAT_CAST_SCOPE: &[&str] = &["crates/tensor/src/", "crates/nn/src/", "crates/core/src/"];

/// Library scope of `comm-unwrap`: the crates whose Results carry
/// `CommError`. Tests and `bench` assert at will (`#[cfg(test)]` modules
/// inside these files are excluded too).
const COMM_UNWRAP_SCOPE: &[&str] = &["crates/comm/src/", "crates/core/src/"];

/// Method / function names whose `Result` carries a `CommError` (directly
/// or via the transport trait): the receiver-chain evidence `comm-unwrap`
/// looks for.
const COMM_RESULT_FNS: &[&str] = &[
    "send",
    "recv",
    "recv_deadline",
    "recv_any",
    "recv_any_deadline",
    "broadcast",
    "reduce_tree",
    "allreduce_tree",
    "allreduce_ring",
    "sparse_allreduce_tree",
    "ft_allreduce",
    "serve_shard",
    "pull_snapshot",
];

fn in_scope(path: &str, prefixes: &[&str]) -> bool {
    prefixes
        .iter()
        .any(|p| path.starts_with(p) || path == p.trim_end_matches('/'))
}

// ---------------------------------------------------------------------------
// Annotation maps derived from comments.
// ---------------------------------------------------------------------------

/// Lines covered by `lint:allow(...)` comments, per lint id.
struct AllowMap {
    /// `(line, lint_id)` pairs.
    allowed: BTreeSet<(u32, String)>,
}

impl AllowMap {
    fn build(toks: &[Tok]) -> Self {
        let mut allowed = BTreeSet::new();
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Comment {
                continue;
            }
            let Some(pos) = t.text.find("lint:allow(") else {
                continue;
            };
            let rest = &t.text[pos + "lint:allow(".len()..];
            let Some(end) = rest.find(')') else { continue };
            // The allow covers the comment's own line (trailing form) and
            // the line of the next non-comment token (block-above form).
            let mut lines = vec![t.line];
            if let Some(next) = toks[i + 1..].iter().find(|n| n.kind != TokKind::Comment) {
                lines.push(next.line);
            }
            for id in rest[..end].split(',') {
                for &l in &lines {
                    allowed.insert((l, id.trim().to_string()));
                }
            }
        }
        AllowMap { allowed }
    }

    fn is_allowed(&self, line: u32, lint: &str) -> bool {
        self.allowed.contains(&(line, lint.to_string()))
    }
}

/// Lines of comments containing `SAFETY:`.
fn safety_lines(toks: &[Tok]) -> Vec<u32> {
    toks.iter()
        .filter(|t| t.kind == TokKind::Comment && t.text.contains("SAFETY:"))
        .map(|t| t.line)
        .collect()
}

/// Is there a `SAFETY:` comment on `line` or within the 4 lines above?
fn has_safety_comment(safety: &[u32], line: u32) -> bool {
    safety.iter().any(|&s| s <= line && line - s <= 4)
}

// ---------------------------------------------------------------------------
// The lint pass proper.
// ---------------------------------------------------------------------------

/// Lint one file. `path` is the repo-relative path (used for scoping);
/// `src` is the file contents.
pub fn lint_file(path: &str, src: &str) -> Vec<Violation> {
    let toks = lex(src);
    let allow = AllowMap::build(&toks);
    let safety = safety_lines(&toks);
    let mut out = Vec::new();

    let push = |lint: &'static str, line: u32, message: String, out: &mut Vec<Violation>| {
        if !allow.is_allowed(line, lint) {
            out.push(Violation {
                lint,
                file: path.to_string(),
                line,
                message,
            });
        }
    };

    // L1 map-iter: HashMap/HashSet anywhere in numeric crates.
    if in_scope(path, NUMERIC_CRATES) {
        for t in &toks {
            if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
                push(
                    "map-iter",
                    t.line,
                    format!(
                        "{} in a numeric crate: iteration order is nondeterministic and can \
                         reach numerics; use BTreeMap/BTreeSet or an index-keyed Vec",
                        t.text
                    ),
                    &mut out,
                );
            }
        }
    }

    // L2 unsafe: outside the allow-list, or allowed but undocumented.
    for t in &toks {
        if t.kind == TokKind::Ident && t.text == "unsafe" {
            if !in_scope(path, UNSAFE_ALLOWED_FILES) {
                push(
                    "unsafe",
                    t.line,
                    "unsafe outside the allow-list (workspace arena, sparse bit-cast, counting \
                     allocator)"
                        .to_string(),
                    &mut out,
                );
            } else if !has_safety_comment(&safety, t.line) {
                push(
                    "unsafe",
                    t.line,
                    "allowed unsafe without a `// SAFETY:` comment within 4 lines above"
                        .to_string(),
                    &mut out,
                );
            }
        }
    }

    // L3 wall-clock: Instant::now / SystemTime outside the threaded backend.
    if !in_scope(path, WALL_CLOCK_ALLOWED) {
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident {
                continue;
            }
            let hit = match t.text.as_str() {
                "SystemTime" => true,
                "Instant" => matches!(
                    (toks.get(i + 1), toks.get(i + 2)),
                    (Some(a), Some(b)) if a.is("::") && b.is("now")
                ),
                _ => false,
            };
            if hit {
                push(
                    "wall-clock",
                    t.line,
                    format!(
                        "{} outside core::threaded/bench breaks the Simulated backend's \
                         virtual-clock purity",
                        t.text
                    ),
                    &mut out,
                );
            }
        }
    }

    // L4 raw-spawn: thread::spawn outside comm / the threaded backend.
    if !in_scope(path, SPAWN_ALLOWED) {
        for (i, t) in toks.iter().enumerate() {
            if t.kind == TokKind::Ident
                && t.text == "thread"
                && matches!(
                    (toks.get(i + 1), toks.get(i + 2)),
                    (Some(a), Some(b)) if a.is("::") && (b.is("spawn") || b.is("Builder"))
                )
            {
                push(
                    "raw-spawn",
                    t.line,
                    "std::thread::spawn outside comm/core::threaded: threads must go through \
                     the comm substrate so the race checker can see them"
                        .to_string(),
                    &mut out,
                );
            }
        }
    }

    // L5 hot-alloc: allocation calls inside `// hot-path` functions.
    for (lo, hi) in hot_path_bodies(&toks) {
        let body = &toks[lo..hi];
        for (j, t) in body.iter().enumerate() {
            if t.kind != TokKind::Ident {
                continue;
            }
            let prev = j.checked_sub(1).map(|k| &body[k]);
            let next = body.get(j + 1);
            let path_head = matches!(prev, Some(p) if p.is("::"));
            let method = matches!(prev, Some(p) if p.is("."));
            let hit = match t.text.as_str() {
                "new" | "with_capacity" => {
                    path_head
                        && matches!(
                            lo.checked_add(j).and_then(|k| k.checked_sub(2)).and_then(|k| toks.get(k)),
                            Some(h) if h.is("Vec") || h.is("Box") || h.is("String") || h.is("VecDeque")
                        )
                }
                "vec" | "format" => matches!(next, Some(nx) if nx.is("!")),
                "to_vec" | "clone" | "to_owned" | "collect" => method,
                _ => false,
            };
            if hit {
                push(
                    "hot-alloc",
                    t.line,
                    format!(
                        "heap allocation (`{}`) inside a `// hot-path` function: draw buffers \
                         from the Workspace arena instead",
                        t.text
                    ),
                    &mut out,
                );
            }
        }
    }

    // L6 float-cast: `as` casts with syntactic float evidence.
    if in_scope(path, FLOAT_CAST_SCOPE) {
        for v in float_cast_findings(&toks) {
            push("float-cast", v.0, v.1, &mut out);
        }
    }

    // L7 comm-unwrap: `.unwrap()`/`.expect()` on comm-layer Results in
    // library code. Evidence based, like float-cast: flagged only when the
    // receiver's postfix chain syntactically contains a comm call.
    if in_scope(path, COMM_UNWRAP_SCOPE) {
        let test_ranges = cfg_test_line_ranges(&toks);
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident || (t.text != "unwrap" && t.text != "expect") {
                continue;
            }
            if !matches!(i.checked_sub(1).map(|k| &toks[k]), Some(p) if p.is(".")) {
                continue;
            }
            if !matches!(toks.get(i + 1), Some(n) if n.is("(")) {
                continue;
            }
            if test_ranges
                .iter()
                .any(|&(lo, hi)| t.line >= lo && t.line <= hi)
            {
                continue;
            }
            let chain = receiver_chain_names(&toks, i - 1);
            let comm_hit = chain.iter().find(|(n, argc)| {
                COMM_RESULT_FNS.contains(&n.as_str())
                    && match n.as_str() {
                        // `send`/`recv` collide with std channel names;
                        // require the Transport arity — send(dst, tag,
                        // payload), recv(src, tag) — so in-process mpsc
                        // endpoints (1 and 0 args) stay out of scope.
                        "send" => *argc >= 3,
                        "recv" => *argc >= 2,
                        _ => true,
                    }
            });
            if let Some((hit, _)) = comm_hit {
                push(
                    "comm-unwrap",
                    t.line,
                    format!(
                        "`.{}()` on the `CommError`-carrying result of `{hit}`: peer loss and \
                         timeouts are runtime conditions — propagate with `?` or match on them",
                        t.text
                    ),
                    &mut out,
                );
            }
        }
    }

    out
}

/// Line ranges (inclusive) covered by `#[cfg(test)]`-gated blocks — test
/// modules may unwrap comm Results at will.
fn cfg_test_line_ranges(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let is_cfg_test = toks[i].is("#")
            && matches!(toks.get(i + 1), Some(a) if a.is("["))
            && matches!(toks.get(i + 2), Some(a) if a.is("cfg"))
            && matches!(toks.get(i + 3), Some(a) if a.is("("))
            && matches!(toks.get(i + 4), Some(a) if a.is("test"));
        if is_cfg_test {
            // Scan to the block the attribute covers (a `;` means an
            // out-of-line `mod tests;` — no range in this file).
            let mut j = i + 5;
            while j < toks.len() && !toks[j].is("{") && !toks[j].is(";") {
                j += 1;
            }
            if j < toks.len() && toks[j].is("{") {
                let lo = toks[i].line;
                let mut depth = 1i32;
                let mut m = j + 1;
                while m < toks.len() && depth > 0 {
                    if toks[m].is("{") {
                        depth += 1;
                    } else if toks[m].is("}") {
                        depth -= 1;
                    }
                    m += 1;
                }
                let hi = toks.get(m.saturating_sub(1)).map_or(lo, |t| t.line);
                out.push((lo, hi));
                i = m;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Calls in the postfix receiver chain left of the `.` at `dot`, as
/// `(name, top-level arg count)` pairs: `t.recv(src, tag).unwrap()` yields
/// `[("recv", 2)]`, `client.pull_snapshot()?.expect(..)` yields
/// `[("pull_snapshot", 0)]`. Field accesses and the receiver variable
/// contribute no names (they are not calls). The arg count is syntactic —
/// top-level commas plus one — which is exactly enough to tell a Transport
/// `send(dst, tag, data)` from an mpsc `send(value)`.
fn receiver_chain_names(toks: &[Tok], dot: usize) -> Vec<(String, usize)> {
    let mut names = Vec::new();
    let mut k = dot;
    loop {
        if k == 0 {
            break;
        }
        let t = &toks[k - 1];
        if t.is("?") {
            k -= 1;
        } else if t.is(")") {
            // Match the arg-list group back to its `(`, counting the
            // group's top-level commas on the way.
            let mut depth = 1i32;
            let mut commas = 0usize;
            let mut inner = 0usize;
            k -= 1;
            while k > 0 && depth > 0 {
                k -= 1;
                if toks[k].is(")") {
                    depth += 1;
                } else if toks[k].is("(") {
                    depth -= 1;
                } else {
                    if depth == 1 && toks[k].is(",") {
                        commas += 1;
                    }
                    inner += 1;
                }
            }
            let argc = if inner == 0 { 0 } else { commas + 1 };
            // The call's name sits before the arg list.
            if k > 0 && toks[k - 1].kind == TokKind::Ident {
                names.push((toks[k - 1].text.clone(), argc));
                k -= 1;
                if k > 0 && (toks[k - 1].is(".") || toks[k - 1].is("::")) {
                    k -= 1;
                    continue;
                }
            }
            break;
        } else if t.kind == TokKind::Ident {
            // Field or variable link: keep walking through `.`/`::`.
            k -= 1;
            if k > 0 && (toks[k - 1].is(".") || toks[k - 1].is("::")) {
                k -= 1;
                continue;
            }
            break;
        } else {
            break;
        }
    }
    names
}

/// Is this comment the hot-path *annotation* (as opposed to prose that
/// merely mentions it)? The marker must be the first word of the comment:
/// `// hot-path` or `// hot-path: <note>`. Requiring the leading position
/// keeps doc comments that talk *about* the marker from annotating the
/// next function.
fn is_hot_path_marker(comment: &str) -> bool {
    comment
        .trim_start_matches(['/', '*', '!', ' '])
        .starts_with("hot-path")
}

/// Token index ranges (open brace .. close brace, exclusive) of the bodies
/// of functions annotated with a `// hot-path` comment.
fn hot_path_bodies(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Comment && is_hot_path_marker(&t.text) {
            // Find the `fn` this annotation covers (skipping attributes,
            // visibility, and further comments). Give up after a window.
            let mut j = i + 1;
            let mut fn_at = None;
            let mut budget = 40usize;
            while j < toks.len() && budget > 0 {
                if toks[j].is("fn") {
                    fn_at = Some(j);
                    break;
                }
                if toks[j].is("{") || toks[j].is("}") {
                    break; // wandered into other structure
                }
                j += 1;
                budget -= 1;
            }
            if let Some(f) = fn_at {
                // Scan to the body's opening brace (a `;` means no body).
                let mut k = f + 1;
                let mut angle = 0i32;
                while k < toks.len() {
                    let tk = &toks[k];
                    if tk.is("<") {
                        angle += 1;
                    } else if tk.is(">") {
                        angle -= 1;
                    } else if tk.is(";") && angle <= 0 {
                        break;
                    } else if tk.is("{") && angle <= 0 {
                        // Brace-match to the end of the body.
                        let mut depth = 1i32;
                        let open = k + 1;
                        let mut m = open;
                        while m < toks.len() && depth > 0 {
                            if toks[m].is("{") {
                                depth += 1;
                            } else if toks[m].is("}") {
                                depth -= 1;
                            }
                            m += 1;
                        }
                        out.push((open, m.saturating_sub(1)));
                        i = m;
                        break;
                    }
                    k += 1;
                }
            }
        }
        i += 1;
    }
    out
}

const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];
const FLOAT_METHODS: &[&str] = &[
    "floor", "ceil", "round", "trunc", "sqrt", "exp", "ln", "powf", "powi", "log2", "exp2",
    "recip", "ln_1p", "exp_m1",
];

/// Findings for the `float-cast` lint: `(line, message)` pairs.
///
/// Type inference is out of reach for a lexer, so the lint is evidence
/// based: a cast is flagged only when its source expression *syntactically*
/// shows float involvement — a float literal, a nested `as f32`/`as f64`,
/// or a float-only method call (`floor`, `sqrt`, …). Casts whose float-ness
/// hides behind a plain identifier are documented as out of scope
/// (DESIGN.md §4d); int→float index promotions are deliberately not
/// flagged.
fn float_cast_findings(toks: &[Tok]) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !(t.kind == TokKind::Ident && t.text == "as") {
            continue;
        }
        let Some(target) = toks.get(i + 1) else {
            continue;
        };
        let to_int = INT_TYPES.contains(&target.text.as_str());
        let to_float = target.text == "f32" || target.text == "f64";
        if !to_int && !to_float {
            continue;
        }
        // Evidence window: the full postfix chain of the source expression
        // (`(a as f64 * r).ceil()` walks back through `()` groups and
        // `.method` links), or up to 3 tokens back for a bare expression.
        let lo = if i > 0 && toks[i - 1].is(")") {
            let mut k = i;
            loop {
                if k > 0 && toks[k - 1].is(")") {
                    // Match this paren group.
                    let mut depth = 1i32;
                    k -= 1;
                    while k > 0 && depth > 0 {
                        k -= 1;
                        if toks[k].is(")") {
                            depth += 1;
                        } else if toks[k].is("(") {
                            depth -= 1;
                        }
                    }
                    // A method's arg list: step through `.method` to the
                    // receiver and keep walking the chain.
                    if k >= 2 && toks[k - 1].kind == TokKind::Ident && toks[k - 2].is(".") {
                        k -= 2;
                        continue;
                    }
                    break;
                }
                break;
            }
            k
        } else {
            i.saturating_sub(3)
        };
        let span = &toks[lo..i];
        let has_float_literal = span.iter().any(|s| s.is_float_literal());
        let has_width_cast = span.windows(2).any(|w| {
            w[0].kind == TokKind::Ident && w[0].text == "as" && (w[1].is("f32") || w[1].is("f64"))
        });
        let has_float_method = span.windows(2).any(|w| {
            w[0].is(".")
                && w[1].kind == TokKind::Ident
                && FLOAT_METHODS.contains(&w[1].text.as_str())
        });
        let flagged = if to_int {
            has_float_literal || has_width_cast || has_float_method
        } else {
            // int→float promotion is fine; flag only float-width collapse
            // (`(… as f64 …) as f32`) or a float-method source recast.
            has_width_cast || has_float_method
        };
        if flagged {
            out.push((
                t.line,
                format!(
                    "`as {}` cast with float evidence in gradient math: use explicit \
                     round/clamp helpers or `to_bits`/`from_bits` for bit moves",
                    target.text
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// L8 call-taint: intra-crate call-graph nondeterminism propagation.
// ---------------------------------------------------------------------------

/// One function as seen by the `call-taint` scanner.
struct FnInfo {
    /// Bare function name (`fn name(...)`).
    name: String,
    /// Direct nondeterminism source in the body, if any: `(line, kind)`.
    source: Option<(u32, String)>,
    /// Call sites in the body: `(line, bare callee name)`. Method calls
    /// (`x.f()`) are excluded — receivers are unresolvable for a lexer.
    calls: Vec<(u32, String)>,
}

/// Per-file input to [`call_taint`]: the functions of one source file,
/// plus the lines where the lint is suppressed.
pub struct FileFns {
    path: String,
    fns: Vec<FnInfo>,
    /// Lines carrying `lint:allow(call-taint)`.
    allowed: BTreeSet<u32>,
}

/// Names never resolved as intra-crate calls: ubiquitous constructor /
/// std-path tails whose bare name would mis-resolve (`Vec::new` vs. a
/// crate's own unique `fn new`).
const TAINT_RESOLVE_DENY: &[&str] = &[
    "new", "default", "from", "into", "clone", "now", "current", "len", "min", "max",
];

/// Keyword-shaped `ident (` sequences that are not calls.
const TAINT_CALL_KEYWORDS: &[&str] = &["match", "return", "if", "while", "for", "in", "move"];

/// Extract the function list of one file for the `call-taint` pass.
///
/// The scanner is deliberately shallow: `fn name … { body }` with
/// angle-bracket-aware scanning to the body brace (trait signatures with
/// `;` bodies contribute nothing). Closures and nested items are
/// attributed to the enclosing function — good enough for propagation.
pub fn scan_functions(path: &str, src: &str) -> FileFns {
    let toks = lex(src);
    let allow = AllowMap::build(&toks);
    let allowed: BTreeSet<u32> = toks
        .iter()
        .map(|t| t.line)
        .filter(|&l| allow.is_allowed(l, "call-taint"))
        .collect();
    let wall_clock_sanctioned = in_scope(path, WALL_CLOCK_ALLOWED);
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !(toks[i].is("fn") && matches!(toks.get(i + 1), Some(n) if n.kind == TokKind::Ident)) {
            i += 1;
            continue;
        }
        let name = toks[i + 1].text.clone();
        // Scan to the body's opening brace; `;` before it means no body.
        let mut k = i + 2;
        let mut angle = 0i32;
        let mut body: Option<(usize, usize)> = None;
        while k < toks.len() {
            let tk = &toks[k];
            if tk.is("<") {
                angle += 1;
            } else if tk.is(">") {
                angle -= 1;
            } else if tk.is(";") && angle <= 0 {
                break;
            } else if tk.is("{") && angle <= 0 {
                let open = k + 1;
                let mut depth = 1i32;
                let mut m = open;
                while m < toks.len() && depth > 0 {
                    if toks[m].is("{") {
                        depth += 1;
                    } else if toks[m].is("}") {
                        depth -= 1;
                    }
                    m += 1;
                }
                body = Some((open, m.saturating_sub(1)));
                break;
            }
            k += 1;
        }
        let Some((lo, hi)) = body else {
            i += 2;
            continue;
        };
        let mut info = FnInfo {
            name,
            source: None,
            calls: Vec::new(),
        };
        for j in lo..hi {
            let t = &toks[j];
            if t.kind != TokKind::Ident {
                continue;
            }
            let sanctioned =
                |id: &str| allow.is_allowed(t.line, id) || allow.is_allowed(t.line, "call-taint");
            // Direct sources, honoring the same sanctions as the direct lints.
            let src_kind = match t.text.as_str() {
                "SystemTime" if !wall_clock_sanctioned && !sanctioned("wall-clock") => {
                    Some("wall-clock read (`SystemTime`)")
                }
                "Instant"
                    if matches!(
                        (toks.get(j + 1), toks.get(j + 2)),
                        (Some(a), Some(b)) if a.is("::") && b.is("now")
                    ) && !wall_clock_sanctioned
                        && !sanctioned("wall-clock") =>
                {
                    Some("wall-clock read (`Instant::now`)")
                }
                "thread"
                    if matches!(
                        (toks.get(j + 1), toks.get(j + 2)),
                        (Some(a), Some(b)) if a.is("::") && b.is("current")
                    ) && !sanctioned("call-taint") =>
                {
                    Some("thread identity (`thread::current`)")
                }
                "HashMap" | "HashSet" if !sanctioned("map-iter") => {
                    Some("hash iteration order (`HashMap`/`HashSet`)")
                }
                _ => None,
            };
            if let Some(kind) = src_kind {
                if info.source.is_none() {
                    info.source = Some((t.line, kind.to_string()));
                }
                continue;
            }
            // Call sites: `ident (` not preceded by `.` (method) or `fn`.
            if !matches!(toks.get(j + 1), Some(n) if n.is("(")) {
                continue;
            }
            if TAINT_CALL_KEYWORDS.contains(&t.text.as_str()) {
                continue;
            }
            if matches!(j.checked_sub(1).map(|k| &toks[k]), Some(p) if p.is(".") || p.is("fn")) {
                continue;
            }
            info.calls.push((t.line, t.text.clone()));
        }
        fns.push(info);
        i = hi + 1;
    }
    FileFns {
        path: path.to_string(),
        fns,
        allowed,
    }
}

/// The crate-level `call-taint` pass: propagate nondeterminism along the
/// intra-crate call graph and flag call sites in numeric-crate files whose
/// callee (transitively) reaches a source.
///
/// Resolution is by unique bare name: a callee name defined more than once
/// in the crate is ambiguous and conservatively skipped (transport trait
/// impls all define `send`/`recv` — tainting through those would be
/// guesswork). Sources sanctioned by the direct lints' allow-lists
/// (`WALL_CLOCK_ALLOWED`, `lint:allow(map-iter)`, …) do not taint.
pub fn call_taint(files: &[FileFns]) -> Vec<Violation> {
    // Unique-name resolution table: name -> (file idx, fn idx).
    let mut defs: BTreeMap<&str, Option<(usize, usize)>> = BTreeMap::new();
    for (fi, f) in files.iter().enumerate() {
        for (gi, g) in f.fns.iter().enumerate() {
            if TAINT_RESOLVE_DENY.contains(&g.name.as_str()) {
                continue;
            }
            defs.entry(&g.name)
                .and_modify(|e| *e = None) // duplicate: ambiguous
                .or_insert(Some((fi, gi)));
        }
    }
    let resolve = |name: &str| defs.get(name).copied().flatten();

    // Per-fn taint: the human-readable root-source description.
    let mut taint: Vec<Vec<Option<String>>> = files
        .iter()
        .map(|f| {
            f.fns
                .iter()
                .map(|g| {
                    g.source
                        .as_ref()
                        .map(|(line, kind)| format!("{kind} in `{}` at {}:{line}", g.name, f.path))
                })
                .collect()
        })
        .collect();

    // Fixpoint propagation (bounded by the call-graph depth).
    let mut changed = true;
    while changed {
        changed = false;
        for (fi, f) in files.iter().enumerate() {
            for (gi, g) in f.fns.iter().enumerate() {
                if taint[fi][gi].is_some() {
                    continue;
                }
                for (_, callee) in &g.calls {
                    if let Some((tf, tg)) = resolve(callee) {
                        if let Some(root) = taint[tf][tg].clone() {
                            taint[fi][gi] = Some(root);
                            changed = true;
                            break;
                        }
                    }
                }
            }
        }
    }

    // Findings: tainted call sites in numeric-crate files.
    let mut out = Vec::new();
    for f in files {
        if !in_scope(&f.path, NUMERIC_CRATES) {
            continue;
        }
        for g in &f.fns {
            for (line, callee) in &g.calls {
                if f.allowed.contains(line) {
                    continue;
                }
                let Some((tf, tg)) = resolve(callee) else {
                    continue;
                };
                if let Some(root) = &taint[tf][tg] {
                    out.push(Violation {
                        lint: "call-taint",
                        file: f.path.clone(),
                        line: *line,
                        message: format!(
                            "call to `{callee}` reaches a nondeterminism source — {root}; \
                             numerics must not depend on clocks, thread identity, or hash order"
                        ),
                    });
                }
            }
        }
    }
    out
}

/// Run `call-taint` on a single file as a degenerate one-file crate —
/// what the fixture corpus and unit tests use.
pub fn call_taint_single(path: &str, src: &str) -> Vec<Violation> {
    call_taint(&[scan_functions(path, src)])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lints_of(path: &str, src: &str) -> Vec<&'static str> {
        lint_file(path, src).into_iter().map(|v| v.lint).collect()
    }

    #[test]
    fn map_iter_fires_in_numeric_crates_only() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(lints_of("crates/core/src/x.rs", src), vec!["map-iter"]);
        assert!(lints_of("crates/data/src/x.rs", src).is_empty());
    }

    #[test]
    fn map_iter_respects_allow() {
        let src = "// lint:allow(map-iter): build-time only, never iterated\n\
                   use std::collections::HashMap;\n";
        assert!(lints_of("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn unsafe_outside_allowlist() {
        let src = "fn f() { unsafe { std::hint::unreachable_unchecked() } }\n";
        assert_eq!(lints_of("crates/core/src/x.rs", src), vec!["unsafe"]);
    }

    #[test]
    fn unsafe_allowed_file_requires_safety_comment() {
        let bare = "unsafe fn g() {}\n";
        assert_eq!(
            lints_of("crates/tensor/src/workspace.rs", bare),
            vec!["unsafe"]
        );
        let documented =
            "// SAFETY: caller guarantees the buffer is fully written.\nunsafe fn g() {}\n";
        assert!(lints_of("crates/tensor/src/workspace.rs", documented).is_empty());
    }

    #[test]
    fn unsafe_allowlist_scopes_to_microkernel_not_siblings() {
        // The packed-GEMM microkernel file is sanctioned (with a SAFETY
        // comment), but its siblings in the packed path are not: pack.rs
        // and tune.rs must stay fully safe.
        let bare = "unsafe fn g() {}\n";
        assert_eq!(
            lints_of("crates/tensor/src/microkernel.rs", bare),
            vec!["unsafe"]
        );
        let documented =
            "// SAFETY: panel indices are bounded by the kernel-entry asserts.\nunsafe fn g() {}\n";
        assert!(lints_of("crates/tensor/src/microkernel.rs", documented).is_empty());
        let block = "fn f() { unsafe { std::hint::unreachable_unchecked() } }\n";
        assert_eq!(lints_of("crates/tensor/src/pack.rs", block), vec!["unsafe"]);
        assert_eq!(lints_of("crates/tensor/src/tune.rs", block), vec!["unsafe"]);
    }

    #[test]
    fn wall_clock_scoping() {
        let src = "let t = std::time::Instant::now();\n";
        assert_eq!(
            lints_of("crates/core/src/engine/simulated.rs", src),
            vec!["wall-clock"]
        );
        assert!(lints_of("crates/core/src/threaded.rs", src).is_empty());
        assert!(lints_of("crates/bench/src/kernels.rs", src).is_empty());
        // The transport impls and the shared per-rank loop carry recv
        // deadlines / comm stopwatches — sanctioned alongside world.rs.
        assert!(lints_of("crates/core/src/engine/rank.rs", src).is_empty());
        assert!(lints_of("crates/comm/src/socket.rs", src).is_empty());
        assert!(lints_of("crates/comm/src/mock.rs", src).is_empty());
        // The model transport's live mode mirrors the mock's real recv
        // deadlines — sanctioned; its controlled mode never reads a clock.
        assert!(lints_of("crates/analysis/src/model.rs", src).is_empty());
        assert!(lints_of("crates/comm/tests/transport_conformance.rs", src).is_empty());
    }

    #[test]
    fn raw_spawn_scoping() {
        let src = "std::thread::spawn(|| {});\n";
        assert_eq!(lints_of("crates/nn/src/model.rs", src), vec!["raw-spawn"]);
        assert!(lints_of("crates/comm/src/ps.rs", src).is_empty());
        assert!(lints_of("crates/analysis/src/schedule.rs", src).is_empty());
    }

    #[test]
    fn hot_alloc_fires_only_in_annotated_fns() {
        let cold = "pub fn f() { let v = vec![0.0; 8]; }\n";
        assert!(lints_of("crates/tensor/src/conv.rs", cold).is_empty());
        let hot = "// hot-path\npub fn f() { let v = vec![0.0; 8]; }\n";
        assert_eq!(
            lints_of("crates/tensor/src/conv.rs", hot),
            vec!["hot-alloc"]
        );
        let hot_clone =
            "// hot-path\npub fn f(x: &[f32]) { let v = x.to_vec(); let w = v.clone(); }\n";
        assert_eq!(
            lints_of("crates/tensor/src/conv.rs", hot_clone),
            vec!["hot-alloc", "hot-alloc"]
        );
    }

    #[test]
    fn hot_alloc_allows_workspace_draws() {
        let src = "// hot-path\npub fn f(ws: &mut Workspace) { let v = ws.take_f32(8); }\n";
        assert!(lints_of("crates/tensor/src/conv.rs", src).is_empty());
    }

    #[test]
    fn hot_alloc_trailing_allow() {
        let src = "// hot-path\npub fn f(d: &[usize]) {\n\
                   let dims = d.to_vec(); // lint:allow(hot-alloc): O(ndims) shape metadata\n}\n";
        assert!(lints_of("crates/tensor/src/conv.rs", src).is_empty());
    }

    #[test]
    fn float_cast_truncation_flagged() {
        let src = "fn f(x: f32) -> usize { (x * 0.5) as usize }\n";
        assert_eq!(lints_of("crates/nn/src/loss.rs", src), vec!["float-cast"]);
        let ceil = "fn k(m: usize, r: f64) -> usize { ((m as f64 * r).ceil()) as usize }\n";
        assert_eq!(
            lints_of("crates/core/src/compress.rs", ceil),
            vec!["float-cast"]
        );
    }

    #[test]
    fn float_cast_sees_through_postfix_chains() {
        // No outer parens: the evidence sits behind `.ceil()` and must be
        // reached by walking the postfix chain.
        let src = "fn k(m: usize, r: f64) -> usize { (m as f64 * r).ceil() as usize }\n";
        assert_eq!(
            lints_of("crates/core/src/compress.rs", src),
            vec!["float-cast"]
        );
        let sqrt = "fn f(x: f32) -> i32 { x.abs().sqrt() as i32 }\n";
        assert_eq!(
            lints_of("crates/core/src/compress.rs", sqrt),
            vec!["float-cast"]
        );
    }

    #[test]
    fn hot_path_marker_must_lead_the_comment() {
        // Prose that merely *mentions* the marker must not annotate the fn.
        let src = "/// Finds functions annotated with a `// hot-path` comment.\n\
                   fn scan() { let v = Vec::new(); }\n";
        assert!(lints_of("crates/tensor/src/conv.rs", src).is_empty());
        let real = "// hot-path: inner GEMM loop\nfn f() { let v = Vec::new(); }\n";
        assert_eq!(
            lints_of("crates/tensor/src/conv.rs", real),
            vec!["hot-alloc"]
        );
    }

    #[test]
    fn float_cast_width_collapse_flagged() {
        let src = "fn f(a: f64, n: usize) -> f32 { (a / n as f64) as f32 }\n";
        assert_eq!(lints_of("crates/nn/src/loss.rs", src), vec!["float-cast"]);
    }

    #[test]
    fn float_cast_ignores_int_promotions() {
        let src = "fn f(k: usize) -> f32 { 1.0 / (k * k) as f32 }\n\
                   fn g(rows: usize, c: usize) -> u64 { (rows * c) as u64 }\n";
        assert!(lints_of("crates/nn/src/layers/pool_avg.rs", src).is_empty());
    }

    #[test]
    fn outside_scanned_scope_is_silent() {
        let src = "use std::collections::HashMap;\nstd::thread::spawn(|| {});\n";
        assert!(lints_of("crates/bench/src/figures.rs", src)
            .iter()
            .all(|l| *l != "map-iter"));
    }

    #[test]
    fn comm_unwrap_flags_unwrap_and_expect_on_comm_results() {
        let src = "fn f(t: &MockTransport) { let v = t.recv(1, 7).unwrap(); }\n";
        assert_eq!(
            lints_of("crates/comm/src/tree.rs", src),
            vec!["comm-unwrap"]
        );
        let expect = "fn f(w: &World) { w.send(0, TAG, buf).expect(\"send\"); }\n";
        assert_eq!(
            lints_of("crates/core/src/engine/rank.rs", expect),
            vec!["comm-unwrap"]
        );
    }

    #[test]
    fn comm_unwrap_walks_the_postfix_chain() {
        // The comm call sits behind a `?`-link and a field access.
        let src = "fn f(s: &S) { let v = s.world.recv_any(&c).unwrap(); }\n";
        assert_eq!(lints_of("crates/comm/src/ps.rs", src), vec!["comm-unwrap"]);
    }

    #[test]
    fn comm_unwrap_ignores_non_comm_receivers_tests_and_other_crates() {
        // Non-comm receiver chains are fine.
        let lock = "fn f(m: &Mutex<u32>) { let g = m.lock().unwrap(); }\n";
        assert!(lints_of("crates/comm/src/world.rs", lock).is_empty());
        // `#[cfg(test)]` modules assert at will.
        let test_mod = "#[cfg(test)]\nmod tests {\n    fn f(t: &T) { t.recv(0, 1).unwrap(); }\n}\n";
        assert!(lints_of("crates/comm/src/tree.rs", test_mod).is_empty());
        // Out of scope entirely.
        let src = "fn f(t: &T) { t.recv(0, 1).unwrap(); }\n";
        assert!(lints_of("crates/bench/src/engine.rs", src).is_empty());
        // Allowed with justification.
        let allowed = "fn f(t: &T) {\n    t.recv(0, 1).unwrap(); \
                       // lint:allow(comm-unwrap): self-message, cannot fail\n}\n";
        assert!(lints_of("crates/comm/src/tree.rs", allowed).is_empty());
    }

    #[test]
    fn call_taint_flags_indirect_sources_through_helpers() {
        let src = "use std::time::Instant;\n\
                   fn seed() -> u64 { Instant::now().elapsed().subsec_nanos() as u64 }\n\
                   fn jitter() -> u64 { seed() / 2 }\n\
                   pub fn scale(g: &mut [f32]) { let s = jitter(); g[0] += s as f32; }\n";
        let v = call_taint_single("crates/nn/src/opt.rs", src);
        // Both hops are flagged: jitter->seed and scale->jitter.
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|x| x.lint == "call-taint"));
        assert!(v.iter().all(|x| x.message.contains("Instant::now")));
        assert!(v.iter().all(|x| x.message.contains("`seed`")));
    }

    #[test]
    fn call_taint_covers_thread_identity() {
        let src =
            "fn salt() -> u64 { format!(\"{:?}\", std::thread::current().id()).len() as u64 }\n\
                   pub fn mix(x: &mut [f32]) { x[0] += salt() as f32; }\n";
        let v = call_taint_single("crates/core/src/sgd.rs", src);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("thread::current"));
    }

    #[test]
    fn call_taint_respects_sanctions_and_allows() {
        // Wall-clock in a sanctioned file does not taint.
        let src = "use std::time::Instant;\n\
                   fn stopwatch() -> f64 { Instant::now().elapsed().as_secs_f64() }\n\
                   pub fn step() { let _ = stopwatch(); }\n";
        assert!(call_taint_single("crates/core/src/threaded.rs", src).is_empty());
        // An allowed call site is suppressed.
        let allowed = "use std::time::Instant;\n\
                       fn seed() -> u64 { Instant::now().elapsed().subsec_nanos() as u64 }\n\
                       pub fn log_step() {\n\
                       let s = seed(); // lint:allow(call-taint): diagnostics only\n\
                       let _ = s;\n}\n";
        assert!(call_taint_single("crates/core/src/log.rs", allowed).is_empty());
        // Ambiguous names (defined twice) are conservatively skipped.
        let dup = "use std::time::Instant;\n\
                   mod a { pub fn tick() -> u64 { 0 } }\n\
                   mod b { pub fn tick() -> u64 { Instant::now().subsec_nanos() as u64 } }\n\
                   pub fn run() { let _ = a::tick(); }\n";
        let v = call_taint_single("crates/core/src/dup.rs", dup);
        assert!(v.is_empty(), "ambiguous `tick` must not resolve: {v:?}");
    }

    #[test]
    fn call_taint_outside_numeric_crates_is_silent() {
        let src = "use std::time::Instant;\n\
                   fn seed() -> u64 { Instant::now().elapsed().subsec_nanos() as u64 }\n\
                   pub fn run() { let _ = seed(); }\n";
        assert!(call_taint_single("crates/bench/src/figures.rs", src).is_empty());
    }
}

//! `repro analyze` — the static-analysis and race-checking gate.
//!
//! Runs the `sasgd-analysis` legs (the repo-invariant lint pass, the
//! schedule-exploration race checker, and — with `--model` — the DPOR
//! model checker) and packages the outcome as a bench [`Artifact`]: a
//! human-readable report plus the machine-readable `ANALYSIS.json` CI
//! consumes. The second tuple element is the verdict — `repro` exits
//! nonzero when it is `false`.

use crate::figures::Artifact;

/// Run the analyzer and return `(artifact, ok)`. `model` adds the DPOR
/// model-checker leg (exhaustive interleaving exploration — minutes, not
/// seconds, so it is opt-in).
pub fn analyze(model: bool) -> (Artifact, bool) {
    let analysis = if model {
        sasgd_analysis::run_all_with_model()
    } else {
        sasgd_analysis::run_all()
    };
    let ok = analysis.ok();
    let artifact = Artifact {
        name: "analyze".to_string(),
        report: analysis.to_text(),
        csvs: vec![("ANALYSIS.json".to_string(), analysis.to_json())],
    };
    (artifact, ok)
}

//! TCP socket transport: the multi-process implementation of
//! [`Transport`].
//!
//! Ranks live in separate OS processes and exchange [`crate::protocol`]
//! frames over a full mesh of loopback (or LAN) TCP connections. The
//! rendezvous is deterministic: every rank binds its own well-known
//! address, dials every *lower* rank (retrying until the peer's listener
//! is up), and accepts one connection from every *higher* rank; the first
//! frame on each connection is a hello carrying the dialer's rank. One
//! full-duplex stream per peer pair results, exactly `p·(p−1)/2` sockets.
//!
//! Each endpoint runs one reader thread per peer (raw `thread::spawn` is
//! sanctioned for `crates/comm/` by the analyzer's spawn allow-list — this
//! *is* the communication layer). Readers decode frames and forward them
//! into a single crossbeam channel, which makes the receive path identical
//! in shape to [`crate::world::Communicator`]: the endpoint drains the
//! channel, parking non-matching frames in an ordered pending map
//! (`BTreeMap`, per the `map-iter` lint). A reader that observes EOF or an
//! I/O error marks its peer gone and exits; subsequent sends to that peer
//! fail with [`CommError::PeerGone`]. Unlike the in-process channel world,
//! hangup detection rides the wire, so there is a window where a send to a
//! just-crashed peer still buffers successfully — callers probing for a
//! dead peer retry until the error surfaces (the conformance suite and
//! `ft_allreduce`'s reroute path both already do).
//!
//! Dropping the endpoint shuts every stream down both ways, which is what
//! the surviving peers' readers observe as the hangup.

// Rendezvous retries and receive deadlines are wall-clock by nature (same
// sanction as world.rs); the numeric path never reads these clocks. This
// file is on the analyzer's `wall-clock` allow-list for that reason.

use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

use crate::protocol::{read_frame, write_frame, Frame, HELLO_TAG};
use crate::transport::Transport;
use crate::world::{CommError, Traffic};

/// How long a dialing rank keeps retrying a peer whose listener is not up
/// yet, and how long an accepting rank waits for its higher-ranked peers.
pub const DEFAULT_RENDEZVOUS: Duration = Duration::from_secs(30);

/// Polling quantum for connect retries and nonblocking accepts.
const POLL: Duration = Duration::from_millis(5);

/// A rank endpoint over TCP: implements [`Transport`] for rank worlds
/// whose members are separate OS processes.
pub struct SocketTransport {
    rank: usize,
    size: usize,
    /// One write half per peer (`None` at our own index).
    writers: Vec<Option<TcpStream>>,
    /// Frames forwarded by the reader threads.
    rx: Receiver<Frame>,
    /// Keeps the channel open while this endpoint lives, so a blocking
    /// receive blocks (matching the in-process world) instead of
    /// disconnecting when every reader has exited.
    _self_tx: Sender<Frame>,
    /// Out-of-order arrivals parked until a matching receive (ordered map:
    /// `map-iter` lint, same rationale as `world.rs`).
    pending: BTreeMap<(usize, u64), VecDeque<Vec<f32>>>,
    /// Peers whose reader observed hangup; sends to them fail fast.
    gone: Arc<Vec<AtomicBool>>,
    op_counter: u64,
    default_deadline: Option<Duration>,
    traffic: Arc<Traffic>,
    readers: Vec<JoinHandle<()>>,
}

/// Loopback addresses for a `p`-rank world: `127.0.0.1:base+rank`.
pub fn loopback_addrs(p: usize, base_port: u16) -> Vec<SocketAddr> {
    (0..p)
        .map(|r| {
            SocketAddr::from((
                [127, 0, 0, 1],
                base_port.checked_add(r as u16).expect("port range"),
            ))
        })
        .collect()
}

impl SocketTransport {
    /// Join the world as `rank`: bind `addrs[rank]`, then rendezvous with
    /// every peer (see module docs). Blocks until the full mesh is up or
    /// `rendezvous` expires.
    pub fn connect(rank: usize, addrs: &[SocketAddr], rendezvous: Duration) -> io::Result<Self> {
        let listener = TcpListener::bind(addrs[rank])?;
        Self::with_listener(rank, listener, addrs, rendezvous)
    }

    /// [`SocketTransport::connect`] with a pre-bound listener (lets a
    /// harness bind every rank on port 0 first and distribute the real
    /// addresses, eliminating port races in tests).
    pub fn with_listener(
        rank: usize,
        listener: TcpListener,
        addrs: &[SocketAddr],
        rendezvous: Duration,
    ) -> io::Result<Self> {
        let size = addrs.len();
        assert!(rank < size, "rank {rank} outside world of {size}");
        let deadline = Instant::now() + rendezvous;
        let mut streams: Vec<Option<TcpStream>> = (0..size).map(|_| None).collect();

        // Dial every lower rank, announcing ourselves with a hello frame.
        for (peer, slot) in streams.iter_mut().enumerate().take(rank) {
            let mut stream = dial(addrs[peer], deadline)?;
            stream.set_nodelay(true)?;
            write_frame(&mut stream, rank, HELLO_TAG, &[])?;
            *slot = Some(stream);
        }

        // Accept one connection from every higher rank; the hello frame
        // tells us who dialed (accept order is arbitrary).
        listener.set_nonblocking(true)?;
        let expected = size - rank - 1;
        let mut accepted = 0usize;
        while accepted < expected {
            let (mut stream, _) = match listener.accept() {
                Ok(conn) => conn,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!(
                                "rank {rank}: rendezvous expired with {accepted}/{expected} \
                                 higher-ranked peers connected"
                            ),
                        ));
                    }
                    std::thread::sleep(POLL);
                    continue;
                }
                Err(e) => return Err(e),
            };
            stream.set_nonblocking(false)?;
            stream.set_nodelay(true)?;
            stream.set_read_timeout(Some(rendezvous))?;
            let hello = read_frame(&mut stream)?.ok_or_else(|| {
                io::Error::new(io::ErrorKind::UnexpectedEof, "peer hung up before hello")
            })?;
            if hello.tag != HELLO_TAG || hello.from <= rank || hello.from >= size {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "rank {rank}: bad hello (from {}, tag {})",
                        hello.from, hello.tag
                    ),
                ));
            }
            if streams[hello.from].replace(stream).is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("rank {rank}: duplicate hello from rank {}", hello.from),
                ));
            }
            streams[hello.from]
                .as_ref()
                .expect("just inserted")
                .set_read_timeout(None)?;
            accepted += 1;
        }

        // Mesh complete: spawn one reader per peer.
        let (tx, rx) = unbounded();
        let gone: Arc<Vec<AtomicBool>> =
            Arc::new((0..size).map(|_| AtomicBool::new(false)).collect());
        let mut writers: Vec<Option<TcpStream>> = (0..size).map(|_| None).collect();
        let mut readers = Vec::new();
        for (peer, slot) in streams.into_iter().enumerate() {
            let Some(stream) = slot else { continue };
            let read_half = stream.try_clone()?;
            writers[peer] = Some(stream);
            let tx = tx.clone();
            let gone = Arc::clone(&gone);
            readers.push(std::thread::spawn(move || {
                reader_loop(read_half, peer, &tx, &gone);
            }));
        }
        Ok(SocketTransport {
            rank,
            size,
            writers,
            rx,
            _self_tx: tx,
            pending: BTreeMap::new(),
            gone,
            op_counter: 0,
            default_deadline: None,
            traffic: Arc::new(Traffic::default()),
            readers,
        })
    }

    /// Set or clear this endpoint's default receive deadline (plain `recv`
    /// calls become deadline-bounded, mirroring
    /// [`crate::world::CommWorld::set_default_deadline`]).
    pub fn set_default_deadline(&mut self, deadline: Option<Duration>) {
        self.default_deadline = deadline;
    }

    /// This process's traffic counters (elements/messages sent by this
    /// endpoint — per-process, unlike the world-global counters of the
    /// in-process transport).
    pub fn traffic(&self) -> Arc<Traffic> {
        Arc::clone(&self.traffic)
    }

    fn recv_inner(
        &mut self,
        src: usize,
        tag: u64,
        timeout: Option<Duration>,
    ) -> Result<Vec<f32>, CommError> {
        if let Some(q) = self.pending.get_mut(&(src, tag)) {
            if let Some(m) = q.pop_front() {
                return Ok(m);
            }
        }
        let deadline = timeout.map(|t| Instant::now() + t);
        loop {
            match self.next_frame(deadline, src, tag) {
                Ok(f) if f.from == src && f.tag == tag => return Ok(f.payload),
                Ok(f) => self
                    .pending
                    .entry((f.from, f.tag))
                    .or_default()
                    .push_back(f.payload),
                Err(e) => return Err(e),
            }
        }
    }

    fn recv_any_inner(
        &mut self,
        candidates: &[(usize, u64)],
        timeout: Option<Duration>,
    ) -> Result<(usize, Vec<f32>), CommError> {
        let &(first_src, first_tag) = candidates.first().ok_or(CommError::NoCandidates)?;
        for &(src, tag) in candidates {
            if let Some(q) = self.pending.get_mut(&(src, tag)) {
                if let Some(m) = q.pop_front() {
                    return Ok((src, m));
                }
            }
        }
        let deadline = timeout.map(|t| Instant::now() + t);
        loop {
            match self.next_frame(deadline, first_src, first_tag) {
                Ok(f) if candidates.contains(&(f.from, f.tag)) => return Ok((f.from, f.payload)),
                Ok(f) => self
                    .pending
                    .entry((f.from, f.tag))
                    .or_default()
                    .push_back(f.payload),
                Err(e) => return Err(e),
            }
        }
    }

    /// One frame off the reader channel, bounded by `deadline` when
    /// present; `(src, tag)` only label the error.
    fn next_frame(
        &self,
        deadline: Option<Instant>,
        src: usize,
        tag: u64,
    ) -> Result<Frame, CommError> {
        match deadline {
            None => self
                .rx
                .recv()
                .map_err(|_| CommError::Disconnected { src, tag }),
            Some(dl) => {
                let remaining = dl.saturating_duration_since(Instant::now());
                self.rx.recv_timeout(remaining).map_err(|e| match e {
                    RecvTimeoutError::Timeout => CommError::Timeout { src, tag },
                    RecvTimeoutError::Disconnected => CommError::Disconnected { src, tag },
                })
            }
        }
    }
}

impl Transport for SocketTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send(&mut self, dst: usize, tag: u64, payload: Vec<f32>) -> Result<(), CommError> {
        self.traffic
            .elements
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        self.traffic.messages.fetch_add(1, Ordering::Relaxed);
        if dst == self.rank {
            // Loopback without touching the wire, like the channel world's
            // self-send. No collective uses it, but the contract allows it.
            self.pending
                .entry((dst, tag))
                .or_default()
                .push_back(payload);
            return Ok(());
        }
        if self.gone[dst].load(Ordering::Acquire) {
            return Err(CommError::PeerGone { peer: dst });
        }
        let stream = self.writers[dst].as_mut().expect("mesh stream");
        write_frame(stream, self.rank, tag, &payload).map_err(|_| {
            self.gone[dst].store(true, Ordering::Release);
            CommError::PeerGone { peer: dst }
        })
    }

    fn recv(&mut self, src: usize, tag: u64) -> Result<Vec<f32>, CommError> {
        self.recv_inner(src, tag, self.default_deadline)
    }

    fn recv_deadline(
        &mut self,
        src: usize,
        tag: u64,
        timeout: Duration,
    ) -> Result<Vec<f32>, CommError> {
        self.recv_inner(src, tag, Some(timeout))
    }

    fn recv_any(&mut self, candidates: &[(usize, u64)]) -> Result<(usize, Vec<f32>), CommError> {
        self.recv_any_inner(candidates, self.default_deadline)
    }

    fn recv_any_deadline(
        &mut self,
        candidates: &[(usize, u64)],
        timeout: Duration,
    ) -> Result<(usize, Vec<f32>), CommError> {
        self.recv_any_inner(candidates, Some(timeout))
    }

    fn next_op(&mut self) -> u64 {
        let op = self.op_counter;
        self.op_counter += 1;
        op
    }
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        // Shut every stream down both ways: peers' readers observe the
        // hangup, and our own readers (blocked on the same sockets) wake
        // with EOF so the joins below cannot hang.
        for w in self.writers.iter().flatten() {
            let _ = w.shutdown(Shutdown::Both);
        }
        for h in self.readers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Decode frames off one peer's stream until hangup, forwarding into the
/// endpoint's channel. Any read failure (EOF, reset, bad frame) marks the
/// peer gone — from this side's perspective they are indistinguishable.
fn reader_loop(
    mut stream: TcpStream,
    peer: usize,
    tx: &Sender<Frame>,
    gone: &Arc<Vec<AtomicBool>>,
) {
    loop {
        match read_frame(&mut stream) {
            Ok(Some(frame)) => {
                if tx.send(frame).is_err() {
                    return; // endpoint dropped mid-read; nothing to mark
                }
            }
            Ok(None) | Err(_) => {
                gone[peer].store(true, Ordering::Release);
                return;
            }
        }
    }
}

/// Dial `addr`, retrying while the peer's listener may not be up yet.
fn dial(addr: SocketAddr, deadline: Instant) -> io::Result<TcpStream> {
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!("rendezvous with {addr} expired: {e}"),
                    ));
                }
                std::thread::sleep(POLL);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::allreduce_tree;
    use std::thread;

    /// Build a `p`-rank socket world on ephemeral ports, one endpoint per
    /// test thread (the conformance suite builds its own copy of this —
    /// integration tests cannot see `cfg(test)` helpers).
    fn socket_world(p: usize) -> Vec<SocketTransport> {
        let listeners: Vec<TcpListener> = (0..p)
            .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind ephemeral"))
            .collect();
        let addrs: Vec<SocketAddr> = listeners
            .iter()
            .map(|l| l.local_addr().expect("local addr"))
            .collect();
        let mut out: Vec<Option<SocketTransport>> = (0..p).map(|_| None).collect();
        thread::scope(|s| {
            let handles: Vec<_> = listeners
                .into_iter()
                .enumerate()
                .map(|(rank, listener)| {
                    let addrs = addrs.clone();
                    s.spawn(move || {
                        SocketTransport::with_listener(rank, listener, &addrs, DEFAULT_RENDEZVOUS)
                            .expect("rendezvous")
                    })
                })
                .collect();
            for (slot, h) in out.iter_mut().zip(handles) {
                *slot = Some(h.join().expect("rendezvous thread"));
            }
        });
        out.into_iter().map(|o| o.expect("endpoint")).collect()
    }

    #[test]
    fn mesh_rendezvous_and_ping_pong() {
        let mut world = socket_world(2);
        let mut c1 = world.pop().expect("rank 1");
        let mut c0 = world.pop().expect("rank 0");
        let t = thread::spawn(move || {
            let v = c1.recv(0, 7).expect("recv");
            c1.send(0, 8, v.iter().map(|x| x * 2.0).collect())
                .expect("send");
            c1
        });
        c0.send(1, 7, vec![1.0, 2.0]).expect("send");
        assert_eq!(c0.recv(1, 8).expect("recv"), vec![2.0, 4.0]);
        t.join().expect("peer thread");
    }

    #[test]
    fn allreduce_over_sockets_matches_expected_sum() {
        let world = socket_world(4);
        thread::scope(|s| {
            for mut c in world {
                s.spawn(move || {
                    let mut v = vec![c.rank() as f32 + 1.0; 3];
                    allreduce_tree(&mut c, &mut v).expect("allreduce");
                    assert_eq!(v, vec![10.0; 3]);
                });
            }
        });
    }

    #[test]
    fn traffic_counted_per_endpoint() {
        let mut world = socket_world(2);
        let mut c1 = world.pop().expect("rank 1");
        let mut c0 = world.pop().expect("rank 0");
        let traffic = c1.traffic();
        c1.send(0, 1, vec![0.0; 10]).expect("send");
        assert_eq!(c0.recv(1, 1).expect("recv"), vec![0.0; 10]);
        assert_eq!(traffic.elements_sent(), 10);
        assert_eq!(traffic.messages_sent(), 1);
    }
}

//! Synthetic CIFAR-10 stand-in.
//!
//! Each of the 10 classes owns a smooth random template per RGB channel
//! (a mixture of low-frequency sinusoids). A sample is its class template
//! under a random translation and optional horizontal flip, plus Gaussian
//! pixel noise. This is learnable by the Table I CNN at the paper's
//! learning rate (γ = 0.1) yet hard enough that optimizer differences show
//! up in the accuracy curves — the property Figs 2–3 / 7 / 9 need.

use sasgd_tensor::SeedRng;

use crate::dataset::Dataset;

/// Generation parameters.
#[derive(Clone, Debug)]
pub struct CifarLikeConfig {
    /// Training samples (CIFAR-10: 50 000).
    pub train: usize,
    /// Test samples (CIFAR-10: 10 000).
    pub test: usize,
    /// Image side (CIFAR-10: 32). The Table I network requires 32.
    pub side: usize,
    /// Number of classes (CIFAR-10: 10).
    pub classes: usize,
    /// Pixel-noise standard deviation; larger is harder.
    pub noise: f32,
    /// Maximum absolute translation in pixels.
    pub max_shift: usize,
    /// Generator seed.
    pub seed: u64,
}

impl Default for CifarLikeConfig {
    fn default() -> Self {
        CifarLikeConfig {
            train: 50_000,
            test: 10_000,
            side: 32,
            classes: 10,
            noise: 0.6,
            max_shift: 3,
            seed: 0xC1FA,
        }
    }
}

impl CifarLikeConfig {
    /// A small configuration for CPU-scale experiments.
    pub fn scaled(train: usize, test: usize) -> Self {
        CifarLikeConfig {
            train,
            test,
            ..Default::default()
        }
    }

    /// A tiny 8×8 configuration for unit/integration tests (pairs with
    /// `sasgd_nn::models::tiny_cnn`).
    pub fn tiny(train: usize, test: usize, classes: usize) -> Self {
        CifarLikeConfig {
            train,
            test,
            side: 8,
            classes,
            noise: 0.4,
            max_shift: 1,
            seed: 7,
        }
    }
}

/// Smooth per-class, per-channel template.
struct Template {
    /// `[channels][side*side]`
    planes: Vec<Vec<f32>>,
}

fn make_template(side: usize, rng: &mut SeedRng) -> Template {
    let channels = 3;
    let mut planes = Vec::with_capacity(channels);
    for _ in 0..channels {
        // Mixture of 4 low-frequency sinusoids.
        let comps: Vec<(f32, f32, f32, f32)> = (0..4)
            .map(|_| {
                (
                    rng.uniform_range(0.5, 2.5),                   // fx (cycles across image)
                    rng.uniform_range(0.5, 2.5),                   // fy
                    rng.uniform_range(0.0, std::f32::consts::TAU), // phase
                    rng.uniform_range(0.4, 1.0),                   // amplitude
                )
            })
            .collect();
        let mut plane = vec![0.0f32; side * side];
        for y in 0..side {
            for x in 0..side {
                let (xf, yf) = (x as f32 / side as f32, y as f32 / side as f32);
                let mut v = 0.0;
                for &(fx, fy, ph, a) in &comps {
                    v += a * (std::f32::consts::TAU * (fx * xf + fy * yf) + ph).sin();
                }
                plane[y * side + x] = v;
            }
        }
        planes.push(plane);
    }
    Template { planes }
}

/// The nuisance transform applied to one sample.
struct Transform {
    dx: isize,
    dy: isize,
    flip: bool,
}

fn render(
    t: &Template,
    side: usize,
    tf: &Transform,
    noise: f32,
    rng: &mut SeedRng,
    out: &mut Vec<f32>,
) {
    for plane in &t.planes {
        for y in 0..side {
            for x in 0..side {
                let sx = if tf.flip { side - 1 - x } else { x } as isize + tf.dx;
                let sy = y as isize + tf.dy;
                let base = if sx >= 0 && (sx as usize) < side && sy >= 0 && (sy as usize) < side {
                    plane[sy as usize * side + sx as usize]
                } else {
                    0.0
                };
                out.push(base + noise * rng.normal());
            }
        }
    }
}

fn generate_split(
    cfg: &CifarLikeConfig,
    templates: &[Template],
    n: usize,
    rng: &mut SeedRng,
) -> Dataset {
    let stride = 3 * cfg.side * cfg.side;
    let mut x = Vec::with_capacity(n * stride);
    let mut labels = Vec::with_capacity(n);
    let shift = cfg.max_shift as isize;
    for i in 0..n {
        let class = i % cfg.classes; // balanced
        let tf = Transform {
            dx: rng
                .uniform_range(-(shift as f32), shift as f32 + 1.0)
                .floor() as isize,
            dy: rng
                .uniform_range(-(shift as f32), shift as f32 + 1.0)
                .floor() as isize,
            flip: rng.bernoulli(0.5),
        };
        render(&templates[class], cfg.side, &tf, cfg.noise, rng, &mut x);
        labels.push(class);
    }
    // Interleave classes but in random global order.
    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);
    let mut xs = Vec::with_capacity(x.len());
    let mut ls = Vec::with_capacity(n);
    for &i in &order {
        xs.extend_from_slice(&x[i * stride..(i + 1) * stride]);
        ls.push(labels[i]);
    }
    Dataset::new(xs, ls, &[3, cfg.side, cfg.side], cfg.classes)
}

/// Generate the (train, test) pair. Both splits share class templates but
/// use independent noise/transform draws, so test accuracy measures real
/// generalization over nuisance parameters.
pub fn generate(cfg: &CifarLikeConfig) -> (Dataset, Dataset) {
    assert!(cfg.classes >= 2, "need at least two classes");
    assert!(cfg.side >= 4, "image side too small");
    let mut trng = SeedRng::new(cfg.seed).split(0xEEE);
    let templates: Vec<Template> = (0..cfg.classes)
        .map(|_| make_template(cfg.side, &mut trng))
        .collect();
    let mut train_rng = SeedRng::new(cfg.seed).split(1);
    let mut test_rng = SeedRng::new(cfg.seed).split(2);
    (
        generate_split(cfg, &templates, cfg.train, &mut train_rng),
        generate_split(cfg, &templates, cfg.test, &mut test_rng),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_balance() {
        let cfg = CifarLikeConfig::scaled(100, 40);
        let (train, test) = generate(&cfg);
        assert_eq!(train.len(), 100);
        assert_eq!(test.len(), 40);
        assert_eq!(train.sample_dims(), &[3, 32, 32]);
        let mut counts = vec![0usize; 10];
        for i in 0..train.len() {
            counts[train.label(i)] += 1;
        }
        assert_eq!(counts, vec![10; 10], "classes are balanced");
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = CifarLikeConfig::tiny(20, 5, 4);
        let (a, _) = generate(&cfg);
        let (b, _) = generate(&cfg);
        let (xa, _) = a.batch(&[0, 1, 2]);
        let (xb, _) = b.batch(&[0, 1, 2]);
        assert_eq!(xa.as_slice(), xb.as_slice());
    }

    #[test]
    fn different_seed_different_data() {
        let mut cfg = CifarLikeConfig::tiny(10, 2, 3);
        let (a, _) = generate(&cfg);
        cfg.seed = 12345;
        let (b, _) = generate(&cfg);
        let (xa, _) = a.batch(&[0]);
        let (xb, _) = b.batch(&[0]);
        assert_ne!(xa.as_slice(), xb.as_slice());
    }

    #[test]
    fn classes_are_separated_in_signal_space() {
        // Nearest-template classification on noiseless renders must beat
        // chance by far — otherwise the CNN could never learn the data.
        let cfg = CifarLikeConfig {
            train: 60,
            test: 0,
            noise: 0.2,
            ..CifarLikeConfig::tiny(60, 0, 3)
        };
        let (train, _) = generate(&cfg);
        // Class means as crude templates.
        let stride = train.stride();
        let mut means = vec![vec![0.0f32; stride]; 3];
        let mut counts = vec![0usize; 3];
        for i in 0..train.len() {
            let (x, y) = train.batch(&[i]);
            for (m, v) in means[y[0]].iter_mut().zip(x.as_slice()) {
                *m += v;
            }
            counts[y[0]] += 1;
        }
        for (m, &c) in means.iter_mut().zip(&counts) {
            m.iter_mut().for_each(|v| *v /= c as f32);
        }
        let mut correct = 0usize;
        for i in 0..train.len() {
            let (x, y) = train.batch(&[i]);
            let mut best = (f32::INFINITY, 0usize);
            for (cls, m) in means.iter().enumerate() {
                let d: f32 = x
                    .as_slice()
                    .iter()
                    .zip(m)
                    .map(|(a, b)| (a - b).powi(2))
                    .sum();
                if d < best.0 {
                    best = (d, cls);
                }
            }
            if best.1 == y[0] {
                correct += 1;
            }
        }
        // Chance is 1/3; nearest-mean ignores the shift/flip invariances a
        // CNN handles, so ~0.7-0.8 here already implies strong signal.
        let acc = correct as f32 / train.len() as f32;
        assert!(acc > 0.6, "nearest-mean accuracy only {acc}");
    }

    #[test]
    fn noise_increases_sample_spread() {
        let low = CifarLikeConfig {
            noise: 0.05,
            ..CifarLikeConfig::tiny(10, 0, 2)
        };
        let high = CifarLikeConfig {
            noise: 1.5,
            ..CifarLikeConfig::tiny(10, 0, 2)
        };
        let (a, _) = generate(&low);
        let (b, _) = generate(&high);
        // Same-class samples differ more under high noise.
        let spread = |d: &Dataset| {
            let (x0, _) = d.batch(&[0]);
            let (x1, _) = d.batch(&[2]); // same class (balanced interleave)
            x0.as_slice()
                .iter()
                .zip(x1.as_slice())
                .map(|(p, q)| (p - q).powi(2))
                .sum::<f32>()
        };
        // Indices above were shuffled, so just compare dataset-wide energy.
        let _ = spread;
        let energy = |d: &Dataset| {
            let (x, _) = d.batch(&(0..d.len()).collect::<Vec<_>>());
            x.as_slice().iter().map(|v| v * v).sum::<f32>() / x.numel() as f32
        };
        assert!(energy(&b) > energy(&a));
    }
}

//! The paper's first workload in miniature: compare sequential SGD,
//! SASGD, Downpour and EAMSGD on a CIFAR-like image task, reporting both
//! accuracy and simulated epoch time (the two axes of the paper's
//! evaluation).
//!
//! ```text
//! cargo run --release --example cifar_distributed
//! ```

use sasgd::core::algorithms::GammaP;
use sasgd::core::report::ascii_table;
use sasgd::core::{train, Algorithm, TrainConfig};
use sasgd::data::cifar_like::{generate, CifarLikeConfig};
use sasgd::nn::models;
use sasgd::tensor::SeedRng;

fn main() {
    let cfg_data = CifarLikeConfig {
        noise: 1.0,
        max_shift: 2,
        ..CifarLikeConfig::tiny(512, 256, 10)
    };
    let (train_set, test_set) = generate(&cfg_data);
    let epochs = 25;
    let gamma = 0.05;
    let p = 8;
    let t = 10;

    let runs: Vec<(&str, Algorithm)> = vec![
        ("SGD (sequential)", Algorithm::Sequential),
        (
            "SASGD",
            Algorithm::Sasgd {
                p,
                t,
                gamma_p: GammaP::OverP,
                compression: None,
            },
        ),
        (
            "Downpour",
            Algorithm::Downpour {
                p,
                t,
                staleness_gamma: false,
            },
        ),
        (
            "EAMSGD",
            Algorithm::Eamsgd {
                p,
                t,
                moving_rate: None,
                momentum: 0.0,
                staleness_gamma: false,
            },
        ),
    ];

    let mut rows = Vec::new();
    for (name, algo) in runs {
        let cfg = TrainConfig::new(epochs, 8, gamma, 42);
        let mut factory = || models::tiny_cnn(10, &mut SeedRng::new(7));
        let h = train(&mut factory, &train_set, &test_set, &algo, &cfg);
        rows.push(vec![
            name.to_string(),
            format!("{:.1}", h.final_train_acc() * 100.0),
            format!("{:.1}", h.final_test_acc() * 100.0),
            format!("{:.3}", h.epoch_seconds()),
            format!("{:.0}", h.comm_fraction() * 100.0),
        ]);
    }
    println!(
        "CIFAR-like, p = {p}, T = {t}, γ = {gamma}, {epochs} collective epochs\n\n{}",
        ascii_table(
            &[
                "algorithm",
                "train acc %",
                "test acc %",
                "epoch (s, simulated)",
                "comm %"
            ],
            &rows,
        )
    );
    println!(
        "The paper's Fig 9 pattern: SASGD trains stably at p = {p} while the\n\
         asynchronous baselines lose accuracy to stale gradients; its allreduce\n\
         also spends less time communicating than the parameter-server paths."
    );
}

//! Failure-injection and robustness tests: extreme jitter, degenerate
//! datasets, hammered parameter servers.

use sasgd::comm::ps::{PsConfig, PsServer};
use sasgd::core::algorithms::GammaP;
use sasgd::core::{train, Algorithm, TrainConfig};
use sasgd::data::cifar_like::{generate, CifarLikeConfig};
use sasgd::data::Dataset;
use sasgd::nn::models;
use sasgd::simnet::JitterModel;
use sasgd::tensor::SeedRng;
use std::thread;

#[test]
fn extreme_jitter_changes_time_not_math() {
    // Jitter drives clocks (and async interleaving) but must never change
    // the gradients of the synchronous algorithms: SASGD's trajectory is
    // identical under any jitter level.
    let (train_set, test_set) = generate(&CifarLikeConfig::tiny(96, 24, 3));
    let algo = Algorithm::Sasgd {
        p: 4,
        t: 2,
        gamma_p: GammaP::OverP,
        compression: None,
    };
    let mut histories = Vec::new();
    for cv in [0.0f64, 1.5] {
        let mut cfg = TrainConfig::new(3, 8, 0.05, 7);
        cfg.jitter = JitterModel {
            cv,
            learner_spread: cv / 2.0,
        };
        let mut f = || models::tiny_cnn(3, &mut SeedRng::new(2));
        histories.push(train(&mut f, &train_set, &test_set, &algo, &cfg));
    }
    let (calm, wild) = (&histories[0], &histories[1]);
    for (a, b) in calm.records.iter().zip(&wild.records) {
        assert_eq!(
            a.train_loss, b.train_loss,
            "jitter must not perturb SASGD math"
        );
    }
    // But the straggler wait must show up as extra communication time.
    let calm_comm = calm.records.last().expect("records").comm_seconds;
    let wild_comm = wild.records.last().expect("records").comm_seconds;
    assert!(
        wild_comm > calm_comm,
        "wild jitter should cost barrier time"
    );
}

#[test]
fn slow_straggler_learner_still_converges_async() {
    // One learner 10× slower than the rest: Downpour keeps running (its
    // pushes just get staler) and still learns at p=2 with a gentle rate.
    let (train_set, test_set) = generate(&CifarLikeConfig::tiny(96, 48, 3));
    let mut cfg = TrainConfig::new(8, 8, 0.02, 3);
    cfg.jitter = JitterModel {
        cv: 0.05,
        learner_spread: 2.0,
    };
    let mut f = || models::tiny_cnn(3, &mut SeedRng::new(4));
    let h = train(
        &mut f,
        &train_set,
        &test_set,
        &Algorithm::Downpour { p: 2, t: 1 },
        &cfg,
    );
    assert!(h.final_test_acc() > 0.45, "acc {:.2}", h.final_test_acc());
}

#[test]
fn single_class_dataset_trains_to_perfection() {
    let n = 32;
    let x = vec![0.5f32; n * 3 * 8 * 8];
    let labels = vec![0usize; n];
    let train_set = Dataset::new(x.clone(), labels.clone(), &[3, 8, 8], 2);
    let test_set = Dataset::new(x, labels, &[3, 8, 8], 2);
    let cfg = TrainConfig::new(3, 8, 0.05, 1);
    let mut f = || models::tiny_cnn(2, &mut SeedRng::new(1));
    let h = train(
        &mut f,
        &train_set,
        &test_set,
        &Algorithm::Sasgd {
            p: 2,
            t: 1,
            gamma_p: GammaP::OverP,
            compression: None,
        },
        &cfg,
    );
    assert_eq!(h.final_test_acc(), 1.0);
}

#[test]
fn ps_survives_hammering_and_preserves_sums() {
    // 16 clients × 50 pushes of +1 on every coordinate: additions commute,
    // so the final state is exact regardless of interleaving or sharding.
    for shards in [1usize, 3, 8] {
        let m = 257; // deliberately not divisible by the shard counts
        let ps = PsServer::spawn(vec![0.0f32; m], PsConfig { shards });
        thread::scope(|s| {
            for _ in 0..16 {
                let c = ps.client();
                s.spawn(move || {
                    for _ in 0..50 {
                        c.add(&vec![1.0; m]);
                    }
                });
            }
        });
        let end = ps.shutdown();
        assert!(end.iter().all(|&v| v == 800.0), "shards={shards}");
    }
}

#[test]
fn minibatch_larger_than_shard_still_runs() {
    // p=2 over 20 samples with batch 16: shards of 10 get truncated to a
    // single smaller batch per epoch; training must proceed.
    let (train_set, test_set) = generate(&CifarLikeConfig::tiny(20, 8, 2));
    let cfg = TrainConfig::new(2, 8, 0.05, 1);
    let mut f = || models::tiny_cnn(2, &mut SeedRng::new(1));
    let h = train(
        &mut f,
        &train_set,
        &test_set,
        &Algorithm::Sasgd {
            p: 2,
            t: 1,
            gamma_p: GammaP::OverP,
            compression: None,
        },
        &cfg,
    );
    assert_eq!(h.records.len(), 2);
}

#[test]
fn zero_learning_rate_is_a_fixed_point() {
    let (train_set, test_set) = generate(&CifarLikeConfig::tiny(32, 16, 2));
    let cfg = TrainConfig::new(2, 8, 0.0, 1);
    let mut f = || models::tiny_cnn(2, &mut SeedRng::new(6));
    let h = train(
        &mut f,
        &train_set,
        &test_set,
        &Algorithm::Sasgd {
            p: 2,
            t: 1,
            gamma_p: GammaP::Fixed(0.0),
            compression: None,
        },
        &cfg,
    );
    let first = h.records.first().expect("records");
    let last = h.records.last().expect("records");
    assert_eq!(
        first.test_acc, last.test_acc,
        "γ=0 must not move parameters"
    );
}

//! Checkpointing: save/restore a model's flat parameter vector.
//!
//! Format: a 16-byte header (`b"SASG"`, format version, parameter count)
//! followed by little-endian `f32`s. The count is validated on load so a
//! checkpoint can never be written into a mismatched architecture
//! silently.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::model::Model;

const MAGIC: &[u8; 4] = b"SASG";
const VERSION: u32 = 1;

/// Write `model`'s parameters to `path`.
pub fn save_checkpoint(model: &Model, path: &Path) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(model.param_len() as u64).to_le_bytes())?;
    let params = model.param_vector();
    for v in params {
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()
}

/// Load parameters from `path` into `model`.
///
/// # Errors
/// Returns `InvalidData` if the file is not a checkpoint, has a different
/// format version, or stores a different parameter count.
pub fn load_checkpoint(model: &mut Model, path: &Path) -> io::Result<()> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a SASGD checkpoint",
        ));
    }
    let mut v4 = [0u8; 4];
    r.read_exact(&mut v4)?;
    let version = u32::from_le_bytes(v4);
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported checkpoint version {version}"),
        ));
    }
    let mut v8 = [0u8; 8];
    r.read_exact(&mut v8)?;
    let count = u64::from_le_bytes(v8) as usize;
    if count != model.param_len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "checkpoint has {count} parameters, model has {}",
                model.param_len()
            ),
        ));
    }
    let mut params = vec![0.0f32; count];
    let mut buf = [0u8; 4];
    for p in &mut params {
        r.read_exact(&mut buf)?;
        *p = f32::from_le_bytes(buf);
    }
    // Reject trailing garbage.
    if r.read(&mut buf)? != 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "trailing bytes in checkpoint",
        ));
    }
    model.write_params(&params);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use sasgd_tensor::SeedRng;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("sasgd_ckpt_{name}_{}", std::process::id()))
    }

    #[test]
    fn roundtrip_restores_exact_parameters() {
        let path = tmp("roundtrip");
        let m1 = models::tiny_mlp(5, 7, 3, &mut SeedRng::new(1));
        save_checkpoint(&m1, &path).expect("save");
        let mut m2 = models::tiny_mlp(5, 7, 3, &mut SeedRng::new(99));
        assert_ne!(m1.param_vector(), m2.param_vector());
        load_checkpoint(&mut m2, &path).expect("load");
        assert_eq!(m1.param_vector(), m2.param_vector());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn wrong_architecture_is_rejected() {
        let path = tmp("arch");
        let m1 = models::tiny_mlp(5, 7, 3, &mut SeedRng::new(1));
        save_checkpoint(&m1, &path).expect("save");
        let mut other = models::tiny_mlp(6, 7, 3, &mut SeedRng::new(1));
        let err = load_checkpoint(&mut other, &path).expect_err("must reject");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn garbage_file_is_rejected() {
        let path = tmp("garbage");
        std::fs::write(&path, b"definitely not a checkpoint").expect("write");
        let mut m = models::tiny_mlp(2, 2, 2, &mut SeedRng::new(1));
        let err = load_checkpoint(&mut m, &path).expect_err("must reject");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_file_is_rejected() {
        let path = tmp("trunc");
        let m1 = models::tiny_mlp(5, 7, 3, &mut SeedRng::new(1));
        save_checkpoint(&m1, &path).expect("save");
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() - 5]).expect("truncate");
        let mut m2 = models::tiny_mlp(5, 7, 3, &mut SeedRng::new(2));
        assert!(load_checkpoint(&mut m2, &path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let path = tmp("trail");
        let m1 = models::tiny_mlp(3, 3, 2, &mut SeedRng::new(1));
        save_checkpoint(&m1, &path).expect("save");
        let mut bytes = std::fs::read(&path).expect("read");
        bytes.extend_from_slice(&[0u8; 8]);
        std::fs::write(&path, &bytes).expect("extend");
        let mut m2 = models::tiny_mlp(3, 3, 2, &mut SeedRng::new(2));
        assert!(load_checkpoint(&mut m2, &path).is_err());
        let _ = std::fs::remove_file(&path);
    }
}

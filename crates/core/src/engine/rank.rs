//! The per-rank SASGD loop, generic over the comm substrate.
//!
//! [`run_sasgd_rank`] and [`run_sasgd_ft_rank`] are the exact learner
//! loops the threaded backend spawns one thread per rank for — factored
//! out over [`Transport`] so the *same code* drives a rank whether its
//! peers are threads in this process (in-proc crossbeam endpoints) or
//! other OS processes (socket endpoints handed out by the launcher). The
//! operation order is frozen: local steps, tree allreduce every `T`
//! minibatches, `x -= γp·Σg`, rank 0 evaluating at epoch ends — so a
//! multi-process run produces bitwise the same `final_params` as an
//! in-process one (the launcher's integration test pins this).
//!
//! Wire failures are typed, never panics: a plain-SASGD rank returns
//! [`EngineError::WireFailure`]; a fault-tolerant rank that *can* degrade
//! (evicted, or orphaned while rank 0 still coordinates) retires into
//! [`History::retirements`] instead.

use std::time::{Duration, Instant};

use sasgd_comm::collectives::{allreduce_tree, broadcast};
use sasgd_comm::fault::FaultPlan;
use sasgd_comm::ft::{ft_allreduce, FtError, Membership};
use sasgd_comm::sparse::{
    q8_allreduce_tree, sparse_allreduce_tree, sparse_allreduce_tree_v2, SparseLevelProfile,
    SparseTreeOpts, SparseVec,
};
use sasgd_comm::transport::Transport;
use sasgd_comm::world::CommError;
use sasgd_data::{Dataset, Shard};
use sasgd_nn::Model;

use super::{delta_sq_norm, event_gamma_epoch, BatchStream, EngineError};
use crate::algorithms::GammaP;
use crate::compress::{Compression, KState};
use crate::history::{History, MembershipEvent, RetirementEvent, StalenessStats};
use crate::schedule::SyncPolicy;
use crate::trainer::{EvalSets, Learner, TrainConfig};

/// Everything a single SASGD rank needs besides its endpoint, model and
/// data shard. One spec is built per rank (it owns its label); every
/// field must be identical across ranks for the collectives to line up.
pub struct SasgdRankSpec<'a> {
    /// Full training set (rank 0 evaluates against it).
    pub train_set: &'a Dataset,
    /// Test set (rank 0 only).
    pub test_set: &'a Dataset,
    /// Shared training configuration.
    pub cfg: &'a TrainConfig,
    /// World size.
    pub p: usize,
    /// Aggregation interval `T`.
    pub t: usize,
    /// Global-rate policy.
    pub gamma_p: GammaP,
    /// Optional gradient compression.
    pub compression: Option<Compression>,
    /// History label.
    pub label: String,
    /// Lockstep steps per epoch — `min` over all shards, computed once by
    /// the caller so every rank truncates identically.
    pub steps_per_epoch: usize,
}

fn wire_failure(rank: usize, round: u64, e: CommError) -> EngineError {
    EngineError::WireFailure {
        rank,
        round,
        detail: e.to_string(),
    }
}

/// One rank of plain (optionally compressed) SASGD over any transport.
/// Returns this rank's [`History`]; only rank 0's carries epoch records.
pub fn run_sasgd_rank<T: Transport>(
    comm: &mut T,
    model: Model,
    shard: &Shard,
    spec: &SasgdRankSpec<'_>,
) -> Result<History, EngineError> {
    let rank = comm.rank();
    let cfg = spec.cfg;
    let mut learner = Learner::new(rank, model, cfg);
    let mut x = learner.model.param_vector();
    let m = x.len();
    // Broadcast learner 0's parameters (Algorithm 1).
    broadcast(comm, 0, &mut x).map_err(|e| wire_failure(rank, 0, e))?;
    learner.model.write_params(&x);
    let mut residual = vec![0.0f32; if spec.compression.is_some() { m } else { 0 }];
    let mut kstate = spec.compression.map(|c| {
        let blocks = match c {
            Compression::Sparse { .. } => learner.model.param_blocks(),
            _ => Vec::new(),
        };
        KState::new(&c, blocks)
    });
    let evals = if rank == 0 {
        Some(EvalSets::prepare(
            spec.train_set,
            spec.test_set,
            cfg.eval_cap,
        ))
    } else {
        None
    };
    let mut history = History::new(spec.label.clone(), spec.p, spec.t);
    let mut compute_s = 0.0f64;
    let mut comm_s = 0.0f64;
    let mut samples = 0u64;
    let mut since_agg = 0usize;
    let mut round = 0u64;
    for epoch in 1..=cfg.epochs {
        let batches: Vec<Vec<usize>> = shard
            .epoch_iter(cfg.batch_size, &mut learner.rng)
            .take(spec.steps_per_epoch)
            .collect();
        for (step, idx) in batches.iter().enumerate() {
            // Same per-step schedule formula as the simulated backend, so
            // trajectories stay bitwise equal.
            let epoch_f = (epoch - 1) as f64 + step as f64 / spec.steps_per_epoch as f64;
            let gamma_now = cfg.gamma_at(epoch_f);
            samples += idx.len() as u64;
            let t0 = Instant::now();
            learner.local_step(spec.train_set, idx, gamma_now, 0.0, 1.0);
            compute_s += t0.elapsed().as_secs_f64();
            since_agg += 1;
            if since_agg == spec.t {
                let gp = spec.gamma_p.resolve(gamma_now, spec.p);
                let t1 = Instant::now();
                round += 1;
                let total: Vec<f32> = match (spec.compression, kstate.as_mut()) {
                    (Some(comp), Some(ks)) => compressed_allreduce(
                        comm,
                        comp,
                        &learner.gs,
                        &mut residual,
                        ks,
                        &mut history,
                        round,
                    )?,
                    _ => {
                        allreduce_tree(comm, &mut learner.gs)
                            .map_err(|e| wire_failure(rank, round, e))?;
                        learner.gs.clone()
                    }
                };
                for (xi, &g) in x.iter_mut().zip(&total) {
                    *xi -= gp * g;
                }
                learner.model.write_params(&x);
                learner.gs.iter_mut().for_each(|g| *g = 0.0);
                comm_s += t1.elapsed().as_secs_f64();
                since_agg = 0;
            }
        }
        if let Some(ev) = &evals {
            let rec = ev.record(
                &mut learner.model,
                epoch as f64,
                compute_s,
                comm_s,
                samples * spec.p as u64,
            );
            history.records.push(rec);
        }
    }
    history.final_params = Some(learner.model.param_vector());
    Ok(history)
}

/// One rank of fault-tolerant SASGD over any transport. Graceful paths:
///
/// * **eviction** — survivors confirmed this rank lost (e.g. it stalled
///   past the deadline): retire quietly, recording a
///   [`RetirementEvent`], rather than diverge;
/// * **any other wire failure on a non-coordinator** — the rank cannot
///   rejoin, but the run does not need it: retire the same way (this was
///   a panic before the transport refactor);
/// * **a wire failure on the recovery coordinator (rank 0)** — nothing
///   can degrade around the coordinator, so this is the one path that
///   returns [`EngineError::WireFailure`].
pub fn run_sasgd_ft_rank<T: Transport>(
    comm: &mut T,
    model: Model,
    shard: &Shard,
    spec: &SasgdRankSpec<'_>,
    plan: &FaultPlan,
    deadline: Duration,
) -> Result<History, EngineError> {
    let rank = comm.rank();
    let cfg = spec.cfg;
    let crash_at = plan.crash_step(rank);
    let mut membership = Membership::new(spec.p);
    let mut learner = Learner::new(rank, model, cfg);
    let mut x = learner.model.param_vector();
    broadcast(comm, 0, &mut x).map_err(|e| wire_failure(rank, 0, e))?;
    learner.model.write_params(&x);
    let evals = if rank == 0 {
        Some(EvalSets::prepare(
            spec.train_set,
            spec.test_set,
            cfg.eval_cap,
        ))
    } else {
        None
    };
    let mut history = History::new(spec.label.clone(), spec.p, spec.t);
    let mut compute_s = 0.0f64;
    let mut comm_s = 0.0f64;
    let mut samples = 0u64;
    let mut since_agg = 0usize;
    let mut gstep = 0u64;
    let mut round = 0u64;
    'run: for epoch in 1..=cfg.epochs {
        let batches: Vec<Vec<usize>> = shard
            .epoch_iter(cfg.batch_size, &mut learner.rng)
            .take(spec.steps_per_epoch)
            .collect();
        for (step, idx) in batches.iter().enumerate() {
            gstep += 1;
            // Faults fire only at step boundaries (never inside a
            // collective), so degraded runs replay bitwise.
            if crash_at.is_some_and(|s| gstep >= s) {
                // Crash: stop participating. Dropping the comm endpoint on
                // return is what survivors detect.
                break 'run;
            }
            if let Some(stall) = plan.stall_at(rank, gstep) {
                std::thread::sleep(stall);
            }
            let epoch_f = (epoch - 1) as f64 + step as f64 / spec.steps_per_epoch as f64;
            let gamma_now = cfg.gamma_at(epoch_f);
            samples += idx.len() as u64;
            let t0 = Instant::now();
            learner.local_step(spec.train_set, idx, gamma_now, 0.0, 1.0);
            compute_s += t0.elapsed().as_secs_f64();
            since_agg += 1;
            if since_agg == spec.t {
                let t1 = Instant::now();
                round += 1;
                let outcome = match ft_allreduce(comm, &mut membership, &mut learner.gs, deadline) {
                    Ok(o) => o,
                    Err(e @ FtError::Evicted { .. }) => {
                        // Survivors confirmed this rank lost (e.g. it
                        // stalled past the deadline); retire quietly
                        // rather than diverge.
                        history.retirements.push(RetirementEvent {
                            rank,
                            round,
                            reason: e.to_string(),
                        });
                        break 'run;
                    }
                    Err(e) if rank != 0 => {
                        // The wire failed under this rank but the run
                        // does not need it: degrade exactly like an
                        // eviction instead of panicking the world.
                        history.retirements.push(RetirementEvent {
                            rank,
                            round,
                            reason: e.to_string(),
                        });
                        break 'run;
                    }
                    Err(e) => {
                        // Rank 0 is the recovery coordinator; nothing
                        // can degrade around it.
                        return Err(wire_failure_ft(rank, round, &e));
                    }
                };
                // Graceful degradation: γp rescales to the survivor count
                // (= p on a clean round, so the fault-free trajectory
                // matches run_sasgd_rank).
                let gp = spec.gamma_p.resolve(gamma_now, membership.len());
                for (xi, &g) in x.iter_mut().zip(&learner.gs) {
                    *xi -= gp * g;
                }
                learner.model.write_params(&x);
                learner.gs.iter_mut().for_each(|g| *g = 0.0);
                let elapsed = t1.elapsed().as_secs_f64();
                comm_s += elapsed;
                if rank == 0 && !outcome.lost.is_empty() {
                    history.membership.push(MembershipEvent {
                        round,
                        epoch: outcome.epoch,
                        lost: outcome.lost.clone(),
                        survivors: membership.len(),
                        gamma_p: gp,
                        recovery_seconds: elapsed,
                    });
                }
                since_agg = 0;
            }
        }
        if let Some(ev) = &evals {
            let rec = ev.record(
                &mut learner.model,
                epoch as f64,
                compute_s,
                comm_s,
                samples * membership.len() as u64,
            );
            history.records.push(rec);
        }
    }
    history.final_params = Some(learner.model.param_vector());
    Ok(history)
}

fn wire_failure_ft(rank: usize, round: u64, e: &FtError) -> EngineError {
    EngineError::WireFailure {
        rank,
        round,
        detail: e.to_string(),
    }
}

/// The wire counterpart of a collective strategy's sync — what one round's
/// rendezvous does in the event-driven threaded loop ([`run_event_rank`]).
#[derive(Clone, Copy)]
pub enum EventOp {
    /// No communication at all (sequential SGD).
    LocalOnly,
    /// Rank-order gather-average to rank 0 at epoch ends (one-shot model
    /// averaging).
    EpochAverage,
    /// Tree allreduce of the accumulated gradients plus the global step
    /// `x ← x − γp·Σg` (SASGD, optionally compressed with error feedback).
    Gradient {
        /// Global-rate policy.
        gamma_p: GammaP,
        /// Optional gradient compression.
        compression: Option<Compression>,
    },
    /// Tree allreduce of the parameters scaled by `1/p` (Local SGD).
    ParamAverage,
    /// Parameter average applied one round late, so the allreduce of round
    /// `k` overlaps the compute of round `k+1` (DaSGD).
    DelayedAverage,
}

/// Everything one event-driven collective rank needs besides its endpoint,
/// model and data shard. Every field except `label` must be identical
/// across ranks: the round structure (`policy`, `epoch_block`) and the
/// round γ are resolved independently per rank and must agree for the
/// collectives to line up.
pub struct EventRankSpec<'a> {
    /// Full training set (rank 0 evaluates against it).
    pub train_set: &'a Dataset,
    /// Test set (rank 0 only).
    pub test_set: &'a Dataset,
    /// Shared training configuration.
    pub cfg: &'a TrainConfig,
    /// World size.
    pub p: usize,
    /// History label.
    pub label: String,
    /// The rendezvous operation.
    pub op: EventOp,
    /// This strategy's T schedule; each rank advances its own copy on
    /// identical signals, so the copies never diverge.
    pub policy: SyncPolicy,
    /// Round size for never-syncing strategies (`T = 0`): the smallest
    /// shard's whole-minibatch count, computed once by the caller.
    pub epoch_block: usize,
    /// Staleness the strategy imposes by construction (1 for DaSGD).
    pub collective_tau: u64,
    /// Aggregation interval reported in [`History`].
    pub history_interval: usize,
}

/// One rank of the event-driven collective loop over any transport — the
/// threaded mirror of the simulated backend's collective event engine.
/// Each round: a `T`-minibatch block at a round γ resolved from *nominal*
/// system progress (identical on every rank and backend), then the
/// [`EventOp`] rendezvous. Because the block math touches only rank-local
/// state and γ never depends on completion interleaving, `final_params`
/// here are bitwise the simulated backend's for the allreduce-shaped ops
/// at any `p` (and for every op at `p = 1`).
pub fn run_event_rank<T: Transport>(
    comm: &mut T,
    model: Model,
    eval_replica: Option<Model>,
    shard: &Shard,
    spec: &EventRankSpec<'_>,
) -> Result<History, EngineError> {
    let rank = comm.rank();
    let cfg = spec.cfg;
    let p = spec.p;
    let n = spec.train_set.len();
    let mut learner = Learner::new(rank, model, cfg);
    let mut policy = spec.policy.clone();
    let mut x = learner.model.param_vector();
    if matches!(spec.op, EventOp::Gradient { .. }) {
        // Broadcast learner 0's parameters (Algorithm 1). The other ops
        // start from the factory's identical replicas, like their
        // simulated strategies.
        broadcast(comm, 0, &mut x).map_err(|e| wire_failure(rank, 0, e))?;
        learner.model.write_params(&x);
    }
    let keeps_gs = matches!(spec.op, EventOp::Gradient { .. });
    let mut residual = vec![
        0.0f32;
        match spec.op {
            EventOp::Gradient {
                compression: Some(_),
                ..
            } => x.len(),
            _ => 0,
        }
    ];
    let mut kstate = match spec.op {
        EventOp::Gradient {
            compression: Some(c),
            ..
        } => {
            let blocks = match c {
                Compression::Sparse { .. } => learner.model.param_blocks(),
                _ => Vec::new(),
            };
            Some(KState::new(&c, blocks))
        }
        _ => None,
    };
    // Local SGD's plateau-signal state and DaSGD's delayed-application
    // state (unused by the other ops).
    let mut prev_avg = x.clone();
    let mut snap = x.clone();
    let mut pending: Option<Vec<f32>> = None;
    let mut avg_model = eval_replica;

    let evals = if rank == 0 {
        Some(EvalSets::prepare(
            spec.train_set,
            spec.test_set,
            cfg.eval_cap,
        ))
    } else {
        None
    };
    let mut history = History::new(spec.label.clone(), p, spec.history_interval);
    let mut stream = BatchStream::new(shard.indices().to_vec(), cfg.batch_size);
    let mut samples = 0u64; // own-shard samples
    let mut steps_done = 0u64; // nominal per-rank steps, same on every rank
    let mut syncs = 0u64;
    let mut epochs_done = 0usize;
    let mut recorded_passes = 0u64;
    let mut compute_s = 0.0f64;
    let mut comm_s = 0.0f64;
    let mut staleness_obs: Vec<u64> = Vec::new();
    let target_steps = (cfg.epochs as u64) * (n as u64); // in batch·p units

    loop {
        let t_now = policy.current_t();
        let block = if t_now >= 1 { t_now } else { spec.epoch_block };
        // Same round γ formula as the simulated collective event loop, so
        // trajectories stay bitwise equal.
        let gamma_now = cfg.gamma_at(event_gamma_epoch(steps_done, cfg.batch_size, p, n));
        let t0 = Instant::now();
        for _ in 0..block {
            let idx = stream.next(&mut learner.rng);
            samples += idx.len() as u64;
            learner.local_step(spec.train_set, &idx, gamma_now, 0.0, 1.0);
            if !keeps_gs {
                learner.gs.iter_mut().for_each(|g| *g = 0.0);
            }
        }
        compute_s += t0.elapsed().as_secs_f64();
        steps_done += block as u64;
        if t_now >= 1 {
            syncs += 1;
            let t1 = Instant::now();
            let signal = match spec.op {
                EventOp::LocalOnly | EventOp::EpochAverage => None,
                EventOp::Gradient {
                    gamma_p,
                    compression,
                } => {
                    let gp = gamma_p.resolve(gamma_now, p);
                    let total = allreduce_grads(
                        comm,
                        &mut learner,
                        compression,
                        &mut residual,
                        &mut kstate,
                        &mut history,
                        syncs,
                    )?;
                    for (xi, &g) in x.iter_mut().zip(&total) {
                        *xi -= gp * g;
                    }
                    learner.model.write_params(&x);
                    learner.gs.iter_mut().for_each(|g| *g = 0.0);
                    None
                }
                EventOp::ParamAverage => {
                    let mut buf = learner.model.param_vector();
                    allreduce_tree(comm, &mut buf).map_err(|e| wire_failure(rank, syncs, e))?;
                    let inv = 1.0 / p as f32;
                    buf.iter_mut().for_each(|v| *v *= inv);
                    learner.model.write_params(&buf);
                    let sig = delta_sq_norm(&buf, &prev_avg);
                    prev_avg = buf;
                    Some(sig)
                }
                EventOp::DelayedAverage => {
                    // Average of the *pre-application* parameters; the
                    // round-(k−1) average lands now, re-based onto the
                    // local progress made since its snapshot.
                    let cur = learner.model.param_vector();
                    let mut buf = cur.clone();
                    allreduce_tree(comm, &mut buf).map_err(|e| wire_failure(rank, syncs, e))?;
                    let inv = 1.0 / p as f32;
                    buf.iter_mut().for_each(|v| *v *= inv);
                    if let Some(prev) = pending.take() {
                        let applied: Vec<f32> = prev
                            .iter()
                            .zip(&cur)
                            .zip(&snap)
                            .map(|((&pv, &c), &s0)| pv + (c - s0))
                            .collect();
                        learner.model.write_params(&applied);
                        snap = applied;
                    } else {
                        snap = cur;
                    }
                    pending = Some(buf);
                    None
                }
            };
            comm_s += t1.elapsed().as_secs_f64();
            policy.observe_round(signal);
            if rank == 0 {
                for id in 0..p {
                    history.push_staleness(syncs - 1, id, spec.collective_tau, gamma_now);
                    staleness_obs.push(spec.collective_tau);
                }
            }
        } else {
            // T = 0: the round is an epoch.
            epochs_done += 1;
            if matches!(spec.op, EventOp::EpochAverage) {
                // Rank-order gather-average to rank 0, mirroring the
                // simulated strategy's accumulation order.
                let t1 = Instant::now();
                let gather_tag = (comm.next_op() << 4) | 2;
                if rank == 0 {
                    let own = learner.model.param_vector();
                    let mut avg: Vec<f32> = own.iter().map(|&v| v / p as f32).collect();
                    for r in 1..p {
                        let v = comm
                            .recv(r, gather_tag)
                            .map_err(|e| wire_failure(rank, epochs_done as u64, e))?;
                        for (a, &b) in avg.iter_mut().zip(&v) {
                            *a += b / p as f32;
                        }
                    }
                    avg_model
                        .as_mut()
                        .expect("rank 0 holds the averaging replica")
                        .write_params(&avg);
                } else {
                    comm.send(0, gather_tag, learner.model.param_vector())
                        .map_err(|e| wire_failure(rank, epochs_done as u64, e))?;
                }
                comm_s += t1.elapsed().as_secs_f64();
            }
        }
        if let Some(ev) = &evals {
            if stream.completed_passes() > recorded_passes {
                recorded_passes = stream.completed_passes();
                let epoch = samples as f64 * p as f64 / n as f64;
                let eval_model = avg_model.as_mut().unwrap_or(&mut learner.model);
                let rec = ev.record(eval_model, epoch, compute_s, comm_s, samples * p as u64);
                history.records.push(rec);
            }
        }
        let done = if t_now >= 1 {
            steps_done * (cfg.batch_size as u64) * (p as u64) >= target_steps
        } else {
            epochs_done >= cfg.epochs
        };
        if done {
            break;
        }
    }
    if let Some(ev) = &evals {
        if history.records.is_empty()
            || history.records.last().expect("nonempty").samples < samples * p as u64
        {
            let epoch = samples as f64 * p as f64 / n as f64;
            let eval_model = avg_model.as_mut().unwrap_or(&mut learner.model);
            let rec = ev.record(eval_model, epoch, compute_s, comm_s, samples * p as u64);
            history.records.push(rec);
        }
    }
    history.staleness = StalenessStats::from_observations(&staleness_obs);
    history.sync_rounds = syncs;
    history.final_params = Some(match spec.op {
        EventOp::EpochAverage => match &avg_model {
            Some(am) => am.param_vector(),
            None => learner.model.param_vector(),
        },
        // A pending average that never landed is flushed into the final
        // parameters, exactly like the simulated strategy.
        EventOp::DelayedAverage => match pending.take() {
            Some(prev) => {
                let cur = learner.model.param_vector();
                prev.iter()
                    .zip(&cur)
                    .zip(&snap)
                    .map(|((&pv, &c), &s0)| pv + (c - s0))
                    .collect()
            }
            None => learner.model.param_vector(),
        },
        _ => learner.model.param_vector(),
    });
    Ok(history)
}

/// Tree allreduce of the learner's accumulated gradient, with the same
/// compression/error-feedback handling as [`run_sasgd_rank`]'s inline
/// path. Returns the (reconstructed) dense total.
fn allreduce_grads<T: Transport>(
    comm: &mut T,
    learner: &mut Learner,
    compression: Option<Compression>,
    residual: &mut Vec<f32>,
    kstate: &mut Option<KState>,
    history: &mut History,
    round: u64,
) -> Result<Vec<f32>, EngineError> {
    let rank = comm.rank();
    match (compression, kstate.as_mut()) {
        (Some(comp), Some(ks)) => {
            compressed_allreduce(comm, comp, &learner.gs, residual, ks, history, round)
        }
        _ => {
            allreduce_tree(comm, &mut learner.gs).map_err(|e| wire_failure(rank, round, e))?;
            Ok(learner.gs.clone())
        }
    }
}

/// Compress-with-error-feedback then allreduce over the scheme's wire
/// form: plain sparse tree for [`Compression::TopK`], exact 8-bit leaf
/// frames for [`Compression::Uniform8Bit`] (falling back to the dense
/// tree for the all-zero gradient, which has no q8 scale), and the
/// instrumented v2 sparse tree for [`Compression::Sparse`] — recording
/// `(round, rank, k_eff, residual_norm)` plus per-level wire stats into
/// `history`, and folding any union-bound spill back into `residual`.
fn compressed_allreduce<T: Transport>(
    comm: &mut T,
    comp: Compression,
    gs: &[f32],
    residual: &mut Vec<f32>,
    kstate: &mut KState,
    history: &mut History,
    round: u64,
) -> Result<Vec<f32>, EngineError> {
    let rank = comm.rank();
    // Error feedback: compress gs + carried residual, keep what was
    // dropped.
    let input: Vec<f32> = gs.iter().zip(residual.iter()).map(|(a, b)| a + b).collect();
    let c = comp.compress_with(&input, kstate);
    *residual = c.residual;
    // lint:allow(float-cast): telemetry narrowing — the norm is a
    // monitoring signal, not part of the update arithmetic.
    history.push_sparsity(round, rank, c.k_eff, c.residual_norm as f32);
    let total = match comp {
        Compression::TopK { .. } => {
            let mut sv = SparseVec::from_dense(&c.dense);
            sparse_allreduce_tree(comm, &mut sv).map_err(|e| wire_failure(rank, round, e))?;
            sv.to_dense()
        }
        Compression::Uniform8Bit => {
            let mut buf = c.dense;
            match c.q8_scale {
                Some(scale) => q8_allreduce_tree(comm, &mut buf, scale)
                    .map_err(|e| wire_failure(rank, round, e))?,
                None => allreduce_tree(comm, &mut buf).map_err(|e| wire_failure(rank, round, e))?,
            }
            buf
        }
        Compression::Sparse { union_bound, .. } => {
            let mut sv = SparseVec::from_dense(&c.dense);
            let opts = SparseTreeOpts {
                union_bound: if union_bound { Some(c.k_budget) } else { None },
                q8_scale: c.q8_scale,
            };
            let mut profile = SparseLevelProfile::default();
            let spill = sparse_allreduce_tree_v2(comm, &mut sv, opts, &mut profile)
                .map_err(|e| wire_failure(rank, round, e))?;
            history.sparse_levels.merge(&profile);
            for (&i, &v) in spill.idx.iter().zip(&spill.val) {
                residual[i as usize] += v;
            }
            sv.to_dense()
        }
    };
    Ok(total)
}

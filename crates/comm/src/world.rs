//! Rank-to-rank message passing over crossbeam channels.
//!
//! The pending-message store is a `BTreeMap` (not `HashMap`): nothing may
//! iterate a nondeterministically ordered container anywhere near the
//! numeric path (lint `map-iter`), and the ordered map makes that a
//! non-question even for future code that walks `pending`.
//!
//! ## Failure semantics
//!
//! Every primitive returns a typed [`CommError`] instead of panicking:
//! a send to a rank whose endpoint was dropped is [`CommError::PeerGone`]
//! (the immediate, reliable signal of a crashed learner — its channel
//! receiver died with it), and receives can carry a deadline, surfacing
//! [`CommError::Timeout`] for stalled peers. A world-wide default receive
//! deadline ([`CommWorld::set_default_deadline`]) turns every blocking
//! `recv` into a bounded wait, so a wedged peer can never hang the group
//! forever. Fault injection for tests lives in [`FaultSchedule`]
//! (message drops at the wire) and `crate::fault` (crash/stall plans
//! interpreted by the engine).

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
// lint:allow(wall-clock): deadline-based communication is wall-clock by
// nature; the numeric path never reads these clocks.
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

/// Typed communication failure. The fault-tolerant collectives match on
/// these to distinguish a crashed peer from a stalled one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommError {
    /// The destination rank's endpoint was dropped: the learner crashed or
    /// exited. Sends fail with this immediately (no timeout needed).
    PeerGone {
        /// Rank whose endpoint is gone.
        peer: usize,
    },
    /// No message matching `(src, tag)` arrived before the deadline.
    Timeout {
        /// Source rank the receive was matched on.
        src: usize,
        /// Tag the receive was matched on.
        tag: u64,
    },
    /// Every sender endpoint feeding this rank was dropped while it was
    /// blocked in a receive — the world itself is gone.
    Disconnected {
        /// Source rank the receive was matched on.
        src: usize,
        /// Tag the receive was matched on.
        tag: u64,
    },
    /// `recv_any` was called with an empty candidate list — formerly this
    /// parked forever on a sentinel that no sender could ever match.
    NoCandidates,
    /// A world-level configuration call arrived after
    /// [`CommWorld::communicators`] handed the endpoints out. Endpoints
    /// copy world settings at split time, so the call could never reach
    /// them — formerly it was silently ignored.
    WorldSplit,
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::PeerGone { peer } => write!(f, "peer rank {peer} hung up"),
            CommError::Timeout { src, tag } => {
                write!(f, "timed out waiting for (src {src}, tag {tag})")
            }
            CommError::Disconnected { src, tag } => {
                write!(f, "world dropped while receiving (src {src}, tag {tag})")
            }
            CommError::NoCandidates => f.write_str("recv_any with empty candidate list"),
            CommError::WorldSplit => {
                f.write_str("world configuration changed after endpoints were handed out")
            }
        }
    }
}

impl std::error::Error for CommError {}

/// A point-to-point message: payload plus matching metadata.
struct Message {
    from: usize,
    tag: u64,
    payload: Vec<f32>,
}

/// Aggregate traffic counters for a world, shared by all ranks.
#[derive(Default)]
pub struct Traffic {
    /// Total `f32` elements sent point-to-point.
    pub elements: AtomicU64,
    /// Total messages sent.
    pub messages: AtomicU64,
    /// Messages silently dropped by an injected [`FaultSchedule`] (never
    /// counted in `elements`/`messages` — they did not hit the wire).
    pub dropped: AtomicU64,
}

impl Traffic {
    /// Elements sent so far.
    pub fn elements_sent(&self) -> u64 {
        self.elements.load(Ordering::Relaxed)
    }

    /// Messages sent so far.
    pub fn messages_sent(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Messages dropped by fault injection so far.
    pub fn messages_dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// Deterministic delay injection at communication points, for the
/// schedule-exploration race checker in `sasgd-analysis`.
///
/// `send[rank]` / `recv[rank]` are cycled by each rank's operation index;
/// every unit is one [`DelaySchedule::unit`] sleep before the operation
/// proceeds. An empty vector means no delays for that rank. Injected
/// delays perturb *when* messages arrive, never *what* they carry — the
/// checker asserts results are bitwise invariant under all of them.
#[derive(Clone, Debug, Default)]
pub struct DelaySchedule {
    /// Sleep quantum for one delay unit.
    pub unit: Duration,
    /// Per-rank delay units before each `send`, cycled by send index.
    pub send: Vec<Vec<u32>>,
    /// Per-rank delay units before each `recv`, cycled by recv index.
    pub recv: Vec<Vec<u32>>,
}

impl DelaySchedule {
    fn units(table: &[Vec<u32>], rank: usize, seq: u64) -> u32 {
        match table.get(rank) {
            Some(d) if !d.is_empty() => d[(seq % d.len() as u64) as usize],
            _ => 0,
        }
    }

    fn apply(&self, table: &[Vec<u32>], rank: usize, seq: u64) {
        let u = Self::units(table, rank, seq);
        if u > 0 && !self.unit.is_zero() {
            std::thread::sleep(self.unit * u);
        }
    }
}

/// Deterministic message-drop injection at the wire, the third leg of the
/// fault model (crash and stall live in `crate::fault`, interpreted at the
/// learner loop). `drop_send[rank]` lists the send-sequence indices (one
/// counter per rank, incremented on every send) whose messages vanish
/// silently — the send reports success, the peer never sees the message,
/// exactly like a lossy link. Dropped messages are counted in
/// [`Traffic::dropped`] only.
#[derive(Clone, Debug, Default)]
pub struct FaultSchedule {
    /// Per-rank **sorted** send-sequence indices to drop.
    pub drop_send: Vec<Vec<u64>>,
}

impl FaultSchedule {
    fn should_drop(&self, rank: usize, seq: u64) -> bool {
        self.drop_send
            .get(rank)
            .is_some_and(|v| v.binary_search(&seq).is_ok())
    }

    /// True when no rank has any drop scheduled.
    pub fn is_empty(&self) -> bool {
        self.drop_send.iter().all(Vec::is_empty)
    }
}

/// What each rank is currently blocked on (`(src, tag)`), if anything.
/// Shared between the world (for watchdog snapshots) and the endpoints.
type WaitTable = Arc<Vec<Mutex<Option<(usize, u64)>>>>;

/// A communication group of `size` ranks (MPI_COMM_WORLD analogue).
pub struct CommWorld {
    senders: Vec<Sender<Message>>,
    receivers: Vec<Option<Receiver<Message>>>,
    traffic: Arc<Traffic>,
    delays: Option<Arc<DelaySchedule>>,
    faults: Option<Arc<FaultSchedule>>,
    default_deadline: Option<Duration>,
    waiting: WaitTable,
}

impl CommWorld {
    /// Create a world with `size` ranks.
    ///
    /// # Panics
    /// Panics if `size == 0`.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "world needs at least one rank");
        let mut senders = Vec::with_capacity(size);
        let mut receivers = Vec::with_capacity(size);
        for _ in 0..size {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(Some(rx));
        }
        CommWorld {
            senders,
            receivers,
            traffic: Arc::new(Traffic::default()),
            delays: None,
            faults: None,
            default_deadline: None,
            waiting: Arc::new((0..size).map(|_| Mutex::new(None)).collect()),
        }
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.senders.len()
    }

    /// Shared traffic counters.
    pub fn traffic(&self) -> Arc<Traffic> {
        Arc::clone(&self.traffic)
    }

    /// Install a delay-injection schedule (race-checker hook). Must be
    /// called before [`CommWorld::communicators`]; endpoints handed out
    /// later inherit it.
    pub fn set_delays(&mut self, delays: Arc<DelaySchedule>) {
        self.delays = Some(delays);
    }

    /// Install a message-drop schedule (fault-injection hook). Must be
    /// called before [`CommWorld::communicators`]; endpoints handed out
    /// later inherit it.
    pub fn set_faults(&mut self, faults: Arc<FaultSchedule>) {
        self.faults = Some(faults);
    }

    /// Give every endpoint a default receive deadline: plain `recv` calls
    /// become `recv_deadline` with this timeout, so no rank can block
    /// forever on a dead or wedged peer. `None` (the default) preserves
    /// the original unbounded blocking behavior.
    ///
    /// Endpoints copy the deadline at [`CommWorld::communicators`] time,
    /// so calling this afterwards is [`CommError::WorldSplit`] — it used
    /// to be accepted and silently ignored, leaving live endpoints
    /// unbounded while the caller believed they were deadline-protected.
    /// (Endpoints already handed out can still be configured individually
    /// via [`Communicator::set_default_deadline`].)
    pub fn set_default_deadline(&mut self, deadline: Option<Duration>) -> Result<(), CommError> {
        if self.receivers.iter().any(Option::is_none) {
            return Err(CommError::WorldSplit);
        }
        self.default_deadline = deadline;
        Ok(())
    }

    /// Snapshot of what each rank is currently blocked on (`(src, tag)`),
    /// `None` for ranks that are running. The race checker's watchdog reads
    /// this to report held resources when a schedule deadlocks.
    pub fn waiting_snapshot(&self) -> Vec<Option<(usize, u64)>> {
        self.waiting
            .iter()
            .map(|m| *m.lock().expect("wait-table lock"))
            .collect()
    }

    /// Take the per-rank endpoints (callable once; each goes to one thread).
    ///
    /// # Panics
    /// Panics on a second call.
    pub fn communicators(&mut self) -> Vec<Communicator> {
        let size = self.size();
        (0..size)
            .map(|rank| Communicator {
                rank,
                size,
                senders: self.senders.clone(),
                receiver: self.receivers[rank]
                    .take()
                    .expect("communicators() may only be called once"),
                pending: BTreeMap::new(),
                op_counter: 0,
                traffic: Arc::clone(&self.traffic),
                delays: self.delays.clone(),
                faults: self.faults.clone(),
                default_deadline: self.default_deadline,
                send_seq: std::cell::Cell::new(0),
                recv_seq: 0,
                waiting: Arc::clone(&self.waiting),
            })
            .collect()
    }
}

/// One rank's endpoint: send to any rank, receive matched by (from, tag).
pub struct Communicator {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Message>>,
    receiver: Receiver<Message>,
    /// Out-of-order arrivals parked until a matching `recv`. Ordered map:
    /// see the module docs (lint `map-iter`).
    pending: BTreeMap<(usize, u64), VecDeque<Vec<f32>>>,
    /// Collective sequence number; all ranks call collectives in the same
    /// order, so equal counters identify the same operation.
    op_counter: u64,
    traffic: Arc<Traffic>,
    /// Delay-injection schedule (race-checker hook); `None` in production.
    delays: Option<Arc<DelaySchedule>>,
    /// Message-drop schedule (fault-injection hook); `None` in production.
    faults: Option<Arc<FaultSchedule>>,
    /// Deadline applied to plain `recv` calls; `None` = block forever.
    default_deadline: Option<Duration>,
    /// `Cell`: `send` takes `&self` (endpoints are per-thread, never shared).
    send_seq: std::cell::Cell<u64>,
    recv_seq: u64,
    waiting: WaitTable,
}

impl Communicator {
    /// This endpoint's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Install a delay-injection schedule on this endpoint (race-checker
    /// hook; see [`DelaySchedule`]). Also settable world-wide before the
    /// endpoints are taken via [`CommWorld::set_delays`].
    pub fn set_delays(&mut self, delays: Arc<DelaySchedule>) {
        self.delays = Some(delays);
    }

    /// Set or clear this endpoint's default receive deadline (see
    /// [`CommWorld::set_default_deadline`]).
    pub fn set_default_deadline(&mut self, deadline: Option<Duration>) {
        self.default_deadline = deadline;
    }

    /// This endpoint's default receive deadline, if any.
    pub fn default_deadline(&self) -> Option<Duration> {
        self.default_deadline
    }

    /// Send `payload` to `dst` with a `tag` (non-blocking; channels are
    /// unbounded). Fails with [`CommError::PeerGone`] when `dst`'s endpoint
    /// has been dropped — the immediate signature of a crashed learner.
    pub fn send(&self, dst: usize, tag: u64, payload: Vec<f32>) -> Result<(), CommError> {
        let seq = self.send_seq.get();
        self.send_seq.set(seq + 1);
        if let Some(d) = &self.delays {
            d.apply(&d.send, self.rank, seq);
        }
        if let Some(f) = &self.faults {
            if f.should_drop(self.rank, seq) {
                self.traffic.dropped.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
        }
        self.traffic
            .elements
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        self.traffic.messages.fetch_add(1, Ordering::Relaxed);
        self.senders[dst]
            .send(Message {
                from: self.rank,
                tag,
                payload,
            })
            .map_err(|_| CommError::PeerGone { peer: dst })
    }

    /// Blocking receive matched on `(src, tag)`; unrelated messages are
    /// parked for later matching (MPI-style tag matching). Honors the
    /// endpoint's default deadline when one is set.
    pub fn recv(&mut self, src: usize, tag: u64) -> Result<Vec<f32>, CommError> {
        self.recv_inner(src, tag, self.default_deadline)
    }

    /// Receive matched on `(src, tag)` with an explicit deadline:
    /// [`CommError::Timeout`] if nothing matching arrives within `timeout`.
    pub fn recv_deadline(
        &mut self,
        src: usize,
        tag: u64,
        timeout: Duration,
    ) -> Result<Vec<f32>, CommError> {
        self.recv_inner(src, tag, Some(timeout))
    }

    fn recv_inner(
        &mut self,
        src: usize,
        tag: u64,
        timeout: Option<Duration>,
    ) -> Result<Vec<f32>, CommError> {
        if let Some(d) = self.delays.clone() {
            d.apply(&d.recv, self.rank, self.recv_seq);
            self.recv_seq += 1;
        }
        if let Some(q) = self.pending.get_mut(&(src, tag)) {
            if let Some(m) = q.pop_front() {
                return Ok(m);
            }
        }
        let deadline = timeout.map(|t| Instant::now() + t);
        *self.waiting[self.rank].lock().expect("wait-table lock") = Some((src, tag));
        let out = loop {
            match self.next_message(deadline, src, tag) {
                Ok(msg) if msg.from == src && msg.tag == tag => break Ok(msg.payload),
                Ok(msg) => {
                    self.pending
                        .entry((msg.from, msg.tag))
                        .or_default()
                        .push_back(msg.payload);
                }
                Err(e) => break Err(e),
            }
        };
        *self.waiting[self.rank].lock().expect("wait-table lock") = None;
        out
    }

    /// One message off the channel, bounded by `deadline` when present.
    /// `(src, tag)` only label the error.
    fn next_message(
        &self,
        deadline: Option<Instant>,
        src: usize,
        tag: u64,
    ) -> Result<Message, CommError> {
        match deadline {
            None => self
                .receiver
                .recv()
                .map_err(|_| CommError::Disconnected { src, tag }),
            Some(dl) => {
                let remaining = dl.saturating_duration_since(Instant::now());
                self.receiver.recv_timeout(remaining).map_err(|e| match e {
                    RecvTimeoutError::Timeout => CommError::Timeout { src, tag },
                    RecvTimeoutError::Disconnected => CommError::Disconnected { src, tag },
                })
            }
        }
    }

    /// Receive the first available message matching **any** of
    /// `candidates`, in *arrival order* (pending messages are drained in
    /// candidate order first). An empty candidate list is
    /// [`CommError::NoCandidates`] — it used to park forever on a sentinel
    /// `(src, tag)` no sender could match, buffering every arrival.
    ///
    /// This is deliberately **not** used by the crate's fixed-order
    /// collectives: the combine order it yields depends on the thread
    /// schedule, which is exactly the nondeterminism those exist to avoid.
    /// It is public for the `sasgd-analysis` race checker and for the
    /// fault-tolerant collectives in [`crate::ft`], whose recovery sweep
    /// re-sorts arrivals by source rank before combining.
    pub fn recv_any(
        &mut self,
        candidates: &[(usize, u64)],
    ) -> Result<(usize, Vec<f32>), CommError> {
        self.recv_any_inner(candidates, self.default_deadline)
    }

    /// [`Communicator::recv_any`] with an explicit deadline.
    pub fn recv_any_deadline(
        &mut self,
        candidates: &[(usize, u64)],
        timeout: Duration,
    ) -> Result<(usize, Vec<f32>), CommError> {
        self.recv_any_inner(candidates, Some(timeout))
    }

    fn recv_any_inner(
        &mut self,
        candidates: &[(usize, u64)],
        timeout: Option<Duration>,
    ) -> Result<(usize, Vec<f32>), CommError> {
        let &(first_src, first_tag) = candidates.first().ok_or(CommError::NoCandidates)?;
        if let Some(d) = self.delays.clone() {
            d.apply(&d.recv, self.rank, self.recv_seq);
            self.recv_seq += 1;
        }
        for &(src, tag) in candidates {
            if let Some(q) = self.pending.get_mut(&(src, tag)) {
                if let Some(m) = q.pop_front() {
                    return Ok((src, m));
                }
            }
        }
        let deadline = timeout.map(|t| Instant::now() + t);
        *self.waiting[self.rank].lock().expect("wait-table lock") = Some((first_src, first_tag));
        let out = loop {
            match self.next_message(deadline, first_src, first_tag) {
                Ok(msg) if candidates.contains(&(msg.from, msg.tag)) => {
                    break Ok((msg.from, msg.payload));
                }
                Ok(msg) => {
                    self.pending
                        .entry((msg.from, msg.tag))
                        .or_default()
                        .push_back(msg.payload);
                }
                Err(e) => break Err(e),
            }
        };
        *self.waiting[self.rank].lock().expect("wait-table lock") = None;
        out
    }

    /// Next collective sequence number (advances the counter).
    pub fn next_op(&mut self) -> u64 {
        let op = self.op_counter;
        self.op_counter += 1;
        op
    }

    /// Shared traffic counters.
    pub fn traffic(&self) -> &Traffic {
        &self.traffic
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn ping_pong() {
        let mut world = CommWorld::new(2);
        let mut comms = world.communicators();
        let c1 = comms.pop().expect("rank 1");
        let mut c0 = comms.pop().expect("rank 0");
        let t = thread::spawn(move || {
            let mut c1 = c1;
            let v = c1.recv(0, 7).expect("recv");
            c1.send(0, 8, v.iter().map(|x| x * 2.0).collect())
                .expect("send");
        });
        c0.send(1, 7, vec![1.0, 2.0]).expect("send");
        let back = c0.recv(1, 8).expect("recv");
        assert_eq!(back, vec![2.0, 4.0]);
        t.join().expect("peer thread");
    }

    #[test]
    fn out_of_order_matching() {
        let mut world = CommWorld::new(2);
        let mut comms = world.communicators();
        let c1 = comms.pop().expect("rank 1");
        let mut c0 = comms.pop().expect("rank 0");
        let t = thread::spawn(move || {
            let c1 = c1;
            // Send tag 2 first, then tag 1.
            c1.send(0, 2, vec![2.0]).expect("send");
            c1.send(0, 1, vec![1.0]).expect("send");
        });
        t.join().expect("peer thread");
        // Receive in the opposite order.
        assert_eq!(c0.recv(1, 1).expect("recv"), vec![1.0]);
        assert_eq!(c0.recv(1, 2).expect("recv"), vec![2.0]);
    }

    #[test]
    fn fifo_within_same_tag() {
        let mut world = CommWorld::new(2);
        let mut comms = world.communicators();
        let c1 = comms.pop().expect("rank 1");
        let mut c0 = comms.pop().expect("rank 0");
        c1.send(0, 5, vec![1.0]).expect("send");
        c1.send(0, 5, vec![2.0]).expect("send");
        // Force both into the pending map by receiving another tag after.
        c1.send(0, 9, vec![9.0]).expect("send");
        assert_eq!(c0.recv(1, 9).expect("recv"), vec![9.0]);
        assert_eq!(c0.recv(1, 5).expect("recv"), vec![1.0]);
        assert_eq!(c0.recv(1, 5).expect("recv"), vec![2.0]);
    }

    #[test]
    fn traffic_is_counted() {
        let mut world = CommWorld::new(2);
        let traffic = world.traffic();
        let mut comms = world.communicators();
        let c1 = comms.pop().expect("rank 1");
        let mut c0 = comms.pop().expect("rank 0");
        c1.send(0, 1, vec![0.0; 10]).expect("send");
        let _ = c0.recv(1, 1).expect("recv");
        assert_eq!(traffic.elements_sent(), 10);
        assert_eq!(traffic.messages_sent(), 1);
    }

    #[test]
    #[should_panic(expected = "only be called once")]
    fn communicators_single_use() {
        let mut world = CommWorld::new(1);
        let _a = world.communicators();
        let _b = world.communicators();
    }

    #[test]
    fn send_to_dropped_peer_is_peer_gone() {
        let mut world = CommWorld::new(2);
        let mut comms = world.communicators();
        let c1 = comms.pop().expect("rank 1");
        let c0 = comms.pop().expect("rank 0");
        drop(c1); // rank 1 "crashes": its receiver is gone
        assert_eq!(
            c0.send(1, 3, vec![1.0]),
            Err(CommError::PeerGone { peer: 1 })
        );
    }

    #[test]
    fn recv_deadline_times_out_and_clears_wait_table() {
        let mut world = CommWorld::new(2);
        let snapshot_world = world.waiting_snapshot();
        assert_eq!(snapshot_world, vec![None, None]);
        let mut comms = world.communicators();
        let _c1 = comms.pop().expect("rank 1");
        let mut c0 = comms.pop().expect("rank 0");
        assert_eq!(
            c0.recv_deadline(1, 4, Duration::from_millis(10)),
            Err(CommError::Timeout { src: 1, tag: 4 })
        );
        // The wait-table entry must be cleared on the error path too.
        assert_eq!(world.waiting_snapshot(), vec![None, None]);
    }

    #[test]
    fn recv_deadline_delivers_when_message_present() {
        let mut world = CommWorld::new(2);
        let mut comms = world.communicators();
        let c1 = comms.pop().expect("rank 1");
        let mut c0 = comms.pop().expect("rank 0");
        c1.send(0, 4, vec![5.0]).expect("send");
        assert_eq!(
            c0.recv_deadline(1, 4, Duration::from_millis(50))
                .expect("recv"),
            vec![5.0]
        );
    }

    #[test]
    fn recv_any_empty_candidates_is_error() {
        let mut world = CommWorld::new(1);
        let mut comms = world.communicators();
        let mut c0 = comms.pop().expect("rank 0");
        assert_eq!(c0.recv_any(&[]), Err(CommError::NoCandidates));
    }

    #[test]
    fn default_deadline_bounds_plain_recv() {
        // Ordering regression (1 of 2): set-then-split propagates.
        let mut world = CommWorld::new(2);
        world
            .set_default_deadline(Some(Duration::from_millis(10)))
            .expect("deadline before split");
        let mut comms = world.communicators();
        let _c1 = comms.pop().expect("rank 1");
        let mut c0 = comms.pop().expect("rank 0");
        assert_eq!(c0.recv(1, 2), Err(CommError::Timeout { src: 1, tag: 2 }));
    }

    #[test]
    fn default_deadline_after_split_is_rejected() {
        // Ordering regression (2 of 2): split-then-set is a typed error —
        // it used to be silently ignored, leaving endpoints unbounded
        // while the caller believed they had a deadline.
        let mut world = CommWorld::new(2);
        let mut comms = world.communicators();
        assert_eq!(
            world.set_default_deadline(Some(Duration::from_millis(10))),
            Err(CommError::WorldSplit)
        );
        // Endpoints really were untouched: no deadline is installed.
        let _c1 = comms.pop().expect("rank 1");
        let mut c0 = comms.pop().expect("rank 0");
        assert_eq!(c0.default_deadline(), None);
        // The per-endpoint escape hatch still works after the split.
        c0.set_default_deadline(Some(Duration::from_millis(10)));
        assert_eq!(c0.recv(1, 2), Err(CommError::Timeout { src: 1, tag: 2 }));
    }

    #[test]
    fn fault_schedule_drops_scheduled_sends() {
        let mut world = CommWorld::new(2);
        world.set_faults(Arc::new(FaultSchedule {
            drop_send: vec![vec![], vec![1]], // rank 1's 2nd send vanishes
        }));
        let traffic = world.traffic();
        let mut comms = world.communicators();
        let c1 = comms.pop().expect("rank 1");
        let mut c0 = comms.pop().expect("rank 0");
        c1.send(0, 1, vec![1.0]).expect("send");
        c1.send(0, 1, vec![2.0]).expect("send dropped silently");
        c1.send(0, 1, vec![3.0]).expect("send");
        assert_eq!(c0.recv(1, 1).expect("recv"), vec![1.0]);
        assert_eq!(c0.recv(1, 1).expect("recv"), vec![3.0]);
        assert_eq!(traffic.messages_sent(), 2);
        assert_eq!(traffic.messages_dropped(), 1);
    }
}

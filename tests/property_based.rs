//! Property-based tests (proptest) on the core invariants: collectives
//! compute exact sums, shards partition, flat parameter views round-trip,
//! compression is lossless under error feedback, the sparse wire format
//! reproduces the dense collectives, the theory module's solutions satisfy
//! their defining equations, and the cost model is monotone.

use proptest::prelude::*;
use sasgd::comm::collectives::{allreduce_ring, allreduce_tree, broadcast};
use sasgd::comm::sparse::{sparse_allreduce_tree, SparseVec};
use sasgd::comm::world::CommWorld;
use sasgd::core::epoch_time::{epoch_time, Aggregation, Workload};
use sasgd::core::theory;
use sasgd::core::{train, Algorithm, Backend, Compression, Executor, TSchedule, TrainConfig};
use sasgd::data::cifar_like::{generate, CifarLikeConfig};
use sasgd::data::Dataset;
use sasgd::nn::models;
use sasgd::simnet::{CostModel, EventQueue, JitterModel, VirtualTime};
use sasgd::tensor::SeedRng;
use std::thread;

fn run_ranks<T: Send>(p: usize, f: impl Fn(&mut sasgd::comm::Communicator) -> T + Sync) -> Vec<T> {
    let mut world = CommWorld::new(p);
    let comms = world.communicators();
    let mut out: Vec<Option<T>> = (0..p).map(|_| None).collect();
    thread::scope(|s| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|mut c| {
                let f = &f;
                s.spawn(move || f(&mut c))
            })
            .collect();
        for (slot, h) in out.iter_mut().zip(handles) {
            *slot = Some(h.join().expect("rank"));
        }
    });
    out.into_iter().map(|o| o.expect("value")).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn allreduce_tree_is_exact_sum_order(
        p in 1usize..9,
        m in 1usize..40,
        seed in 0u64..1000,
    ) {
        let mut rng = SeedRng::new(seed);
        let inputs: Vec<Vec<f32>> = (0..p)
            .map(|_| (0..m).map(|_| (rng.below(200) as f32) - 100.0).collect())
            .collect();
        let inputs2 = inputs.clone();
        let results = run_ranks(p, move |c| {
            let mut v = inputs2[c.rank()].clone();
            allreduce_tree(c, &mut v).expect("allreduce");
            v
        });
        // Integer-valued floats sum exactly, so compare against the plain sum.
        let expect: Vec<f32> = (0..m)
            .map(|j| inputs.iter().map(|v| v[j]).sum())
            .collect();
        for r in results {
            prop_assert_eq!(&r, &expect);
        }
    }

    #[test]
    fn ring_matches_tree(p in 1usize..7, m in 1usize..30, seed in 0u64..1000) {
        let mut rng = SeedRng::new(seed);
        let inputs: Vec<Vec<f32>> = (0..p)
            .map(|_| (0..m).map(|_| (rng.below(64) as f32) - 32.0).collect())
            .collect();
        let i1 = inputs.clone();
        let tree = run_ranks(p, move |c| {
            let mut v = i1[c.rank()].clone();
            allreduce_tree(c, &mut v).expect("allreduce");
            v
        });
        let ring = run_ranks(p, move |c| {
            let mut v = inputs[c.rank()].clone();
            allreduce_ring(c, &mut v).expect("ring allreduce");
            v
        });
        prop_assert_eq!(tree, ring);
    }

    #[test]
    fn broadcast_from_any_root(p in 1usize..9, root_pick in 0usize..8, m in 1usize..20) {
        let root = root_pick % p;
        let payload: Vec<f32> = (0..m).map(|i| i as f32 * 1.5).collect();
        let expect = payload.clone();
        let results = run_ranks(p, move |c| {
            let mut v = if c.rank() == root { payload.clone() } else { vec![0.0; m] };
            broadcast(c, root, &mut v).expect("broadcast");
            v
        });
        for r in results {
            prop_assert_eq!(&r, &expect);
        }
    }

    #[test]
    fn shards_partition_exactly(n in 1usize..200, p in 1usize..17) {
        let data = Dataset::new(vec![0.0; n], vec![0; n], &[1], 1);
        let shards = data.shards(p);
        prop_assert_eq!(shards.len(), p);
        let mut all: Vec<usize> = shards.iter().flat_map(|s| s.indices().to_vec()).collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
        let sizes: Vec<usize> = shards.iter().map(|s| s.len()).collect();
        let (mn, mx) = (sizes.iter().min().expect("p>0"), sizes.iter().max().expect("p>0"));
        prop_assert!(mx - mn <= 1, "near-equal shards");
    }

    #[test]
    fn flat_param_roundtrip(seed in 0u64..500) {
        let m1 = models::tiny_mlp(6, 5, 4, &mut SeedRng::new(seed));
        let v = m1.param_vector();
        let mut m2 = models::tiny_mlp(6, 5, 4, &mut SeedRng::new(seed.wrapping_add(1)));
        m2.write_params(&v);
        prop_assert_eq!(m2.param_vector(), v);
    }

    #[test]
    fn cubic_root_is_positive_root(p in 1usize..200, alpha in 1.0f64..500.0) {
        let c = theory::solve_cubic(p, alpha);
        prop_assert!(c > 0.0);
        let r = 4.0 * p as f64 * c.powi(3) + alpha * c * c - 2.0 * alpha;
        prop_assert!(r.abs() < 1e-5 * (1.0 + alpha), "residual {}", r);
        // And the clamped optimum respects the admissible range.
        let copt = theory::optimal_c(p, alpha);
        prop_assert!(copt <= theory::c_max(p, alpha) + 1e-12);
    }

    #[test]
    fn guarantee_gap_never_improves_with_p(alpha in 8.0f64..64.0) {
        let mut prev = theory::optimal_guarantee(1, alpha);
        for p in [2usize, 4, 8, 16, 32] {
            let g = theory::optimal_guarantee(p, alpha);
            prop_assert!(g >= prev - 1e-9, "guarantee improved from {prev} to {g} at p={p}");
            prev = g;
        }
    }

    #[test]
    fn epoch_time_monotone_in_t(p in 2usize..9, t in 1usize..100) {
        let cost = CostModel::paper_testbed();
        let jit = JitterModel::none();
        let w = Workload::cifar10();
        let a = epoch_time(&cost, &w, Aggregation::AllreduceTree, p, t, &jit, 1).total();
        let b = epoch_time(&cost, &w, Aggregation::AllreduceTree, p, t + 1, &jit, 1).total();
        prop_assert!(b <= a + 1e-12, "larger T must not cost more time");
    }

    #[test]
    fn event_queue_pops_sorted(times in proptest::collection::vec(0.0f64..1e6, 1..60)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(VirtualTime(t), i);
        }
        let mut prev = f64::NEG_INFINITY;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t.seconds() >= prev);
            prev = t.seconds();
        }
    }

    #[test]
    fn topk_error_feedback_is_lossless_bitwise(
        raw in proptest::collection::vec(-1e6f32..1e6, 1..60),
        ratio in 0.05f64..1.0,
    ) {
        // Whatever top-k drops lands in the residual, so the decomposition
        // loses nothing: dense[i] + residual[i] must reproduce the input
        // bit for bit (exactly one of the two is the original value, the
        // other is +0.0; -0.0 inputs are normalized away since x + -0.0
        // only differs from x at that one bit pattern).
        let g: Vec<f32> = raw.iter().map(|&x| if x == 0.0 { 0.0 } else { x }).collect();
        let c = Compression::TopK { ratio }.compress(&g);
        for ((d, r), orig) in c.dense.iter().zip(&c.residual).zip(&g) {
            prop_assert_eq!((d + r).to_bits(), orig.to_bits());
            prop_assert!(*d == 0.0 || *r == 0.0, "coordinate split between dense and residual");
        }
    }

    #[test]
    fn uniform8bit_error_is_bounded_by_half_a_step(
        raw in proptest::collection::vec(-1e6f32..1e6, 1..60),
    ) {
        let g: Vec<f32> = raw.iter().map(|&x| if x == 0.0 { 0.0 } else { x }).collect();
        let c = Compression::Uniform8Bit.compress(&g);
        let maxabs = g.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
        let step = maxabs / 127.0;
        // Quantization rounds to the nearest of 255 levels: the residual
        // can never exceed half a step (plus float rounding slack).
        let bound = 0.5 * step * (1.0 + 1e-3) + f32::MIN_POSITIVE;
        for (&r, (&d, &orig)) in c.residual.iter().zip(c.dense.iter().zip(&g)) {
            prop_assert!(r.abs() <= bound, "residual {r} exceeds half-step {bound}");
            // The residual is the exact rounding error.
            prop_assert_eq!((orig - d).to_bits(), r.to_bits());
        }
    }

    #[test]
    fn sparse_allreduce_matches_dense_allreduce_bitwise(
        p in 1usize..8,
        m in 1usize..40,
        density in 1u64..100,
        seed in 0u64..1000,
    ) {
        // Arbitrary sparsity patterns and dyadic values: the sparse tree
        // allreduce must equal the dense tree allreduce on the densified
        // vectors, element for element, bit for bit.
        let make = move |rank: usize| -> Vec<f32> {
            let mut rng = SeedRng::new(seed.wrapping_mul(31).wrapping_add(rank as u64));
            (0..m)
                .map(|_| {
                    if (rng.below(100) as u64) < density {
                        (rng.below(2001) as f32 - 1000.0) / 8.0
                    } else {
                        0.0
                    }
                })
                .collect()
        };
        let dense = run_ranks(p, move |c| {
            let mut v = make(c.rank());
            allreduce_tree(c, &mut v).expect("allreduce");
            v
        });
        let sparse = run_ranks(p, move |c| {
            let mut sv = SparseVec::from_dense(&make(c.rank()));
            sparse_allreduce_tree(c, &mut sv).expect("sparse allreduce");
            sv.to_dense()
        });
        for (dv, sv) in dense.iter().zip(&sparse) {
            for (a, b) in dv.iter().zip(sv) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn sasgd_bound_worsens_with_t_at_fixed_s(
        t in 1usize..100,
        p in 1usize..17,
    ) {
        let c = theory::ProblemConstants { df: 2.0, l: 8.0, sigma2: 1.5 };
        let s = 5.0e6;
        let b1 = theory::sasgd_best_bound_fixed_s(&c, 8, t, p, s);
        let b2 = theory::sasgd_best_bound_fixed_s(&c, 8, t * 2, p, s);
        prop_assert!(b2 >= b1 - 1e-9, "Theorem 4 violated: T={t} {b1} vs 2T {b2}");
    }
}

// ---- Event-driven engine invariants ------------------------------------
// Each case runs real (tiny) training, so the case count stays low.

fn lattice_cfg(seed: u64) -> TrainConfig {
    let mut cfg = TrainConfig::new(2, 8, 0.05, seed);
    cfg.jitter = JitterModel::none();
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn sync_policy_round_count_matches_across_backends_at_p1(
        t0 in 1usize..4,
        growth in 1usize..4,
        patience in 1u32..3,
        adaptive in 0usize..2,
        seed in 0u64..100,
    ) {
        // Any SyncPolicy with T >= 1 must fire the same NUMBER of
        // aggregation events on the simulated and the threaded backend at
        // p = 1 — the policy state advances from identical signals, so the
        // round structure cannot depend on the substrate.
        let schedule = if adaptive == 1 {
            TSchedule::AdaptivePlateau {
                t0,
                t_max: t0 * growth,
                patience,
                rel_improve: 0.25,
            }
        } else {
            TSchedule::Fixed { t: t0 }
        };
        let (train_set, test_set) = generate(&CifarLikeConfig::tiny(64, 16, 2));
        let cfg = lattice_cfg(seed);
        let algo = Algorithm::LocalSgd { p: 1, schedule };
        let factory = move || models::tiny_cnn(2, &mut SeedRng::new(7));
        let sim = Executor::new(Backend::Simulated).run(&factory, &train_set, &test_set, &algo, &cfg);
        let thr = Executor::new(Backend::Threaded).run(&factory, &train_set, &test_set, &algo, &cfg);
        // (vendored prop_assert_eq! takes no message: the values identify
        // the failing schedule via proptest's input shrinking.)
        prop_assert_eq!(sim.sync_rounds, thr.sync_rounds);
    }

    #[test]
    fn adaptive_t_never_syncs_more_than_fixed_t0(
        t0 in 1usize..4,
        patience in 1u32..4,
        rel_improve in 0.0f32..0.9,
        seed in 0u64..100,
    ) {
        // T only ever grows under the plateau schedule, so over the same
        // number of local steps the adaptive run can never aggregate more
        // often than Fixed { t: t0 } — the fixed schedule is an upper
        // bound on communication.
        let (train_set, test_set) = generate(&CifarLikeConfig::tiny(64, 16, 2));
        let cfg = lattice_cfg(seed);
        let mut f1 = || models::tiny_cnn(2, &mut SeedRng::new(7));
        let fixed = train(
            &mut f1,
            &train_set,
            &test_set,
            &Algorithm::LocalSgd { p: 2, schedule: TSchedule::Fixed { t: t0 } },
            &cfg,
        );
        let mut f2 = || models::tiny_cnn(2, &mut SeedRng::new(7));
        let adaptive = train(
            &mut f2,
            &train_set,
            &test_set,
            &Algorithm::LocalSgd {
                p: 2,
                schedule: TSchedule::AdaptivePlateau {
                    t0,
                    t_max: t0 * 8,
                    patience,
                    rel_improve,
                },
            },
            &cfg,
        );
        prop_assert!(
            adaptive.sync_rounds <= fixed.sync_rounds,
            "adaptive {} rounds exceeds fixed-T lower bound {}",
            adaptive.sync_rounds,
            fixed.sync_rounds
        );
    }
}

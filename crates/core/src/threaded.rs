//! SASGD over real OS threads — Algorithm 1 on the `sasgd-comm`
//! collectives, measuring wall-clock time instead of virtual time.
//!
//! The batch orders, dropout streams and aggregation arithmetic mirror the
//! simulated `algorithms::sasgd` implementation (the simulated
//! aggregation sums in the same binomial-tree order the collective uses),
//! so the two backends produce *identical parameters*; an integration test
//! in the workspace root asserts it. This is the backend the Criterion
//! benches drive for real-parallelism measurements.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use sasgd_comm::collectives::{allreduce_tree, broadcast};
use sasgd_comm::fault::FaultPlan;
use sasgd_comm::ps::{PsConfig, PsServer};
use sasgd_data::{make_shards, Dataset};
use sasgd_nn::Model;

use crate::algorithms::GammaP;
use crate::engine::threaded::join_learners;
use crate::engine::BatchStream;
use crate::history::History;
use crate::trainer::{EvalSets, Learner, TrainConfig};

/// Parameter-server fetch deadline for the threaded asynchronous backends.
/// Generous — a healthy in-process server answers in microseconds; the
/// deadline only converts a dead or wedged shard from an eternal hang into
/// a typed failure.
const PS_PULL_DEADLINE: Duration = Duration::from_secs(5);
/// Bounded retries for a timed-out pull (each attempt backs off twice as
/// long as the previous one, starting at [`PS_PULL_BACKOFF`]).
const PS_PULL_RETRIES: usize = 3;
/// Initial retry backoff for a timed-out pull.
const PS_PULL_BACKOFF: Duration = Duration::from_millis(20);

/// Fault-injection configuration for [`run_threaded_sasgd_ft`].
#[derive(Clone, Debug)]
pub struct FaultConfig {
    /// The deterministic fault plan (crashes, stalls, message drops).
    pub plan: FaultPlan,
    /// Failure-detection deadline: how long a learner waits on a peer
    /// before treating it as lost. Trades detection latency against
    /// false-positive evictions of stragglers.
    pub deadline: Duration,
}

impl Default for FaultConfig {
    /// No injected faults, half-second detection deadline.
    fn default() -> Self {
        FaultConfig {
            plan: FaultPlan::none(),
            deadline: Duration::from_millis(500),
        }
    }
}

/// Run SASGD with one OS thread per learner. `factory` is called once per
/// thread and must produce identically initialized models. Delegates to
/// the unified engine's threaded backend (kept as a stable entry point for
/// the benches and equivalence tests).
///
/// # Panics
/// Panics on a wire failure — impossible over healthy in-process channels;
/// use [`try_run_threaded_sasgd`] for the typed error.
pub fn run_threaded_sasgd(
    factory: &(dyn Fn() -> Model + Sync),
    train_set: &Dataset,
    test_set: &Dataset,
    cfg: &TrainConfig,
    p: usize,
    t: usize,
    gamma_p: GammaP,
) -> History {
    try_run_threaded_sasgd(factory, train_set, test_set, cfg, p, t, gamma_p)
        .unwrap_or_else(|e| panic!("threaded SASGD(p={p},T={t}): {e}"))
}

/// [`run_threaded_sasgd`] with wire failures surfaced as typed
/// [`EngineError::WireFailure`](crate::EngineError) values instead of
/// panics — the entry point for callers whose substrate can actually fail
/// (the multi-process launcher reports these per rank).
pub fn try_run_threaded_sasgd(
    factory: &(dyn Fn() -> Model + Sync),
    train_set: &Dataset,
    test_set: &Dataset,
    cfg: &TrainConfig,
    p: usize,
    t: usize,
    gamma_p: GammaP,
) -> Result<History, crate::EngineError> {
    crate::engine::threaded::run_sasgd(factory, train_set, test_set, cfg, p, t, gamma_p, None)
}

/// Run SASGD on the threaded backend under the fault-tolerance layer:
/// deterministic crash/stall/drop injection from `faults.plan`, deadline
/// failure detection, and graceful degradation onto the survivors (the
/// binomial tree is rebuilt over `p' < p` ranks and `γp` rescales per
/// `gamma_p`). With [`FaultPlan::none`] the run is bitwise identical to
/// [`run_threaded_sasgd`]; with faults it is bitwise reproducible for the
/// same plan. Membership changes are recorded in
/// [`History::membership`](crate::history::History::membership); learners
/// that left mid-run (evicted *or* cut off by a survivable wire failure)
/// appear in [`History::retirements`](crate::history::History::retirements)
/// — neither path panics.
///
/// # Panics
/// Panics only on an *unsurvivable* failure (a wire failure under the
/// recovery coordinator, rank 0); use [`try_run_threaded_sasgd_ft`] for
/// the typed error.
#[allow(clippy::too_many_arguments)] // mirrors the algorithm's parameter set
pub fn run_threaded_sasgd_ft(
    factory: &(dyn Fn() -> Model + Sync),
    train_set: &Dataset,
    test_set: &Dataset,
    cfg: &TrainConfig,
    p: usize,
    t: usize,
    gamma_p: GammaP,
    faults: &FaultConfig,
) -> History {
    try_run_threaded_sasgd_ft(factory, train_set, test_set, cfg, p, t, gamma_p, faults)
        .unwrap_or_else(|e| panic!("threaded SASGD-ft(p={p},T={t}) could not degrade: {e}"))
}

/// [`run_threaded_sasgd_ft`] with the unsurvivable-failure case surfaced
/// as a typed [`EngineError`](crate::EngineError) instead of a panic.
#[allow(clippy::too_many_arguments)] // mirrors the algorithm's parameter set
pub fn try_run_threaded_sasgd_ft(
    factory: &(dyn Fn() -> Model + Sync),
    train_set: &Dataset,
    test_set: &Dataset,
    cfg: &TrainConfig,
    p: usize,
    t: usize,
    gamma_p: GammaP,
    faults: &FaultConfig,
) -> Result<History, crate::EngineError> {
    crate::engine::threaded::try_run_sasgd_ft(
        factory,
        train_set,
        test_set,
        cfg,
        p,
        t,
        gamma_p,
        &faults.plan,
        faults.deadline,
    )
}

/// Run Downpour with one OS thread per learner against a real sharded
/// [`PsServer`]. Unlike the simulated backend, the interleaving here is
/// decided by the OS scheduler — runs are *not* reproducible across
/// executions (that is the point: it demonstrates genuine asynchrony on
/// the same substrate Downpour was defined for). Returns learner 0's
/// history.
///
/// With `staleness_gamma` each push is scaled by `γ/(1+τ)` where τ is the
/// *measured* number of foreign pushes the server applied between this
/// learner's last pull and its push — counted by a shared atomic, so the
/// scaling reflects the real interleaving, not a model of it. Rank 0's
/// per-push τ observations land in
/// [`History::staleness_series`](crate::history::History::staleness_series).
#[allow(clippy::too_many_arguments)] // mirrors the Downpour variant's fields
pub fn run_threaded_downpour(
    factory: &(dyn Fn() -> Model + Sync),
    train_set: &Dataset,
    test_set: &Dataset,
    cfg: &TrainConfig,
    p: usize,
    t: usize,
    shards: usize,
    staleness_gamma: bool,
) -> History {
    assert!(p >= 1 && t >= 1 && shards >= 1);
    sasgd_tensor::parallel::auto_configure_for_learners(p);
    let probe = factory();
    let ps = PsServer::spawn(probe.param_vector(), PsConfig { shards });
    let n = train_set.len();
    let target_per_learner = (cfg.epochs * n).div_ceil(p);
    let data_shards = make_shards(train_set, p, cfg.shard_strategy);
    // Global push counter: τ for a push is how many pushes (from any
    // learner, this one included — fetch_add returns the pre-increment
    // count) landed since this learner's last pull.
    let push_counter = AtomicU64::new(0);
    let label = if staleness_gamma {
        format!("Downpour-s\u{3b3}-threaded(p={p},T={t})")
    } else {
        format!("Downpour-threaded(p={p},T={t})")
    };
    let mut rank0_history: Option<History> = None;

    std::thread::scope(|scope| {
        let push_counter = &push_counter;
        let mut handles = Vec::new();
        for (rank, data_shard) in data_shards.iter().enumerate() {
            let client = ps.client();
            let label = label.clone();
            let handle = scope.spawn(move || {
                let mut learner = Learner::new(rank, factory(), cfg);
                let x0 = client
                    .pull_timeout(PS_PULL_DEADLINE, PS_PULL_RETRIES, PS_PULL_BACKOFF)
                    .expect("initial parameter pull");
                learner.model.write_params(&x0);
                let mut seen = push_counter.load(Ordering::SeqCst);
                let evals = if rank == 0 {
                    Some(EvalSets::prepare(train_set, test_set, cfg.eval_cap))
                } else {
                    None
                };
                let mut history = History::new(label, p, t);
                let mut stream = BatchStream::new(data_shard.indices().to_vec(), cfg.batch_size);
                let mut samples = 0usize;
                let mut compute_s = 0.0f64;
                let mut comm_s = 0.0f64;
                let mut recorded = 0u64;
                let mut pushes = 0u64;
                let mut staleness_obs: Vec<u64> = Vec::new();
                while samples < target_per_learner {
                    // Schedule γ by estimated collective progress.
                    let gamma_now = cfg.gamma_at(samples as f64 * p as f64 / n as f64);
                    let t0 = Instant::now();
                    for _ in 0..t {
                        let idx = stream.next(&mut learner.rng);
                        samples += idx.len();
                        learner.local_step(train_set, &idx, gamma_now, 0.0, 1.0);
                    }
                    compute_s += t0.elapsed().as_secs_f64();
                    let t1 = Instant::now();
                    // Push the accumulated gradient; the server applies it
                    // whenever it lands relative to the other learners.
                    let tau = push_counter.fetch_add(1, Ordering::SeqCst) - seen;
                    let gamma_eff = if staleness_gamma {
                        gamma_now / (1.0 + tau as f32) // lint:allow(float-cast)
                    } else {
                        gamma_now
                    };
                    client
                        .try_push_gradient(gamma_eff, &learner.gs)
                        .expect("gradient push");
                    learner.gs.iter_mut().for_each(|g| *g = 0.0);
                    if rank == 0 {
                        history.push_staleness(pushes, 0, tau, gamma_eff);
                        staleness_obs.push(tau);
                    }
                    pushes += 1;
                    // Deadline-bounded fetch: a dead shard surfaces as a
                    // typed error naming the shard, not an eternal hang.
                    let fresh = client
                        .pull_timeout(PS_PULL_DEADLINE, PS_PULL_RETRIES, PS_PULL_BACKOFF)
                        .expect("parameter pull");
                    seen = push_counter.load(Ordering::SeqCst);
                    learner.model.write_params(&fresh);
                    comm_s += t1.elapsed().as_secs_f64();
                    if rank == 0 && stream.completed_passes() > recorded {
                        recorded = stream.completed_passes();
                        if let Some(ev) = &evals {
                            // One pass over rank 0's shard ≈ one epoch of
                            // collective progress.
                            let rec = ev.record(
                                &mut learner.model,
                                recorded as f64,
                                compute_s,
                                comm_s,
                                (samples * p) as u64,
                            );
                            history.records.push(rec);
                        }
                    }
                }
                if rank == 0 && history.records.is_empty() {
                    if let Some(ev) = &evals {
                        let rec = ev.record(
                            &mut learner.model,
                            samples as f64 * p as f64 / n as f64,
                            compute_s,
                            comm_s,
                            (samples * p) as u64,
                        );
                        history.records.push(rec);
                    }
                }
                history.staleness =
                    crate::history::StalenessStats::from_observations(&staleness_obs);
                history.final_params = Some(learner.model.param_vector());
                (rank, history)
            });
            handles.push(handle);
        }
        for (rank, history) in join_learners(handles) {
            if rank == 0 {
                rank0_history = Some(history);
            }
        }
    });
    let mut history = rank0_history.expect("rank 0 history");
    history.sync_rounds = push_counter.load(Ordering::SeqCst);
    let m = probe.param_len();
    let traffic = ps.traffic();
    let elements = traffic.pushed.load(std::sync::atomic::Ordering::Relaxed)
        + traffic.pulled.load(std::sync::atomic::Ordering::Relaxed);
    history.wire = Some(crate::history::WireStats {
        elements,
        messages: elements / m as u64,
    });
    ps.shutdown();
    history
}

/// Run hierarchical SASGD over real OS threads using the grouped
/// communicators of `sasgd-comm`: every `t_local` minibatches each group
/// aggregates through [`sasgd_comm::hierarchy::hierarchical_allreduce`]-style
/// local collectives
/// and applies the group step; every `t_global` local rounds the group
/// parameter copies are averaged through the leader communicator. The
/// real-substrate counterpart of `Algorithm::HierarchicalSasgd`.
#[allow(clippy::too_many_arguments)] // mirrors the algorithm's parameter set
pub fn run_threaded_hierarchical_sasgd(
    factory: &(dyn Fn() -> Model + Sync),
    train_set: &Dataset,
    test_set: &Dataset,
    cfg: &TrainConfig,
    groups: usize,
    per_group: usize,
    t_local: usize,
    t_global: usize,
    gamma_p: GammaP,
) -> History {
    try_run_threaded_hierarchical_sasgd(
        factory, train_set, test_set, cfg, groups, per_group, t_local, t_global, gamma_p,
    )
    .unwrap_or_else(|e| panic!("threaded H-SASGD(g={groups}x{per_group}): {e}"))
}

/// [`run_threaded_hierarchical_sasgd`] with wire failures surfaced as
/// typed [`EngineError::WireFailure`](crate::EngineError) values instead
/// of panics.
#[allow(clippy::too_many_arguments)] // mirrors the algorithm's parameter set
pub fn try_run_threaded_hierarchical_sasgd(
    factory: &(dyn Fn() -> Model + Sync),
    train_set: &Dataset,
    test_set: &Dataset,
    cfg: &TrainConfig,
    groups: usize,
    per_group: usize,
    t_local: usize,
    t_global: usize,
    gamma_p: GammaP,
) -> Result<History, crate::EngineError> {
    assert!(groups >= 1 && per_group >= 1 && t_local >= 1 && t_global >= 1);
    let p = groups * per_group;
    sasgd_tensor::parallel::auto_configure_for_learners(p);
    let shards = make_shards(train_set, p, cfg.shard_strategy);
    let steps_per_epoch = shards
        .iter()
        .map(|s| s.len() / cfg.batch_size)
        .min()
        .expect("at least one shard");
    assert!(steps_per_epoch > 0, "shards too small for batch size");

    let bundles = sasgd_comm::hierarchy::grouped(groups, per_group);
    let mut rank0_history: Option<History> = None;

    let mut first_err: Option<crate::EngineError> = None;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (mut bundle, shard) in bundles.into_iter().zip(shards.iter().cloned()) {
            let handle = scope.spawn(move || {
                let rank = bundle.global.rank();
                // Global sync round (1-based) for wire-failure context; 0
                // covers the x0 broadcast before the loop.
                let mut round = 0u64;
                let result = (|| -> Result<History, sasgd_comm::CommError> {
                    let mut learner = Learner::new(rank, factory(), cfg);
                    let mut x = learner.model.param_vector();
                    broadcast(&mut bundle.global, 0, &mut x)?;
                    learner.model.write_params(&x);
                    let evals = if rank == 0 {
                        Some(EvalSets::prepare(train_set, test_set, cfg.eval_cap))
                    } else {
                        None
                    };
                    let mut history = History::new(
                        format!(
                            "H-SASGD-threaded(g={groups}x{per_group},Tl={t_local},Tg={t_global})"
                        ),
                        p,
                        t_local * t_global,
                    );
                    let mut samples = 0u64;
                    let mut since_local = 0usize;
                    let mut local_rounds = 0usize;
                    let mut compute_s = 0.0f64;
                    let mut comm_s = 0.0f64;
                    for epoch in 1..=cfg.epochs {
                        let batches: Vec<Vec<usize>> = shard
                            .epoch_iter(cfg.batch_size, &mut learner.rng)
                            .take(steps_per_epoch)
                            .collect();
                        for (step, idx) in batches.iter().enumerate() {
                            let epoch_f = (epoch - 1) as f64 + step as f64 / steps_per_epoch as f64;
                            let gamma_now = cfg.gamma_at(epoch_f);
                            samples += idx.len() as u64;
                            let t0 = Instant::now();
                            learner.local_step(train_set, idx, gamma_now, 0.0, 1.0);
                            compute_s += t0.elapsed().as_secs_f64();
                            since_local += 1;
                            if since_local == t_local {
                                // Level 1: group-local allreduce of gs, group step.
                                round += 1;
                                let t1 = Instant::now();
                                let gp = gamma_p.resolve(gamma_now, per_group);
                                allreduce_tree(&mut bundle.local, &mut learner.gs)?;
                                for (xi, &g) in x.iter_mut().zip(&learner.gs) {
                                    *xi -= gp * g;
                                }
                                learner.gs.iter_mut().for_each(|g| *g = 0.0);
                                since_local = 0;
                                local_rounds += 1;
                                if local_rounds == t_global {
                                    // Level 2: average the group copies through
                                    // the leader communicator, broadcast down.
                                    if let Some(leaders) = bundle.leaders.as_mut() {
                                        allreduce_tree(leaders, &mut x)?;
                                        let inv = 1.0 / groups as f32;
                                        x.iter_mut().for_each(|v| *v *= inv);
                                    }
                                    broadcast(&mut bundle.local, 0, &mut x)?;
                                    local_rounds = 0;
                                }
                                learner.model.write_params(&x);
                                comm_s += t1.elapsed().as_secs_f64();
                            }
                        }
                        if let Some(ev) = &evals {
                            let rec = ev.record(
                                &mut learner.model,
                                epoch as f64,
                                compute_s,
                                comm_s,
                                samples * p as u64,
                            );
                            history.records.push(rec);
                        }
                    }
                    history.final_params = Some(learner.model.param_vector());
                    Ok(history)
                })();
                (rank, round, result)
            });
            handles.push(handle);
        }
        for (rank, round, result) in join_learners(handles) {
            match result {
                Ok(history) if rank == 0 => rank0_history = Some(history),
                Ok(_) => {}
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(crate::EngineError::WireFailure {
                            rank,
                            round,
                            detail: e.to_string(),
                        });
                    }
                }
            }
        }
    });
    if let Some(e) = first_err {
        return Err(e);
    }
    Ok(rank0_history.expect("rank 0 history"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sasgd_data::cifar_like::{generate, CifarLikeConfig};
    use sasgd_nn::models;
    use sasgd_simnet::JitterModel;
    use sasgd_tensor::SeedRng;

    #[test]
    fn threaded_sasgd_learns() {
        let (train, test) = generate(&CifarLikeConfig::tiny(120, 40, 3));
        let mut cfg = TrainConfig::new(6, 8, 0.05, 42);
        cfg.jitter = JitterModel::none();
        let factory = || models::tiny_cnn(3, &mut SeedRng::new(7));
        let h = run_threaded_sasgd(&factory, &train, &test, &cfg, 4, 2, GammaP::OverP);
        assert_eq!(h.records.len(), 6);
        assert!(h.final_test_acc() > 0.5, "acc {}", h.final_test_acc());
    }

    #[test]
    fn threaded_downpour_learns_through_a_real_server() {
        let (train, test) = generate(&CifarLikeConfig::tiny(120, 40, 3));
        let mut cfg = TrainConfig::new(6, 8, 0.04, 42);
        cfg.jitter = JitterModel::none();
        let factory = || models::tiny_cnn(3, &mut SeedRng::new(7));
        let h = run_threaded_downpour(&factory, &train, &test, &cfg, 2, 2, 2, false);
        assert!(!h.records.is_empty());
        assert!(
            h.final_test_acc() > 0.45,
            "async threads + real PS should still learn at p=2: {:.2}",
            h.final_test_acc()
        );
    }

    #[test]
    fn threaded_hierarchical_learns() {
        let (train, test) = generate(&CifarLikeConfig::tiny(160, 40, 3));
        let mut cfg = TrainConfig::new(6, 8, 0.05, 42);
        cfg.jitter = JitterModel::none();
        let factory = || models::tiny_cnn(3, &mut SeedRng::new(7));
        let h = run_threaded_hierarchical_sasgd(
            &factory,
            &train,
            &test,
            &cfg,
            2,
            2,
            2,
            2,
            GammaP::OverP,
        );
        assert!(h.final_test_acc() > 0.5, "acc {:.2}", h.final_test_acc());
    }

    #[test]
    fn threaded_hierarchical_single_group_equals_flat() {
        // With one group the leader exchange is a no-op, so the run must
        // equal flat threaded SASGD at T = t_local bitwise.
        let (train, test) = generate(&CifarLikeConfig::tiny(96, 24, 2));
        let mut cfg = TrainConfig::new(3, 8, 0.05, 11);
        cfg.jitter = JitterModel::none();
        let factory = || models::tiny_cnn(2, &mut SeedRng::new(5));
        let hier = run_threaded_hierarchical_sasgd(
            &factory,
            &train,
            &test,
            &cfg,
            1,
            3,
            2,
            4,
            GammaP::OverP,
        );
        let flat = run_threaded_sasgd(&factory, &train, &test, &cfg, 3, 2, GammaP::OverP);
        for (a, b) in hier.records.iter().zip(&flat.records) {
            assert_eq!(a.train_loss, b.train_loss);
            assert_eq!(a.test_acc, b.test_acc);
        }
    }

    #[test]
    fn single_thread_matches_simulated_bitwise() {
        let (train, test) = generate(&CifarLikeConfig::tiny(48, 16, 2));
        let mut cfg = TrainConfig::new(3, 8, 0.05, 11);
        cfg.jitter = JitterModel::none();
        let factory = || models::tiny_cnn(2, &mut SeedRng::new(5));
        let th = run_threaded_sasgd(&factory, &train, &test, &cfg, 1, 1, GammaP::OverP);
        let mut f = || models::tiny_cnn(2, &mut SeedRng::new(5));
        let sim =
            crate::algorithms::sasgd::run(&mut f, &train, &test, &cfg, 1, 1, GammaP::OverP, None);
        for (a, b) in th.records.iter().zip(&sim.records) {
            assert_eq!(a.train_loss, b.train_loss);
            assert_eq!(a.test_acc, b.test_acc);
        }
    }
}

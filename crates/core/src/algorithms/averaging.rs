//! One-shot model averaging (Zinkevich et al., NIPS 2010).
//!
//! `p` learners train *independently* on disjoint shards; parameters are
//! averaged only at the end (we also evaluate the running average each
//! epoch so its trajectory can be plotted). Section III of the paper
//! reports this heuristic "results in very poor training and test
//! accuracies" relative to SASGD's per-interval aggregation — an ablation
//! this module lets the benches reproduce.

use sasgd_data::Dataset;
use sasgd_nn::Model;

use crate::engine::{simulated, AggregationStrategy};
use crate::history::History;
use crate::trainer::{Learner, TrainConfig};

/// Independent learners with end-of-training averaging: never syncs, uses
/// the epoch-start γ, evaluates a spare replica holding the rank-ordered
/// average of all learner parameters.
pub(crate) struct AveragingStrategy {
    p: usize,
    /// Spare replica used only to evaluate the averaged parameters.
    avg_model: Option<Model>,
}

impl AveragingStrategy {
    pub(crate) fn new(p: usize) -> Self {
        assert!(p >= 1);
        AveragingStrategy { p, avg_model: None }
    }
}

impl AggregationStrategy for AveragingStrategy {
    fn label(&self) -> String {
        format!("ModelAvg(p={})", self.p)
    }

    fn p(&self) -> usize {
        self.p
    }

    fn lockstep_truncates(&self) -> bool {
        false
    }

    fn setup(
        &mut self,
        factory: &mut dyn FnMut() -> Model,
        _x0: &[f32],
        _cfg: &TrainConfig,
    ) -> f64 {
        self.avg_model = Some(factory());
        0.0
    }

    fn gamma_epoch(&self, epoch: usize, _step: usize, _steps: usize) -> f64 {
        // Independent learners use the epoch-start rate for the whole
        // epoch.
        (epoch - 1) as f64
    }

    fn local_step(
        &mut self,
        l: &mut Learner,
        _id: usize,
        data: &Dataset,
        idx: &[usize],
        gamma: f32,
        step_s: f64,
        jitter: f64,
    ) {
        l.local_step(data, idx, gamma, step_s, jitter);
        l.gs.iter_mut().for_each(|g| *g = 0.0);
    }

    fn on_local_step(
        &mut self,
        l: &mut Learner,
        _id: usize,
        data: &Dataset,
        idx: &[usize],
        gamma: f32,
    ) {
        l.local_step(data, idx, gamma, 0.0, 1.0);
        l.gs.iter_mut().for_each(|g| *g = 0.0);
    }

    fn epoch_end(&mut self, learners: &mut [Learner], epoch: usize, cfg: &TrainConfig) {
        // Evaluate the average of all replicas, accumulated in rank order
        // (communication-free during training; the single final reduction
        // is charged on the last epoch).
        let m = learners[0].model.param_len();
        let p = self.p;
        let mut avg = vec![0.0f32; m];
        for l in learners.iter() {
            let v = l.model.param_vector();
            for (a, &b) in avg.iter_mut().zip(&v) {
                *a += b / p as f32;
            }
        }
        self.avg_model
            .as_mut()
            .expect("setup ran")
            .write_params(&avg);
        if epoch == cfg.epochs {
            let ar = cfg.cost.allreduce_tree(m, p);
            for l in learners.iter_mut() {
                l.charge_comm(ar.seconds);
            }
        }
    }

    fn eval_model<'a>(&'a mut self, _learners: &'a mut [Learner]) -> &'a mut Model {
        self.avg_model.as_mut().expect("setup ran")
    }

    fn final_params(&mut self, _learners: &[Learner]) -> Vec<f32> {
        self.avg_model.as_ref().expect("setup ran").param_vector()
    }
}

/// Run independent learners with end-of-training averaging.
pub(crate) fn run(
    factory: &mut dyn FnMut() -> Model,
    train_set: &Dataset,
    test_set: &Dataset,
    cfg: &TrainConfig,
    p: usize,
) -> History {
    let mut s = AveragingStrategy::new(p);
    simulated::run_auto(&mut s, factory, train_set, test_set, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sasgd_data::cifar_like::{generate, CifarLikeConfig};
    use sasgd_nn::models;
    use sasgd_simnet::JitterModel;
    use sasgd_tensor::SeedRng;

    #[test]
    fn p1_averaging_is_just_sgd() {
        let (train, test) = generate(&CifarLikeConfig::tiny(80, 40, 3));
        let mut cfg = TrainConfig::new(6, 8, 0.05, 42);
        cfg.jitter = JitterModel::none();
        let mut factory = || models::tiny_cnn(3, &mut SeedRng::new(7));
        let h = run(&mut factory, &train, &test, &cfg, 1);
        assert!(h.final_test_acc() > 0.5, "acc {}", h.final_test_acc());
    }

    #[test]
    fn communication_happens_once() {
        let (train, test) = generate(&CifarLikeConfig::tiny(64, 16, 2));
        let mut cfg = TrainConfig::new(3, 8, 0.02, 1);
        cfg.jitter = JitterModel::none();
        let mut factory = || models::tiny_cnn(2, &mut SeedRng::new(3));
        let h = run(&mut factory, &train, &test, &cfg, 4);
        let comm_mid = h.records[1].comm_seconds;
        let comm_end = h.records.last().expect("r").comm_seconds;
        assert_eq!(comm_mid, 0.0, "no traffic during training");
        assert!(comm_end > 0.0, "one final reduction");
    }
}

// virtual-path: crates/core/src/jitter.rs
//! Bad fixture: nondeterminism reaching gradient math *through helpers* —
//! no single line reads a clock next to a float, but the call graph
//! carries thread identity into the update scale.

fn thread_salt() -> u64 {
    let id = std::thread::current().id();
    format!("{id:?}").len() as u64
}

fn decay_seed() -> u64 {
    thread_salt().rotate_left(7)
}

pub fn scale_gradients(g: &mut [f32]) {
    let s = decay_seed();
    for x in g.iter_mut() {
        *x *= 1.0 + (s % 3) as f32 * 1e-6;
    }
}

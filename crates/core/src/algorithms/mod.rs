//! The distributed SGD algorithms the paper implements and compares.

use crate::compress::Compression;
use crate::schedule::TSchedule;

pub(crate) mod averaging;
pub(crate) mod dasgd;
pub(crate) mod downpour;
pub(crate) mod eamsgd;
pub(crate) mod hierarchical;
pub(crate) mod local_sgd;
pub(crate) mod sasgd;
pub(crate) mod sequential;

/// How SASGD's global learning rate `γp` is chosen.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GammaP {
    /// `γp = γ` — the setting of the paper's theory (Theorem 2/4,
    /// Corollary 3). Sums `p·T` minibatch gradients at full rate; only
    /// stable for small `γ·p·T`.
    SameAsGamma,
    /// `γp = γ/p` — averages the learners' contributions; equivalent to
    /// per-interval model averaging of the locally updated replicas
    /// (§III: "Alg. 1 simulates model averaging"). The practical default.
    OverP,
    /// An explicit value.
    Fixed(f32),
}

impl GammaP {
    /// Resolve to a concrete rate.
    pub fn resolve(self, gamma: f32, p: usize) -> f32 {
        match self {
            GammaP::SameAsGamma => gamma,
            GammaP::OverP => gamma / p as f32,
            GammaP::Fixed(v) => v,
        }
    }
}

/// A distributed training algorithm plus its parallelism parameters.
#[derive(Clone, Copy, Debug)]
pub enum Algorithm {
    /// Plain sequential SGD — the paper's baseline ("SGD", also the p=1
    /// rows of every figure).
    Sequential,
    /// Sparse-aggregation SGD (Algorithm 1): `p` learners over data
    /// shards, `T` local steps between allreduce aggregations, optionally
    /// compressing each learner's accumulated gradient (with error
    /// feedback) before aggregation.
    Sasgd {
        /// Learners.
        p: usize,
        /// Aggregation interval (T=1 is classic synchronous SGD).
        t: usize,
        /// Global learning-rate policy.
        gamma_p: GammaP,
        /// Optional gradient compression applied before aggregation.
        compression: Option<Compression>,
    },
    /// Two-level SASGD: groups of learners aggregate over a fast local
    /// fabric every `t_local` steps and average across groups every
    /// `t_global` local rounds — locality-aware scaling for nodes running
    /// several learners per device (the paper's p=16 setup).
    HierarchicalSasgd {
        /// Number of groups.
        groups: usize,
        /// Learners per group (`p = groups × per_group`).
        per_group: usize,
        /// Local aggregation interval (minibatches).
        t_local: usize,
        /// Global averaging interval (local rounds).
        t_global: usize,
        /// Global learning-rate policy for the level-1 step.
        gamma_p: GammaP,
    },
    /// Downpour ASGD: asynchronous learners over disjoint data shards
    /// pushing accumulated gradients to a parameter server every `t`
    /// minibatches.
    Downpour {
        /// Learners.
        p: usize,
        /// Minibatches between push/pull rounds.
        t: usize,
        /// Scale each applied update by `γ/(1+τ)` using the measured
        /// per-update staleness τ.
        staleness_gamma: bool,
    },
    /// Elastic-averaging ASGD (EAMSGD): momentum learners linked to a
    /// center variable by an elastic force, synchronizing every `t` steps.
    Eamsgd {
        /// Learners.
        p: usize,
        /// Communication period τ.
        t: usize,
        /// Elastic moving rate α (defaults to `0.9/p` as in the EAMSGD
        /// paper when `None`).
        moving_rate: Option<f32>,
        /// Momentum δ for the local SGD updates.
        momentum: f32,
        /// Scale the elastic moving rate by `1/(1+τ)` using the measured
        /// per-exchange staleness τ.
        staleness_gamma: bool,
    },
    /// Local SGD (periodic parameter averaging): independent learners
    /// whose replicas are averaged every `T` local steps — the model-
    /// averaging view of Algorithm 1 (§III), with `T` either fixed or
    /// grown adaptively when the average-displacement signal plateaus.
    LocalSgd {
        /// Learners.
        p: usize,
        /// Interval schedule (fixed, or adaptive plateau doubling).
        schedule: TSchedule,
    },
    /// DaSGD-style delayed averaging: the round-k parameter average is
    /// applied at round k+1, while the learners already run `T` steps
    /// ahead — the allreduce overlaps with compute at the price of one
    /// round of staleness.
    DelayedAvg {
        /// Learners.
        p: usize,
        /// Local steps per averaging round.
        t: usize,
    },
    /// One-shot model averaging (Zinkevich et al.): independent learners,
    /// parameters averaged only for evaluation/at the end — the heuristic
    /// §III reports as giving "very poor training and test accuracies".
    ModelAverageOnce {
        /// Learners.
        p: usize,
    },
}

impl Algorithm {
    /// Uncompressed SASGD (Algorithm 1).
    pub fn sasgd(p: usize, t: usize, gamma_p: GammaP) -> Self {
        Algorithm::Sasgd {
            p,
            t,
            gamma_p,
            compression: None,
        }
    }

    /// SASGD with gradient compression (error feedback) applied to each
    /// learner's accumulated gradient before aggregation.
    pub fn sasgd_compressed(p: usize, t: usize, gamma_p: GammaP, compression: Compression) -> Self {
        Algorithm::Sasgd {
            p,
            t,
            gamma_p,
            compression: Some(compression),
        }
    }

    /// Number of learners.
    pub fn learners(&self) -> usize {
        match *self {
            Algorithm::Sequential => 1,
            Algorithm::Sasgd { p, .. }
            | Algorithm::Downpour { p, .. }
            | Algorithm::Eamsgd { p, .. }
            | Algorithm::LocalSgd { p, .. }
            | Algorithm::DelayedAvg { p, .. }
            | Algorithm::ModelAverageOnce { p } => p,
            Algorithm::HierarchicalSasgd {
                groups, per_group, ..
            } => groups * per_group,
        }
    }

    /// Aggregation interval (1 where not applicable).
    pub fn interval(&self) -> usize {
        match *self {
            Algorithm::Sasgd { t, .. }
            | Algorithm::Downpour { t, .. }
            | Algorithm::Eamsgd { t, .. }
            | Algorithm::DelayedAvg { t, .. } => t,
            Algorithm::LocalSgd { schedule, .. } => match schedule {
                TSchedule::Fixed { t } => t,
                TSchedule::AdaptivePlateau { t0, .. } => t0,
            },
            Algorithm::HierarchicalSasgd {
                t_local, t_global, ..
            } => t_local * t_global,
            _ => 1,
        }
    }

    /// Display label matching the paper's plot legends.
    pub fn label(&self) -> String {
        match *self {
            Algorithm::Sequential => "SGD".into(),
            Algorithm::Sasgd {
                p, t, compression, ..
            } => match compression {
                None => format!("SASGD(p={p},T={t})"),
                Some(Compression::TopK { ratio }) => {
                    format!("SASGD-top{:.0}%(p={p},T={t})", ratio * 100.0)
                }
                Some(Compression::Uniform8Bit) => format!("SASGD-8bit(p={p},T={t})"),
                Some(Compression::Sparse { k, q8, union_bound }) => {
                    let mut tag = k.tag();
                    if q8 {
                        tag.push_str("+q8");
                    }
                    if union_bound {
                        tag.push_str("+ub");
                    }
                    format!("SASGD-{tag}(p={p},T={t})")
                }
            },
            Algorithm::HierarchicalSasgd {
                groups,
                per_group,
                t_local,
                t_global,
                ..
            } => {
                format!("H-SASGD(g={groups}x{per_group},Tl={t_local},Tg={t_global})")
            }
            Algorithm::Downpour {
                p,
                t,
                staleness_gamma,
            } => {
                if staleness_gamma {
                    format!("Downpour-s\u{3b3}(p={p},T={t})")
                } else {
                    format!("Downpour(p={p},T={t})")
                }
            }
            Algorithm::Eamsgd {
                p,
                t,
                staleness_gamma,
                ..
            } => {
                if staleness_gamma {
                    format!("EAMSGD-s\u{3b3}(p={p},T={t})")
                } else {
                    format!("EAMSGD(p={p},T={t})")
                }
            }
            Algorithm::LocalSgd { p, schedule } => match schedule {
                TSchedule::Fixed { t } => format!("LocalSGD(p={p},T={t})"),
                TSchedule::AdaptivePlateau { t0, .. } => format!("LocalSGD-adT(p={p},T0={t0})"),
            },
            Algorithm::DelayedAvg { p, t } => format!("DaSGD(p={p},T={t})"),
            Algorithm::ModelAverageOnce { p } => format!("ModelAvg(p={p})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_p_policies() {
        assert_eq!(GammaP::SameAsGamma.resolve(0.1, 8), 0.1);
        assert_eq!(GammaP::OverP.resolve(0.1, 8), 0.0125);
        assert_eq!(GammaP::Fixed(0.5).resolve(0.1, 8), 0.5);
    }

    #[test]
    fn labels_and_accessors() {
        let a = Algorithm::sasgd(8, 50, GammaP::OverP);
        assert_eq!(a.label(), "SASGD(p=8,T=50)");
        assert_eq!(a.learners(), 8);
        assert_eq!(a.interval(), 50);
        assert_eq!(Algorithm::Sequential.learners(), 1);
        assert_eq!(Algorithm::Sequential.interval(), 1);
        assert!(Algorithm::Downpour {
            p: 2,
            t: 1,
            staleness_gamma: false
        }
        .label()
        .contains("Downpour"));
        assert_eq!(
            Algorithm::Downpour {
                p: 2,
                t: 1,
                staleness_gamma: true
            }
            .label(),
            "Downpour-s\u{3b3}(p=2,T=1)"
        );
        let comp =
            Algorithm::sasgd_compressed(4, 8, GammaP::OverP, Compression::TopK { ratio: 0.1 });
        assert_eq!(comp.label(), "SASGD-top10%(p=4,T=8)");
        assert_eq!(comp.learners(), 4);
        assert_eq!(comp.interval(), 8);
        let h = Algorithm::HierarchicalSasgd {
            groups: 2,
            per_group: 4,
            t_local: 5,
            t_global: 3,
            gamma_p: GammaP::OverP,
        };
        assert_eq!(h.learners(), 8);
        assert_eq!(h.interval(), 15);
        assert!(h.label().starts_with("H-SASGD"));
    }

    #[test]
    fn lattice_labels_and_accessors() {
        let fixed = Algorithm::LocalSgd {
            p: 4,
            schedule: TSchedule::Fixed { t: 5 },
        };
        assert_eq!(fixed.label(), "LocalSGD(p=4,T=5)");
        assert_eq!(fixed.learners(), 4);
        assert_eq!(fixed.interval(), 5);
        let adaptive = Algorithm::LocalSgd {
            p: 8,
            schedule: TSchedule::AdaptivePlateau {
                t0: 5,
                t_max: 20,
                patience: 2,
                rel_improve: 0.05,
            },
        };
        assert_eq!(adaptive.label(), "LocalSGD-adT(p=8,T0=5)");
        assert_eq!(adaptive.interval(), 5);
        let da = Algorithm::DelayedAvg { p: 8, t: 5 };
        assert_eq!(da.label(), "DaSGD(p=8,T=5)");
        assert_eq!(da.learners(), 8);
        assert_eq!(da.interval(), 5);
    }
}

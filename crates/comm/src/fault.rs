//! Deterministic fault plans for the threaded backend.
//!
//! A [`FaultPlan`] is a list of scripted failures — crash a learner before
//! a given local step, stall it for a fixed duration, or drop one of its
//! point-to-point messages at the wire. Crash and stall events are
//! interpreted by the learner loop (faults fire only at step boundaries,
//! never mid-collective, which is what makes degraded runs bitwise
//! reproducible); message drops are lowered into a
//! [`FaultSchedule`] consumed by the wire
//! layer itself. [`FaultPlan::seeded`] derives a plan from a seed with a
//! splitmix64 stream, so randomized fault campaigns replay exactly.

use std::time::Duration;

use crate::world::FaultSchedule;

/// One scripted failure mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The learner exits cleanly before executing local step `step`
    /// (0-based index over the learner's whole run, not per epoch).
    CrashAtStep {
        /// First local step the learner never executes.
        step: u64,
    },
    /// The learner sleeps `millis` immediately before local step `step`.
    /// Stalls shorter than the receive deadline are absorbed; longer ones
    /// get the learner evicted by its peers.
    StallAtStep {
        /// Step the stall precedes.
        step: u64,
        /// Stall duration in milliseconds.
        millis: u64,
    },
    /// The rank's `nth` point-to-point send (0-based, counted at the wire)
    /// is silently dropped.
    DropSend {
        /// Send-sequence index to drop.
        nth: u64,
    },
}

/// A failure bound to the rank it strikes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Rank the fault applies to.
    pub rank: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic script of failures for one run. An empty plan is the
/// fault-free run; the fault-tolerant runner with an empty plan is bitwise
/// identical to the plain threaded runner.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Scripted failures, in no particular order.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The fault-free plan.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when no failure is scripted.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Add a crash: `rank` exits before local step `step`.
    pub fn with_crash(mut self, rank: usize, step: u64) -> Self {
        self.events.push(FaultEvent {
            rank,
            kind: FaultKind::CrashAtStep { step },
        });
        self
    }

    /// Add a stall: `rank` sleeps `millis` ms before local step `step`.
    pub fn with_stall(mut self, rank: usize, step: u64, millis: u64) -> Self {
        self.events.push(FaultEvent {
            rank,
            kind: FaultKind::StallAtStep { step, millis },
        });
        self
    }

    /// Add a wire drop: `rank`'s `nth` send vanishes.
    pub fn with_drop(mut self, rank: usize, nth: u64) -> Self {
        self.events.push(FaultEvent {
            rank,
            kind: FaultKind::DropSend { nth },
        });
        self
    }

    /// Derive a crash campaign from a seed: `crashes` distinct ranks out of
    /// `p`, each crashing at a step in `1..=max_step`. Rank 0 is never
    /// chosen — it is the recovery coordinator, whose loss is a typed fatal
    /// error rather than a degradation (see `crate::ft`). The same
    /// `(seed, p, crashes, max_step)` always yields the same plan.
    ///
    /// # Panics
    /// Panics if `crashes >= p` (someone must survive) or `max_step == 0`.
    pub fn seeded(seed: u64, p: usize, crashes: usize, max_step: u64) -> Self {
        assert!(crashes < p, "at least one learner must survive");
        assert!(max_step > 0, "crash steps start at 1");
        let mut state = seed;
        let mut plan = FaultPlan::none();
        let mut chosen: Vec<usize> = Vec::new();
        while chosen.len() < crashes {
            let r = 1 + (splitmix64(&mut state) % (p as u64 - 1)) as usize;
            if !chosen.contains(&r) {
                chosen.push(r);
                let step = 1 + splitmix64(&mut state) % max_step;
                plan = plan.with_crash(r, step);
            }
        }
        plan
    }

    /// Step at which `rank` crashes, if scripted (earliest wins when a rank
    /// has several crash events).
    pub fn crash_step(&self, rank: usize) -> Option<u64> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::CrashAtStep { step } if e.rank == rank => Some(step),
                _ => None,
            })
            .min()
    }

    /// Total stall duration scripted for `rank` before `step`, if any.
    pub fn stall_at(&self, rank: usize, step: u64) -> Option<Duration> {
        let ms: u64 = self
            .events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::StallAtStep { step: s, millis } if e.rank == rank && s == step => {
                    Some(millis)
                }
                _ => None,
            })
            .sum();
        (ms > 0).then(|| Duration::from_millis(ms))
    }

    /// Lower the plan's [`FaultKind::DropSend`] events into a wire-level
    /// [`FaultSchedule`] for `p` ranks; `None` when the plan drops nothing.
    pub fn wire_faults(&self, p: usize) -> Option<FaultSchedule> {
        let mut drop_send: Vec<Vec<u64>> = vec![Vec::new(); p];
        for e in &self.events {
            if let FaultKind::DropSend { nth } = e.kind {
                if e.rank < p {
                    drop_send[e.rank].push(nth);
                }
            }
        }
        if drop_send.iter().all(Vec::is_empty) {
            return None;
        }
        for v in &mut drop_send {
            v.sort_unstable();
            v.dedup();
        }
        Some(FaultSchedule { drop_send })
    }
}

/// splitmix64 step — the same tiny deterministic stream the race checker's
/// schedule sampler uses.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_replay_exactly() {
        let a = FaultPlan::seeded(42, 8, 2, 100);
        let b = FaultPlan::seeded(42, 8, 2, 100);
        assert_eq!(a, b);
        assert_eq!(a.events.len(), 2);
        for e in &a.events {
            assert_ne!(e.rank, 0, "coordinator is never crashed");
            assert!(e.rank < 8);
        }
        let ranks: Vec<usize> = a.events.iter().map(|e| e.rank).collect();
        let mut dedup = ranks.clone();
        dedup.dedup();
        assert_eq!(ranks, dedup, "distinct ranks");
        // A different seed gives a different plan (overwhelmingly likely).
        assert_ne!(a, FaultPlan::seeded(43, 8, 2, 100));
    }

    #[test]
    fn lookups_find_scripted_events() {
        let plan = FaultPlan::none()
            .with_crash(3, 7)
            .with_stall(2, 5, 40)
            .with_drop(1, 9);
        assert_eq!(plan.crash_step(3), Some(7));
        assert_eq!(plan.crash_step(2), None);
        assert_eq!(plan.stall_at(2, 5), Some(Duration::from_millis(40)));
        assert_eq!(plan.stall_at(2, 6), None);
        let wire = plan.wire_faults(4).expect("has drops");
        assert_eq!(wire.drop_send[1], vec![9]);
        assert!(plan.with_crash(1, 1).crash_step(1).is_some());
        assert!(FaultPlan::none().wire_faults(4).is_none());
    }

    #[test]
    fn empty_plan_is_none() {
        assert!(FaultPlan::none().is_empty());
        assert!(!FaultPlan::none().with_crash(1, 1).is_empty());
    }
}

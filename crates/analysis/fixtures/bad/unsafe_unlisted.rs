// virtual-path: crates/nn/src/fixture_unsafe.rs
// BAD: `unsafe` outside the allow-list entirely.

pub fn grab(xs: &[f32], i: usize) -> f32 {
    // SAFETY: a comment does not help here — the file itself is not allowed.
    unsafe { *xs.get_unchecked(i) }
}

// virtual-path: crates/tensor/src/fixture_map.rs
// BAD: hash containers in a numeric crate — iteration order feeds numerics.

use std::collections::HashMap;
use std::collections::HashSet;

pub fn accumulate(grads: &HashMap<usize, f32>) -> f32 {
    // Summing in HashMap iteration order is run-to-run nondeterministic.
    grads.values().sum()
}

pub fn active(ids: &HashSet<usize>) -> usize {
    ids.len()
}

//! Learner speed jitter.
//!
//! Real learners never run in lockstep: OS noise, clock throttling and
//! input-pipeline hiccups make per-minibatch times vary. This variation is
//! what creates the *staleness spread* in asynchronous algorithms (the
//! paper: staleness "is influenced by the relative processing speeds of
//! learners") and the *straggler penalty* at each bulk-synchronous barrier.
//!
//! The model is multiplicative log-normal noise with unit mean, plus an
//! optional persistent per-learner speed factor.

use sasgd_tensor::SeedRng;

/// Per-minibatch time multiplier generator.
#[derive(Clone, Debug)]
pub struct JitterModel {
    /// Coefficient of variation of per-minibatch noise (0 disables).
    pub cv: f64,
    /// Spread of persistent per-learner speed (0 = identical learners).
    pub learner_spread: f64,
}

impl Default for JitterModel {
    fn default() -> Self {
        JitterModel {
            cv: 0.06,
            learner_spread: 0.02,
        }
    }
}

impl JitterModel {
    /// No noise at all — for determinism tests and analytic comparisons.
    pub fn none() -> Self {
        JitterModel {
            cv: 0.0,
            learner_spread: 0.0,
        }
    }

    /// The persistent speed factor of learner `id` (mean 1 across draws).
    pub fn learner_factor(&self, id: usize, seed: u64) -> f64 {
        if self.learner_spread == 0.0 {
            return 1.0;
        }
        let mut rng = SeedRng::new(seed).split(0x1ea0 + id as u64);
        lognormal(&mut rng, self.learner_spread)
    }

    /// One per-minibatch multiplier from the learner's RNG stream.
    pub fn minibatch_factor(&self, rng: &mut SeedRng) -> f64 {
        if self.cv == 0.0 {
            return 1.0;
        }
        lognormal(rng, self.cv)
    }
}

/// Unit-mean log-normal with coefficient of variation ≈ `cv`.
fn lognormal(rng: &mut SeedRng, cv: f64) -> f64 {
    let sigma2 = (1.0 + cv * cv).ln();
    let sigma = sigma2.sqrt();
    (f64::from(rng.normal()) * sigma - sigma2 / 2.0).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_exactly_one() {
        let j = JitterModel::none();
        let mut rng = SeedRng::new(1);
        assert_eq!(j.minibatch_factor(&mut rng), 1.0);
        assert_eq!(j.learner_factor(3, 42), 1.0);
    }

    #[test]
    fn unit_mean_and_requested_spread() {
        let j = JitterModel {
            cv: 0.2,
            learner_spread: 0.0,
        };
        let mut rng = SeedRng::new(2);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| j.minibatch_factor(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
        assert!(
            (var.sqrt() / mean - 0.2).abs() < 0.03,
            "cv {}",
            var.sqrt() / mean
        );
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn learner_factor_is_stable_per_id() {
        let j = JitterModel::default();
        assert_eq!(j.learner_factor(2, 7), j.learner_factor(2, 7));
        assert_ne!(j.learner_factor(2, 7), j.learner_factor(3, 7));
    }

    #[test]
    fn deterministic_under_seed() {
        let j = JitterModel::default();
        let mut a = SeedRng::new(5);
        let mut b = SeedRng::new(5);
        for _ in 0..10 {
            assert_eq!(j.minibatch_factor(&mut a), j.minibatch_factor(&mut b));
        }
    }
}

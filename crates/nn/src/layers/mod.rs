//! Concrete layers: everything the Table I and Table II networks need.

mod activation;
mod conv2d;
mod dropout;
mod linear;
mod pool2d;
mod pool_avg;
mod reshape;
mod temporal;

pub use activation::{Relu, Tanh};
pub use conv2d::Conv2d;
pub use dropout::Dropout;
pub use linear::Linear;
pub use pool2d::MaxPool2d;
pub use pool_avg::{AvgPool2d, LocalResponseNorm};
pub use reshape::Flatten;
pub use temporal::{GlobalMaxOverTime, TemporalConv1d, TemporalMaxPool};

//! 2-D convolution kernels (im2col formulation).
//!
//! A convolution with kernel `[co, ci, kh, kw]` over an NCHW input is
//! lowered to a patch matrix (`im2col`, one row of length `ci*kh*kw` per
//! output pixel) times the weight matrix. The backward pass reuses the
//! same lowering: the weight gradient is a `patchᵀ · grad_out` product and
//! the input gradient scatters back through `col2im`. This mirrors how the
//! paper's Torch backend executes convolutions, so the FLOP model in
//! `sasgd-nn` can count the same multiply–accumulate operations a GPU
//! would perform.
//!
//! The hot path lowers the **whole minibatch at once**: [`im2col_batch`]
//! stacks all `n` images into one `[n*oh*ow, ci*kh*kw]` matrix (image
//! `i`'s rows exactly where the per-image loop would put them), so forward
//! and backward each become a single large GEMM whose row count actually
//! saturates the thread pool. Scratch matrices come from a
//! [`Workspace`] via the `*_ws` entry points, so a
//! steady-state training loop stops allocating. The pre-batching
//! per-image implementations survive as [`conv2d_forward_ref`] /
//! [`conv2d_backward_ref`]: they are the bitwise reference the proptests
//! compare against and the "before" baseline of the `hotpath` benchmark.
//!
//! Every accumulation keeps the reference order — ascending inner index,
//! `g == 0.0` skipped where the reference skipped it, per-image weight /
//! bias partials reduced serially in image order — so batched and
//! reference paths are bitwise identical at any thread count.

use crate::linalg;
use crate::parallel;
use crate::shape::conv_out;
use crate::tensor::Tensor;
use crate::workspace::Workspace;

/// Geometry of one convolution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Conv2dSpec {
    /// Input channels.
    pub ci: usize,
    /// Output channels (number of kernels).
    pub co: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride (same both axes).
    pub stride: usize,
    /// Zero padding (same both axes).
    pub pad: usize,
}

impl Conv2dSpec {
    /// Output spatial size for an `h`-by-`w` input.
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            conv_out(h, self.kh, self.stride, self.pad),
            conv_out(w, self.kw, self.stride, self.pad),
        )
    }

    /// Elements in one lowered patch row.
    pub fn patch_len(&self) -> usize {
        self.ci * self.kh * self.kw
    }

    /// Multiply–accumulates in the forward pass for one `h`-by-`w` image.
    pub fn forward_macs(&self, h: usize, w: usize) -> u64 {
        let (oh, ow) = self.out_hw(h, w);
        (oh * ow * self.co * self.patch_len()) as u64
    }
}

/// Lower one image `[ci, h, w]` into a caller-provided patch matrix slice
/// `[oh*ow * ci*kh*kw]`. Writes **every** element (padding positions get an
/// explicit `0.0`), so the output buffer may hold stale values on entry.
///
/// Rows whose `kw`-wide window is fully in-bounds are copied with
/// `copy_from_slice`; only boundary rows take the per-element branch.
// hot-path: patch lowering, called per image per step — no allocation allowed
pub fn im2col_into(img: &[f32], ci: usize, h: usize, w: usize, spec: &Conv2dSpec, out: &mut [f32]) {
    debug_assert_eq!(img.len(), ci * h * w);
    let (oh, ow) = spec.out_hw(h, w);
    let plen = spec.patch_len();
    debug_assert_eq!(out.len(), oh * ow * plen);
    let (kh, kw, stride, pad) = (spec.kh, spec.kw, spec.stride, spec.pad);
    for oy in 0..oh {
        for ox in 0..ow {
            let mut k = (oy * ow + ox) * plen;
            let ix0 = (ox * stride) as isize - pad as isize;
            let row_in_x = ix0 >= 0 && (ix0 as usize) + kw <= w;
            for c in 0..ci {
                let base = c * h * w;
                for ky in 0..kh {
                    let iy = (oy * stride + ky) as isize - pad as isize;
                    let dst = &mut out[k..k + kw];
                    if row_in_x && iy >= 0 && (iy as usize) < h {
                        let src = base + iy as usize * w + ix0 as usize;
                        dst.copy_from_slice(&img[src..src + kw]);
                    } else {
                        for (kx, d) in dst.iter_mut().enumerate() {
                            let ix = ix0 + kx as isize;
                            *d = if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < w {
                                img[base + iy as usize * w + ix as usize]
                            } else {
                                0.0
                            };
                        }
                    }
                    k += kw;
                }
            }
        }
    }
}

/// Lower one image `[ci, h, w]` (flat slice) into a patch matrix
/// `[oh*ow, ci*kh*kw]`.
pub fn im2col(img: &[f32], ci: usize, h: usize, w: usize, spec: &Conv2dSpec) -> Tensor {
    let (oh, ow) = spec.out_hw(h, w);
    let mut out = Tensor::zeros(&[oh * ow, spec.patch_len()]);
    im2col_into(img, ci, h, w, spec, out.as_mut_slice());
    out
}

/// The original per-element `im2col` (no contiguous-run fast path), kept
/// as the independent bitwise reference for the proptests.
pub fn im2col_ref(img: &[f32], ci: usize, h: usize, w: usize, spec: &Conv2dSpec) -> Tensor {
    debug_assert_eq!(img.len(), ci * h * w);
    let (oh, ow) = spec.out_hw(h, w);
    let plen = spec.patch_len();
    let mut out = Tensor::zeros(&[oh * ow, plen]);
    let od = out.as_mut_slice();
    for oy in 0..oh {
        for ox in 0..ow {
            let row = (oy * ow + ox) * plen;
            let mut k = row;
            for c in 0..ci {
                let base = c * h * w;
                for ky in 0..spec.kh {
                    let iy = (oy * spec.stride + ky) as isize - spec.pad as isize;
                    for kx in 0..spec.kw {
                        let ix = (ox * spec.stride + kx) as isize - spec.pad as isize;
                        od[k] = if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < w {
                            img[base + iy as usize * w + ix as usize]
                        } else {
                            0.0
                        };
                        k += 1;
                    }
                }
            }
        }
    }
    out
}

/// Lower a whole batch `[n, ci, h, w]` into one stacked patch matrix
/// `[n*oh*ow, ci*kh*kw]` — image `i`'s rows land exactly where the
/// per-image loop would put them, split across the thread pool per image.
// hot-path: minibatch patch lowering — no allocation allowed
pub fn im2col_batch_into(
    input: &[f32],
    n: usize,
    ci: usize,
    h: usize,
    w: usize,
    spec: &Conv2dSpec,
    out: &mut [f32],
) {
    let (oh, ow) = spec.out_hw(h, w);
    let block = oh * ow * spec.patch_len();
    let in_stride = ci * h * w;
    debug_assert_eq!(input.len(), n * in_stride);
    debug_assert_eq!(out.len(), n * block);
    parallel::for_each_chunk_mut(out, block, |img, oblk| {
        im2col_into(
            &input[img * in_stride..(img + 1) * in_stride],
            ci,
            h,
            w,
            spec,
            oblk,
        );
    });
}

/// [`im2col_batch_into`] allocating its `[n*oh*ow, ci*kh*kw]` output.
pub fn im2col_batch(input: &Tensor, spec: &Conv2dSpec) -> Tensor {
    let [n, ci, h, w] = [
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    ];
    let (oh, ow) = spec.out_hw(h, w);
    let mut out = Tensor::zeros(&[n * oh * ow, spec.patch_len()]);
    im2col_batch_into(input.as_slice(), n, ci, h, w, spec, out.as_mut_slice());
    out
}

/// Scatter a patch-matrix gradient slice `[oh*ow * ci*kh*kw]` back onto an
/// image gradient `[ci, h, w]` (accumulating; inverse of [`im2col_into`]).
// hot-path: gradient scatter, called per image per step — no allocation allowed
pub fn col2im_into(
    cols: &[f32],
    ci: usize,
    h: usize,
    w: usize,
    spec: &Conv2dSpec,
    img_grad: &mut [f32],
) {
    debug_assert_eq!(img_grad.len(), ci * h * w);
    let (oh, ow) = spec.out_hw(h, w);
    let plen = spec.patch_len();
    debug_assert_eq!(cols.len(), oh * ow * plen);
    for oy in 0..oh {
        for ox in 0..ow {
            let row = (oy * ow + ox) * plen;
            let mut k = row;
            for c in 0..ci {
                let base = c * h * w;
                for ky in 0..spec.kh {
                    let iy = (oy * spec.stride + ky) as isize - spec.pad as isize;
                    for kx in 0..spec.kw {
                        let ix = (ox * spec.stride + kx) as isize - spec.pad as isize;
                        if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < w {
                            img_grad[base + iy as usize * w + ix as usize] += cols[k];
                        }
                        k += 1;
                    }
                }
            }
        }
    }
}

/// Scatter a patch-matrix gradient `[oh*ow, ci*kh*kw]` back onto an image
/// gradient `[ci, h, w]` (accumulating; inverse of [`im2col`]).
pub fn col2im(
    cols: &Tensor,
    ci: usize,
    h: usize,
    w: usize,
    spec: &Conv2dSpec,
    img_grad: &mut [f32],
) {
    col2im_into(cols.as_slice(), ci, h, w, spec, img_grad);
}

/// Scatter a stacked batch patch-matrix gradient `[n*oh*ow, ci*kh*kw]`
/// back onto a batch image gradient `[n, ci, h, w]` (accumulating), each
/// image in the existing per-image scatter order, images split across the
/// thread pool (their output slices are disjoint).
// hot-path: minibatch gradient scatter — no allocation allowed
pub fn col2im_batch(
    cols: &[f32],
    n: usize,
    ci: usize,
    h: usize,
    w: usize,
    spec: &Conv2dSpec,
    grad: &mut [f32],
) {
    let (oh, ow) = spec.out_hw(h, w);
    let block = oh * ow * spec.patch_len();
    let in_stride = ci * h * w;
    debug_assert_eq!(cols.len(), n * block);
    debug_assert_eq!(grad.len(), n * in_stride);
    parallel::for_each_chunk_mut(grad, in_stride, |img, gimg| {
        col2im_into(&cols[img * block..(img + 1) * block], ci, h, w, spec, gimg);
    });
}

fn forward_asserts(input: &Tensor, weight: &Tensor, bias: &[f32], spec: &Conv2dSpec) {
    assert_eq!(input.dims()[1], spec.ci, "input channels mismatch");
    assert_eq!(
        weight.dims(),
        &[spec.co, spec.patch_len()],
        "weight shape mismatch"
    );
    assert_eq!(bias.len(), spec.co, "bias length mismatch");
}

/// Forward convolution over a batch, scratch space from a [`Workspace`].
///
/// `input`: `[n, ci, h, w]`; `weight`: `[co, ci*kh*kw]` (pre-flattened);
/// `bias`: `[co]`. Returns `[n, co, oh, ow]`. The whole minibatch is
/// lowered into one stacked patch matrix and multiplied in a single
/// `cols · weightᵀ` GEMM; each output element is still
/// `dot(patch, weight[co]) + bias[co]` with the reference accumulation
/// order, so results are bitwise identical to [`conv2d_forward_ref`] —
/// in default mode. Under the opt-in packed tolerance mode
/// (`linalg::set_packed_gemm`) the big GEMM may diverge within the
/// documented relative-error bound.
// hot-path: all scratch comes from the Workspace arena
pub fn conv2d_forward_ws(
    input: &Tensor,
    weight: &Tensor,
    bias: &[f32],
    spec: &Conv2dSpec,
    ws: &mut Workspace,
) -> Tensor {
    let [n, ci, h, w] = [
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    ];
    forward_asserts(input, weight, bias, spec);
    let (oh, ow) = spec.out_hw(h, w);
    let npix = oh * ow;
    let nrows = n * npix;
    let plen = spec.patch_len();
    let co = spec.co;

    let mut cols = ws.take_f32_uninit(nrows * plen);
    im2col_batch_into(input.as_slice(), n, ci, h, w, spec, &mut cols);

    // One GEMM for the minibatch: tmp[row, c] = dot(cols[row], weight[c]).
    // Dispatched: reference kernel by default, packed tolerance-mode
    // kernel when `linalg::set_packed_gemm` opted in.
    let mut tmp = ws.take_f32_uninit(nrows * co);
    linalg::gemm_nt_ws(&mut tmp, &cols, weight.as_slice(), nrows, plen, co, ws);

    // Transpose each image's [npix, co] block to the NCHW [co, npix]
    // output layout, adding the bias (pure data movement plus the same
    // `dot + bias` the reference computes).
    let mut od = ws.take_f32_uninit(n * co * npix);
    parallel::for_each_chunk_mut(&mut od, co * npix, |img, oimg| {
        let t = &tmp[img * npix * co..(img + 1) * npix * co];
        for (c, orow) in oimg.chunks_mut(npix).enumerate() {
            let b = bias[c];
            for (pix, o) in orow.iter_mut().enumerate() {
                *o = t[pix * co + c] + b;
            }
        }
    });
    ws.give_f32(cols);
    ws.give_f32(tmp);
    Tensor::from_vec(od, &[n, co, oh, ow])
}

/// Forward convolution over a batch (fresh scratch space per call; hot
/// loops should pass a persistent [`Workspace`] to [`conv2d_forward_ws`]).
pub fn conv2d_forward(input: &Tensor, weight: &Tensor, bias: &[f32], spec: &Conv2dSpec) -> Tensor {
    conv2d_forward_ws(input, weight, bias, spec, &mut Workspace::new())
}

/// The original per-image forward path (one `im2col` + one small GEMM per
/// image, fresh allocations): the bitwise reference for the batched
/// kernel and the "before" baseline of the `hotpath` benchmark.
pub fn conv2d_forward_ref(
    input: &Tensor,
    weight: &Tensor,
    bias: &[f32],
    spec: &Conv2dSpec,
) -> Tensor {
    let [n, ci, h, w] = [
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    ];
    forward_asserts(input, weight, bias, spec);
    let (oh, ow) = spec.out_hw(h, w);
    let mut out = Tensor::zeros(&[n, spec.co, oh, ow]);
    let in_stride = ci * h * w;
    let out_stride = spec.co * oh * ow;
    let id = input.as_slice();
    let wd = weight.as_slice();
    let plen = spec.patch_len();
    parallel::for_each_chunk_mut(out.as_mut_slice(), out_stride, |img, oimg| {
        let cols = im2col_ref(&id[img * in_stride..(img + 1) * in_stride], ci, h, w, spec);
        // oimg[co][pix] = dot(weight[co], cols[pix]), one column at a time.
        let cd = cols.as_slice();
        for (co, orow) in oimg.chunks_mut(oh * ow).enumerate() {
            let wrow = &wd[co * plen..(co + 1) * plen];
            let b = bias[co];
            for (pix, o) in orow.iter_mut().enumerate() {
                *o = linalg::dot(wrow, &cd[pix * plen..(pix + 1) * plen]);
                *o += b;
            }
        }
    });
    out
}

/// Gradients of one convolution.
pub struct Conv2dGrads {
    /// `[n, ci, h, w]` gradient w.r.t. the input.
    pub dinput: Tensor,
    /// `[co, ci*kh*kw]` gradient w.r.t. the flattened weights.
    pub dweight: Tensor,
    /// `[co]` gradient w.r.t. the bias.
    pub dbias: Vec<f32>,
}

/// Backward convolution over a batch, scratch space from a [`Workspace`].
///
/// `grad_out`: `[n, co, oh, ow]`. Recomputes the stacked `im2col` (trading
/// FLOPs for memory, as cuDNN's low-workspace algorithms do). The patch
/// gradient is one minibatch-wide GEMM; the weight/bias gradients are
/// computed as per-image partials in parallel and reduced serially in
/// image order, with the reference's `g == 0.0` skip — bitwise identical
/// to [`conv2d_backward_ref`] at any thread count in default mode (the
/// opt-in packed tolerance mode may bend the patch-gradient GEMM within
/// its documented bound).
// hot-path: all scratch comes from the Workspace arena
pub fn conv2d_backward_ws(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    spec: &Conv2dSpec,
    ws: &mut Workspace,
) -> Conv2dGrads {
    let [n, ci, h, w] = [
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    ];
    let (oh, ow) = spec.out_hw(h, w);
    assert_eq!(
        grad_out.dims(),
        &[n, spec.co, oh, ow],
        "grad_out shape mismatch"
    );
    let plen = spec.patch_len();
    let co = spec.co;
    let npix = oh * ow;
    let nrows = n * npix;
    let out_stride = co * npix;
    let gd = grad_out.as_slice();

    let mut cols = ws.take_f32_uninit(nrows * plen);
    im2col_batch_into(input.as_slice(), n, ci, h, w, spec, &mut cols);

    // Transpose each image's gradient block to [npix, co] so output pixels
    // index GEMM rows (pure data movement).
    let mut gt = ws.take_f32_uninit(nrows * co);
    parallel::for_each_chunk_mut(&mut gt, npix * co, |img, gblk| {
        let src = &gd[img * out_stride..(img + 1) * out_stride];
        for (pix, row) in gblk.chunks_mut(co).enumerate() {
            for (c, v) in row.iter_mut().enumerate() {
                *v = src[c * npix + pix];
            }
        }
    });

    // Patch gradient for the whole minibatch in one GEMM. Per element the
    // terms accumulate in ascending output-channel order with g == 0.0
    // skipped — exactly the reference's fused loop.
    let mut dcols = ws.take_f32_uninit(nrows * plen);
    linalg::gemm_nn_ws(&mut dcols, &gt, weight.as_slice(), nrows, co, plen, ws);

    // Per-image dweight/dbias partials in parallel (disjoint outputs),
    // reduced serially in image order below.
    let mut dw_all = ws.take_f32_uninit(n * co * plen);
    let mut db_all = ws.take_f32(n * co);
    parallel::for_each_zip_chunks_mut(&mut dw_all, co * plen, &mut db_all, co, |img, dw, db| {
        let gblk = &gt[img * npix * co..(img + 1) * npix * co];
        let cblk = &cols[img * npix * plen..(img + 1) * npix * plen];
        // dw[c][k] = Σ_pix g · patch[k], ascending pix, g == 0.0 skipped.
        linalg::matmul_tn_into(dw, gblk, cblk, npix, co, plen);
        for grow in gblk.chunks(co) {
            for (bj, &g) in db.iter_mut().zip(grow) {
                if g == 0.0 {
                    continue;
                }
                *bj += g;
            }
        }
    });

    let mut dweight = Tensor::zeros_in(&[co, plen], ws);
    let mut dbias = ws.take_f32(co);
    for img in 0..n {
        let dw = &dw_all[img * co * plen..(img + 1) * co * plen];
        for (a, &v) in dweight.as_mut_slice().iter_mut().zip(dw) {
            *a += v;
        }
        let db = &db_all[img * co..(img + 1) * co];
        for (a, &v) in dbias.iter_mut().zip(db) {
            *a += v;
        }
    }

    let mut dinput = Tensor::zeros_in(&[n, ci, h, w], ws);
    col2im_batch(&dcols, n, ci, h, w, spec, dinput.as_mut_slice());

    ws.give_f32(cols);
    ws.give_f32(gt);
    ws.give_f32(dcols);
    ws.give_f32(dw_all);
    ws.give_f32(db_all);
    Conv2dGrads {
        dinput,
        dweight,
        dbias,
    }
}

/// Backward convolution over a batch (fresh scratch space per call; hot
/// loops should pass a persistent [`Workspace`] to [`conv2d_backward_ws`]).
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    spec: &Conv2dSpec,
) -> Conv2dGrads {
    conv2d_backward_ws(input, weight, grad_out, spec, &mut Workspace::new())
}

/// The original per-image backward path (fused dW/db/dcols loop per image,
/// fresh allocations): the bitwise reference for the batched kernel and
/// the "before" baseline of the `hotpath` benchmark.
pub fn conv2d_backward_ref(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    spec: &Conv2dSpec,
) -> Conv2dGrads {
    let [n, ci, h, w] = [
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    ];
    let (oh, ow) = spec.out_hw(h, w);
    assert_eq!(
        grad_out.dims(),
        &[n, spec.co, oh, ow],
        "grad_out shape mismatch"
    );
    let plen = spec.patch_len();
    let in_stride = ci * h * w;
    let out_stride = spec.co * oh * ow;
    let id = input.as_slice();
    let gd = grad_out.as_slice();
    let wd = weight.as_slice();

    // Per-image partials, reduced serially in image order afterwards so
    // the dweight/dbias sums accumulate identically at any thread count.
    let partials: Vec<(Vec<f32>, Vec<f32>, Vec<f32>)> = parallel::map_collect(n, |img| {
        let cols = im2col_ref(&id[img * in_stride..(img + 1) * in_stride], ci, h, w, spec);
        let cd = cols.as_slice();
        let gimg = &gd[img * out_stride..(img + 1) * out_stride];
        let mut dw = vec![0.0f32; spec.co * plen];
        let mut db = vec![0.0f32; spec.co];
        let mut dcols = Tensor::zeros(&[oh * ow, plen]);
        {
            let dc = dcols.as_mut_slice();
            for pix in 0..oh * ow {
                let patch = &cd[pix * plen..(pix + 1) * plen];
                let dpatch = &mut dc[pix * plen..(pix + 1) * plen];
                for co in 0..spec.co {
                    let g = gimg[co * oh * ow + pix];
                    if g == 0.0 {
                        continue;
                    }
                    db[co] += g;
                    let wrow = &wd[co * plen..(co + 1) * plen];
                    let dwrow = &mut dw[co * plen..(co + 1) * plen];
                    for k in 0..plen {
                        dwrow[k] += g * patch[k];
                        dpatch[k] += g * wrow[k];
                    }
                }
            }
        }
        let mut dimg = vec![0.0f32; in_stride];
        col2im(&dcols, ci, h, w, spec, &mut dimg);
        (dimg, dw, db)
    });

    let mut dinput = Tensor::zeros(&[n, ci, h, w]);
    let mut dweight = Tensor::zeros(&[spec.co, plen]);
    let mut dbias = vec![0.0f32; spec.co];
    for (img, (dimg, dw, db)) in partials.into_iter().enumerate() {
        dinput.as_mut_slice()[img * in_stride..(img + 1) * in_stride].copy_from_slice(&dimg);
        for (a, b) in dweight.as_mut_slice().iter_mut().zip(&dw) {
            *a += b;
        }
        for (a, b) in dbias.iter_mut().zip(&db) {
            *a += b;
        }
    }
    Conv2dGrads {
        dinput,
        dweight,
        dbias,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedRng;

    fn naive_conv(input: &Tensor, weight: &Tensor, bias: &[f32], spec: &Conv2dSpec) -> Tensor {
        let [n, ci, h, w] = [
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        ];
        let (oh, ow) = spec.out_hw(h, w);
        let mut out = Tensor::zeros(&[n, spec.co, oh, ow]);
        for img in 0..n {
            for (co, &bias_v) in bias.iter().enumerate().take(spec.co) {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut s = bias_v;
                        for c in 0..ci {
                            for ky in 0..spec.kh {
                                for kx in 0..spec.kw {
                                    let iy = (oy * spec.stride + ky) as isize - spec.pad as isize;
                                    let ix = (ox * spec.stride + kx) as isize - spec.pad as isize;
                                    if iy < 0 || ix < 0 || iy as usize >= h || ix as usize >= w {
                                        continue;
                                    }
                                    let wv = weight.as_slice()
                                        [co * spec.patch_len() + (c * spec.kh + ky) * spec.kw + kx];
                                    s += wv * input.at4(img, c, iy as usize, ix as usize);
                                }
                            }
                        }
                        let idx = out.idx4(img, co, oy, ox);
                        out.as_mut_slice()[idx] = s;
                    }
                }
            }
        }
        out
    }

    #[test]
    fn forward_matches_naive_padded() {
        let spec = Conv2dSpec {
            ci: 3,
            co: 4,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        };
        let mut r = SeedRng::new(1);
        let input = r.normal_tensor(&[2, 3, 6, 6], 1.0);
        let weight = r.normal_tensor(&[4, spec.patch_len()], 0.3);
        let bias = vec![0.1, -0.2, 0.3, 0.0];
        let fast = conv2d_forward(&input, &weight, &bias, &spec);
        let slow = naive_conv(&input, &weight, &bias, &spec);
        assert!(fast.allclose(&slow, 1e-4));
    }

    #[test]
    fn forward_matches_naive_strided_unpadded() {
        let spec = Conv2dSpec {
            ci: 2,
            co: 3,
            kh: 2,
            kw: 2,
            stride: 2,
            pad: 0,
        };
        let mut r = SeedRng::new(2);
        let input = r.normal_tensor(&[1, 2, 5, 5], 1.0);
        let weight = r.normal_tensor(&[3, spec.patch_len()], 0.3);
        let bias = vec![0.0; 3];
        assert!(conv2d_forward(&input, &weight, &bias, &spec)
            .allclose(&naive_conv(&input, &weight, &bias, &spec), 1e-4));
    }

    #[test]
    fn batched_forward_is_bitwise_reference() {
        let spec = Conv2dSpec {
            ci: 3,
            co: 5,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        };
        let mut r = SeedRng::new(12);
        let input = r.normal_tensor(&[3, 3, 7, 7], 1.0);
        let weight = r.normal_tensor(&[5, spec.patch_len()], 0.3);
        let bias = vec![0.1, -0.2, 0.3, 0.0, 0.7];
        let fast = conv2d_forward(&input, &weight, &bias, &spec);
        let reference = conv2d_forward_ref(&input, &weight, &bias, &spec);
        assert_eq!(fast.as_slice(), reference.as_slice());
    }

    #[test]
    fn batched_backward_is_bitwise_reference() {
        let spec = Conv2dSpec {
            ci: 2,
            co: 4,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        };
        let mut r = SeedRng::new(13);
        let input = r.normal_tensor(&[3, 2, 6, 6], 1.0);
        let weight = r.normal_tensor(&[4, spec.patch_len()], 0.3);
        let (oh, ow) = spec.out_hw(6, 6);
        let mut grad_out = r.normal_tensor(&[3, 4, oh, ow], 1.0);
        // Exercise the zero-skip rule too.
        for (i, g) in grad_out.as_mut_slice().iter_mut().enumerate() {
            if i % 5 == 0 {
                *g = 0.0;
            }
        }
        let fast = conv2d_backward(&input, &weight, &grad_out, &spec);
        let reference = conv2d_backward_ref(&input, &weight, &grad_out, &spec);
        assert_eq!(fast.dinput.as_slice(), reference.dinput.as_slice());
        assert_eq!(fast.dweight.as_slice(), reference.dweight.as_slice());
        assert_eq!(fast.dbias, reference.dbias);
    }

    #[test]
    fn workspace_reuse_is_bitwise_stable() {
        // Same convolution twice through one workspace (dirty buffers on
        // the second pass) must equal the fresh-allocation run.
        let spec = Conv2dSpec {
            ci: 2,
            co: 3,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        };
        let mut r = SeedRng::new(14);
        let input = r.normal_tensor(&[2, 2, 5, 5], 1.0);
        let weight = r.normal_tensor(&[3, spec.patch_len()], 0.3);
        let bias = vec![0.1, 0.2, 0.3];
        let fresh = conv2d_forward(&input, &weight, &bias, &spec);
        let mut ws = Workspace::new();
        let first = conv2d_forward_ws(&input, &weight, &bias, &spec, &mut ws);
        let f = first.as_slice().to_vec();
        ws.recycle(first);
        let second = conv2d_forward_ws(&input, &weight, &bias, &spec, &mut ws);
        assert_eq!(second.as_slice(), fresh.as_slice());
        assert_eq!(second.as_slice(), &f[..]);
    }

    #[test]
    fn im2col_fast_path_matches_reference() {
        for &(h, w, spec) in &[
            (
                6usize,
                6usize,
                Conv2dSpec {
                    ci: 2,
                    co: 1,
                    kh: 3,
                    kw: 3,
                    stride: 1,
                    pad: 1,
                },
            ),
            (
                5,
                7,
                Conv2dSpec {
                    ci: 3,
                    co: 1,
                    kh: 2,
                    kw: 4,
                    stride: 2,
                    pad: 0,
                },
            ),
            (
                4,
                4,
                Conv2dSpec {
                    ci: 1,
                    co: 1,
                    kh: 5,
                    kw: 5,
                    stride: 1,
                    pad: 2,
                },
            ),
        ] {
            let mut r = SeedRng::new(15);
            let img = r.normal_tensor(&[spec.ci, h, w], 1.0);
            let fast = im2col(img.as_slice(), spec.ci, h, w, &spec);
            let reference = im2col_ref(img.as_slice(), spec.ci, h, w, &spec);
            assert_eq!(fast.as_slice(), reference.as_slice());
        }
    }

    #[test]
    fn im2col_col2im_adjoint() {
        // <im2col(x), y> == <x, col2im(y)> — the two lowerings are adjoint,
        // which is exactly what backprop relies on.
        let spec = Conv2dSpec {
            ci: 2,
            co: 1,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        };
        let mut r = SeedRng::new(3);
        let x = r.normal_tensor(&[1, 2, 4, 4], 1.0);
        let cols = im2col(x.as_slice(), 2, 4, 4, &spec);
        let y = r.normal_tensor(&[cols.dims()[0], cols.dims()[1]], 1.0);
        let lhs: f32 = cols
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        let mut back = vec![0.0f32; 2 * 4 * 4];
        col2im(&y, 2, 4, 4, &spec, &mut back);
        let rhs: f32 = x.as_slice().iter().zip(&back).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn backward_matches_finite_differences() {
        let spec = Conv2dSpec {
            ci: 2,
            co: 2,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        };
        let mut r = SeedRng::new(4);
        let input = r.normal_tensor(&[1, 2, 4, 4], 1.0);
        let weight = r.normal_tensor(&[2, spec.patch_len()], 0.3);
        let bias = vec![0.05, -0.05];
        // Loss = sum of outputs; grad_out = ones.
        let (oh, ow) = spec.out_hw(4, 4);
        let grad_out = Tensor::full(&[1, 2, oh, ow], 1.0);
        let grads = conv2d_backward(&input, &weight, &grad_out, &spec);

        let eps = 1e-2f32;
        let base = conv2d_forward(&input, &weight, &bias, &spec).sum();
        // Check a scattering of weight coordinates.
        for &k in &[0usize, 5, 17, 20, 35] {
            let mut wp = weight.clone();
            wp.as_mut_slice()[k] += eps;
            let up = conv2d_forward(&input, &wp, &bias, &spec).sum();
            let fd = (up - base) / eps;
            let an = grads.dweight.as_slice()[k];
            assert!(
                (fd - an).abs() < 0.05 * (1.0 + an.abs()),
                "w[{k}]: fd {fd} vs {an}"
            );
        }
        // And input coordinates.
        for &k in &[0usize, 7, 15, 31] {
            let mut xp = input.clone();
            xp.as_mut_slice()[k] += eps;
            let up = conv2d_forward(&xp, &weight, &bias, &spec).sum();
            let fd = (up - base) / eps;
            let an = grads.dinput.as_slice()[k];
            assert!(
                (fd - an).abs() < 0.05 * (1.0 + an.abs()),
                "x[{k}]: fd {fd} vs {an}"
            );
        }
        // Bias gradient of a sum-loss is the number of output pixels.
        for b in &grads.dbias {
            assert!((b - (oh * ow) as f32).abs() < 1e-3);
        }
    }

    #[test]
    fn macs_counting() {
        let spec = Conv2dSpec {
            ci: 3,
            co: 64,
            kh: 5,
            kw: 5,
            stride: 1,
            pad: 2,
        };
        // 32x32 output, 64 kernels, 75-long patches.
        assert_eq!(spec.forward_macs(32, 32), (32 * 32 * 64 * 75) as u64);
    }
}

//! The workspace-arena hot path must be invisible to the numerics: a run
//! whose scratch buffers come from a dirty, reused arena has to produce
//! bit-for-bit the same parameters as a run that allocates everything
//! fresh, at the model level and through both execution backends.

use sasgd::core::{Algorithm, Backend, Executor, GammaP, TrainConfig};
use sasgd::data::cifar_like::{generate, CifarLikeConfig};
use sasgd::nn::{models, Ctx};
use sasgd::tensor::{SeedRng, Workspace};

/// Train the tiny CNN for a few steps, either carrying one arena across
/// steps (`reuse = true`) or letting every step allocate fresh buffers.
/// The per-step RNG streams are identical either way.
fn train_steps(reuse: bool) -> Vec<f32> {
    let (train_set, _) = generate(&CifarLikeConfig::tiny(64, 16, 3));
    let mut model = models::tiny_cnn(3, &mut SeedRng::new(7));
    let shard = &train_set.shards(1)[0];
    let mut order = SeedRng::new(42);
    let mut ws = Workspace::new();
    for step in 0..6u64 {
        for idx in shard.epoch_iter(8, &mut order).take(1) {
            let (x, y) = train_set.batch(&idx);
            let mut ctx = Ctx::train(SeedRng::new(step));
            if reuse {
                ctx.ws = std::mem::take(&mut ws);
            }
            model.forward_loss(&x, &y, &mut ctx);
            model.backward(&mut ctx);
            if reuse {
                ws = std::mem::take(&mut ctx.ws);
            }
            model.sgd_step(0.05);
            model.zero_grads();
        }
    }
    model.param_vector()
}

#[test]
fn model_level_reuse_matches_fresh_bitwise() {
    let fresh = train_steps(false);
    let reused = train_steps(true);
    assert_eq!(fresh.len(), reused.len());
    for (i, (a, b)) in fresh.iter().zip(&reused).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "param[{i}] drifted between fresh and arena-reuse runs"
        );
    }
}

#[test]
fn engine_runs_are_bitwise_stable_across_backends_and_p() {
    let (train_set, test_set) = generate(&CifarLikeConfig::tiny(64, 16, 3));
    let cfg = TrainConfig::new(2, 8, 0.05, 42);
    for p in [1usize, 4] {
        let algo = Algorithm::Sasgd {
            p,
            t: 2,
            gamma_p: GammaP::OverP,
            compression: None,
        };
        for backend in [Backend::Simulated, Backend::Threaded] {
            let run = |_: usize| {
                let factory = || models::tiny_cnn(3, &mut SeedRng::new(7));
                Executor::new(backend)
                    .run(&factory, &train_set, &test_set, &algo, &cfg)
                    .final_params
                    .expect("sasgd reports final_params")
            };
            // The learners' arenas persist across every step of a run; two
            // runs must still agree bit-for-bit.
            let a = run(0);
            let b = run(1);
            assert_eq!(a.len(), b.len());
            for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "p={p} {backend:?}: param[{i}] not reproducible"
                );
            }
        }
    }
}

//! The paper's two networks (Table I and Table II) plus scaled variants for
//! CPU-tractable experiments and tests.

use sasgd_tensor::SeedRng;

use crate::layers::{
    AvgPool2d, Conv2d, Dropout, Flatten, GlobalMaxOverTime, Linear, LocalResponseNorm, MaxPool2d,
    Relu, Tanh, TemporalConv1d, TemporalMaxPool,
};
use crate::model::Model;

/// Parameter count of the full Table I network.
pub const CIFAR_CNN_PARAMS: usize = 506_378;
/// Parameter count of the full Table II network (sequence length 20).
pub const NLC_NET_PARAMS: usize = 1_733_511;

/// Table I: the CIFAR-10 convolutional network, exactly as printed.
///
/// ```text
/// conv(3→64, 5×5, pad 2) · ReLU · pool 2×2 · dropout 0.5
/// conv(64→128, 3×3, pad 1) · ReLU · pool 2×2 · dropout 0.5
/// conv(128→256, 3×3, pad 1) · ReLU · pool 2×2 · dropout 0.5
/// conv(256→128, 2×2) · ReLU · pool 2×2 · dropout 0.5
/// fc 128×10 · cross-entropy
/// ```
///
/// ~0.5 M parameters ([`CIFAR_CNN_PARAMS`]); input `[3, 32, 32]`.
pub fn cifar_cnn(rng: &mut SeedRng) -> Model {
    cifar_cnn_scaled(1, rng)
}

/// Width-scaled Table I network: every channel count divided by `divisor`
/// (1 = the paper's model). Keeps the input geometry and depth so the
/// communication/computation *ratios* scale faithfully while staying
/// CPU-tractable.
pub fn cifar_cnn_scaled(divisor: usize, rng: &mut SeedRng) -> Model {
    assert!(divisor >= 1 && 64 % divisor == 0, "divisor must divide 64");
    let c1 = 64 / divisor;
    let c2 = 128 / divisor;
    let c3 = 256 / divisor;
    let c4 = 128 / divisor;
    Model::new(
        vec![
            Box::new(Conv2d::new(3, c1, 5, 5, 1, 2, rng)),
            Box::new(Relu::new()),
            Box::new(MaxPool2d::new(2)),
            Box::new(Dropout::new(0.5)),
            Box::new(Conv2d::new(c1, c2, 3, 3, 1, 1, rng)),
            Box::new(Relu::new()),
            Box::new(MaxPool2d::new(2)),
            Box::new(Dropout::new(0.5)),
            Box::new(Conv2d::new(c2, c3, 3, 3, 1, 1, rng)),
            Box::new(Relu::new()),
            Box::new(MaxPool2d::new(2)),
            Box::new(Dropout::new(0.5)),
            Box::new(Conv2d::new(c3, c4, 2, 2, 1, 0, rng)),
            Box::new(Relu::new()),
            Box::new(MaxPool2d::new(2)),
            Box::new(Dropout::new(0.5)),
            Box::new(Flatten::new()),
            Box::new(Linear::new(c4, 10, rng)),
        ],
        &[3, 32, 32],
    )
}

/// Table II: the NLC-F sentiment network.
///
/// ```text
/// fc 100×200 (per timestep) · tanh
/// temporal conv (1000 kernels, window 2) · max-pool (2,1) · tanh
/// max-over-time
/// fc 1000×1000 · tanh
/// fc 1000×311 · cross-entropy
/// ```
///
/// The printed table pools `(2,1)` and then feeds a 1000-wide fully
/// connected layer; a max-over-time reduction bridges the variable-length
/// pooled sequence to that fixed width (the standard Collobert-style text
/// CNN the table abbreviates). ~1.73 M parameters ([`NLC_NET_PARAMS`]);
/// input `[len, 100]` word2vec sequences.
pub fn nlc_net(seq_len: usize, rng: &mut SeedRng) -> Model {
    nlc_net_custom(seq_len, 100, 200, 1000, 1000, 311, rng)
}

/// Fully parameterized NLC-style network for scaled experiments:
/// `embed`-dim inputs projected to `proj`, `nkern` temporal kernels of
/// window 2, a `hidden`-wide fully connected stage, `classes` outputs.
pub fn nlc_net_custom(
    seq_len: usize,
    embed: usize,
    proj: usize,
    nkern: usize,
    hidden: usize,
    classes: usize,
    rng: &mut SeedRng,
) -> Model {
    assert!(seq_len >= 3, "need at least 3 timesteps for conv+pool");
    Model::new(
        vec![
            Box::new(Linear::new(embed, proj, rng)),
            Box::new(Tanh::new()),
            Box::new(TemporalConv1d::new(proj, nkern, 2, rng)),
            Box::new(TemporalMaxPool::new(2)),
            Box::new(Tanh::new()),
            Box::new(GlobalMaxOverTime::new()),
            Box::new(Linear::new(nkern, hidden, rng)),
            Box::new(Tanh::new()),
            Box::new(Linear::new(hidden, classes, rng)),
        ],
        &[seq_len, embed],
    )
}

/// An AlexNet-flavoured network scaled to 32×32 inputs — conv stacks with
/// local response normalization, overlapping feature growth, dropout-heavy
/// fully connected head. Section II notes the paper's approach "works
/// for these networks also"; this builder lets the harness check that
/// claim on a deeper architecture. `width` divides the channel counts
/// (use 8 for CPU-scale runs).
pub fn alexnet_32(width_divisor: usize, classes: usize, rng: &mut SeedRng) -> Model {
    assert!(
        width_divisor >= 1 && 64 % width_divisor == 0,
        "divisor must divide 64"
    );
    let c1 = 64 / width_divisor;
    let c2 = 192 / width_divisor;
    let c3 = 256 / width_divisor;
    let fc = 512 / width_divisor;
    Model::new(
        vec![
            Box::new(Conv2d::new(3, c1, 5, 5, 1, 2, rng)),
            Box::new(Relu::new()),
            Box::new(LocalResponseNorm::alexnet()),
            Box::new(MaxPool2d::new(2)), // 16
            Box::new(Conv2d::new(c1, c2, 3, 3, 1, 1, rng)),
            Box::new(Relu::new()),
            Box::new(LocalResponseNorm::alexnet()),
            Box::new(MaxPool2d::new(2)), // 8
            Box::new(Conv2d::new(c2, c3, 3, 3, 1, 1, rng)),
            Box::new(Relu::new()),
            Box::new(AvgPool2d::new(2)), // 4
            Box::new(Flatten::new()),
            Box::new(Dropout::new(0.5)),
            Box::new(Linear::new(c3 * 16, fc, rng)),
            Box::new(Relu::new()),
            Box::new(Dropout::new(0.5)),
            Box::new(Linear::new(fc, classes, rng)),
        ],
        &[3, 32, 32],
    )
}

/// A small multi-layer perceptron for unit and integration tests.
pub fn tiny_mlp(input: usize, hidden: usize, classes: usize, rng: &mut SeedRng) -> Model {
    Model::new(
        vec![
            Box::new(Linear::new(input, hidden, rng)),
            Box::new(Relu::new()),
            Box::new(Linear::new(hidden, classes, rng)),
        ],
        &[input],
    )
}

/// A small CNN (8×8 inputs) that exercises the conv/pool/dropout path
/// quickly — used by integration tests and the quickstart example.
pub fn tiny_cnn(classes: usize, rng: &mut SeedRng) -> Model {
    Model::new(
        vec![
            Box::new(Conv2d::new(3, 8, 3, 3, 1, 1, rng)),
            Box::new(Relu::new()),
            Box::new(MaxPool2d::new(2)),
            Box::new(Conv2d::new(8, 16, 3, 3, 1, 1, rng)),
            Box::new(Relu::new()),
            Box::new(MaxPool2d::new(2)),
            Box::new(Flatten::new()),
            Box::new(Linear::new(16 * 2 * 2, classes, rng)),
        ],
        &[3, 8, 8],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Ctx;
    use sasgd_tensor::Tensor;

    #[test]
    fn table1_param_count_matches_paper() {
        let m = cifar_cnn(&mut SeedRng::new(1));
        assert_eq!(m.param_len(), CIFAR_CNN_PARAMS);
        // "The number of parameters is about 0.5 million" — §II.
        assert!((m.param_len() as f64 - 0.5e6).abs() / 0.5e6 < 0.02);
    }

    #[test]
    fn table1_shapes_flow_to_fc_128() {
        let m = cifar_cnn(&mut SeedRng::new(2));
        let s = m.summary();
        assert!(
            s.contains("[128, 1, 1]"),
            "final feature map must be 128×1×1:\n{s}"
        );
        assert!(s.contains("[10]"), "10 output classes:\n{s}");
    }

    #[test]
    fn table2_param_count_matches_paper() {
        let m = nlc_net(20, &mut SeedRng::new(3));
        assert_eq!(m.param_len(), NLC_NET_PARAMS);
        // "about 2 million in the NLC-F network" — §II.
        assert!((m.param_len() as f64 - 2.0e6).abs() / 2.0e6 < 0.2);
    }

    #[test]
    fn table2_forward_shapes() {
        let mut m = nlc_net(20, &mut SeedRng::new(4));
        let x = Tensor::zeros(&[2, 20, 100]);
        let logits = m.forward(x, &mut Ctx::eval());
        assert_eq!(logits.dims(), &[2, 311]);
    }

    #[test]
    fn scaled_cifar_is_smaller_but_same_topology() {
        let full = cifar_cnn_scaled(1, &mut SeedRng::new(5));
        let quarter = cifar_cnn_scaled(4, &mut SeedRng::new(5));
        assert!(quarter.param_len() < full.param_len() / 8);
        assert_eq!(quarter.num_layers(), full.num_layers());
        // Forward still works end to end.
        let mut q = quarter;
        let logits = q.forward(Tensor::zeros(&[1, 3, 32, 32]), &mut Ctx::eval());
        assert_eq!(logits.dims(), &[1, 10]);
    }

    #[test]
    fn cifar_macs_dominated_by_conv() {
        let m = cifar_cnn(&mut SeedRng::new(6));
        // conv1 alone: 32*32*64*75 = 4.9M MACs; total should be far above
        // the fc layer's 1,280.
        assert!(m.macs_per_sample() > 10_000_000);
    }

    #[test]
    fn tiny_models_forward() {
        let mut mlp = tiny_mlp(6, 5, 4, &mut SeedRng::new(7));
        assert_eq!(
            mlp.forward(Tensor::zeros(&[3, 6]), &mut Ctx::eval()).dims(),
            &[3, 4]
        );
        let mut cnn = tiny_cnn(5, &mut SeedRng::new(8));
        assert_eq!(
            cnn.forward(Tensor::zeros(&[2, 3, 8, 8]), &mut Ctx::eval())
                .dims(),
            &[2, 5]
        );
    }

    #[test]
    #[should_panic(expected = "divisor must divide")]
    fn bad_divisor_rejected() {
        cifar_cnn_scaled(3, &mut SeedRng::new(9));
    }

    #[test]
    fn alexnet_builder_forwards() {
        let mut m = alexnet_32(8, 10, &mut SeedRng::new(1));
        let logits = m.forward(Tensor::zeros(&[1, 3, 32, 32]), &mut Ctx::eval());
        assert_eq!(logits.dims(), &[1, 10]);
        assert!(m.param_len() > 10_000, "deeper net, real parameter count");
        let s = m.summary();
        assert!(s.contains("LocalResponseNorm"));
        assert!(s.contains("AvgPool2d"));
    }
}

//! One-shot model averaging (Zinkevich et al., NIPS 2010).
//!
//! `p` learners train *independently* on disjoint shards; parameters are
//! averaged only at the end (we also evaluate the running average each
//! epoch so its trajectory can be plotted). Section III of the paper
//! reports this heuristic "results in very poor training and test
//! accuracies" relative to SASGD's per-interval aggregation — an ablation
//! this module lets the benches reproduce.

use sasgd_data::{make_shards, Dataset};
use sasgd_nn::Model;

use crate::history::History;
use crate::trainer::{EvalSets, Learner, TrainConfig};

/// Run independent learners with end-of-training averaging.
pub(crate) fn run(
    factory: &mut dyn FnMut() -> Model,
    train_set: &Dataset,
    test_set: &Dataset,
    cfg: &TrainConfig,
    p: usize,
) -> History {
    assert!(p >= 1);
    let mut learners: Vec<Learner> = (0..p).map(|id| Learner::new(id, factory(), cfg)).collect();
    let m = learners[0].model.param_len();
    let macs = learners[0].model.macs_per_sample();
    let x0 = learners[0].model.param_vector();
    for l in &mut learners {
        l.model.write_params(&x0);
    }
    // A spare replica used only to evaluate the averaged parameters.
    let mut avg_model = factory();

    let evals = EvalSets::prepare(train_set, test_set, cfg.eval_cap);
    let shards = make_shards(train_set, p, cfg.shard_strategy);
    let step_s = cfg.cost.minibatch_compute(macs, cfg.batch_size, p);
    let mut history = History::new(format!("ModelAvg(p={p})"), p, 1);
    let mut samples = 0u64;

    for epoch in 1..=cfg.epochs {
        let gamma_now = cfg.gamma_at((epoch - 1) as f64);
        for (l, shard) in learners.iter_mut().zip(&shards) {
            let batches: Vec<Vec<usize>> = shard.epoch_iter(cfg.batch_size, &mut l.rng).collect();
            for idx in batches {
                samples += idx.len() as u64;
                let j = l.draw_jitter(&cfg.jitter);
                l.local_step(train_set, &idx, gamma_now, step_s, j);
                l.gs.iter_mut().for_each(|g| *g = 0.0);
            }
            l.clock += cfg.cost.epoch_overhead;
        }
        // Evaluate the average of all replicas (communication-free during
        // training; the single final reduction is charged on the last
        // epoch).
        let mut avg = vec![0.0f32; m];
        for l in &learners {
            let v = l.model.param_vector();
            for (a, &b) in avg.iter_mut().zip(&v) {
                *a += b / p as f32;
            }
        }
        avg_model.write_params(&avg);
        if epoch == cfg.epochs {
            let ar = cfg.cost.allreduce_tree(m, p);
            for l in &mut learners {
                l.charge_comm(ar.seconds);
            }
        }
        let (comp, comm) = (learners[0].compute_s, learners[0].comm_s);
        let rec = evals.record(&mut avg_model, epoch as f64, comp, comm, samples);
        history.records.push(rec);
    }
    history.final_params = Some(avg_model.param_vector());
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use sasgd_data::cifar_like::{generate, CifarLikeConfig};
    use sasgd_nn::models;
    use sasgd_simnet::JitterModel;
    use sasgd_tensor::SeedRng;

    #[test]
    fn p1_averaging_is_just_sgd() {
        let (train, test) = generate(&CifarLikeConfig::tiny(80, 40, 3));
        let mut cfg = TrainConfig::new(6, 8, 0.05, 42);
        cfg.jitter = JitterModel::none();
        let mut factory = || models::tiny_cnn(3, &mut SeedRng::new(7));
        let h = run(&mut factory, &train, &test, &cfg, 1);
        assert!(h.final_test_acc() > 0.5, "acc {}", h.final_test_acc());
    }

    #[test]
    fn communication_happens_once() {
        let (train, test) = generate(&CifarLikeConfig::tiny(64, 16, 2));
        let mut cfg = TrainConfig::new(3, 8, 0.02, 1);
        cfg.jitter = JitterModel::none();
        let mut factory = || models::tiny_cnn(2, &mut SeedRng::new(3));
        let h = run(&mut factory, &train, &test, &cfg, 4);
        let comm_mid = h.records[1].comm_seconds;
        let comm_end = h.records.last().expect("r").comm_seconds;
        assert_eq!(comm_mid, 0.0, "no traffic during training");
        assert!(comm_end > 0.0, "one final reduction");
    }
}

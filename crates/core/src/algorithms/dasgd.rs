//! DaSGD-style delayed parameter averaging.
//!
//! Like Local SGD, `p` learners average their replicas every `T` steps —
//! but the average launched at round `k` is only *applied* at round
//! `k + 1`, while the learners have already run `T` steps ahead on their
//! stale replicas. Applying the delayed average re-bases each learner's
//! local progress onto it:
//!
//! ```text
//! x_i ← avg_{k-1} + (x_i − snap_i)
//! ```
//!
//! where `snap_i` is learner `i`'s parameter vector right after the
//! previous application. The allreduce thus overlaps with compute: a
//! learner only waits if the *previous* round's average has not finished
//! travelling by the time it needs it, so for `T·step ≥ allreduce` the
//! communication hides completely — the lattice point between
//! bulk-synchronous SASGD (stall every round) and Downpour (unbounded
//! staleness). The price is a fixed one-round staleness, reported through
//! [`AggregationStrategy::collective_tau`].

use sasgd_data::Dataset;
use sasgd_nn::Model;

use crate::engine::{simulated, tree_reduce, AggregationStrategy, Cadence};
use crate::history::{History, WireStats};
use crate::trainer::{Learner, TrainConfig};

/// Delayed averaging: round-k average applied at round k+1.
pub(crate) struct DaSgdStrategy {
    p: usize,
    t: usize,
    /// The average computed last round, waiting to be applied.
    pending: Option<Vec<f32>>,
    /// Per-learner parameters at the moment of the last application —
    /// the base point the local progress delta is measured from.
    snaps: Vec<Vec<f32>>,
    /// Virtual time at which the in-flight allreduce completes.
    last_avail: f64,
    /// Cost of one dense parameter allreduce.
    ar_seconds: f64,
    /// Parameter count (for wire accounting).
    m: usize,
}

impl DaSgdStrategy {
    pub(crate) fn new(p: usize, t: usize) -> Self {
        assert!(p >= 1, "need at least one learner");
        assert!(t >= 1, "averaging interval must be positive");
        DaSgdStrategy {
            p,
            t,
            pending: None,
            snaps: Vec::new(),
            last_avail: 0.0,
            ar_seconds: 0.0,
            m: 0,
        }
    }
}

impl AggregationStrategy for DaSgdStrategy {
    fn label(&self) -> String {
        format!("DaSGD(p={},T={})", self.p, self.t)
    }

    fn p(&self) -> usize {
        self.p
    }

    fn cadence(&self) -> Cadence {
        Cadence::EventDriven
    }

    fn sync_interval(&self) -> usize {
        self.t
    }

    fn collective_tau(&self) -> u64 {
        // Every applied average is exactly one round old by construction.
        1
    }

    fn setup(&mut self, _factory: &mut dyn FnMut() -> Model, x0: &[f32], cfg: &TrainConfig) -> f64 {
        self.m = x0.len();
        self.snaps = vec![x0.to_vec(); self.p];
        self.ar_seconds = cfg.cost.allreduce_tree(self.m, self.p).seconds;
        self.last_avail = 0.0;
        self.pending = None;
        // Replicas start identical from the shared factory — no broadcast,
        // matching the threaded DelayedAverage runner.
        0.0
    }

    fn local_step(
        &mut self,
        l: &mut Learner,
        _id: usize,
        data: &Dataset,
        idx: &[usize],
        gamma: f32,
        step_s: f64,
        jitter: f64,
    ) {
        l.local_step(data, idx, gamma, step_s, jitter);
        // Averaging consumes parameters, not gradients: keep gs empty.
        l.gs.iter_mut().for_each(|g| *g = 0.0);
    }

    fn on_local_step(
        &mut self,
        l: &mut Learner,
        _id: usize,
        data: &Dataset,
        idx: &[usize],
        gamma: f32,
    ) {
        l.local_step(data, idx, gamma, 0.0, 1.0);
        l.gs.iter_mut().for_each(|g| *g = 0.0);
    }

    fn sync(&mut self, learners: &mut [Learner], _gamma_now: f32) {
        // Launch this round's allreduce over the *pre-application*
        // parameters, in binomial-tree order with reciprocal scaling —
        // the exact float sequence of the threaded DelayedAverage op.
        let t_arr_max = learners.iter().map(|l| l.clock).fold(0.0_f64, f64::max);
        let bufs: Vec<Vec<f32>> = learners.iter().map(|l| l.model.param_vector()).collect();
        let mut avg = tree_reduce(bufs);
        let inv = 1.0 / self.p as f32;
        avg.iter_mut().for_each(|v| *v *= inv);
        // Apply the PREVIOUS round's average, re-based by each learner's
        // local progress since its last application.
        if let Some(prev) = self.pending.take() {
            for (i, l) in learners.iter_mut().enumerate() {
                let cur = l.model.param_vector();
                let applied: Vec<f32> = prev
                    .iter()
                    .zip(&cur)
                    .zip(&self.snaps[i])
                    .map(|((&pv, &cv), &sv)| pv + (cv - sv))
                    .collect();
                l.model.write_params(&applied);
                self.snaps[i] = applied;
            }
        } else {
            for (i, l) in learners.iter().enumerate() {
                self.snaps[i] = l.model.param_vector();
            }
        }
        self.pending = Some(avg);
        // Overlapped timing: a learner only stalls if the previous
        // round's allreduce has not completed by the time it arrives
        // here; the one launched now completes ar_seconds after the
        // slowest learner arrives.
        for l in learners.iter_mut() {
            let wait = (self.last_avail - l.clock).max(0.0);
            l.charge_comm(wait);
        }
        self.last_avail = t_arr_max + self.ar_seconds;
    }

    fn final_params(&mut self, learners: &[Learner]) -> Vec<f32> {
        // Flush the in-flight average so a finished run does not discard
        // the last round of aggregation (mirrors the threaded runner).
        let cur = learners[0].model.param_vector();
        match &self.pending {
            Some(prev) => prev
                .iter()
                .zip(&cur)
                .zip(&self.snaps[0])
                .map(|((&pv, &cv), &sv)| pv + (cv - sv))
                .collect(),
            None => cur,
        }
    }

    fn wire(&self, syncs: u64) -> Option<WireStats> {
        // One dense tree allreduce per round: 2(p−1) messages of m
        // elements. No initial broadcast (replicas start identical).
        let p1 = (self.p - 1) as u64;
        Some(WireStats {
            elements: 2 * p1 * self.m as u64 * syncs,
            messages: 2 * p1 * syncs,
        })
    }
}

/// Run delayed averaging on the simulated backend under the event-driven
/// engine.
pub(crate) fn run(
    factory: &mut dyn FnMut() -> Model,
    train_set: &Dataset,
    test_set: &Dataset,
    cfg: &TrainConfig,
    p: usize,
    t: usize,
) -> History {
    let mut s = DaSgdStrategy::new(p, t);
    simulated::run_auto(&mut s, factory, train_set, test_set, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::TSchedule;
    use sasgd_data::cifar_like::{generate, CifarLikeConfig};
    use sasgd_nn::models;
    use sasgd_simnet::JitterModel;
    use sasgd_tensor::SeedRng;

    fn quiet_cfg(epochs: usize, gamma: f32) -> TrainConfig {
        let mut cfg = TrainConfig::new(epochs, 8, gamma, 42);
        cfg.jitter = JitterModel::none();
        cfg
    }

    #[test]
    fn learns_with_four_learners() {
        let (train, test) = generate(&CifarLikeConfig::tiny(160, 60, 3));
        let cfg = quiet_cfg(8, 0.05);
        let mut factory = || models::tiny_cnn(3, &mut SeedRng::new(7));
        let h = run(&mut factory, &train, &test, &cfg, 4, 2);
        assert!(h.final_test_acc() > 0.5, "acc {}", h.final_test_acc());
        let st = h.staleness.expect("delayed averaging records staleness");
        assert_eq!(st.max, 1, "staleness is one round by construction");
    }

    #[test]
    fn overlap_hides_communication_vs_local_sgd() {
        // With jitter off, every learner reaches the round barrier at the
        // same time, so Local SGD pays the full allreduce each round while
        // delayed averaging only waits for the *previous* allreduce —
        // already finished once T compute steps exceed its latency.
        let (train, test) = generate(&CifarLikeConfig::tiny(128, 32, 3));
        let cfg = quiet_cfg(3, 0.05);
        let t = 4;
        let mut f1 = || models::tiny_cnn(3, &mut SeedRng::new(5));
        let local = crate::algorithms::local_sgd::run(
            &mut f1,
            &train,
            &test,
            &cfg,
            4,
            TSchedule::Fixed { t },
        );
        let mut f2 = || models::tiny_cnn(3, &mut SeedRng::new(5));
        let delayed = run(&mut f2, &train, &test, &cfg, 4, t);
        let lc = local.records.last().expect("r").comm_seconds;
        let dc = delayed.records.last().expect("r").comm_seconds;
        assert!(
            dc < lc,
            "delayed averaging comm {dc} should undercut Local SGD {lc}"
        );
    }

    #[test]
    fn p1_delayed_averaging_is_nearly_transparent() {
        // With one learner the "average" is the learner itself, so the
        // delayed application rebases to prev + (cur − snap) = cur up to
        // f32 association — mathematically the identity, so p=1 delayed
        // averaging must track p=1 Local SGD to rounding noise. (Bitwise
        // equality is the *cross-backend* contract, pinned in the
        // distributed-equivalence suite, not a DaSGD-vs-LocalSGD one.)
        let (train, test) = generate(&CifarLikeConfig::tiny(96, 24, 3));
        let cfg = quiet_cfg(3, 0.05);
        let mut f1 = || models::tiny_cnn(3, &mut SeedRng::new(9));
        let da = run(&mut f1, &train, &test, &cfg, 1, 2);
        let mut f2 = || models::tiny_cnn(3, &mut SeedRng::new(9));
        let ls = crate::algorithms::local_sgd::run(
            &mut f2,
            &train,
            &test,
            &cfg,
            1,
            TSchedule::Fixed { t: 2 },
        );
        let a = da.final_params.expect("params");
        let b = ls.final_params.expect("params");
        assert_eq!(a.len(), b.len());
        let max_diff = a
            .iter()
            .zip(&b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max);
        assert!(
            max_diff < 1e-4,
            "p=1 delayed averaging drifted {max_diff} from plain local training"
        );
    }
}

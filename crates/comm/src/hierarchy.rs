//! Grouped communicators and hierarchical allreduce.
//!
//! The two-level aggregation of hierarchical SASGD needs three scopes per
//! learner: the global group, the local group (learners sharing a device
//! or switch), and — for local rank 0 only — the leader group that talks
//! across groups. [`grouped`] builds all three up front;
//! [`hierarchical_allreduce`] composes the crate's collectives into the
//! classic local-reduce → leader-allreduce → local-broadcast pattern.

use crate::collectives::{allreduce_tree, broadcast, reduce_tree};
use crate::transport::Transport;
use crate::world::{CommError, CommWorld, Communicator};

/// The communicator bundle one learner thread receives. Generic over the
/// [`Transport`] carrying each scope (defaulting to the in-process
/// [`Communicator`], which [`grouped`] builds); a multi-host deployment
/// would plug socket endpoints into the same shape.
pub struct GroupedComm<T: Transport = Communicator> {
    /// Endpoint in the flat world of all `groups × per_group` learners.
    pub global: T,
    /// Endpoint among the members of this learner's group.
    pub local: T,
    /// Endpoint among group leaders; `Some` only for local rank 0.
    pub leaders: Option<T>,
    /// This learner's group index.
    pub group: usize,
}

impl<T: Transport> GroupedComm<T> {
    /// Rank within the local group.
    pub fn local_rank(&self) -> usize {
        self.local.rank()
    }
}

/// Build the communicator bundles for `groups × per_group` learners.
/// Bundle `i` belongs to global rank `i`, group `i / per_group`, local
/// rank `i % per_group`.
pub fn grouped(groups: usize, per_group: usize) -> Vec<GroupedComm> {
    assert!(groups >= 1 && per_group >= 1, "need at least one learner");
    let mut global_world = CommWorld::new(groups * per_group);
    let global = global_world.communicators();
    let mut leader_world = CommWorld::new(groups);
    let mut leaders: Vec<Option<Communicator>> =
        leader_world.communicators().into_iter().map(Some).collect();
    let mut out = Vec::with_capacity(groups * per_group);
    let mut global_iter = global.into_iter();
    for (g, leader_slot) in leaders.iter_mut().enumerate() {
        let mut local_world = CommWorld::new(per_group);
        let locals = local_world.communicators();
        for (lr, local) in locals.into_iter().enumerate() {
            out.push(GroupedComm {
                global: global_iter.next().expect("global endpoint"),
                local,
                leaders: if lr == 0 { leader_slot.take() } else { None },
                group: g,
            });
        }
    }
    out
}

/// Hierarchical sum-allreduce: reduce within each group to its leader,
/// allreduce among leaders, broadcast back within each group. Produces the
/// same sums as a flat allreduce while sending only `O(per_group)` local
/// plus `O(log groups)` leader traffic per group.
pub fn hierarchical_allreduce<T: Transport>(
    comm: &mut GroupedComm<T>,
    buf: &mut Vec<f32>,
) -> Result<(), CommError> {
    reduce_tree(&mut comm.local, 0, buf)?;
    if let Some(leaders) = comm.leaders.as_mut() {
        allreduce_tree(leaders, buf)?;
    }
    broadcast(&mut comm.local, 0, buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn run_hierarchical(groups: usize, per_group: usize, m: usize) -> Vec<Vec<f32>> {
        let bundles = grouped(groups, per_group);
        let p = groups * per_group;
        let mut out: Vec<Option<Vec<f32>>> = (0..p).map(|_| None).collect();
        thread::scope(|s| {
            let handles: Vec<_> = bundles
                .into_iter()
                .enumerate()
                .map(|(i, mut b)| {
                    s.spawn(move || {
                        let mut v: Vec<f32> = (0..m).map(|j| (i * m + j) as f32).collect();
                        hierarchical_allreduce(&mut b, &mut v).expect("hierarchical allreduce");
                        v
                    })
                })
                .collect();
            for (slot, h) in out.iter_mut().zip(handles) {
                *slot = Some(h.join().expect("learner thread"));
            }
        });
        out.into_iter().map(|o| o.expect("result")).collect()
    }

    #[test]
    fn equals_flat_allreduce_for_many_shapes() {
        for (groups, per_group) in [(1usize, 1usize), (1, 4), (4, 1), (2, 3), (3, 2), (2, 4)] {
            let p = groups * per_group;
            let m = 7;
            let results = run_hierarchical(groups, per_group, m);
            let expect: Vec<f32> = (0..m)
                .map(|j| (0..p).map(|i| (i * m + j) as f32).sum())
                .collect();
            for (i, v) in results.iter().enumerate() {
                assert_eq!(v, &expect, "g={groups} pg={per_group} learner {i}");
            }
        }
    }

    #[test]
    fn bundles_have_correct_scopes() {
        let bundles = grouped(3, 2);
        assert_eq!(bundles.len(), 6);
        for (i, b) in bundles.iter().enumerate() {
            assert_eq!(b.global.rank(), i);
            assert_eq!(b.group, i / 2);
            assert_eq!(b.local_rank(), i % 2);
            assert_eq!(b.local.size(), 2);
            assert_eq!(b.leaders.is_some(), i % 2 == 0, "only local rank 0 leads");
        }
        if let Some(l) = &bundles[2].leaders {
            assert_eq!(l.size(), 3);
            assert_eq!(l.rank(), 1);
        }
    }

    #[test]
    #[should_panic(expected = "at least one learner")]
    fn zero_groups_rejected() {
        grouped(0, 2);
    }
}

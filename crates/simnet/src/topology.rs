//! Platform descriptions.
//!
//! The paper's testbed: one IBM Power8 host, an OSS compute accelerator
//! holding 8 NVIDIA K80 GPUs connected by PCIe switches *forming a binary
//! tree*, learners on GPUs, the (sharded) parameter server on host CPUs.
//! Allreduce traffic stays on the wide GPU↔GPU fabric (GPUDirect);
//! parameter-server traffic crosses the narrow, software-mediated
//! GPU↔host channel — the asymmetry the paper's whole argument rests on.

/// A communication substrate for a set of learners.
#[derive(Clone, Debug)]
pub enum Topology {
    /// GPUs under PCIe switches in a binary tree, plus a host channel.
    ///
    /// Bandwidths are *effective* end-to-end rates (they absorb protocol
    /// and software-copy overheads), not wire rates.
    PcieTree {
        /// Latency of one GPU↔GPU hop (seconds).
        gpu_latency: f64,
        /// Effective GPU↔GPU bandwidth (bytes/second) via GPUDirect.
        gpu_bandwidth: f64,
        /// Latency of one GPU↔host transfer (seconds) — includes the
        /// staging copies through the software layers the paper mentions.
        host_latency: f64,
        /// Effective GPU↔host bandwidth (bytes/second) for the parameter
        /// server path.
        host_bandwidth: f64,
        /// Fraction of a second learner's traffic that collides on the
        /// shared host channel (0 = perfect overlap, 1 = full
        /// serialization). Sharded servers and async pushes overlap most
        /// transfers, so this is well below 1.
        host_contention: f64,
    },
    /// Idealized uniform fabric (for what-if studies): one latency, one
    /// bandwidth, no host asymmetry.
    Uniform {
        /// Link latency (seconds).
        latency: f64,
        /// Link bandwidth (bytes/second).
        bandwidth: f64,
    },
}

impl Topology {
    /// The paper's platform with constants calibrated against Fig 1
    /// (Downpour comm share: CIFAR ≈20 % at p=1 rising to ≈30 % at p=8;
    /// NLC-F >60 %) — see `sasgd-bench`'s `repro fig1`.
    pub fn paper_testbed() -> Self {
        Topology::PcieTree {
            gpu_latency: 200e-6,
            gpu_bandwidth: 2e9,
            host_latency: 500e-6,
            host_bandwidth: 1e9,
            host_contention: 0.25,
        }
    }

    /// A modern accelerator node: NVLink-class GPU fabric and a PCIe-4
    /// host channel. Used by the what-if example to show how the paper's
    /// conclusions shift when the fabric gets 25× faster but the host
    /// channel only 10×.
    pub fn modern_nvlink() -> Self {
        Topology::PcieTree {
            gpu_latency: 10e-6,
            gpu_bandwidth: 50e9,
            host_latency: 50e-6,
            host_bandwidth: 10e9,
            host_contention: 0.25,
        }
    }

    /// Time to move `bytes` across one GPU↔GPU hop.
    pub fn gpu_link_time(&self, bytes: f64) -> f64 {
        match *self {
            Topology::PcieTree {
                gpu_latency,
                gpu_bandwidth,
                ..
            } => gpu_latency + bytes / gpu_bandwidth,
            Topology::Uniform { latency, bandwidth } => latency + bytes / bandwidth,
        }
    }

    /// Time for one learner to move `bytes` to/from the host while `p`
    /// learners share the channel.
    pub fn host_link_time(&self, bytes: f64, p: usize) -> f64 {
        match *self {
            Topology::PcieTree {
                host_latency,
                host_bandwidth,
                host_contention,
                ..
            } => {
                let contention = 1.0 + host_contention * (p.saturating_sub(1)) as f64;
                host_latency + bytes * contention / host_bandwidth
            }
            Topology::Uniform { latency, bandwidth } => latency + bytes / bandwidth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_link_is_affine_in_bytes() {
        let t = Topology::paper_testbed();
        let t0 = t.gpu_link_time(0.0);
        let t1 = t.gpu_link_time(2e9);
        assert!(t0 > 0.0, "latency floor");
        assert!((t1 - t0 - 1.0).abs() < 1e-9, "2 GB at 2 GB/s is one second");
    }

    #[test]
    fn host_contention_grows_with_p() {
        let t = Topology::paper_testbed();
        let one = t.host_link_time(1e6, 1);
        let eight = t.host_link_time(1e6, 8);
        assert!(eight > one);
        // But far below full serialization (×8).
        assert!(eight < 8.0 * one);
    }

    #[test]
    fn host_channel_is_narrower_than_gpu_fabric() {
        // The asymmetry the paper's argument needs.
        let t = Topology::paper_testbed();
        assert!(t.host_link_time(4e6, 1) > t.gpu_link_time(4e6));
    }

    #[test]
    fn modern_node_is_faster_everywhere_but_keeps_the_asymmetry() {
        let old = Topology::paper_testbed();
        let new = Topology::modern_nvlink();
        assert!(new.gpu_link_time(4e6) < old.gpu_link_time(4e6));
        assert!(new.host_link_time(4e6, 8) < old.host_link_time(4e6, 8));
        // GPU fabric still beats the host channel.
        assert!(new.host_link_time(4e6, 1) > new.gpu_link_time(4e6));
    }

    #[test]
    fn uniform_has_no_contention() {
        let t = Topology::Uniform {
            latency: 1e-6,
            bandwidth: 1e9,
        };
        assert_eq!(t.host_link_time(1e6, 1), t.host_link_time(1e6, 16));
    }
}

//! Extension artifacts beyond the paper's own tables/figures: staleness
//! measurement, gradient compression, non-IID sharding, topology what-ifs,
//! and the empirical gradient-norm check of Theorem 2's trend. These are
//! the ablation/extension studies DESIGN.md §5 calls out.

use sasgd_core::algorithms::GammaP;
use sasgd_core::epoch_time::{epoch_time, Aggregation, Workload};
use sasgd_core::report::ascii_table;
use sasgd_core::{train, Algorithm, Compression, TrainConfig};
use sasgd_data::{make_shards, sharding::shard_label_diversity, ShardStrategy};
use sasgd_simnet::{
    render_gantt, trace_downpour, trace_sasgd, CostModel, JitterModel, Phase, TimelineSpec,
    Topology,
};

use crate::figures::Artifact;
use crate::scale::{cifar_workload, Scale};

/// Measured staleness distributions: SASGD's is `T` by construction; the
/// asynchronous algorithms' spreads with learner-speed variation — the
/// paper's §III argument, quantified.
pub fn staleness(scale: Scale, epochs: Option<usize>) -> Artifact {
    let w = cifar_workload(scale, epochs.or(Some(10)));
    let mut rows = Vec::new();
    let mut csv = String::from("algorithm,p,jitter_cv,mean_staleness,max_staleness,pushes\n");
    for &cv in &[0.05f64, 0.4] {
        for p in [4usize, 8] {
            let t = 5;
            for (name, algo) in [
                (
                    "SASGD",
                    Algorithm::Sasgd {
                        p,
                        t,
                        gamma_p: GammaP::OverP,
                        compression: None,
                    },
                ),
                (
                    "Downpour",
                    Algorithm::Downpour {
                        p,
                        t,
                        staleness_gamma: false,
                    },
                ),
                (
                    "EAMSGD",
                    Algorithm::Eamsgd {
                        p,
                        t,
                        moving_rate: None,
                        momentum: 0.0,
                        staleness_gamma: false,
                    },
                ),
            ] {
                let mut cfg = TrainConfig::new(w.epochs, w.batch, 0.02, 0x5715);
                cfg.jitter = JitterModel {
                    cv,
                    learner_spread: cv,
                };
                let mut f = || (w.factory)();
                let h = train(&mut f, &w.train, &w.test, &algo, &cfg);
                let st = h.staleness.unwrap_or_default();
                rows.push(vec![
                    name.to_string(),
                    p.to_string(),
                    format!("{cv}"),
                    format!("{:.2}", st.mean),
                    st.max.to_string(),
                    st.pushes.to_string(),
                ]);
                csv.push_str(&format!(
                    "{name},{p},{cv},{},{},{}\n",
                    st.mean, st.max, st.pushes
                ));
            }
        }
    }
    let table = ascii_table(
        &[
            "algorithm",
            "p",
            "jitter cv",
            "mean staleness",
            "max",
            "pushes",
        ],
        &rows,
    );
    let report = format!(
        "Staleness measurement (extension) — gradient age at application time\n\n{table}\n\
         SASGD's staleness is exactly T regardless of jitter (the explicit bound\n\
         of Algorithm 1); the asynchronous algorithms' mean sits near p−1 and the\n\
         max stretches as learner speeds spread — \"the staleness is also impacted\n\
         by the relative processing speed of the learners\" (§III), measured.\n"
    );
    Artifact {
        name: "staleness".into(),
        report,
        csvs: vec![("staleness.csv".into(), csv)],
    }
}

/// Gradient compression on top of SASGD: accuracy and wire traffic for
/// top-k and 8-bit schemes (extension of the sparse-aggregation idea).
pub fn compression(scale: Scale, epochs: Option<usize>) -> Artifact {
    let w = cifar_workload(scale, epochs);
    let p = 8;
    let t = 5;
    let cost = CostModel::paper_testbed();
    let m_paper = Workload::cifar10().model_params;
    let mut rows = Vec::new();
    let mut csv = String::from("scheme,final_test_acc,paper_scale_agg_ms\n");
    let schemes: Vec<(&str, Option<Compression>)> = vec![
        ("dense", None),
        ("top-10%", Some(Compression::TopK { ratio: 0.10 })),
        ("top-1%", Some(Compression::TopK { ratio: 0.01 })),
        ("8-bit", Some(Compression::Uniform8Bit)),
    ];
    for (name, comp) in schemes {
        let algo = match comp {
            None => Algorithm::Sasgd {
                p,
                t,
                gamma_p: GammaP::OverP,
                compression: None,
            },
            Some(c) => Algorithm::Sasgd {
                p,
                t,
                gamma_p: GammaP::OverP,
                compression: Some(c),
            },
        };
        let cfg = TrainConfig::new(w.epochs, w.batch, w.gamma_hi, 0xC0);
        let mut f = || (w.factory)();
        let h = train(&mut f, &w.train, &w.test, &algo, &cfg);
        let agg_ms = match comp {
            None => cost.allreduce_tree(m_paper, p).seconds * 1e3,
            Some(c) => {
                cost.allreduce_tree_elements(c.wire_elements(m_paper), p)
                    .seconds
                    * 1e3
            }
        };
        rows.push(vec![
            name.to_string(),
            format!("{:.1}", h.final_test_acc() * 100.0),
            format!("{agg_ms:.2}"),
        ]);
        csv.push_str(&format!("{name},{},{agg_ms}\n", h.final_test_acc()));
    }
    let table = ascii_table(
        &["scheme", "final test acc %", "paper-scale aggregation (ms)"],
        &rows,
    );
    let report = format!(
        "Gradient compression on SASGD (extension) — p = {p}, T = {t}\n\n{table}\n\
         Error feedback keeps top-k and 8-bit accuracy near dense while the\n\
         paper-scale (0.5 M-parameter) aggregation cost falls with the wire\n\
         volume. This is the continuation of SASGD's sparse-aggregation idea\n\
         that Deep Gradient Compression later formalized.\n"
    );
    Artifact {
        name: "compression".into(),
        report,
        csvs: vec![("compression.csv".into(), csv)],
    }
}

/// Non-IID sharding ablation: per-interval aggregation (SASGD) vs one-shot
/// model averaging when each learner sees only a slice of the label space.
pub fn noniid(scale: Scale, epochs: Option<usize>) -> Artifact {
    let w = cifar_workload(scale, epochs);
    let p = 4;
    // Diversity probe on the actual shards.
    let by_class = make_shards(&w.train, p, ShardStrategy::ByClass);
    let contiguous = make_shards(&w.train, p, ShardStrategy::Contiguous);
    let div = |shards: &[sasgd_data::Shard]| -> String {
        let ds: Vec<String> = shards
            .iter()
            .map(|s| shard_label_diversity(&w.train, s).to_string())
            .collect();
        ds.join("/")
    };
    // Training comparison uses the trainer's built-in contiguous shards
    // (IID, as the generators shuffle) vs a label-sorted clone of the
    // dataset (so contiguous sharding becomes by-class).
    let sorted_train = {
        let mut idx: Vec<usize> = (0..w.train.len()).collect();
        idx.sort_by_key(|&i| (w.train.label(i), i));
        let (x, y) = w.train.batch(&idx);
        sasgd_data::Dataset::new(x.into_vec(), y, w.train.sample_dims(), w.train.classes())
    };
    let mut rows = Vec::new();
    let mut csv = String::from("sharding,algorithm,final_test_acc\n");
    for (tag, data) in [("IID", &w.train), ("by-class", &sorted_train)] {
        for (name, algo) in [
            (
                "SASGD(T=5)",
                Algorithm::Sasgd {
                    p,
                    t: 5,
                    gamma_p: GammaP::OverP,
                    compression: None,
                },
            ),
            ("ModelAvgOnce", Algorithm::ModelAverageOnce { p }),
        ] {
            let cfg = TrainConfig::new(w.epochs, w.batch, w.gamma_hi, 0xA1D);
            let mut f = || (w.factory)();
            let h = train(&mut f, data, &w.test, &algo, &cfg);
            rows.push(vec![
                tag.to_string(),
                name.to_string(),
                format!("{:.1}", h.final_test_acc() * 100.0),
            ]);
            csv.push_str(&format!("{tag},{name},{}\n", h.final_test_acc()));
        }
    }
    let table = ascii_table(&["sharding", "algorithm", "final test acc %"], &rows);
    let report = format!(
        "Non-IID sharding ablation (extension) — p = {p}\n\
         label diversity per shard: contiguous {} | by-class {}\n\n{table}\n\
         Frequent aggregation lets every learner's updates reach every class;\n\
         one-shot averaging of by-class specialists collapses — the strong form\n\
         of §III's observation that averaging once \"results in very poor\n\
         training and test accuracies\".\n",
        div(&contiguous),
        div(&by_class)
    );
    Artifact {
        name: "noniid".into(),
        report,
        csvs: vec![("noniid.csv".into(), csv)],
    }
}

/// Topology what-if: the paper's conclusions re-priced on a modern
/// NVLink-class node.
pub fn whatif() -> Artifact {
    let mut rows = Vec::new();
    let mut csv = String::from("platform,workload,allreduce_ms,ps_ms,sasgd_epoch_s,ps_epoch_s\n");
    let jit = JitterModel::default();
    for (pname, topo) in [
        ("2017 PCIe testbed", Topology::paper_testbed()),
        ("modern NVLink node", Topology::modern_nvlink()),
    ] {
        let cost = CostModel {
            topology: topo,
            ..CostModel::paper_testbed()
        };
        for w in [Workload::cifar10(), Workload::nlc_f()] {
            let ar_ms = cost.allreduce_tree(w.model_params, 8).seconds * 1e3;
            let ps_ms = cost.ps_roundtrip(w.model_params, 8).seconds * 1e3;
            let sasgd = epoch_time(&cost, &w, Aggregation::AllreduceTree, 8, 1, &jit, 1).total();
            let ps = epoch_time(&cost, &w, Aggregation::ParamServer, 8, 1, &jit, 1).total();
            rows.push(vec![
                pname.to_string(),
                w.name.to_string(),
                format!("{ar_ms:.2}"),
                format!("{ps_ms:.2}"),
                format!("{sasgd:.3}"),
                format!("{ps:.3}"),
            ]);
            csv.push_str(&format!(
                "{pname},{},{ar_ms},{ps_ms},{sasgd},{ps}\n",
                w.name
            ));
        }
    }
    let table = ascii_table(
        &[
            "platform",
            "workload",
            "allreduce/agg (ms)",
            "PS/agg (ms)",
            "SASGD epoch (s)",
            "PS epoch (s)",
        ],
        &rows,
    );
    let report = format!(
        "Topology what-if (extension) — SASGD vs parameter server at T = 1, p = 8\n\n{table}\n\
         Per aggregation, the allreduce keeps a large advantage on both\n\
         platforms — the paper's prediction that the host channel \"is likely to\n\
         remain a bottleneck in future systems\" holds. Epoch *totals* tell a\n\
         second story: once communication is nearly free (NVLink), SASGD's\n\
         remaining overhead is the bulk-synchronous straggler wait, which the\n\
         asynchronous server does not pay — on fast fabrics the sync-vs-async\n\
         trade-off shifts from bandwidth to jitter tolerance.\n"
    );
    Artifact {
        name: "whatif".into(),
        report,
        csvs: vec![("whatif.csv".into(), csv)],
    }
}

/// Gradient-norm trajectory: the empirical counterpart of the theory's
/// average-gradient-norm guarantees, per T.
pub fn gradnorm(scale: Scale, epochs: Option<usize>) -> Artifact {
    let w = cifar_workload(scale, epochs);
    let p = 4;
    let mut rows = Vec::new();
    let mut csv = String::from("t,epoch,grad_norm\n");
    for t in [1usize, 10, 50] {
        let cfg = TrainConfig::new(w.epochs, w.batch, w.gamma_hi, 0x6A0);
        let mut f = || (w.factory)();
        let algo = Algorithm::Sasgd {
            p,
            t,
            gamma_p: GammaP::OverP,
            compression: None,
        };
        let h = train(&mut f, &w.train, &w.test, &algo, &cfg);
        for r in &h.records {
            csv.push_str(&format!("{t},{},{}\n", r.epoch, r.grad_norm));
        }
        let first = h.records.first().map_or(0.0, |r| r.grad_norm);
        let mean = if h.records.is_empty() {
            0.0
        } else {
            h.records
                .iter()
                .map(|r| f64::from(r.grad_norm))
                .sum::<f64>()
                / h.records.len() as f64
        };
        let last = h.records.last().map_or(0.0, |r| r.grad_norm);
        rows.push(vec![
            t.to_string(),
            format!("{first:.3}"),
            format!("{mean:.3}"),
            format!("{last:.3}"),
        ]);
    }
    let table = ascii_table(
        &["T", "‖∇f‖ at epoch 1", "run mean ‖∇f‖", "‖∇f‖ at end"],
        &rows,
    );
    let report = format!(
        "Empirical gradient norm vs T (extension)\n\n{table}\n\
         The theory (Theorems 1/2) bounds the *trajectory average* of the\n\
         gradient norm, not its final value: with a constant γ the norm settles\n\
         at a noise floor rather than decaying monotonically — exactly the\n\
         constant-learning-rate limit §II-B describes (\"there is a limit on how\n\
         close the algorithm can reach to the optimum without lowering the\n\
         learning rate\"). The per-epoch series is written to gradnorm.csv.\n"
    );
    Artifact {
        name: "gradnorm".into(),
        report,
        csvs: vec![("gradnorm.csv".into(), csv)],
    }
}

/// Hierarchical SASGD vs flat SASGD: accuracy and communication when
/// learners are grouped (the paper's 2-learners-per-GPU p=16 setup,
/// formalized).
pub fn hierarchy(scale: Scale, epochs: Option<usize>) -> Artifact {
    let w = cifar_workload(scale, epochs);
    let mut rows = Vec::new();
    let mut csv = String::from("config,final_test_acc,comm_seconds\n");
    let runs: Vec<(String, Algorithm)> = vec![
        (
            "flat p=8 T=2".into(),
            Algorithm::Sasgd {
                p: 8,
                t: 2,
                gamma_p: GammaP::OverP,
                compression: None,
            },
        ),
        (
            "flat p=8 T=8".into(),
            Algorithm::Sasgd {
                p: 8,
                t: 8,
                gamma_p: GammaP::OverP,
                compression: None,
            },
        ),
        (
            "hier 4x2 Tl=2 Tg=4".into(),
            Algorithm::HierarchicalSasgd {
                groups: 4,
                per_group: 2,
                t_local: 2,
                t_global: 4,
                gamma_p: GammaP::OverP,
            },
        ),
        (
            "hier 2x4 Tl=2 Tg=4".into(),
            Algorithm::HierarchicalSasgd {
                groups: 2,
                per_group: 4,
                t_local: 2,
                t_global: 4,
                gamma_p: GammaP::OverP,
            },
        ),
    ];
    for (name, algo) in runs {
        let cfg = TrainConfig::new(w.epochs, w.batch, w.gamma_hi, 0x41e);
        let mut f = || (w.factory)();
        let h = train(&mut f, &w.train, &w.test, &algo, &cfg);
        let comm = h.records.last().map_or(0.0, |r| r.comm_seconds);
        rows.push(vec![
            name.clone(),
            format!("{:.1}", h.final_test_acc() * 100.0),
            format!("{comm:.3}"),
        ]);
        csv.push_str(&format!("{name},{},{comm}\n", h.final_test_acc()));
    }
    let table = ascii_table(
        &["configuration", "final test acc %", "comm (s, simulated)"],
        &rows,
    );
    let report = format!(
        "Hierarchical SASGD (extension) — grouped aggregation for multi-learner devices\n\n{table}\n\
         Frequent cheap local syncs (within a group) plus sparse global averaging\n\
         keep accuracy near flat SASGD at a tighter interval while paying global\n\
         traffic at the looser one — the locality-aware continuation of the\n\
         paper's T trade-off for its own p=16, two-learners-per-GPU runs.\n"
    );
    Artifact {
        name: "hierarchy".into(),
        report,
        csvs: vec![("hierarchy.csv".into(), csv)],
    }
}

/// Execution timelines: ASCII Gantt of SASGD's barrier-synchronized rounds
/// vs Downpour's free-running learners, from the calibrated cost model.
pub fn timeline() -> Artifact {
    let cost = CostModel::paper_testbed();
    let jit = JitterModel {
        cv: 0.15,
        learner_spread: 0.1,
    };
    let w = Workload::cifar10();
    let spec = TimelineSpec {
        p: 6,
        t: 4,
        rounds: 4,
        m: w.model_params,
        macs_per_sample: w.macs_per_sample,
        batch: w.minibatch,
        seed: 11,
    };
    let sasgd = trace_sasgd(&spec, &cost, &jit);
    let downpour = trace_downpour(&spec, &cost, &jit);
    let mut report =
        String::from("Execution timelines (extension) — CIFAR-10 workload, 6 learners, T = 4\n\n");
    report.push_str(&render_gantt("SASGD (bulk-synchronous)", &sasgd, 100));
    report.push('\n');
    report.push_str(&render_gantt("Downpour (asynchronous)", &downpour, 100));
    let wait: f64 = sasgd.iter().map(|t| t.total(Phase::Wait)).sum::<f64>() / sasgd.len() as f64;
    let s_span = sasgd[0].end();
    let d_span = downpour.iter().map(|t| t.end()).fold(0.0_f64, f64::max);
    report.push_str(&format!(
        "\nmean barrier wait per learner: {:.1} ms over {:.0} ms of SASGD span;\n\
         Downpour finishes its rounds in {:.0} ms without waits but each round\n\
         pays the contended host channel (~ longer transfers), and its learners\n\
         drift apart — the visual form of staleness.\n",
        wait * 1e3,
        s_span * 1e3,
        d_span * 1e3
    ));
    let mut csv = String::from("algorithm,learner,phase,start,end\n");
    for (name, traces) in [("sasgd", &sasgd), ("downpour", &downpour)] {
        for (i, tr) in traces.iter().enumerate() {
            for &(phase, s0, e0) in &tr.segments {
                csv.push_str(&format!("{name},{i},{phase:?},{s0},{e0}\n"));
            }
        }
    }
    Artifact {
        name: "timeline".into(),
        report,
        csvs: vec![("timeline.csv".into(), csv)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whatif_prices_both_platforms() {
        let a = whatif();
        assert!(a.report.contains("NVLink"));
        assert!(a.csvs[0].1.lines().count() == 5);
    }

    #[test]
    fn staleness_artifact_smoke() {
        let a = staleness(Scale::Tiny, Some(2));
        assert!(a.report.contains("SASGD"));
        assert!(a.report.contains("mean staleness"));
    }

    #[test]
    fn compression_artifact_smoke() {
        let a = compression(Scale::Tiny, Some(2));
        assert!(a.report.contains("top-1%"));
    }

    #[test]
    fn timeline_artifact_has_gantts() {
        let a = timeline();
        assert!(a.report.contains("SASGD (bulk-synchronous)"));
        assert!(a.report.contains("Downpour (asynchronous)"));
        assert!(a.report.contains('#'));
    }

    #[test]
    fn hierarchy_artifact_smoke() {
        let a = hierarchy(Scale::Tiny, Some(2));
        assert!(a.report.contains("hier 4x2"));
    }
}

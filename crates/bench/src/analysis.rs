//! `repro analyze` — the static-analysis and race-checking gate.
//!
//! Runs both `sasgd-analysis` legs (the repo-invariant lint pass and the
//! schedule-exploration race checker) and packages the outcome as a bench
//! [`Artifact`]: a human-readable report plus the machine-readable
//! `ANALYSIS.json` CI consumes. The second tuple element is the verdict —
//! `repro` exits nonzero when it is `false`.

use crate::figures::Artifact;

/// Run the full analyzer and return `(artifact, ok)`.
pub fn analyze() -> (Artifact, bool) {
    let analysis = sasgd_analysis::run_all();
    let ok = analysis.ok();
    let artifact = Artifact {
        name: "analyze".to_string(),
        report: analysis.to_text(),
        csvs: vec![("ANALYSIS.json".to_string(), analysis.to_json())],
    };
    (artifact, ok)
}

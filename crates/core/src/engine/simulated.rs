//! The simulated backend: one learner loop over virtual time.
//!
//! Three loop shapes cover every strategy × cadence combination:
//!
//! * **lockstep** — epochs of aligned steps; after each collective step
//!   the engine asks the strategy's [`SyncPolicy`](crate::schedule::SyncPolicy)-driven
//!   `should_communicate` and hands the whole learner cohort to
//!   `AggregationStrategy::sync`. Barrier waits and aggregation costs are
//!   charged by the strategy through the learners' virtual clocks.
//! * **event-driven, individual scope** — each learner's next `T`-minibatch
//!   block is an event ordered by `(completion time, rank)`; at each
//!   completion the engine applies the strategy's local math and
//!   single-learner sync against shared state, so gradient staleness
//!   emerges from the same speed variation a real cluster has while
//!   staying bit-reproducible under a seed.
//! * **event-driven, collective scope** — learners run their blocks on
//!   free virtual clocks, the engine pops completions in `(time, rank)`
//!   order, and each round ends in a collective rendezvous (allreduce /
//!   averaging). γ for a round is resolved from *nominal* system progress
//!   (`event_gamma_epoch`), identically on every rank and backend, so the
//!   trajectory is independent of completion interleaving and the
//!   threaded backend reproduces it bitwise.
//!
//! Per-learner RNG streams make the interleavings composable: a learner's
//! batch order and dropout draws depend only on its own stream, never on
//! how learners interleave.

use sasgd_data::Dataset;
use sasgd_nn::Model;
use sasgd_simnet::{RankQueue, VirtualTime};

use super::{
    event_gamma_epoch, AggregationStrategy, BatchStream, Cadence, CommDecision, CommScope, RoundCtx,
};
use crate::history::{History, StalenessStats};
use crate::trainer::{EvalSets, Learner, TrainConfig};

/// Run `strategy` at its natural cadence unless `cfg.cadence` overrides it.
pub(crate) fn run_auto(
    strategy: &mut dyn AggregationStrategy,
    factory: &mut dyn FnMut() -> Model,
    train_set: &Dataset,
    test_set: &Dataset,
    cfg: &TrainConfig,
) -> History {
    let cadence = cfg.cadence.unwrap_or_else(|| strategy.cadence());
    run(strategy, factory, train_set, test_set, cfg, cadence)
}

/// Run `strategy` on the simulated backend at the given cadence.
pub(crate) fn run(
    strategy: &mut dyn AggregationStrategy,
    factory: &mut dyn FnMut() -> Model,
    train_set: &Dataset,
    test_set: &Dataset,
    cfg: &TrainConfig,
    cadence: Cadence,
) -> History {
    match cadence {
        Cadence::Lockstep => run_lockstep(strategy, factory, train_set, test_set, cfg),
        Cadence::EventDriven => match strategy.comm_scope() {
            CommScope::Individual => {
                run_event_individual(strategy, factory, train_set, test_set, cfg)
            }
            CommScope::Collective => {
                run_event_collective(strategy, factory, train_set, test_set, cfg)
            }
        },
    }
}

fn run_lockstep(
    s: &mut dyn AggregationStrategy,
    factory: &mut dyn FnMut() -> Model,
    train_set: &Dataset,
    test_set: &Dataset,
    cfg: &TrainConfig,
) -> History {
    let p = s.p();
    let mut learners: Vec<Learner> = (0..p).map(|id| Learner::new(id, factory(), cfg)).collect();
    let macs = learners[0].model.macs_per_sample();
    let x0 = learners[0].model.param_vector();
    let init_comm = s.setup(factory, &x0, cfg);
    for l in &mut learners {
        l.model.write_params(&x0);
        l.charge_comm(init_comm);
    }

    let evals = EvalSets::prepare(train_set, test_set, cfg.eval_cap);
    let shards = s.shards(train_set, cfg);
    let steps_cap = if s.lockstep_truncates() {
        // Bulk-synchrony needs aligned step counts: truncate every
        // learner's epoch to the smallest shard's whole-minibatch count.
        let cap = shards
            .iter()
            .map(|sh| sh.len() / cfg.batch_size)
            .min()
            .expect("at least one shard");
        assert!(
            cap > 0,
            "shards too small: {} samples over {p} learners at batch {}",
            train_set.len(),
            cfg.batch_size
        );
        Some(cap)
    } else {
        None
    };
    let step_s = cfg.cost.minibatch_compute(macs, cfg.batch_size, p);
    let mut policy = s.sync_policy();

    let mut history = History::new(s.label(), p, s.history_interval());
    let mut samples = 0u64;
    let mut since_sync = 0usize;
    let mut syncs = 0u64;

    for epoch in 1..=cfg.epochs {
        let iters: Vec<Vec<Vec<usize>>> = learners
            .iter_mut()
            .zip(&shards)
            .map(|(l, sh)| {
                let it = sh.epoch_iter(cfg.batch_size, &mut l.rng);
                match steps_cap {
                    Some(cap) => it.take(cap).collect(),
                    None => it.collect(),
                }
            })
            .collect();
        let steps = iters.iter().map(Vec::len).max().unwrap_or(0);
        let gamma_steps = iters[0].len().max(1);
        for step in 0..steps {
            let epoch_f = s.gamma_epoch(epoch, step, gamma_steps);
            let gamma_now = cfg.gamma_at(epoch_f);
            for (id, (l, batches)) in learners.iter_mut().zip(&iters).enumerate() {
                // Ragged tails only exist for non-truncating strategies,
                // whose learners are independent between sync points.
                let Some(idx) = batches.get(step) else {
                    continue;
                };
                samples += idx.len() as u64;
                let j = l.draw_jitter(&cfg.jitter);
                s.local_step(l, id, train_set, idx, gamma_now, step_s, j);
            }
            since_sync += 1;
            let ctx = RoundCtx {
                steps_since_sync: since_sync,
                current_t: policy.current_t(),
                round: syncs,
            };
            if s.should_communicate(ctx) == CommDecision::Communicate {
                s.sync(&mut learners, gamma_now);
                // Lockstep aggregations apply fresh state: τ = 0 for every
                // rank, by construction.
                for id in 0..p {
                    let gamma_eff = s.observe_staleness(id, 0, gamma_now);
                    history.push_staleness(syncs, id, 0, gamma_eff);
                }
                policy.observe_round(s.sync_signal());
                syncs += 1;
                since_sync = 0;
            }
        }
        for l in &mut learners {
            l.clock += cfg.cost.epoch_overhead;
        }
        s.epoch_end(&mut learners, epoch, cfg);
        let (comp, comm) = (learners[0].compute_s, learners[0].comm_s);
        let rec = evals.record(
            s.eval_model(&mut learners),
            epoch as f64,
            comp,
            comm,
            samples,
        );
        history.records.push(rec);
    }
    history.staleness = s.staleness(syncs);
    history.wire = s.wire(syncs);
    history.sync_rounds = syncs;
    history.sparsity_series = s.sparsity_series();
    history.sparse_levels = s.sparse_levels();
    history.final_params = Some(s.final_params(&learners));
    history
}

fn run_event_individual(
    s: &mut dyn AggregationStrategy,
    factory: &mut dyn FnMut() -> Model,
    train_set: &Dataset,
    test_set: &Dataset,
    cfg: &TrainConfig,
) -> History {
    let p = s.p();
    let mut policy = s.sync_policy();
    assert!(policy.current_t() >= 1, "event-driven strategies must sync");
    let mut learners: Vec<Learner> = (0..p).map(|id| Learner::new(id, factory(), cfg)).collect();
    let m = learners[0].model.param_len();
    let macs = learners[0].model.macs_per_sample();
    let x0 = learners[0].model.param_vector();
    let init_comm = s.setup(factory, &x0, cfg);
    for l in &mut learners {
        l.model.write_params(&x0);
        l.charge_comm(init_comm);
    }

    let evals = EvalSets::prepare(train_set, test_set, cfg.eval_cap);
    let n = train_set.len();
    let step_s = cfg.cost.minibatch_compute(macs, cfg.batch_size, p);
    let comm_round = cfg.cost.ps_roundtrip(m, p).seconds;
    let target_samples = (cfg.epochs as u64) * (n as u64);

    let mut streams: Vec<BatchStream> = s
        .shards(train_set, cfg)
        .into_iter()
        .map(|sh| BatchStream::new(sh.indices().to_vec(), cfg.batch_size))
        .collect();
    // Events ordered by (completion time, rank): the pop sequence is a
    // pure function of the virtual clocks, never of scheduling history.
    let mut queue: RankQueue<f64> = RankQueue::new();
    for (id, l) in learners.iter_mut().enumerate() {
        let dur = block_duration(l, policy.current_t(), step_s, cfg);
        queue.push(VirtualTime(dur), id, 0.0);
    }

    let mut history = History::new(s.label(), p, s.history_interval());
    let mut samples = 0u64;
    let mut recorded_passes = 0u64;
    let mut rounds = 0u64;
    // Staleness bookkeeping: how many shared-state updates landed between
    // a learner's pull and its next push.
    let mut shared_version = 0u64;
    let mut pulled_version = vec![0u64; p];
    let mut staleness_obs: Vec<u64> = Vec::new();

    while let Some((tv, id, start)) = queue.pop() {
        // The block's math: T local minibatches against the state pulled
        // at the previous sync.
        let t = policy.current_t();
        let gamma_now = cfg.gamma_at(samples as f64 / n as f64);
        for _ in 0..t {
            let idx = {
                let l = &mut learners[id];
                streams[id].next(&mut l.rng)
            };
            samples += idx.len() as u64;
            s.on_local_step(&mut learners[id], id, train_set, &idx, gamma_now);
        }
        {
            let l = &mut learners[id];
            l.compute_s += tv.seconds() - start;
            l.clock = tv.seconds();
            let tau = shared_version - pulled_version[id];
            staleness_obs.push(tau);
            shared_version += 1;
            let gamma_eff = s.observe_staleness(id, tau, gamma_now);
            s.event_sync(l, id, gamma_eff);
            pulled_version[id] = shared_version;
            l.charge_comm(comm_round);
            history.push_staleness(rounds, id, tau, gamma_eff);
        }
        policy.observe_round(s.sync_signal());
        rounds += 1;
        // Record accuracy when learner 0 finishes a pass over its shard.
        if id == 0 && streams[0].completed_passes() > recorded_passes {
            recorded_passes = streams[0].completed_passes();
            let epoch = samples as f64 / n as f64;
            let (comp, comm) = (learners[0].compute_s, learners[0].comm_s);
            let rec = evals.record(&mut learners[0].model, epoch, comp, comm, samples);
            history.records.push(rec);
        }
        if samples < target_samples {
            let start = learners[id].clock;
            let dur = block_duration(&mut learners[id], policy.current_t(), step_s, cfg);
            queue.push(VirtualTime(start + dur), id, start);
        }
    }
    // Guarantee a final record even if learner 0 did not end on a pass
    // boundary.
    if history.records.is_empty() || history.records.last().expect("nonempty").samples < samples {
        let epoch = samples as f64 / n as f64;
        let (comp, comm) = (learners[0].compute_s, learners[0].comm_s);
        let rec = evals.record(&mut learners[0].model, epoch, comp, comm, samples);
        history.records.push(rec);
    }
    history.staleness = StalenessStats::from_observations(&staleness_obs);
    history.sync_rounds = rounds;
    history.final_params = Some(s.final_params(&learners));
    history
}

fn run_event_collective(
    s: &mut dyn AggregationStrategy,
    factory: &mut dyn FnMut() -> Model,
    train_set: &Dataset,
    test_set: &Dataset,
    cfg: &TrainConfig,
) -> History {
    let p = s.p();
    let mut policy = s.sync_policy();
    let mut learners: Vec<Learner> = (0..p).map(|id| Learner::new(id, factory(), cfg)).collect();
    let macs = learners[0].model.macs_per_sample();
    let x0 = learners[0].model.param_vector();
    let init_comm = s.setup(factory, &x0, cfg);
    for l in &mut learners {
        l.model.write_params(&x0);
        l.charge_comm(init_comm);
    }

    let evals = EvalSets::prepare(train_set, test_set, cfg.eval_cap);
    let n = train_set.len();
    let step_s = cfg.cost.minibatch_compute(macs, cfg.batch_size, p);
    let shards = s.shards(train_set, cfg);
    // Never-syncing strategies (sequential SGD, one-shot averaging) run
    // epoch-sized rounds: the smallest shard's whole-minibatch count.
    let epoch_block = shards
        .iter()
        .map(|sh| sh.len() / cfg.batch_size)
        .min()
        .expect("at least one shard")
        .max(1);
    let mut streams: Vec<BatchStream> = shards
        .into_iter()
        .map(|sh| BatchStream::new(sh.indices().to_vec(), cfg.batch_size))
        .collect();

    let mut history = History::new(s.label(), p, s.history_interval());
    let mut samples = 0u64;
    let mut steps_done = 0u64; // nominal per-rank steps, same on every rank
    let mut syncs = 0u64;
    let mut epochs_done = 0usize;
    let mut recorded_passes = 0u64;
    let mut staleness_obs: Vec<u64> = Vec::new();
    let target_steps = (cfg.epochs as u64) * (n as u64); // in batch·p units

    loop {
        let t_now = policy.current_t();
        let block = if t_now >= 1 { t_now } else { epoch_block };
        // γ for the whole round, resolved from nominal progress *before*
        // the round: rank-independent, so every rank (and the threaded
        // backend) computes the identical rate.
        let gamma_now = cfg.gamma_at(event_gamma_epoch(steps_done, cfg.batch_size, p, n));
        // Schedule every learner's block (jitter drawn in rank order),
        // then pop completions in (time, rank) order.
        let mut queue: RankQueue<f64> = RankQueue::new();
        for (id, l) in learners.iter_mut().enumerate() {
            let start = l.clock;
            let dur = block_duration(l, block, step_s, cfg);
            queue.push(VirtualTime(start + dur), id, start);
        }
        while let Some((tv, id, start)) = queue.pop() {
            for _ in 0..block {
                let idx = {
                    let l = &mut learners[id];
                    streams[id].next(&mut l.rng)
                };
                samples += idx.len() as u64;
                s.on_local_step(&mut learners[id], id, train_set, &idx, gamma_now);
            }
            let l = &mut learners[id];
            l.compute_s += tv.seconds() - start;
            l.clock = tv.seconds();
        }
        steps_done += block as u64;
        if t_now >= 1 {
            // Collective rendezvous: the strategy aggregates all learners
            // (charging waits and wire time to their clocks itself).
            s.sync(&mut learners, gamma_now);
            let tau = s.collective_tau();
            for id in 0..p {
                let gamma_eff = s.observe_staleness(id, tau, gamma_now);
                history.push_staleness(syncs, id, tau, gamma_eff);
                staleness_obs.push(tau);
            }
            policy.observe_round(s.sync_signal());
            syncs += 1;
        } else {
            // T = 0: the round is an epoch; run the strategy's epoch hook
            // (one-shot averaging charges its final reduction here).
            epochs_done += 1;
            s.epoch_end(&mut learners, epochs_done, cfg);
        }
        if streams[0].completed_passes() > recorded_passes {
            recorded_passes = streams[0].completed_passes();
            let epoch = samples as f64 / n as f64;
            let (comp, comm) = (learners[0].compute_s, learners[0].comm_s);
            let rec = evals.record(s.eval_model(&mut learners), epoch, comp, comm, samples);
            history.records.push(rec);
        }
        let done = if t_now >= 1 {
            steps_done * (cfg.batch_size as u64) * (p as u64) >= target_steps
        } else {
            epochs_done >= cfg.epochs
        };
        if done {
            break;
        }
    }
    if history.records.is_empty() || history.records.last().expect("nonempty").samples < samples {
        let epoch = samples as f64 / n as f64;
        let (comp, comm) = (learners[0].compute_s, learners[0].comm_s);
        let rec = evals.record(s.eval_model(&mut learners), epoch, comp, comm, samples);
        history.records.push(rec);
    }
    history.staleness = StalenessStats::from_observations(&staleness_obs);
    history.wire = s.wire(syncs);
    history.sync_rounds = syncs;
    history.sparsity_series = s.sparsity_series();
    history.sparse_levels = s.sparse_levels();
    history.final_params = Some(s.final_params(&learners));
    history
}

/// Duration of the next `t`-minibatch compute block (jitter drawn now so
/// completion order is known to the event queue up front).
pub(crate) fn block_duration(l: &mut Learner, t: usize, step_s: f64, cfg: &TrainConfig) -> f64 {
    let mut dur = 0.0;
    for _ in 0..t {
        dur += step_s * l.speed * l.draw_jitter(&cfg.jitter);
    }
    dur
}

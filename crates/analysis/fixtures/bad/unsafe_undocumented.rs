// virtual-path: crates/comm/src/sparse.rs
// BAD: the file is on the unsafe allow-list, but the block below has no
// `// SAFETY:` comment within the 4 lines above it.

pub fn bits(x: f32) -> u32 {
    let out;
    {
        let tmp = x;

        out = unsafe { std::mem::transmute::<f32, u32>(tmp) };
    }
    out
}

//! Sequential SGD — the single-learner baseline every figure compares to.

use sasgd_data::{Dataset, Shard};
use sasgd_nn::Model;

use crate::engine::{simulated, AggregationStrategy};
use crate::history::History;
use crate::trainer::{Learner, TrainConfig};

/// Plain minibatch SGD on one learner: never syncs, walks the full
/// dataset each epoch (ragged tail included), keeps no gradient
/// accumulator.
pub(crate) struct SequentialStrategy;

impl SequentialStrategy {
    pub(crate) fn new() -> Self {
        SequentialStrategy
    }
}

impl AggregationStrategy for SequentialStrategy {
    fn label(&self) -> String {
        "SGD".into()
    }

    fn p(&self) -> usize {
        1
    }

    fn shards(&self, train: &Dataset, _cfg: &TrainConfig) -> Vec<Shard> {
        // One learner sees the data in its stored order regardless of the
        // configured multi-learner shard strategy.
        train.shards(1)
    }

    fn lockstep_truncates(&self) -> bool {
        false
    }

    fn local_step(
        &mut self,
        l: &mut Learner,
        _id: usize,
        data: &Dataset,
        idx: &[usize],
        gamma: f32,
        step_s: f64,
        jitter: f64,
    ) {
        l.local_step(data, idx, gamma, step_s, jitter);
        // Sequential SGD keeps no separate accumulator.
        l.gs.iter_mut().for_each(|g| *g = 0.0);
    }

    fn on_local_step(
        &mut self,
        l: &mut Learner,
        _id: usize,
        data: &Dataset,
        idx: &[usize],
        gamma: f32,
    ) {
        l.local_step(data, idx, gamma, 0.0, 1.0);
        l.gs.iter_mut().for_each(|g| *g = 0.0);
    }
}

/// Run plain minibatch SGD on one learner.
pub(crate) fn run(
    factory: &mut dyn FnMut() -> Model,
    train_set: &Dataset,
    test_set: &Dataset,
    cfg: &TrainConfig,
) -> History {
    let mut s = SequentialStrategy::new();
    simulated::run_auto(&mut s, factory, train_set, test_set, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sasgd_data::cifar_like::{generate, CifarLikeConfig};
    use sasgd_nn::models;
    use sasgd_simnet::JitterModel;
    use sasgd_tensor::SeedRng;

    #[test]
    fn learns_tiny_cifar() {
        let (train, test) = generate(&CifarLikeConfig::tiny(120, 60, 3));
        let mut cfg = TrainConfig::new(8, 8, 0.05, 42);
        cfg.jitter = JitterModel::none();
        let mut factory = || models::tiny_cnn(3, &mut SeedRng::new(7));
        let h = run(&mut factory, &train, &test, &cfg);
        assert_eq!(h.records.len(), 8);
        let first = h.records[0].train_loss;
        let last = h.records.last().expect("records").train_loss;
        assert!(last < first, "loss should fall: {first} -> {last}");
        assert!(h.final_test_acc() > 0.5, "acc {}", h.final_test_acc());
        // No communication for one learner.
        assert_eq!(h.records.last().expect("records").comm_seconds, 0.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let (train, test) = generate(&CifarLikeConfig::tiny(40, 20, 3));
        let cfg = TrainConfig::new(2, 8, 0.05, 11);
        let mut f1 = || models::tiny_cnn(3, &mut SeedRng::new(5));
        let h1 = run(&mut f1, &train, &test, &cfg);
        let mut f2 = || models::tiny_cnn(3, &mut SeedRng::new(5));
        let h2 = run(&mut f2, &train, &test, &cfg);
        assert_eq!(
            h1.records.last().expect("r").train_loss,
            h2.records.last().expect("r").train_loss
        );
    }
}

// virtual-path: crates/comm/src/relay.rs
//! Good fixture: comm failures propagate with `?` so the caller's
//! fault-tolerance policy decides; tests may still assert with `unwrap`.

pub fn relay(t: &MockTransport, from: usize, to: usize, tag: u64) -> Result<(), CommError> {
    let msg = t.recv(from, tag)?;
    t.send(to, tag, msg)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_is_fine_in_tests() {
        let t = MockTransport::default();
        let _ = t.recv(0, 1).unwrap();
    }
}

//! Element-wise non-linearities: ReLU (CIFAR net) and Tanh (NLC net).
//!
//! Both layers keep their backward caches in persistent per-layer buffers
//! (`clear` + refill each step) rather than fresh allocations, so the
//! steady-state hot path does not touch the allocator.

use sasgd_tensor::Tensor;

use crate::layer::{Ctx, Layer};

/// Rectified linear unit.
#[derive(Default)]
pub struct Relu {
    mask: Vec<bool>,
    mask_valid: bool,
}

impl Relu {
    /// New ReLU.
    pub fn new() -> Self {
        Relu::default()
    }
}

impl Layer for Relu {
    fn name(&self) -> &'static str {
        "ReLU"
    }

    fn forward(&mut self, mut input: Tensor, ctx: &mut Ctx) -> Tensor {
        if ctx.training {
            self.mask.clear();
            self.mask.extend(input.as_slice().iter().map(|&x| x > 0.0));
            self.mask_valid = true;
        }
        input.as_mut_slice().iter_mut().for_each(|x| {
            if *x < 0.0 {
                *x = 0.0;
            }
        });
        input
    }

    fn backward(&mut self, mut grad_out: Tensor, _ctx: &mut Ctx) -> Tensor {
        assert!(self.mask_valid, "backward without forward");
        self.mask_valid = false;
        for (g, &m) in grad_out.as_mut_slice().iter_mut().zip(&self.mask) {
            if !m {
                *g = 0.0;
            }
        }
        grad_out
    }

    fn out_shape(&self, in_dims: &[usize]) -> Vec<usize> {
        in_dims.to_vec()
    }

    fn macs(&self, in_dims: &[usize]) -> u64 {
        in_dims.iter().product::<usize>() as u64
    }
}

/// Hyperbolic tangent.
#[derive(Default)]
pub struct Tanh {
    cached_out: Vec<f32>,
    cache_valid: bool,
}

impl Tanh {
    /// New Tanh.
    pub fn new() -> Self {
        Tanh::default()
    }
}

impl Layer for Tanh {
    fn name(&self) -> &'static str {
        "Tanh"
    }

    fn forward(&mut self, mut input: Tensor, ctx: &mut Ctx) -> Tensor {
        input.as_mut_slice().iter_mut().for_each(|x| *x = x.tanh());
        if ctx.training {
            self.cached_out.clear();
            self.cached_out.extend_from_slice(input.as_slice());
            self.cache_valid = true;
        }
        input
    }

    fn backward(&mut self, mut grad_out: Tensor, _ctx: &mut Ctx) -> Tensor {
        assert!(self.cache_valid, "backward without forward");
        self.cache_valid = false;
        for (g, &yv) in grad_out.as_mut_slice().iter_mut().zip(&self.cached_out) {
            *g *= 1.0 - yv * yv;
        }
        grad_out
    }

    fn out_shape(&self, in_dims: &[usize]) -> Vec<usize> {
        in_dims.to_vec()
    }

    fn macs(&self, in_dims: &[usize]) -> u64 {
        in_dims.iter().product::<usize>() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sasgd_tensor::SeedRng;

    #[test]
    fn relu_clamps_and_gates() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]);
        let mut ctx = Ctx::train(SeedRng::new(0));
        let y = r.forward(x, &mut ctx);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0]);
        let dx = r.backward(Tensor::from_vec(vec![5.0, 5.0, 5.0], &[3]), &mut ctx);
        assert_eq!(dx.as_slice(), &[0.0, 0.0, 5.0]);
    }

    #[test]
    fn tanh_matches_derivative() {
        let mut t = Tanh::new();
        let x = Tensor::from_vec(vec![0.3, -0.7], &[2]);
        let mut ctx = Ctx::train(SeedRng::new(0));
        let y = t.forward(x.clone(), &mut ctx);
        assert!((y.as_slice()[0] - 0.3f32.tanh()).abs() < 1e-6);
        let dx = t.backward(Tensor::full(&[2], 1.0), &mut ctx);
        for (i, &xv) in x.as_slice().iter().enumerate() {
            let expect = 1.0 - xv.tanh().powi(2);
            assert!((dx.as_slice()[i] - expect).abs() < 1e-5);
        }
    }

    #[test]
    fn activations_preserve_shape_and_have_no_params() {
        let r = Relu::new();
        assert_eq!(r.out_shape(&[64, 16, 16]), vec![64, 16, 16]);
        assert_eq!(r.param_len(), 0);
        let t = Tanh::new();
        assert_eq!(t.out_shape(&[10]), vec![10]);
        assert_eq!(t.param_len(), 0);
    }
}

//! Offline vendored ChaCha8 random-number generator.
//!
//! Implements the real ChaCha stream cipher core (IETF variant, 8 rounds)
//! behind the `ChaCha8Rng` name this workspace uses. Like the vendored
//! `rand`, the goal is seed-determinism and portability, not bit-identity
//! with the crates.io `rand_chacha` word stream.

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

/// A ChaCha8-based RNG: seedable, portable, fast, splittable by reseeding.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    seed: [u8; 32],
    counter: u64,
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means "refill needed".
    idx: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// The 32-byte key this generator was seeded with.
    pub fn get_seed(&self) -> [u8; 32] {
        self.seed
    }

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes(self.seed[4 * i..4 * i + 4].try_into().expect("4"));
        }
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (s, &inp) in state.iter_mut().zip(&input) {
            *s = s.wrapping_add(inp);
        }
        self.buf = state;
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        ChaCha8Rng {
            seed,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let mut c = ChaCha8Rng::seed_from_u64(2);
        let mut diverged = false;
        for _ in 0..64 {
            let wa = a.next_u32();
            assert_eq!(wa, b.next_u32());
            diverged |= wa != c.next_u32();
        }
        assert!(diverged, "different seeds must give different streams");
    }

    #[test]
    fn get_seed_roundtrips() {
        let r = ChaCha8Rng::seed_from_u64(99);
        let again = ChaCha8Rng::from_seed(r.get_seed());
        assert_eq!(r.get_seed(), again.get_seed());
    }

    #[test]
    fn words_look_uniform() {
        let mut r = ChaCha8Rng::seed_from_u64(5);
        let n = 40_000usize;
        let mut ones = 0u64;
        for _ in 0..n {
            ones += r.next_u32().count_ones() as u64;
        }
        let mean_bits = ones as f64 / n as f64;
        assert!((mean_bits - 16.0).abs() < 0.1, "bit bias: {mean_bits}");
    }
}

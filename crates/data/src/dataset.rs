//! In-memory dataset container, minibatch iteration, and learner shards.

use sasgd_tensor::{SeedRng, Tensor};

/// A labelled dataset held as one contiguous buffer.
///
/// Samples share `sample_dims` (e.g. `[3, 32, 32]`); sample `i` occupies
/// `[i*stride, (i+1)*stride)` of the flat buffer. Batching therefore copies
/// contiguous slices — the same access pattern a real input pipeline has.
#[derive(Clone)]
pub struct Dataset {
    x: Vec<f32>,
    labels: Vec<usize>,
    sample_dims: Vec<usize>,
    classes: usize,
}

impl Dataset {
    /// Construct from a flat buffer.
    ///
    /// # Panics
    /// Panics if the buffer length is not `labels.len() * prod(sample_dims)`
    /// or a label is out of range.
    pub fn new(x: Vec<f32>, labels: Vec<usize>, sample_dims: &[usize], classes: usize) -> Self {
        let stride: usize = sample_dims.iter().product();
        assert_eq!(x.len(), labels.len() * stride, "buffer/label mismatch");
        assert!(labels.iter().all(|&l| l < classes), "label out of range");
        Dataset {
            x,
            labels,
            sample_dims: sample_dims.to_vec(),
            classes,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Per-sample dimensions (no batch axis).
    pub fn sample_dims(&self) -> &[usize] {
        &self.sample_dims
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Elements per sample.
    pub fn stride(&self) -> usize {
        self.sample_dims.iter().product()
    }

    /// Label of sample `i`.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// Gather the samples at `indices` into a batch tensor plus labels.
    pub fn batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let stride = self.stride();
        let mut buf = Vec::with_capacity(indices.len() * stride);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            buf.extend_from_slice(&self.x[i * stride..(i + 1) * stride]);
            labels.push(self.labels[i]);
        }
        let mut dims = vec![indices.len()];
        dims.extend_from_slice(&self.sample_dims);
        (Tensor::from_vec(buf, &dims), labels)
    }

    /// The whole dataset as batches of at most `chunk` samples — for
    /// evaluation passes.
    pub fn eval_batches(&self, chunk: usize) -> (Vec<Tensor>, Vec<Vec<usize>>) {
        assert!(chunk > 0);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut i = 0;
        while i < self.len() {
            let hi = (i + chunk).min(self.len());
            let idx: Vec<usize> = (i..hi).collect();
            let (x, y) = self.batch(&idx);
            xs.push(x);
            ys.push(y);
            i = hi;
        }
        (xs, ys)
    }

    /// Split into `p` near-equal contiguous shards — the per-learner data
    /// partition used by all the distributed algorithms.
    ///
    /// Sample counts differ by at most one; every sample lands in exactly
    /// one shard.
    pub fn shards(&self, p: usize) -> Vec<Shard> {
        assert!(p > 0, "need at least one learner");
        let n = self.len();
        let base = n / p;
        let extra = n % p;
        let mut out = Vec::with_capacity(p);
        let mut start = 0usize;
        for k in 0..p {
            let size = base + usize::from(k < extra);
            out.push(Shard {
                indices: (start..start + size).collect(),
            });
            start += size;
        }
        out
    }
}

/// The index set a single learner trains on.
#[derive(Clone, Debug)]
pub struct Shard {
    indices: Vec<usize>,
}

impl Shard {
    /// Shard over explicit indices.
    pub fn from_indices(indices: Vec<usize>) -> Self {
        Shard { indices }
    }

    /// Number of samples in the shard.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// True when the shard is empty (can happen when `p > n`).
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// The underlying dataset indices.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Minibatches of size `m` over a fresh shuffle of this shard.
    pub fn epoch_iter(&self, m: usize, rng: &mut SeedRng) -> MinibatchIter {
        let mut order = self.indices.clone();
        rng.shuffle(&mut order);
        MinibatchIter { order, m, pos: 0 }
    }

    /// One uniformly random minibatch of size `m` (with replacement across
    /// calls, without within a batch when possible).
    pub fn random_batch(&self, m: usize, rng: &mut SeedRng) -> Vec<usize> {
        assert!(!self.indices.is_empty(), "random_batch from empty shard");
        (0..m)
            .map(|_| self.indices[rng.below(self.indices.len())])
            .collect()
    }
}

/// Iterator over one epoch's minibatches (last partial batch included).
pub struct MinibatchIter {
    order: Vec<usize>,
    m: usize,
    pos: usize,
}

impl Iterator for MinibatchIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.pos >= self.order.len() {
            return None;
        }
        let hi = (self.pos + self.m).min(self.order.len());
        let batch = self.order[self.pos..hi].to_vec();
        self.pos = hi;
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        let x: Vec<f32> = (0..n * 2).map(|v| v as f32).collect();
        let labels: Vec<usize> = (0..n).map(|i| i % 3).collect();
        Dataset::new(x, labels, &[2], 3)
    }

    #[test]
    fn batch_gathers_rows() {
        let d = toy(5);
        let (x, y) = d.batch(&[0, 3]);
        assert_eq!(x.dims(), &[2, 2]);
        assert_eq!(x.as_slice(), &[0., 1., 6., 7.]);
        assert_eq!(y, vec![0, 0]);
    }

    #[test]
    fn shards_partition_everything() {
        let d = toy(10);
        let shards = d.shards(3);
        assert_eq!(
            shards.iter().map(Shard::len).collect::<Vec<_>>(),
            vec![4, 3, 3]
        );
        let mut all: Vec<usize> = shards.iter().flat_map(|s| s.indices().to_vec()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn more_learners_than_samples_gives_empty_shards() {
        let d = toy(2);
        let shards = d.shards(4);
        assert_eq!(shards.len(), 4);
        assert_eq!(shards.iter().filter(|s| s.is_empty()).count(), 2);
    }

    #[test]
    fn epoch_iter_covers_shard_once() {
        let d = toy(7);
        let shard = &d.shards(1)[0];
        let mut rng = SeedRng::new(1);
        let batches: Vec<Vec<usize>> = shard.epoch_iter(3, &mut rng).collect();
        assert_eq!(batches.len(), 3); // 3 + 3 + 1
        assert_eq!(batches[2].len(), 1);
        let mut seen: Vec<usize> = batches.into_iter().flatten().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn epoch_iter_shuffles_between_epochs() {
        let d = toy(32);
        let shard = &d.shards(1)[0];
        let mut rng = SeedRng::new(2);
        let e1: Vec<usize> = shard.epoch_iter(32, &mut rng).flatten().collect();
        let e2: Vec<usize> = shard.epoch_iter(32, &mut rng).flatten().collect();
        assert_ne!(e1, e2, "epochs should reshuffle");
    }

    #[test]
    fn eval_batches_cover_all() {
        let d = toy(7);
        let (xs, ys) = d.eval_batches(4);
        assert_eq!(xs.len(), 2);
        assert_eq!(ys.iter().map(Vec::len).sum::<usize>(), 7);
    }

    #[test]
    fn random_batch_draws_from_shard() {
        let d = toy(9);
        let shard = &d.shards(3)[1]; // indices 3..6
        let mut rng = SeedRng::new(3);
        for _ in 0..20 {
            for i in shard.random_batch(4, &mut rng) {
                assert!((3..6).contains(&i));
            }
        }
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn bad_labels_rejected() {
        Dataset::new(vec![0.0; 4], vec![0, 5], &[2], 3);
    }
}

//! Compute-kernel timings at the paper's layer shapes: serial vs parallel,
//! recorded as `BENCH_kernels.json` so the perf trajectory of the hot path
//! (the tensor GEMM/conv kernels) is tracked over time.
//!
//! "Serial" pins the intra-op pool to one thread (or calls the sequential
//! entry point where one exists); "parallel" lets the pool use every core.
//! Without the `parallel` feature both columns run the serial kernels and
//! the speedup is ~1 — the JSON records which build produced it.

use std::time::Instant;

use sasgd_tensor::conv::{conv2d_backward, conv2d_forward, Conv2dSpec};
use sasgd_tensor::{linalg, parallel, SeedRng, Tensor};

use crate::figures::Artifact;

/// One timed kernel: name, serial and parallel best-of times, and whether
/// the two paths produced bitwise-identical outputs.
pub struct KernelTiming {
    /// Workload identifier (e.g. `table1_conv1_fwd_b32`).
    pub name: String,
    /// Best-of-`REPS` serial wall time, milliseconds.
    pub serial_ms: f64,
    /// Best-of-`REPS` parallel wall time, milliseconds.
    pub parallel_ms: f64,
    /// Serial and parallel outputs compared equal bit for bit.
    pub bitwise_equal: bool,
}

const REPS: usize = 5;

fn best_of<T>(mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = f();
    for _ in 0..REPS {
        let t0 = Instant::now();
        out = f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best * 1e3, out)
}

/// Time one kernel under a 1-thread pool and a full pool.
fn timed(name: &str, mut run: impl FnMut() -> Vec<f32>) -> KernelTiming {
    parallel::configure_threads(1);
    let (serial_ms, s_out) = best_of(&mut run);
    parallel::configure_threads(0);
    let (parallel_ms, p_out) = best_of(&mut run);
    KernelTiming {
        name: name.to_string(),
        serial_ms,
        parallel_ms,
        bitwise_equal: s_out == p_out,
    }
}

/// Run the kernel suite: Table I's first conv layer at batch 32
/// (forward and backward) and the Table II NLC-F GEMM shapes.
pub fn run_suite() -> Vec<KernelTiming> {
    let mut rng = SeedRng::new(0xBE);
    let mut out = Vec::new();

    // Table I, layer 1: conv 3→64, 5×5, pad 2 on 32×32 images, batch 32.
    let spec = Conv2dSpec {
        ci: 3,
        co: 64,
        kh: 5,
        kw: 5,
        stride: 1,
        pad: 2,
    };
    let input = rng.normal_tensor(&[32, 3, 32, 32], 1.0);
    let weight = rng.normal_tensor(&[64, spec.patch_len()], 0.1);
    let bias = vec![0.01f32; 64];
    out.push(timed("table1_conv1_fwd_b32", || {
        conv2d_forward(&input, &weight, &bias, &spec)
            .as_slice()
            .to_vec()
    }));
    let fwd = conv2d_forward(&input, &weight, &bias, &spec);
    let grad = Tensor::full(fwd.dims(), 0.5);
    out.push(timed("table1_conv1_bwd_b32", || {
        let g = conv2d_backward(&input, &weight, &grad, &spec);
        let mut v = g.dinput.as_slice().to_vec();
        v.extend_from_slice(g.dweight.as_slice());
        v
    }));

    // Table II NLC-F as GEMMs, batch 32, sequence length 50:
    // per-timestep fc 100→200, temporal conv (1000 kernels, window-2
    // patches over 200 channels), and the 1000×1000 fully connected.
    let fc1_x = rng.normal_tensor(&[32 * 50, 100], 1.0);
    let fc1_w = rng.normal_tensor(&[100, 200], 0.1);
    out.push(timed_pair("table2_fc1_gemm", &fc1_x, &fc1_w));
    let tc_x = rng.normal_tensor(&[32 * 50, 400], 1.0);
    let tc_w = rng.normal_tensor(&[1000, 400], 0.05);
    out.push(KernelTiming {
        name: "table2_tconv_gemm".to_string(),
        ..timed_nt(&tc_x, &tc_w)
    });
    let fc2_x = rng.normal_tensor(&[32, 1000], 1.0);
    let fc2_w = rng.normal_tensor(&[1000, 1000], 0.03);
    out.push(timed_pair("table2_fc2_gemm", &fc2_x, &fc2_w));

    out
}

/// Serial [`linalg::matmul`] vs [`linalg::matmul_par`] on fixed operands.
fn timed_pair(name: &str, a: &Tensor, b: &Tensor) -> KernelTiming {
    let (serial_ms, s) = best_of(|| linalg::matmul(a, b));
    let (parallel_ms, p) = best_of(|| linalg::matmul_par(a, b));
    KernelTiming {
        name: name.to_string(),
        serial_ms,
        parallel_ms,
        bitwise_equal: s.as_slice() == p.as_slice(),
    }
}

/// Serial [`linalg::matmul_nt`] vs [`linalg::matmul_nt_par`].
fn timed_nt(a: &Tensor, b: &Tensor) -> KernelTiming {
    let (serial_ms, s) = best_of(|| linalg::matmul_nt(a, b));
    let (parallel_ms, p) = best_of(|| linalg::matmul_nt_par(a, b));
    KernelTiming {
        name: String::new(),
        serial_ms,
        parallel_ms,
        bitwise_equal: s.as_slice() == p.as_slice(),
    }
}

/// Hand-rolled JSON (the workspace builds offline, with no serde).
pub fn to_json(timings: &[KernelTiming]) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"parallel_feature\": {},\n  \"pool_threads\": {},\n  \"kernels\": [\n",
        parallel::parallel_enabled(),
        parallel::threads()
    ));
    for (i, t) in timings.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"serial_ms\": {:.3}, \"parallel_ms\": {:.3}, \
             \"speedup\": {:.3}, \"bitwise_equal\": {}}}{}\n",
            t.name,
            t.serial_ms,
            t.parallel_ms,
            t.serial_ms / t.parallel_ms,
            t.bitwise_equal,
            if i + 1 < timings.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// The `kernels` repro target: run the suite, emit a report plus
/// `BENCH_kernels.json`.
pub fn kernels() -> Artifact {
    let timings = run_suite();
    let mut report = String::from(
        "Compute-kernel timings (serial = 1 intra-op thread, parallel = all cores)\n\n",
    );
    report.push_str(&format!(
        "{:<24} {:>10} {:>12} {:>8}  bitwise\n",
        "kernel", "serial ms", "parallel ms", "speedup"
    ));
    for t in &timings {
        report.push_str(&format!(
            "{:<24} {:>10.3} {:>12.3} {:>7.2}x  {}\n",
            t.name,
            t.serial_ms,
            t.parallel_ms,
            t.serial_ms / t.parallel_ms,
            if t.bitwise_equal { "ok" } else { "DIVERGED" }
        ));
    }
    if !parallel::parallel_enabled() {
        report.push_str("\n(built without the `parallel` feature: both columns are serial)\n");
    }
    Artifact {
        name: "kernels".to_string(),
        report,
        csvs: vec![("BENCH_kernels.json".to_string(), to_json(&timings))],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_and_paths_agree() {
        let timings = vec![KernelTiming {
            name: "t".into(),
            serial_ms: 2.0,
            parallel_ms: 1.0,
            bitwise_equal: true,
        }];
        let j = to_json(&timings);
        assert!(j.contains("\"speedup\": 2.000"));
        assert!(j.contains("\"bitwise_equal\": true"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn suite_kernels_are_bitwise_stable() {
        // Tiny smoke version of the suite's equality claim on one shape.
        let mut rng = SeedRng::new(1);
        let a = rng.normal_tensor(&[8, 5], 1.0);
        let b = rng.normal_tensor(&[5, 4], 1.0);
        let t = timed_pair("smoke", &a, &b);
        assert!(t.bitwise_equal);
        assert!(t.serial_ms >= 0.0 && t.parallel_ms >= 0.0);
    }
}

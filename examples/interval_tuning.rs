//! Choosing the aggregation interval T — the paper's central trade-off.
//!
//! Section III-B: "there is an optimal T for a specific application in
//! terms of the wall-clock time needed to reach convergence". This example
//! sweeps T, measures (simulated) time and accuracy, evaluates the
//! Theorem-2/Theorem-4 bound alongside, and reports the T that reaches a
//! target accuracy fastest.
//!
//! ```text
//! cargo run --release --example interval_tuning
//! ```

use sasgd::core::algorithms::GammaP;
use sasgd::core::report::ascii_table;
use sasgd::core::theory;
use sasgd::core::{train, Algorithm, TrainConfig};
use sasgd::data::cifar_like::{generate, CifarLikeConfig};
use sasgd::nn::models;
use sasgd::tensor::SeedRng;

fn main() {
    let (train_set, test_set) = generate(&CifarLikeConfig {
        noise: 1.0,
        ..CifarLikeConfig::tiny(512, 256, 10)
    });
    let p = 8;
    let gamma = 0.05;
    let epochs = 25;
    let target_acc = 0.35f32;

    // Theory side: estimate problem constants once.
    let mut probe_model = models::tiny_cnn(10, &mut SeedRng::new(7));
    let consts = theory::estimate_constants(&mut probe_model, &train_set, 8, 4, 99);
    println!(
        "estimated constants: Df = {:.2}, L = {:.2}, σ² = {:.2}\n",
        consts.df, consts.l, consts.sigma2
    );

    let mut rows = Vec::new();
    let mut best: Option<(usize, f64)> = None;
    for t in [1usize, 2, 5, 10, 25, 50] {
        let cfg = TrainConfig::new(epochs, 8, gamma, 42);
        let mut factory = || models::tiny_cnn(10, &mut SeedRng::new(7));
        let algo = Algorithm::Sasgd {
            p,
            t,
            gamma_p: GammaP::OverP,
            compression: None,
        };
        let h = train(&mut factory, &train_set, &test_set, &algo, &cfg);
        // Simulated seconds until the target accuracy is first reached.
        let time_to_target = h
            .records
            .iter()
            .find(|r| r.test_acc >= target_acc)
            .map(|r| r.compute_seconds + r.comm_seconds);
        if let Some(tt) = time_to_target {
            if best.is_none_or(|(_, b)| tt < b) {
                best = Some((t, tt));
            }
        }
        let s = (epochs * train_set.len()) as f64;
        let bound = theory::sasgd_best_bound_fixed_s(&consts, 8, t, p, s);
        rows.push(vec![
            t.to_string(),
            format!("{:.1}", h.final_test_acc() * 100.0),
            format!("{:.2}", h.epoch_seconds()),
            format!("{:.0}", h.comm_fraction() * 100.0),
            time_to_target.map_or("never".into(), |x| format!("{x:.2}")),
            format!("{bound:.4}"),
        ]);
    }
    println!(
        "SASGD interval sweep, p = {p}, γ = {gamma} (simulated platform time)\n\n{}",
        ascii_table(
            &[
                "T",
                "final acc %",
                "epoch (s)",
                "comm %",
                "time to ≥35 % (s)",
                "Thm-2 bound"
            ],
            &rows,
        )
    );
    match best {
        Some((t, secs)) => println!(
            "fastest to the {:.0} % target: T = {t} ({secs:.2} simulated seconds) —\n\
             small T wastes time communicating, large T wastes samples (Theorem 4);\n\
             the bound column shows the theory predicting the same tension.",
            f64::from(target_acc) * 100.0
        ),
        None => println!("no configuration reached the target; raise epochs"),
    }
}

//! The threaded backend: every algorithm on real OS threads.
//!
//! One thread per learner over the `sasgd-comm` substrate — collectives
//! for the synchronous strategies, a real [`PsServer`] for the
//! asynchronous ones. Batch orders, dropout streams and aggregation
//! arithmetic mirror the simulated backend (the simulated aggregation sums
//! in the same binomial-tree order the collective uses), so the
//! synchronous strategies produce *identical parameters* at any `p`; the
//! asynchronous strategies match at `p = 1` and are intentionally
//! schedule-dependent beyond that (that is the point of running them on a
//! real substrate).
//!
//! Unlike the simulated backend's analytic wire accounting, [`History::wire`]
//! here is filled from the substrate's traffic counters — with
//! [`Compression::TopK`] the gradients travel in the sparse wire format
//! ([`sasgd_comm::sparse`]), so the counters record genuinely fewer
//! elements, not a model of fewer elements.

use std::time::{Duration, Instant};

use sasgd_comm::fault::FaultPlan;
use sasgd_comm::ps::{PsConfig, PsServer};
use sasgd_comm::world::CommWorld;
use sasgd_data::{make_shards, Dataset};
use sasgd_nn::Model;

use super::rank::{
    run_event_rank, run_sasgd_ft_rank, run_sasgd_rank, EventOp, EventRankSpec, SasgdRankSpec,
};
use super::{event_gamma_epoch, strategy_for, BatchStream, Cadence, EngineError};
use crate::algorithms::{Algorithm, GammaP};
use crate::compress::Compression;
use crate::history::{History, WireStats, MAX_SPARSITY_SAMPLES};
use crate::trainer::{EvalSets, Learner, TrainConfig};

/// Join learner threads, reporting *which* ranks died and why instead of
/// aborting on the first opaque `join` failure. Handles must be in rank
/// order (every spawn loop in this crate builds them that way).
///
/// # Panics
/// Panics after joining everything, naming each failed rank and its panic
/// message — one diagnostic for the whole world instead of a bare
/// "learner thread" unwrap on whichever handle happened to be joined first.
pub(crate) fn join_learners<T>(handles: Vec<std::thread::ScopedJoinHandle<'_, T>>) -> Vec<T> {
    let mut ok = Vec::with_capacity(handles.len());
    let mut failed: Vec<String> = Vec::new();
    for (rank, h) in handles.into_iter().enumerate() {
        match h.join() {
            Ok(v) => ok.push(v),
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&'static str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                failed.push(format!("rank {rank}: {msg}"));
            }
        }
    }
    assert!(
        failed.is_empty(),
        "learner thread(s) panicked — {}",
        failed.join("; ")
    );
    ok
}

/// Run `algo` on the threaded backend under the resolved `cadence`. The
/// collective runners propagate typed wire failures
/// ([`EngineError::WireFailure`]); the parameter-server runners go through
/// in-process channels whose failures are programming errors, not
/// recoverable conditions.
///
/// Lockstep routes to the bulk-synchronous runners; the parameter-server
/// strategies have no bulk-synchronous runner on real threads, so forcing
/// them to lockstep here is a typed [`EngineError::UnsupportedCadence`]
/// (the simulated backend executes every strategy under either cadence).
/// Event-driven routes the collective strategies through the generic
/// event-rank loop and the parameter-server strategies through their
/// native asynchronous runners.
pub(crate) fn run(
    factory: &(dyn Fn() -> Model + Sync),
    train_set: &Dataset,
    test_set: &Dataset,
    algo: &Algorithm,
    cfg: &TrainConfig,
    cadence: Cadence,
) -> Result<History, EngineError> {
    if cadence == Cadence::EventDriven {
        return run_event(factory, train_set, test_set, algo, cfg);
    }
    Ok(match *algo {
        Algorithm::Sequential => run_threaded_sequential(factory, train_set, test_set, cfg),
        Algorithm::Sasgd {
            p,
            t,
            gamma_p,
            compression,
        } => {
            return run_sasgd(
                factory,
                train_set,
                test_set,
                cfg,
                p,
                t,
                gamma_p,
                compression,
            )
        }
        Algorithm::HierarchicalSasgd {
            groups,
            per_group,
            t_local,
            t_global,
            gamma_p,
        } => {
            return crate::threaded::try_run_threaded_hierarchical_sasgd(
                factory, train_set, test_set, cfg, groups, per_group, t_local, t_global, gamma_p,
            )
        }
        Algorithm::ModelAverageOnce { p } => {
            return try_run_threaded_averaging(factory, train_set, test_set, cfg, p)
        }
        // No bulk-synchronous runner exists for these on real threads —
        // the parameter-server algorithms are asynchronous by definition
        // and the averaging lattice points default to the event-driven
        // cadence; only an explicit lockstep override can reach this.
        Algorithm::Downpour { .. }
        | Algorithm::Eamsgd { .. }
        | Algorithm::LocalSgd { .. }
        | Algorithm::DelayedAvg { .. } => {
            return Err(EngineError::UnsupportedCadence {
                label: strategy_for(algo).label(),
            })
        }
    })
}

/// Event-driven dispatch: the asynchronous strategies run their native
/// threaded runners; the collective strategies run the generic event-rank
/// loop over real threads.
fn run_event(
    factory: &(dyn Fn() -> Model + Sync),
    train_set: &Dataset,
    test_set: &Dataset,
    algo: &Algorithm,
    cfg: &TrainConfig,
) -> Result<History, EngineError> {
    Ok(match *algo {
        Algorithm::Downpour {
            p,
            t,
            staleness_gamma,
        } => crate::threaded::run_threaded_downpour(
            factory,
            train_set,
            test_set,
            cfg,
            p,
            t,
            p,
            staleness_gamma,
        ),
        Algorithm::Eamsgd {
            p,
            t,
            moving_rate,
            momentum,
            staleness_gamma,
        } => run_threaded_eamsgd(
            factory,
            train_set,
            test_set,
            cfg,
            p,
            t,
            moving_rate,
            momentum,
            staleness_gamma,
        ),
        _ => return run_event_collective(factory, train_set, test_set, algo, cfg),
    })
}

/// `"SASGD(p=4,T=2)"` → `"SASGD-threaded(p=4,T=2)"` — the backend suffix
/// in the position the dedicated runners put it.
fn threaded_label(label: &str) -> String {
    match label.find('(') {
        Some(i) => format!("{}-threaded{}", &label[..i], &label[i..]),
        None => format!("{label}-threaded"),
    }
}

/// The collective strategies under event-driven cadence: one OS thread per
/// rank running [`run_event_rank`] over the in-process world. The round
/// structure (policy, block size, round γ) is resolved independently per
/// rank from rank-invariant state, so the collectives line up without a
/// coordinator. Hierarchical SASGD needs grouped communicators and routes
/// to its own loop.
fn run_event_collective(
    factory: &(dyn Fn() -> Model + Sync),
    train_set: &Dataset,
    test_set: &Dataset,
    algo: &Algorithm,
    cfg: &TrainConfig,
) -> Result<History, EngineError> {
    if let Algorithm::HierarchicalSasgd {
        groups,
        per_group,
        t_local,
        t_global,
        gamma_p,
    } = *algo
    {
        return run_event_hierarchical(
            factory, train_set, test_set, cfg, groups, per_group, t_local, t_global, gamma_p,
        );
    }
    let s = strategy_for(algo);
    let p = s.p();
    let policy = s.sync_policy();
    let collective_tau = s.collective_tau();
    let history_interval = s.history_interval();
    let label = threaded_label(&s.label());
    let op = match *algo {
        Algorithm::Sequential => EventOp::LocalOnly,
        Algorithm::ModelAverageOnce { .. } => EventOp::EpochAverage,
        Algorithm::Sasgd {
            gamma_p,
            compression,
            ..
        } => EventOp::Gradient {
            gamma_p,
            compression,
        },
        Algorithm::LocalSgd { .. } => EventOp::ParamAverage,
        Algorithm::DelayedAvg { .. } => EventOp::DelayedAverage,
        Algorithm::HierarchicalSasgd { .. }
        | Algorithm::Downpour { .. }
        | Algorithm::Eamsgd { .. } => {
            unreachable!("routed to a dedicated event runner above")
        }
    };
    sasgd_tensor::parallel::auto_configure_for_learners(p);
    let shards = make_shards(train_set, p, cfg.shard_strategy);
    let epoch_block = shards
        .iter()
        .map(|s| s.len() / cfg.batch_size)
        .min()
        .expect("at least one shard")
        .max(1);

    let mut world = CommWorld::new(p);
    let traffic = world.traffic();
    let comms = world.communicators();
    let mut rank0_history: Option<History> = None;
    let mut peer_series: Vec<crate::history::SparsitySample> = Vec::new();
    let mut peer_levels = sasgd_comm::sparse::SparseLevelProfile::default();
    let mut first_err: Option<EngineError> = None;

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (mut comm, shard) in comms.into_iter().zip(shards.iter().cloned()) {
            let label = label.clone();
            let policy = policy.clone();
            let handle = scope.spawn(move || {
                let rank = comm.rank();
                // Rank 0 holds the spare replica that evaluates the running
                // average (one-shot averaging only).
                let eval_replica = if rank == 0 && matches!(op, EventOp::EpochAverage) {
                    Some(factory())
                } else {
                    None
                };
                let spec = EventRankSpec {
                    train_set,
                    test_set,
                    cfg,
                    p,
                    label,
                    op,
                    policy,
                    epoch_block,
                    collective_tau,
                    history_interval,
                };
                (
                    rank,
                    run_event_rank(&mut comm, factory(), eval_replica, &shard, &spec),
                )
            });
            handles.push(handle);
        }
        for (rank, result) in join_learners(handles) {
            match result {
                Ok(history) if rank == 0 => rank0_history = Some(history),
                // Fold non-zero ranks' sparsity telemetry into rank 0's
                // report (only the compressed-gradient op produces any).
                Ok(history) => {
                    peer_series.extend(history.sparsity_series);
                    peer_levels.merge(&history.sparse_levels);
                }
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
    });
    if let Some(e) = first_err {
        return Err(e);
    }
    let mut history = rank0_history.expect("rank 0 history");
    history.sparsity_series.extend(peer_series);
    history.sparsity_series.sort_by_key(|s| (s.round, s.rank));
    history.sparsity_series.truncate(MAX_SPARSITY_SAMPLES);
    history.sparse_levels.merge(&peer_levels);
    history.wire = Some(WireStats {
        elements: traffic.elements_sent(),
        messages: traffic.messages_sent(),
    });
    Ok(history)
}

/// Hierarchical SASGD under event-driven cadence: the grouped-communicator
/// mirror of the simulated collective event loop. Each round is a
/// `t_local`-minibatch block at a round γ resolved from nominal progress,
/// then a group allreduce + group step; every `t_global` rounds the group
/// parameter copies are averaged through the leader communicator. Level 2
/// averages via tree-reduce + scale while the simulated strategy
/// accumulates in rank order, so cross-backend equality is bitwise only at
/// `groups = 1` (where level 2 is the identity in both backends).
#[allow(clippy::too_many_arguments)] // mirrors the algorithm's parameter set
fn run_event_hierarchical(
    factory: &(dyn Fn() -> Model + Sync),
    train_set: &Dataset,
    test_set: &Dataset,
    cfg: &TrainConfig,
    groups: usize,
    per_group: usize,
    t_local: usize,
    t_global: usize,
    gamma_p: GammaP,
) -> Result<History, EngineError> {
    use sasgd_comm::collectives::{allreduce_tree, broadcast};
    assert!(groups >= 1 && per_group >= 1 && t_local >= 1 && t_global >= 1);
    let p = groups * per_group;
    sasgd_tensor::parallel::auto_configure_for_learners(p);
    let shards = make_shards(train_set, p, cfg.shard_strategy);
    let n = train_set.len();
    let target_steps = (cfg.epochs as u64) * (n as u64); // in batch·p units
    let bundles = sasgd_comm::hierarchy::grouped(groups, per_group);
    let mut rank0_history: Option<History> = None;

    let mut first_err: Option<EngineError> = None;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (mut bundle, shard) in bundles.into_iter().zip(shards.iter().cloned()) {
            let handle = scope.spawn(move || {
                let rank = bundle.global.rank();
                // Global sync round (1-based) for wire-failure context; 0
                // covers the x0 broadcast before the loop.
                let mut round = 0u64;
                let result =
                    (|| -> Result<History, sasgd_comm::CommError> {
                        let mut learner = Learner::new(rank, factory(), cfg);
                        let mut x = learner.model.param_vector();
                        broadcast(&mut bundle.global, 0, &mut x)?;
                        learner.model.write_params(&x);
                        let evals = if rank == 0 {
                            Some(EvalSets::prepare(train_set, test_set, cfg.eval_cap))
                        } else {
                            None
                        };
                        let mut history = History::new(
                    format!("H-SASGD-threaded(g={groups}x{per_group},Tl={t_local},Tg={t_global})"),
                    p,
                    t_local * t_global,
                );
                        let mut stream = BatchStream::new(shard.indices().to_vec(), cfg.batch_size);
                        let mut samples = 0u64;
                        let mut steps_done = 0u64;
                        let mut syncs = 0u64;
                        let mut local_rounds = 0usize;
                        let mut recorded_passes = 0u64;
                        let mut compute_s = 0.0f64;
                        let mut comm_s = 0.0f64;
                        let mut staleness_obs: Vec<u64> = Vec::new();
                        loop {
                            let gamma_now =
                                cfg.gamma_at(event_gamma_epoch(steps_done, cfg.batch_size, p, n));
                            let t0 = Instant::now();
                            for _ in 0..t_local {
                                let idx = stream.next(&mut learner.rng);
                                samples += idx.len() as u64;
                                learner.local_step(train_set, &idx, gamma_now, 0.0, 1.0);
                            }
                            compute_s += t0.elapsed().as_secs_f64();
                            steps_done += t_local as u64;
                            let t1 = Instant::now();
                            // Level 1: group-local allreduce of gs, group step.
                            round += 1;
                            let gp = gamma_p.resolve(gamma_now, per_group);
                            allreduce_tree(&mut bundle.local, &mut learner.gs)?;
                            for (xi, &g) in x.iter_mut().zip(&learner.gs) {
                                *xi -= gp * g;
                            }
                            learner.gs.iter_mut().for_each(|g| *g = 0.0);
                            local_rounds += 1;
                            if local_rounds == t_global {
                                // Level 2: average the group copies through the
                                // leader communicator, broadcast down.
                                if let Some(leaders) = bundle.leaders.as_mut() {
                                    allreduce_tree(leaders, &mut x)?;
                                    let inv = 1.0 / groups as f32;
                                    x.iter_mut().for_each(|v| *v *= inv);
                                }
                                broadcast(&mut bundle.local, 0, &mut x)?;
                                local_rounds = 0;
                            }
                            learner.model.write_params(&x);
                            comm_s += t1.elapsed().as_secs_f64();
                            syncs += 1;
                            if rank == 0 {
                                for id in 0..p {
                                    history.push_staleness(syncs - 1, id, 0, gamma_now);
                                    staleness_obs.push(0);
                                }
                                if stream.completed_passes() > recorded_passes {
                                    recorded_passes = stream.completed_passes();
                                    if let Some(ev) = &evals {
                                        let rec = ev.record(
                                            &mut learner.model,
                                            (samples * p as u64) as f64 / n as f64, // lint:allow(float-cast)
                                            compute_s,
                                            comm_s,
                                            samples * p as u64,
                                        );
                                        history.records.push(rec);
                                    }
                                }
                            }
                            if steps_done * (cfg.batch_size as u64) * (p as u64) >= target_steps {
                                break;
                            }
                        }
                        if let Some(ev) = &evals {
                            if history.records.is_empty()
                                || history.records.last().expect("nonempty").samples
                                    < samples * p as u64
                            {
                                let rec = ev.record(
                                    &mut learner.model,
                                    (samples * p as u64) as f64 / n as f64, // lint:allow(float-cast)
                                    compute_s,
                                    comm_s,
                                    samples * p as u64,
                                );
                                history.records.push(rec);
                            }
                        }
                        history.staleness =
                            crate::history::StalenessStats::from_observations(&staleness_obs);
                        history.sync_rounds = syncs;
                        history.final_params = Some(learner.model.param_vector());
                        Ok(history)
                    })();
                (rank, round, result)
            });
            handles.push(handle);
        }
        for (rank, round, result) in join_learners(handles) {
            match result {
                Ok(history) if rank == 0 => rank0_history = Some(history),
                Ok(_) => {}
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(EngineError::WireFailure {
                            rank,
                            round,
                            detail: e.to_string(),
                        });
                    }
                }
            }
        }
    });
    if let Some(e) = first_err {
        return Err(e);
    }
    Ok(rank0_history.expect("rank 0 history"))
}

/// SASGD (optionally compressed) with one OS thread per learner.
/// `TopK` payloads travel in the sparse wire format; `Uniform8Bit` leaf
/// contributions travel as packed 8-bit frames (exact, since every dense
/// reconstruction sits on the `q·scale` grid) with f32 internal partials;
/// [`Compression::Sparse`] rides the instrumented v2 sparse tree —
/// optionally quantized leaves and union-bounded merges. The per-rank
/// loop itself lives in [`super::rank`], generic over the transport —
/// this function supplies the in-process world and threads; the launcher
/// supplies socket endpoints and processes. Per-rank sparsity telemetry
/// (`sparsity_series`, `sparse_levels`) is merged from every learner's
/// history into the returned rank-0 history.
#[allow(clippy::too_many_arguments)] // mirrors the algorithm's parameter set
pub(crate) fn run_sasgd(
    factory: &(dyn Fn() -> Model + Sync),
    train_set: &Dataset,
    test_set: &Dataset,
    cfg: &TrainConfig,
    p: usize,
    t: usize,
    gamma_p: GammaP,
    compression: Option<Compression>,
) -> Result<History, EngineError> {
    assert!(p >= 1 && t >= 1);
    // Split intra-op workers across the p learner threads (no-op unless
    // the `parallel` feature is on and nothing was configured explicitly).
    sasgd_tensor::parallel::auto_configure_for_learners(p);
    let shards = make_shards(train_set, p, cfg.shard_strategy);
    let steps_per_epoch = shards
        .iter()
        .map(|s| s.len() / cfg.batch_size)
        .min()
        .expect("at least one shard");
    assert!(steps_per_epoch > 0, "shards too small for batch size");
    let label = match compression {
        Some(_) => format!("SASGD-compressed-threaded(p={p},T={t})"),
        None => format!("SASGD-threaded(p={p},T={t})"),
    };

    let mut world = CommWorld::new(p);
    let traffic = world.traffic();
    let comms = world.communicators();
    let mut rank0_history: Option<History> = None;
    let mut peer_series: Vec<crate::history::SparsitySample> = Vec::new();
    let mut peer_levels = sasgd_comm::sparse::SparseLevelProfile::default();
    let mut first_err: Option<EngineError> = None;

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (mut comm, shard) in comms.into_iter().zip(shards.iter().cloned()) {
            let label = label.clone();
            let handle = scope.spawn(move || {
                let rank = comm.rank();
                let spec = SasgdRankSpec {
                    train_set,
                    test_set,
                    cfg,
                    p,
                    t,
                    gamma_p,
                    compression,
                    label,
                    steps_per_epoch,
                };
                (rank, run_sasgd_rank(&mut comm, factory(), &shard, &spec))
            });
            handles.push(handle);
        }
        for (rank, result) in join_learners(handles) {
            match result {
                Ok(history) if rank == 0 => rank0_history = Some(history),
                // Non-zero ranks carry only their share of the sparsity
                // telemetry; fold it into what rank 0 will report.
                Ok(history) => {
                    peer_series.extend(history.sparsity_series);
                    peer_levels.merge(&history.sparse_levels);
                }
                // Lowest-rank failure wins (handles are in rank order);
                // peer ranks typically fail secondarily when the first
                // casualty's endpoint disappears mid-collective.
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
    });
    if let Some(e) = first_err {
        return Err(e);
    }
    let mut history = rank0_history.expect("rank 0 history");
    history.sparsity_series.extend(peer_series);
    history.sparsity_series.sort_by_key(|s| (s.round, s.rank));
    history.sparsity_series.truncate(MAX_SPARSITY_SAMPLES);
    history.sparse_levels.merge(&peer_levels);
    history.wire = Some(WireStats {
        elements: traffic.elements_sent(),
        messages: traffic.messages_sent(),
    });
    Ok(history)
}

/// SASGD with one OS thread per learner and the fault-tolerant allreduce:
/// the run survives learner loss. Faults from `plan` fire only at step
/// boundaries (a crash retires the thread before its next minibatch, a
/// stall sleeps before it), so a given plan + seed is bitwise reproducible;
/// with [`FaultPlan::none`] the trajectory is bitwise identical to
/// [`run_sasgd`] — `ft_allreduce` reduces in the exact combine order of the
/// plain tree.
///
/// On confirmed loss the survivors rebuild the binomial tree over the new
/// membership, `γp` rescales to the survivor count via the strategy's
/// [`GammaP`] policy, and rank 0 records a
/// [`MembershipEvent`](crate::history::MembershipEvent) (the lost
/// learner's data shard is lost with it). Ranks that exit mid-run —
/// evicted, or cut off by a wire failure the run can survive — retire
/// with a [`RetirementEvent`](crate::history::RetirementEvent) instead of
/// panicking; the merged accounts land in `History::retirements`. Rank 0
/// is the recovery coordinator and must outlive the run (seeded plans
/// never kill it); a wire failure under rank 0 is the one unsurvivable
/// case and comes back as [`EngineError::WireFailure`].
#[allow(clippy::too_many_arguments)] // mirrors the algorithm's parameter set
pub(crate) fn try_run_sasgd_ft(
    factory: &(dyn Fn() -> Model + Sync),
    train_set: &Dataset,
    test_set: &Dataset,
    cfg: &TrainConfig,
    p: usize,
    t: usize,
    gamma_p: GammaP,
    plan: &FaultPlan,
    deadline: Duration,
) -> Result<History, EngineError> {
    assert!(p >= 1 && t >= 1);
    assert!(
        !deadline.is_zero(),
        "failure-detection deadline must be nonzero"
    );
    sasgd_tensor::parallel::auto_configure_for_learners(p);
    let shards = make_shards(train_set, p, cfg.shard_strategy);
    let steps_per_epoch = shards
        .iter()
        .map(|s| s.len() / cfg.batch_size)
        .min()
        .expect("at least one shard");
    assert!(steps_per_epoch > 0, "shards too small for batch size");
    let label = format!("SASGD-ft-threaded(p={p},T={t})");

    let mut world = CommWorld::new(p);
    if let Some(schedule) = plan.wire_faults(p) {
        world.set_faults(std::sync::Arc::new(schedule));
    }
    let traffic = world.traffic();
    let comms = world.communicators();
    let mut rank0_history: Option<History> = None;
    let mut retirements = Vec::new();
    let mut first_err: Option<EngineError> = None;

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (mut comm, shard) in comms.into_iter().zip(shards.iter().cloned()) {
            let label = label.clone();
            let handle = scope.spawn(move || {
                let rank = comm.rank();
                let spec = SasgdRankSpec {
                    train_set,
                    test_set,
                    cfg,
                    p,
                    t,
                    gamma_p,
                    compression: None,
                    label,
                    steps_per_epoch,
                };
                (
                    rank,
                    run_sasgd_ft_rank(&mut comm, factory(), &shard, &spec, plan, deadline),
                )
            });
            handles.push(handle);
        }
        for (rank, result) in join_learners(handles) {
            match result {
                Ok(history) => {
                    if rank == 0 {
                        rank0_history = Some(history);
                    } else {
                        // Non-coordinator histories are discarded except for
                        // the retiree's own account of why it left.
                        retirements.extend(history.retirements);
                    }
                }
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
    });
    if let Some(e) = first_err {
        return Err(e);
    }
    let mut history = rank0_history.expect("rank 0 history");
    retirements.sort_by_key(|r: &crate::history::RetirementEvent| (r.round, r.rank));
    history.retirements.extend(retirements);
    history.wire = Some(WireStats {
        elements: traffic.elements_sent(),
        messages: traffic.messages_sent(),
    });
    Ok(history)
}

/// Sequential SGD "on the threaded backend": one learner, no communication
/// — the degenerate corner that anchors both backends to the same
/// single-learner trajectory.
pub fn run_threaded_sequential(
    factory: &(dyn Fn() -> Model + Sync),
    train_set: &Dataset,
    test_set: &Dataset,
    cfg: &TrainConfig,
) -> History {
    let mut learner = Learner::new(0, factory(), cfg);
    let shard = train_set.shards(1).pop().expect("one shard");
    let evals = EvalSets::prepare(train_set, test_set, cfg.eval_cap);
    let mut history = History::new("SGD-threaded", 1, 1);
    let mut compute_s = 0.0f64;
    let mut samples = 0u64;
    for epoch in 1..=cfg.epochs {
        let batches: Vec<Vec<usize>> = shard.epoch_iter(cfg.batch_size, &mut learner.rng).collect();
        let steps = batches.len().max(1);
        for (step, idx) in batches.iter().enumerate() {
            let epoch_f = (epoch - 1) as f64 + step as f64 / steps as f64;
            let gamma_now = cfg.gamma_at(epoch_f);
            samples += idx.len() as u64;
            let t0 = Instant::now();
            learner.local_step(train_set, idx, gamma_now, 0.0, 1.0);
            compute_s += t0.elapsed().as_secs_f64();
            learner.gs.iter_mut().for_each(|g| *g = 0.0);
        }
        let rec = evals.record(&mut learner.model, epoch as f64, compute_s, 0.0, samples);
        history.records.push(rec);
    }
    history.wire = Some(WireStats::default());
    history.final_params = Some(learner.model.param_vector());
    history
}

/// EAMSGD with one OS thread per learner against a real parameter server
/// holding the center variable. As with threaded Downpour, the
/// interleaving beyond `p = 1` is decided by the OS scheduler — genuinely
/// asynchronous, not reproducible across executions.
///
/// With `staleness_gamma` each elastic exchange scales its moving rate by
/// `1/(1+τ)` where τ is the *measured* number of foreign exchanges the
/// center absorbed between this learner's pull and its own previous
/// exchange — counted by a shared atomic. Rank 0's observations land in
/// [`History::staleness_series`](crate::history::History::staleness_series).
#[allow(clippy::too_many_arguments)] // mirrors the Eamsgd variant's fields
pub fn run_threaded_eamsgd(
    factory: &(dyn Fn() -> Model + Sync),
    train_set: &Dataset,
    test_set: &Dataset,
    cfg: &TrainConfig,
    p: usize,
    t: usize,
    moving_rate: Option<f32>,
    momentum: f32,
    staleness_gamma: bool,
) -> History {
    use std::sync::atomic::{AtomicU64, Ordering};
    assert!(p >= 1 && t >= 1);
    assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
    let alpha = moving_rate.unwrap_or(0.9 / p as f32);
    assert!(alpha > 0.0 && alpha <= 1.0, "moving rate out of range");
    sasgd_tensor::parallel::auto_configure_for_learners(p);
    let probe = factory();
    let m = probe.param_len();
    let ps = PsServer::spawn(probe.param_vector(), PsConfig { shards: 1 });
    let n = train_set.len();
    let target_per_learner = (cfg.epochs * n).div_ceil(p);
    let data_shards = make_shards(train_set, p, cfg.shard_strategy);
    // Counts elastic exchanges against the center — the τ source when
    // staleness-aware scaling is on.
    let exchange_counter = AtomicU64::new(0);
    let label = if staleness_gamma {
        format!("EAMSGD-s\u{3b3}-threaded(p={p},T={t})")
    } else {
        format!("EAMSGD-threaded(p={p},T={t})")
    };
    let mut rank0_history: Option<History> = None;

    std::thread::scope(|scope| {
        let exchange_counter = &exchange_counter;
        let mut handles = Vec::new();
        for (rank, data_shard) in data_shards.iter().enumerate() {
            let client = ps.client();
            let label = label.clone();
            let handle = scope.spawn(move || {
                let mut learner = Learner::new(rank, factory(), cfg);
                learner.model.write_params(&client.pull());
                let mut seen = exchange_counter.load(Ordering::SeqCst);
                let mut velocity = vec![0.0f32; m];
                let evals = if rank == 0 {
                    Some(EvalSets::prepare(train_set, test_set, cfg.eval_cap))
                } else {
                    None
                };
                let mut history = History::new(label, p, t);
                let mut stream = BatchStream::new(data_shard.indices().to_vec(), cfg.batch_size);
                let mut samples = 0usize;
                let mut compute_s = 0.0f64;
                let mut comm_s = 0.0f64;
                let mut recorded = 0u64;
                let mut exchanges = 0u64;
                let mut staleness_obs: Vec<u64> = Vec::new();
                while samples < target_per_learner {
                    let gamma_now = cfg.gamma_at(samples as f64 * p as f64 / n as f64);
                    let t0 = Instant::now();
                    for _ in 0..t {
                        let idx = stream.next(&mut learner.rng);
                        samples += idx.len();
                        // One momentum-SGD step on the local replica — same
                        // arithmetic as the simulated strategy.
                        let (g, _) = learner.compute_gradient(train_set, &idx);
                        let mut params = learner.model.param_vector();
                        for ((vi, pi), &gi) in velocity.iter_mut().zip(params.iter_mut()).zip(&g) {
                            *vi = momentum * *vi - gamma_now * gi;
                            *pi += *vi;
                        }
                        learner.model.write_params(&params);
                    }
                    compute_s += t0.elapsed().as_secs_f64();
                    let t1 = Instant::now();
                    // Elastic exchange: pull x̃, retreat toward it, push the
                    // elastic difference (the server adds it to x̃).
                    let tau = exchange_counter.fetch_add(1, Ordering::SeqCst) - seen;
                    let alpha_eff = if staleness_gamma {
                        alpha / (1.0 + tau as f32) // lint:allow(float-cast)
                    } else {
                        alpha
                    };
                    let center = client.pull();
                    seen = exchange_counter.load(Ordering::SeqCst);
                    let mut params = learner.model.param_vector();
                    let mut diff = vec![0.0f32; m];
                    for ((pi, &ci), di) in params.iter_mut().zip(&center).zip(diff.iter_mut()) {
                        *di = alpha_eff * (*pi - ci);
                        *pi -= *di;
                    }
                    learner.model.write_params(&params);
                    client.add(&diff);
                    comm_s += t1.elapsed().as_secs_f64();
                    if rank == 0 {
                        history.push_staleness(exchanges, 0, tau, alpha_eff);
                        staleness_obs.push(tau);
                    }
                    exchanges += 1;
                    if rank == 0 && stream.completed_passes() > recorded {
                        recorded = stream.completed_passes();
                        if let Some(ev) = &evals {
                            let rec = ev.record(
                                &mut learner.model,
                                recorded as f64,
                                compute_s,
                                comm_s,
                                (samples * p) as u64,
                            );
                            history.records.push(rec);
                        }
                    }
                }
                if rank == 0 && history.records.is_empty() {
                    if let Some(ev) = &evals {
                        let rec = ev.record(
                            &mut learner.model,
                            samples as f64 * p as f64 / n as f64,
                            compute_s,
                            comm_s,
                            (samples * p) as u64,
                        );
                        history.records.push(rec);
                    }
                }
                history.staleness =
                    crate::history::StalenessStats::from_observations(&staleness_obs);
                history.final_params = Some(learner.model.param_vector());
                (rank, history)
            });
            handles.push(handle);
        }
        for (rank, history) in join_learners(handles) {
            if rank == 0 {
                rank0_history = Some(history);
            }
        }
    });
    let mut history = rank0_history.expect("rank 0 history");
    history.sync_rounds = exchange_counter.load(std::sync::atomic::Ordering::SeqCst);
    let t = ps.traffic();
    let elements = t.pushed.load(std::sync::atomic::Ordering::Relaxed)
        + t.pulled.load(std::sync::atomic::Ordering::Relaxed);
    history.wire = Some(WireStats {
        elements,
        messages: elements / m as u64,
    });
    ps.shutdown();
    history
}

/// One-shot model averaging with one OS thread per learner: independent
/// training, parameters gathered to rank 0 (in rank order, matching the
/// simulated strategy's accumulation order) after each epoch to evaluate
/// the running average.
pub fn run_threaded_averaging(
    factory: &(dyn Fn() -> Model + Sync),
    train_set: &Dataset,
    test_set: &Dataset,
    cfg: &TrainConfig,
    p: usize,
) -> History {
    try_run_threaded_averaging(factory, train_set, test_set, cfg, p)
        .unwrap_or_else(|e| panic!("threaded model averaging(p={p}): {e}"))
}

/// [`run_threaded_averaging`] with wire failures surfaced as typed
/// [`EngineError::WireFailure`] values instead of panics.
pub fn try_run_threaded_averaging(
    factory: &(dyn Fn() -> Model + Sync),
    train_set: &Dataset,
    test_set: &Dataset,
    cfg: &TrainConfig,
    p: usize,
) -> Result<History, EngineError> {
    assert!(p >= 1);
    sasgd_tensor::parallel::auto_configure_for_learners(p);
    let shards = make_shards(train_set, p, cfg.shard_strategy);
    let mut world = CommWorld::new(p);
    let traffic = world.traffic();
    let comms = world.communicators();
    let mut rank0_history: Option<History> = None;
    let mut first_err: Option<EngineError> = None;

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (mut comm, shard) in comms.into_iter().zip(shards.iter().cloned()) {
            let handle = scope.spawn(move || {
                let rank = comm.rank();
                // Gather round (1-based) for wire-failure context.
                let mut round = 0u64;
                let result = (|| -> Result<History, sasgd_comm::CommError> {
                    let mut learner = Learner::new(rank, factory(), cfg);
                    // Evaluation replica for the running average (rank 0 only;
                    // factory() replicas start identical, so no broadcast —
                    // mirroring the simulated strategy's zero init charge).
                    let mut avg_model = if rank == 0 { Some(factory()) } else { None };
                    let evals = if rank == 0 {
                        Some(EvalSets::prepare(train_set, test_set, cfg.eval_cap))
                    } else {
                        None
                    };
                    let mut history = History::new(format!("ModelAvg-threaded(p={p})"), p, 1);
                    let mut compute_s = 0.0f64;
                    let mut comm_s = 0.0f64;
                    let mut samples = 0u64;
                    for epoch in 1..=cfg.epochs {
                        // Independent learners use the epoch-start rate for the
                        // whole epoch, like the simulated strategy.
                        let gamma_now = cfg.gamma_at((epoch - 1) as f64);
                        let batches: Vec<Vec<usize>> =
                            shard.epoch_iter(cfg.batch_size, &mut learner.rng).collect();
                        let t0 = Instant::now();
                        for idx in &batches {
                            samples += idx.len() as u64;
                            learner.local_step(train_set, idx, gamma_now, 0.0, 1.0);
                            learner.gs.iter_mut().for_each(|g| *g = 0.0);
                        }
                        compute_s += t0.elapsed().as_secs_f64();
                        // Gather parameters to rank 0 in rank order.
                        round += 1;
                        let op = comm.next_op();
                        let gather_tag = (op << 4) | 2;
                        let t1 = Instant::now();
                        if rank == 0 {
                            let mut avg = vec![0.0f32; learner.model.param_len()];
                            let own = learner.model.param_vector();
                            for (a, &b) in avg.iter_mut().zip(&own) {
                                *a += b / p as f32;
                            }
                            for r in 1..p {
                                let v = comm.recv(r, gather_tag)?;
                                for (a, &b) in avg.iter_mut().zip(&v) {
                                    *a += b / p as f32;
                                }
                            }
                            let am = avg_model.as_mut().expect("rank 0 replica");
                            am.write_params(&avg);
                            comm_s += t1.elapsed().as_secs_f64();
                            if let Some(ev) = &evals {
                                let rec = ev.record(
                                    am,
                                    epoch as f64,
                                    compute_s,
                                    comm_s,
                                    samples * p as u64,
                                );
                                history.records.push(rec);
                            }
                        } else {
                            comm.send(0, gather_tag, learner.model.param_vector())?;
                            comm_s += t1.elapsed().as_secs_f64();
                        }
                    }
                    if rank == 0 {
                        history.final_params =
                            Some(avg_model.as_ref().expect("rank 0 replica").param_vector());
                    }
                    Ok(history)
                })();
                (rank, round, result)
            });
            handles.push(handle);
        }
        for (rank, round, result) in join_learners(handles) {
            match result {
                Ok(history) if rank == 0 => rank0_history = Some(history),
                Ok(_) => {}
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(EngineError::WireFailure {
                            rank,
                            round,
                            detail: e.to_string(),
                        });
                    }
                }
            }
        }
    });
    if let Some(e) = first_err {
        return Err(e);
    }
    let mut history = rank0_history.expect("rank 0 history");
    history.wire = Some(WireStats {
        elements: traffic.elements_sent(),
        messages: traffic.messages_sent(),
    });
    Ok(history)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sasgd_data::cifar_like::{generate, CifarLikeConfig};
    use sasgd_nn::models;
    use sasgd_simnet::JitterModel;
    use sasgd_tensor::SeedRng;

    #[test]
    fn threaded_sequential_matches_simulated_bitwise() {
        let (train, test) = generate(&CifarLikeConfig::tiny(52, 16, 2));
        let mut cfg = TrainConfig::new(3, 8, 0.05, 11);
        cfg.jitter = JitterModel::none();
        let factory = || models::tiny_cnn(2, &mut SeedRng::new(5));
        let th = run_threaded_sequential(&factory, &train, &test, &cfg);
        let mut f = || models::tiny_cnn(2, &mut SeedRng::new(5));
        let sim = crate::algorithms::sequential::run(&mut f, &train, &test, &cfg);
        assert_eq!(th.final_params, sim.final_params);
    }

    #[test]
    fn threaded_averaging_matches_simulated_bitwise() {
        let (train, test) = generate(&CifarLikeConfig::tiny(64, 16, 2));
        let mut cfg = TrainConfig::new(2, 8, 0.03, 7);
        cfg.jitter = JitterModel::none();
        let factory = || models::tiny_cnn(2, &mut SeedRng::new(3));
        let th = run_threaded_averaging(&factory, &train, &test, &cfg, 3);
        let mut f = || models::tiny_cnn(2, &mut SeedRng::new(3));
        let sim = crate::algorithms::averaging::run(&mut f, &train, &test, &cfg, 3);
        assert_eq!(th.final_params, sim.final_params);
        assert!(
            th.wire.expect("wire").elements > 0,
            "gather traffic counted"
        );
    }

    #[test]
    fn threaded_eamsgd_learns() {
        let (train, test) = generate(&CifarLikeConfig::tiny(100, 40, 3));
        let mut cfg = TrainConfig::new(6, 8, 0.02, 42);
        cfg.jitter = JitterModel::none();
        let factory = || models::tiny_cnn(3, &mut SeedRng::new(7));
        let h = run_threaded_eamsgd(&factory, &train, &test, &cfg, 2, 2, None, 0.9, false);
        assert!(
            h.final_test_acc() > 0.45,
            "async threads + real center should learn: {:.2}",
            h.final_test_acc()
        );
        assert!(h.wire.expect("wire").elements > 0);
    }

    #[test]
    fn compressed_sasgd_matches_simulated_bitwise() {
        let (train, test) = generate(&CifarLikeConfig::tiny(96, 24, 3));
        let mut cfg = TrainConfig::new(2, 8, 0.05, 42);
        cfg.jitter = JitterModel::none();
        let comp = Compression::TopK { ratio: 0.25 };
        let factory = || models::tiny_cnn(3, &mut SeedRng::new(7));
        let th = run_sasgd(
            &factory,
            &train,
            &test,
            &cfg,
            4,
            2,
            GammaP::OverP,
            Some(comp),
        )
        .expect("in-process run");
        let mut f = || models::tiny_cnn(3, &mut SeedRng::new(7));
        let sim = crate::algorithms::sasgd::run(
            &mut f,
            &train,
            &test,
            &cfg,
            4,
            2,
            GammaP::OverP,
            Some(comp),
        );
        assert_eq!(th.final_params, sim.final_params);
    }

    #[test]
    fn topk_moves_fewer_wire_elements_than_dense() {
        let (train, test) = generate(&CifarLikeConfig::tiny(96, 24, 2));
        let mut cfg = TrainConfig::new(1, 8, 0.05, 42);
        cfg.jitter = JitterModel::none();
        let factory = || models::tiny_cnn(2, &mut SeedRng::new(7));
        let p = 2usize;
        let m = factory().param_vector().len() as u64;
        // 96 samples over 2 shards, batch 8 → 6 steps/epoch; T=2 over one
        // epoch → 3 sync rounds.
        let syncs = 3u64;
        let bcast = (p as u64 - 1) * m; // initial parameter broadcast
        let dense = run_sasgd(&factory, &train, &test, &cfg, p, 2, GammaP::OverP, None)
            .expect("in-process run");
        let d = dense.wire.expect("wire");
        // Dense traffic is exactly modeled: reduce + broadcast move
        // 2(p−1)·m elements per round.
        assert_eq!(d.elements, bcast + syncs * 2 * (p as u64 - 1) * m);

        let topk = Compression::TopK { ratio: 0.1 };
        let sparse = run_sasgd(
            &factory,
            &train,
            &test,
            &cfg,
            p,
            2,
            GammaP::OverP,
            Some(topk),
        )
        .expect("in-process run");
        let s = sparse.wire.expect("wire");
        assert!(
            s.elements < d.elements / 2,
            "TopK-10% wire {} vs dense {}",
            s.elements,
            d.elements
        );
        // The analytic bracket contains the measured traffic.
        let (lo, hi) = topk.round_wire_bounds(m as usize, p);
        assert!(
            (bcast + syncs * lo..=bcast + syncs * hi).contains(&s.elements),
            "TopK wire {} outside [{}, {}]",
            s.elements,
            bcast + syncs * lo,
            bcast + syncs * hi
        );

        // Uniform8Bit traffic is exactly modeled (packed leaf frames,
        // dense f32 internal partials and broadcast).
        let q8 = Compression::Uniform8Bit;
        let quant = run_sasgd(&factory, &train, &test, &cfg, p, 2, GammaP::OverP, Some(q8))
            .expect("in-process run");
        let q = quant.wire.expect("wire");
        let (qlo, qhi) = q8.round_wire_bounds(m as usize, p);
        assert_eq!(qlo, qhi, "Uniform8Bit bracket is tight");
        assert_eq!(q.elements, bcast + syncs * qlo);

        // The composed sparse scheme stays inside its bracket too, and
        // under the plain sparse wire.
        let comp = Compression::Sparse {
            k: crate::compress::KSchedule::fixed(0.1),
            q8: true,
            union_bound: true,
        };
        let cm = run_sasgd(
            &factory,
            &train,
            &test,
            &cfg,
            p,
            2,
            GammaP::OverP,
            Some(comp),
        )
        .expect("in-process run");
        let c = cm.wire.expect("wire");
        let (clo, chi) = comp.round_wire_bounds(m as usize, p);
        assert!(
            (bcast + syncs * clo..=bcast + syncs * chi).contains(&c.elements),
            "Sparse wire {} outside [{}, {}]",
            c.elements,
            bcast + syncs * clo,
            bcast + syncs * chi
        );
        assert!(c.elements < s.elements, "q8 leaves beat f32 sparse frames");
    }

    #[test]
    fn sparse_sasgd_matches_simulated_bitwise() {
        // Every k schedule and wire option must be bitwise identical
        // across the threaded tree and the simulated in-memory mirror —
        // the same invariant the TopK/dense goldens pin.
        let (train, test) = generate(&CifarLikeConfig::tiny(96, 24, 3));
        let mut cfg = TrainConfig::new(2, 8, 0.05, 42);
        cfg.jitter = JitterModel::none();
        let schedules = [
            Compression::Sparse {
                k: crate::compress::KSchedule::norm_adaptive(0.1),
                q8: false,
                union_bound: false,
            },
            Compression::Sparse {
                k: crate::compress::KSchedule::layer_wise(0.1),
                q8: false,
                union_bound: false,
            },
            Compression::Sparse {
                k: crate::compress::KSchedule::fixed(0.1),
                q8: true,
                union_bound: true,
            },
        ];
        for comp in schedules {
            let factory = || models::tiny_cnn(3, &mut SeedRng::new(7));
            let th = run_sasgd(
                &factory,
                &train,
                &test,
                &cfg,
                4,
                2,
                GammaP::OverP,
                Some(comp),
            )
            .expect("in-process run");
            let mut f = || models::tiny_cnn(3, &mut SeedRng::new(7));
            let sim = crate::algorithms::sasgd::run(
                &mut f,
                &train,
                &test,
                &cfg,
                4,
                2,
                GammaP::OverP,
                Some(comp),
            );
            assert_eq!(
                th.final_params, sim.final_params,
                "divergence under {comp:?}"
            );
            // Both backends log the same per-round sparsity telemetry.
            assert_eq!(
                th.sparsity_series.len(),
                sim.sparsity_series.len(),
                "series length under {comp:?}"
            );
            for (a, b) in th.sparsity_series.iter().zip(&sim.sparsity_series) {
                assert_eq!((a.round, a.rank, a.k_eff), (b.round, b.rank, b.k_eff));
                assert_eq!(a.residual_norm, b.residual_norm, "norms under {comp:?}");
            }
            assert!(
                th.sparse_levels.levels.iter().any(|l| l.messages > 0),
                "threaded run recorded per-level wire stats"
            );
        }
    }
}

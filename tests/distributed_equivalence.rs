//! Cross-crate equivalence tests: the simulated trainer, the threaded
//! backend and the sequential baseline must agree where the algorithms
//! coincide mathematically.

use sasgd::core::algorithms::GammaP;
use sasgd::core::{run_threaded_sasgd, train, Algorithm, TrainConfig};
use sasgd::data::cifar_like::{generate, CifarLikeConfig};
use sasgd::nn::models;
use sasgd::simnet::JitterModel;
use sasgd::tensor::SeedRng;

fn quiet_cfg(epochs: usize, gamma: f32, seed: u64) -> TrainConfig {
    let mut cfg = TrainConfig::new(epochs, 8, gamma, seed);
    cfg.jitter = JitterModel::none();
    cfg
}

#[test]
fn threaded_equals_simulated_sasgd_bitwise() {
    // Same seeds, same batch orders, same binomial-tree reduction order:
    // the two backends must produce identical accuracy trajectories.
    let (train_set, test_set) = generate(&CifarLikeConfig::tiny(128, 32, 3));
    for (p, t) in [(2usize, 1usize), (4, 2), (3, 5)] {
        let cfg = quiet_cfg(3, 0.05, 21);
        let factory = || models::tiny_cnn(3, &mut SeedRng::new(5));
        let h_thread =
            run_threaded_sasgd(&factory, &train_set, &test_set, &cfg, p, t, GammaP::OverP);
        let mut f = || models::tiny_cnn(3, &mut SeedRng::new(5));
        let algo = Algorithm::Sasgd {
            p,
            t,
            gamma_p: GammaP::OverP,
        };
        let h_sim = train(&mut f, &train_set, &test_set, &algo, &cfg);
        assert_eq!(h_thread.records.len(), h_sim.records.len());
        for (a, b) in h_thread.records.iter().zip(&h_sim.records) {
            assert_eq!(
                a.train_loss, b.train_loss,
                "p={p} T={t}: train loss diverged"
            );
            assert_eq!(
                a.test_acc, b.test_acc,
                "p={p} T={t}: test accuracy diverged"
            );
            assert_eq!(
                a.train_acc, b.train_acc,
                "p={p} T={t}: train accuracy diverged"
            );
        }
    }
}

#[test]
fn sync_sgd_is_sasgd_with_t1() {
    // T=1 SASGD is classic synchronous SGD; doubling T=1's γp via the
    // Fixed policy must equal OverP at 2γ — a consistency check of the
    // γp plumbing.
    let (train_set, test_set) = generate(&CifarLikeConfig::tiny(96, 24, 3));
    let cfg = quiet_cfg(2, 0.05, 9);
    let p = 4;
    let mut f1 = || models::tiny_cnn(3, &mut SeedRng::new(7));
    let a = train(
        &mut f1,
        &train_set,
        &test_set,
        &Algorithm::Sasgd {
            p,
            t: 1,
            gamma_p: GammaP::Fixed(0.05 / p as f32),
        },
        &cfg,
    );
    let mut f2 = || models::tiny_cnn(3, &mut SeedRng::new(7));
    let b = train(
        &mut f2,
        &train_set,
        &test_set,
        &Algorithm::Sasgd {
            p,
            t: 1,
            gamma_p: GammaP::OverP,
        },
        &cfg,
    );
    for (x, y) in a.records.iter().zip(&b.records) {
        assert_eq!(x.train_loss, y.train_loss);
    }
}

#[test]
fn downpour_p1_t1_tracks_sequential_closely() {
    // One asynchronous learner has no one to be stale against: Downpour
    // p=1 T=1 is sequential SGD up to the local-then-server double
    // application of γ·g per step (local step + server step ⇒ effective
    // 2γ). Compare against sequential SGD at 2γ.
    let (train_set, test_set) = generate(&CifarLikeConfig::tiny(96, 48, 3));
    let cfg_dp = quiet_cfg(4, 0.02, 13);
    let mut f1 = || models::tiny_cnn(3, &mut SeedRng::new(3));
    let dp = train(
        &mut f1,
        &train_set,
        &test_set,
        &Algorithm::Downpour { p: 1, t: 1 },
        &cfg_dp,
    );
    let cfg_seq = quiet_cfg(4, 0.04, 13);
    let mut f2 = || models::tiny_cnn(3, &mut SeedRng::new(3));
    let seq = train(
        &mut f2,
        &train_set,
        &test_set,
        &Algorithm::Sequential,
        &cfg_seq,
    );
    let d = dp.final_test_acc();
    let s = seq.final_test_acc();
    assert!(
        (d - s).abs() < 0.15,
        "Downpour p=1 ({d}) should track sequential at 2γ ({s})"
    );
}

#[test]
fn gamma_p_policies_change_trajectories() {
    let (train_set, test_set) = generate(&CifarLikeConfig::tiny(96, 24, 3));
    let cfg = quiet_cfg(2, 0.05, 1);
    let mut f1 = || models::tiny_cnn(3, &mut SeedRng::new(1));
    let over_p = train(
        &mut f1,
        &train_set,
        &test_set,
        &Algorithm::Sasgd {
            p: 4,
            t: 2,
            gamma_p: GammaP::OverP,
        },
        &cfg,
    );
    let mut f2 = || models::tiny_cnn(3, &mut SeedRng::new(1));
    let same = train(
        &mut f2,
        &train_set,
        &test_set,
        &Algorithm::Sasgd {
            p: 4,
            t: 2,
            gamma_p: GammaP::SameAsGamma,
        },
        &cfg,
    );
    assert_ne!(
        over_p.records[0].train_loss, same.records[0].train_loss,
        "γp = γ vs γ/p must differ with 4 learners"
    );
}

//! Downpour ASGD (Dean et al., NIPS 2012) — the paper's main baseline.
//!
//! Dean et al. "divide the training data into a number of subsets and run
//! a copy of the model on each of these subsets": each asynchronous
//! learner iterates *its own shard* (reshuffled every pass), exactly like
//! SASGD's learners partition the data. Every `T` minibatches a learner
//! pushes its accumulated gradient to the parameter server — which applies
//! `x ← x − γ·gs` immediately — and pulls the current parameters back.
//! Between a learner's pull and its next push, other learners keep
//! mutating the server, so the pushed gradient is *stale*; the engine's
//! event-driven loop realizes exactly that interleaving in virtual-time
//! order, with staleness driven by the jitter model's speed variation.

use sasgd_data::Dataset;
use sasgd_nn::Model;

use crate::engine::{simulated, AggregationStrategy, Cadence, CommScope};
use crate::history::History;
use crate::trainer::{Learner, TrainConfig};

/// Asynchronous learners around a simulated parameter server: every `T`
/// minibatches a learner pushes `gs` (applied immediately) and pulls the
/// current parameters.
pub(crate) struct DownpourStrategy {
    p: usize,
    t: usize,
    /// Scale each push by γ/(1+τ) using the measured staleness τ.
    staleness_gamma: bool,
    /// The parameter-server state.
    ps: Vec<f32>,
    /// Lockstep-only: modeled PS round-trip seconds, set in `setup`.
    round_s: f64,
}

impl DownpourStrategy {
    pub(crate) fn new(p: usize, t: usize, staleness_gamma: bool) -> Self {
        assert!(p >= 1 && t >= 1);
        DownpourStrategy {
            p,
            t,
            staleness_gamma,
            ps: Vec::new(),
            round_s: 0.0,
        }
    }
}

impl AggregationStrategy for DownpourStrategy {
    fn label(&self) -> String {
        if self.staleness_gamma {
            format!("Downpour-s\u{3b3}(p={},T={})", self.p, self.t)
        } else {
            format!("Downpour(p={},T={})", self.p, self.t)
        }
    }

    fn p(&self) -> usize {
        self.p
    }

    fn cadence(&self) -> Cadence {
        Cadence::EventDriven
    }

    fn comm_scope(&self) -> CommScope {
        CommScope::Individual
    }

    fn sync_interval(&self) -> usize {
        self.t
    }

    fn setup(&mut self, _factory: &mut dyn FnMut() -> Model, x0: &[f32], cfg: &TrainConfig) -> f64 {
        self.ps = x0.to_vec();
        self.round_s = cfg.cost.ps_roundtrip(x0.len(), self.p).seconds;
        0.0
    }

    fn observe_staleness(&mut self, _id: usize, tau: u64, gamma: f32) -> f32 {
        if self.staleness_gamma {
            // lint:allow(float-cast): τ is a small update count.
            gamma / (1.0 + tau as f32)
        } else {
            gamma
        }
    }

    fn sync(&mut self, learners: &mut [Learner], gamma_now: f32) {
        // Lockstep Downpour: the same push/pull math, executed as a
        // bulk-synchronous round in rank order (τ = 0 by construction).
        let t_max = learners.iter().map(|l| l.clock).fold(0.0, f64::max);
        for (id, l) in learners.iter_mut().enumerate() {
            let gamma_eff = self.observe_staleness(id, 0, gamma_now);
            let wait = t_max - l.clock;
            self.event_sync_inner(l, gamma_eff);
            l.charge_comm(wait + self.round_s);
        }
    }

    fn on_local_step(
        &mut self,
        l: &mut Learner,
        _id: usize,
        data: &Dataset,
        idx: &[usize],
        gamma: f32,
    ) {
        // Local SGD step against the parameters pulled at the previous
        // sync; wall-clock time is accounted by the block event itself.
        l.local_step(data, idx, gamma, 0.0, 1.0);
    }

    fn event_sync(&mut self, l: &mut Learner, _id: usize, gamma: f32) {
        self.event_sync_inner(l, gamma);
    }
}

impl DownpourStrategy {
    fn event_sync_inner(&mut self, l: &mut Learner, gamma: f32) {
        // Push: the server applies the accumulated gradient at once.
        for (x, &g) in self.ps.iter_mut().zip(&l.gs) {
            *x -= gamma * g;
        }
        l.gs.iter_mut().for_each(|g| *g = 0.0);
        // Pull: fresh (possibly already-stale-tomorrow) parameters.
        l.model.write_params(&self.ps);
    }
}

/// Run Downpour.
pub(crate) fn run(
    factory: &mut dyn FnMut() -> Model,
    train_set: &Dataset,
    test_set: &Dataset,
    cfg: &TrainConfig,
    p: usize,
    t: usize,
    staleness_gamma: bool,
) -> History {
    let mut s = DownpourStrategy::new(p, t, staleness_gamma);
    simulated::run_auto(&mut s, factory, train_set, test_set, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sasgd_data::cifar_like::{generate, CifarLikeConfig};
    use sasgd_nn::models;
    use sasgd_simnet::JitterModel;
    use sasgd_tensor::SeedRng;

    #[test]
    fn single_learner_downpour_learns() {
        let (train, test) = generate(&CifarLikeConfig::tiny(80, 40, 3));
        let mut cfg = TrainConfig::new(6, 8, 0.05, 42);
        cfg.jitter = JitterModel::none();
        let mut factory = || models::tiny_cnn(3, &mut SeedRng::new(7));
        let h = run(&mut factory, &train, &test, &cfg, 1, 1, false);
        assert!(h.final_test_acc() > 0.5, "acc {}", h.final_test_acc());
        assert!(
            h.records.last().expect("r").comm_seconds > 0.0,
            "PS traffic even at p=1"
        );
    }

    #[test]
    fn records_land_once_per_collective_epoch() {
        // Learner 0 records whenever it finishes a pass over its shard
        // (n/p samples); with all p learners running that is ~n collective
        // samples between records, i.e. one epoch.
        let (train, test) = generate(&CifarLikeConfig::tiny(64, 16, 2));
        let mut cfg = TrainConfig::new(8, 8, 0.02, 42);
        cfg.jitter = JitterModel::none();
        let mut factory = || models::tiny_cnn(2, &mut SeedRng::new(3));
        let h = run(&mut factory, &train, &test, &cfg, 4, 2, false);
        assert!(h.records.len() >= 2);
        let gap = h.records[1].epoch - h.records[0].epoch;
        assert!(
            (gap - 1.0).abs() < 0.5,
            "records ~1 collective epoch apart, gap {gap}"
        );
    }

    #[test]
    fn total_samples_respect_epoch_budget() {
        let (train, test) = generate(&CifarLikeConfig::tiny(40, 10, 2));
        let mut cfg = TrainConfig::new(3, 8, 0.02, 1);
        cfg.jitter = JitterModel::none();
        let mut factory = || models::tiny_cnn(2, &mut SeedRng::new(3));
        let h = run(&mut factory, &train, &test, &cfg, 2, 1, false);
        let total = h.records.last().expect("r").samples;
        // Budget 3 × 40 = 120, with at most one block (8 samples × 2
        // learners) of overshoot.
        assert!((120..=120 + 32).contains(&total), "samples {total}");
    }
}
